// Statistical profiles of the five SPEC CPU2000 applications the paper
// presents (§4.1): applu, equake, gcc, mesa, mcf.
//
// The real benchmark binaries are not available offline, so we synthesize
// traces from per-application statistical profiles (instruction mix, code
// footprint, memory locality structure, branch behaviour, dependency
// distances). The profiles are tuned so the *sensitivity structure* of each
// application across the Table-1 design space matches the paper's
// characterisation: mcf's pointer-chasing gives it the widest
// fastest-to-slowest range (paper: 6.38x), gcc's large code footprint and
// branchiness make it cache/predictor sensitive (5.27x), while the
// floating-point codes applu (1.62x), equake (1.73x) and mesa (2.22x) are
// narrower because compute throughput dominates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dsml::workload {

/// Instruction-class mix; fractions must sum to 1.
struct InstructionMix {
  double ialu = 0.4;
  double imult = 0.02;
  double fpalu = 0.0;
  double fpmult = 0.0;
  double load = 0.25;
  double store = 0.12;
  double branch = 0.21;

  double sum() const noexcept {
    return ialu + imult + fpalu + fpmult + load + store + branch;
  }
};

/// One tier of an application's layered working set: `fraction` of the
/// non-stream accesses fall uniformly in a region of `bytes` (tiers nest —
/// they share a base address, so smaller tiers are the hot heads of larger
/// ones).
struct WorkingSetLevel {
  double fraction = 0.0;
  std::uint64_t bytes = 0;
};

/// Where data accesses go.
///
/// A `stride_fraction` of accesses walk sequential streams, each cycling
/// through its own `stream_segment_bytes` window (the blocked array sweeps
/// of dense codes — reuse appears at whichever cache level holds
/// stream_count * segment bytes). The rest draw from a layered working set:
/// tiers sized to straddle the Table-1 cache menu (L1-scale, L2-scale,
/// L3-scale, memory-resident tail), which is what makes each cache-size
/// decision a measurable performance lever, exactly as the reuse hierarchy
/// of a real application does.
struct MemoryBehavior {
  double stride_fraction = 0.5;
  std::uint32_t stride_bytes = 8;
  std::uint32_t stream_count = 4;
  std::uint64_t stream_segment_bytes = 64 * 1024;
  /// Tier fractions should sum to ~1 (normalised at use).
  std::vector<WorkingSetLevel> levels = {
      {0.60, 24 * 1024}, {0.25, 512 * 1024},
      {0.10, 2 * 1024 * 1024}, {0.05, 8ULL * 1024 * 1024}};
};

/// Branch predictability structure.
struct BranchBehavior {
  double loop_fraction = 0.7;  ///< back-edges with long trips (predictable)
  double bias = 0.85;          ///< P(data-dependent branch follows its bias)
  double mean_trip_count = 32; ///< loop iterations between exits
};

/// One program phase. Real programs move through phases with distinct
/// mixes/localities — which is exactly what SimPoint exploits.
struct Phase {
  InstructionMix mix;
  MemoryBehavior mem;
  BranchBehavior branch;
  double weight = 1.0;           ///< share of dynamic instructions
  std::size_t hot_blocks = 16;   ///< static blocks active in this phase
};

struct AppProfile {
  std::string name;
  std::vector<Phase> phases;
  std::size_t static_blocks = 256;   ///< total static basic blocks
  std::uint64_t code_bytes = 64 * 1024;
  double mean_block_len = 6.0;       ///< instructions per basic block
  double mean_dep_distance = 4.0;    ///< producer distance (geometric mean)
  double code_skew = 1.6;            ///< block-popularity skew (1 = uniform)
  std::uint64_t seed = 1;            ///< default generation seed
};

/// The five applications of the paper's Figures 2–6.
std::vector<AppProfile> spec_profiles();

/// Lookup by name ("applu", "equake", "gcc", "mesa", "mcf").
/// Throws InvalidArgument for unknown names.
AppProfile spec_profile(const std::string& name);

/// Names in the paper's presentation order.
std::vector<std::string> spec_profile_names();

}  // namespace dsml::workload
