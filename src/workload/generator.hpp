// Synthetic trace generation from an AppProfile.
//
// The generator builds a dynamic instruction stream with the statistical
// structure the timing model cares about: a static code layout walked
// through loops (so instruction-cache and branch-predictor state matter),
// loop back-edges with geometric trip counts and biased data-dependent
// branches (so predictor sophistication matters), stream/hot/cold memory
// access classes (so cache geometry matters — cold loads form dependent
// pointer-chasing chains as in mcf), and geometric register dependency
// distances (so window size and width matter).
//
// Generation is deterministic in (profile, n, seed). The trace is segmented
// across the profile's phases so that SimPoint-style phase detection has
// real phase structure to find.
#pragma once

#include "sim/trace.hpp"
#include "workload/profiles.hpp"

namespace dsml::workload {

/// Generate `n` instructions from `profile`. seed 0 uses profile.seed.
sim::Trace generate_trace(const AppProfile& profile, std::size_t n,
                          std::uint64_t seed = 0);

}  // namespace dsml::workload
