#include "workload/generator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace dsml::workload {

namespace {

constexpr std::uint64_t kCodeBase = 0x00400000ULL;
constexpr std::uint64_t kDataBase = 0x10000000ULL;
constexpr std::uint32_t kInstrBytes = 4;

/// Geometric draw with the given mean (>= 1).
std::uint32_t geometric(Rng& rng, double mean) {
  if (mean <= 1.0) return 1;
  const double p = 1.0 / mean;
  // Inverse transform for geometric distribution on {1, 2, ...}.
  const double u = std::max(rng.uniform(), 1e-12);
  const double k = std::ceil(std::log(u) / std::log(1.0 - p));
  return static_cast<std::uint32_t>(std::clamp(k, 1.0, 1e6));
}

struct PhaseState {
  const Phase* phase = nullptr;
  std::vector<std::uint64_t> block_pc;      // entry pc of each hot block
  std::vector<std::uint32_t> block_len;     // instructions per block
  std::vector<std::uint64_t> stream_ptr;    // sequential stream cursors
  std::vector<std::uint64_t> stream_base;   // segment base per stream
  double level_fraction_total = 1.0;        // normaliser for tier fractions
  std::size_t current_block = 0;
  // loop context
  std::vector<std::size_t> loop_body;       // blocks forming the active loop
  std::size_t loop_pos = 0;
  std::uint32_t trips_left = 0;
};

class TraceBuilder {
 public:
  TraceBuilder(const AppProfile& profile, std::uint64_t seed)
      : profile_(profile), rng_(seed) {
    DSML_REQUIRE(!profile.phases.empty(), "generate_trace: profile has no phases");
    // Lay out static blocks over the code footprint.
    const std::size_t blocks = std::max<std::size_t>(profile.static_blocks, 4);
    const std::uint64_t block_stride =
        std::max<std::uint64_t>(profile.code_bytes / blocks,
                                static_cast<std::uint64_t>(
                                    profile.mean_block_len * kInstrBytes));
    all_block_pc_.resize(blocks);
    all_block_len_.resize(blocks);
    for (std::size_t b = 0; b < blocks; ++b) {
      all_block_pc_[b] = kCodeBase + b * block_stride;
      const double len = profile.mean_block_len *
                         (0.5 + rng_.uniform());  // 0.5x .. 1.5x
      all_block_len_[b] = std::max<std::uint32_t>(
          2, static_cast<std::uint32_t>(std::lround(len)));
    }
    // Build per-phase state: each phase works on its own slice of blocks
    // (overlapping slices model shared library/helper code).
    std::size_t offset = 0;
    for (const Phase& phase : profile_.phases) {
      PhaseState ps;
      ps.phase = &phase;
      const std::size_t count =
          std::min<std::size_t>(std::max<std::size_t>(phase.hot_blocks, 2),
                                blocks);
      ps.block_pc.resize(count);
      ps.block_len.resize(count);
      for (std::size_t i = 0; i < count; ++i) {
        const std::size_t b = (offset + i) % blocks;
        ps.block_pc[i] = all_block_pc_[b];
        ps.block_len[i] = all_block_len_[b];
      }
      offset = (offset + count * 3 / 4) % blocks;  // partial overlap
      DSML_REQUIRE(!phase.mem.levels.empty(),
                   "generate_trace: phase has no working-set levels");
      std::uint64_t top = 0;
      ps.level_fraction_total = 0.0;
      for (const auto& level : phase.mem.levels) {
        DSML_REQUIRE(level.bytes >= 64 && level.fraction >= 0.0,
                     "generate_trace: malformed working-set level");
        top = std::max(top, level.bytes);
        ps.level_fraction_total += level.fraction;
      }
      DSML_REQUIRE(ps.level_fraction_total > 0.0,
                   "generate_trace: zero total level fraction");
      ps.stream_ptr.resize(std::max<std::uint32_t>(phase.mem.stream_count, 1));
      ps.stream_base.resize(ps.stream_ptr.size());
      for (std::size_t s = 0; s < ps.stream_ptr.size(); ++s) {
        // Each stream cycles over its own segment; segments are laid out
        // back to back above the layered working set.
        ps.stream_base[s] = kDataBase + top +
                            s * phase.mem.stream_segment_bytes;
        ps.stream_ptr[s] = ps.stream_base[s];
      }
      phases_.push_back(std::move(ps));
    }
  }

  sim::Trace build(std::size_t n) {
    sim::Trace trace;
    trace.instrs.reserve(n);
    // Phase schedule: split the run into segments, each segment drawn from
    // the phase weight distribution, so phases recur (as real programs do).
    const std::size_t segment = std::max<std::size_t>(n / 24, 512);
    std::vector<double> weights;
    for (const auto& ps : phases_) weights.push_back(ps.phase->weight);

    while (trace.instrs.size() < n) {
      const std::size_t phase_idx =
          phases_.size() == 1 ? 0 : rng_.weighted(weights);
      const std::size_t until =
          std::min(n, trace.instrs.size() + segment);
      emit_phase_segment(trace, phases_[phase_idx], until);
    }
    trace.instrs.resize(n);
    return trace;
  }

 private:
  void emit_phase_segment(sim::Trace& trace, PhaseState& ps,
                          std::size_t until) {
    const Phase& phase = *ps.phase;
    while (trace.instrs.size() < until) {
      emit_block(trace, ps, phase);
    }
  }

  // Emit one dynamic basic block: body instructions followed by the block-
  // terminating branch.
  void emit_block(sim::Trace& trace, PhaseState& ps, const Phase& phase) {
    // Establish / continue loop context.
    if (ps.trips_left == 0) {
      // Start a new loop: 1-4 consecutive blocks, geometric trip count.
      const std::size_t body =
          1 + static_cast<std::size_t>(rng_.below(
                  std::min<std::uint64_t>(4, ps.block_pc.size())));
      ps.loop_body.clear();
      const std::size_t start = skewed_block(ps);
      for (std::size_t i = 0; i < body; ++i) {
        ps.loop_body.push_back((start + i) % ps.block_pc.size());
      }
      ps.loop_pos = 0;
      ps.trips_left = geometric(rng_, phase.branch.mean_trip_count);
    }

    const std::size_t block = ps.loop_body[ps.loop_pos];
    std::uint64_t pc = ps.block_pc[block];
    const std::uint32_t body_len = ps.block_len[block];

    for (std::uint32_t k = 0; k + 1 < body_len; ++k) {
      trace.instrs.push_back(
          make_body_instr(ps, phase, pc, trace.instrs.size()));
      pc += kInstrBytes;
    }

    // Block-terminating branch.
    sim::Instr br;
    br.op = sim::OpClass::kBranch;
    br.pc = pc;
    br.dep1 = dep_distance(phase);
    const bool at_loop_end = ps.loop_pos + 1 == ps.loop_body.size();
    const bool is_loop_branch = at_loop_end;
    if (is_loop_branch) {
      // Back edge: taken while trips remain; the exit is the mispredictable
      // event for history-less predictors.
      --ps.trips_left;
      br.taken = ps.trips_left > 0;
      br.target = ps.block_pc[ps.loop_body[0]];
      ps.loop_pos = 0;
      if (ps.trips_left == 0) {
        // Loop exits; a fresh loop begins on the next emit_block call.
        ps.loop_pos = 0;
      }
    } else {
      // Intra-loop branch: mixture of predictable (biased) and data-
      // dependent behaviour per the phase's loop_fraction.
      const bool predictable = rng_.chance(phase.branch.loop_fraction);
      const double bias = predictable ? 0.97 : phase.branch.bias;
      // The biased direction varies per static branch (pc bit) so predictor
      // tables see both polarities.
      const bool bias_dir = ((br.pc >> 4) & 1) != 0;
      br.taken = rng_.chance(bias) ? bias_dir : !bias_dir;
      br.target = ps.block_pc[skewed_block(ps)];
      ++ps.loop_pos;
    }
    trace.instrs.push_back(br);
  }

  sim::Instr make_body_instr(PhaseState& ps, const Phase& phase,
                             std::uint64_t pc, std::size_t index) {
    sim::Instr ins;
    ins.pc = pc;
    const InstructionMix& mix = phase.mix;
    // Draw a non-branch class (branches only terminate blocks).
    const double non_branch = mix.sum() - mix.branch;
    double x = rng_.uniform() * non_branch;
    if ((x -= mix.ialu) < 0) {
      ins.op = sim::OpClass::kIntAlu;
    } else if ((x -= mix.imult) < 0) {
      ins.op = sim::OpClass::kIntMult;
    } else if ((x -= mix.fpalu) < 0) {
      ins.op = sim::OpClass::kFpAlu;
    } else if ((x -= mix.fpmult) < 0) {
      ins.op = sim::OpClass::kFpMult;
    } else if ((x -= mix.load) < 0) {
      ins.op = sim::OpClass::kLoad;
    } else {
      ins.op = sim::OpClass::kStore;
    }

    // Not every instruction sits on a dependence chain — independent strands
    // are what gives real code its ILP.
    if (rng_.chance(0.75)) ins.dep1 = dep_distance(phase);
    if (rng_.chance(0.25)) ins.dep2 = dep_distance(phase);

    if (ins.op == sim::OpClass::kLoad || ins.op == sim::OpClass::kStore) {
      ins.mem_addr = next_address(ps, phase, ins, index);
    }
    return ins;
  }

  // Block popularity is power-law skewed (code_skew), concentrating dynamic
  // execution in a hot subset of each phase's blocks — the structure that
  // makes L1I size a performance lever for large-code applications.
  std::size_t skewed_block(const PhaseState& ps) {
    const double u = rng_.uniform();
    const double frac = std::pow(u, profile_.code_skew);
    auto idx = static_cast<std::size_t>(
        frac * static_cast<double>(ps.block_pc.size()));
    return std::min(idx, ps.block_pc.size() - 1);
  }

  std::uint32_t dep_distance(const Phase& /*phase*/) {
    return std::min<std::uint32_t>(
        geometric(rng_, profile_.mean_dep_distance), 255);
  }

  std::uint64_t next_address(PhaseState& ps, const Phase& phase,
                             sim::Instr& ins, std::size_t index) {
    const MemoryBehavior& mem = phase.mem;
    const double x = rng_.uniform();
    if (x < mem.stride_fraction) {
      // Sequential stream access cycling within the stream's segment, so
      // reuse appears at whichever cache level holds the active segments.
      const std::size_t s = static_cast<std::size_t>(
          rng_.below(ps.stream_ptr.size()));
      auto& cursor = ps.stream_ptr[s];
      cursor += mem.stride_bytes;
      if (cursor >= ps.stream_base[s] + mem.stream_segment_bytes) {
        cursor = ps.stream_base[s];
      }
      return cursor;
    }
    // Layered working-set access: pick a tier by its fraction, uniform
    // within the tier (tiers share a base, so smaller tiers are the hot
    // heads of larger ones). Loads landing in the two outermost tiers chain
    // to the previous such load — pointer chasing, with chain lengths
    // geometric (mean ~6) since real list walks are finite.
    double pick = rng_.uniform() * ps.level_fraction_total;
    std::size_t tier = mem.levels.size() - 1;
    for (std::size_t t = 0; t < mem.levels.size(); ++t) {
      pick -= mem.levels[t].fraction;
      if (pick <= 0.0) {
        tier = t;
        break;
      }
    }
    const std::uint64_t offset = rng_.below(mem.levels[tier].bytes) & ~7ULL;
    if (ins.op == sim::OpClass::kLoad && tier + 2 >= mem.levels.size()) {
      if (last_cold_load_ != SIZE_MAX && index > last_cold_load_ &&
          index - last_cold_load_ < 255 && !rng_.chance(1.0 / 6.0)) {
        ins.dep1 = static_cast<std::uint32_t>(index - last_cold_load_);
      }
      last_cold_load_ = index;
    }
    return kDataBase + offset;
  }

 private:
  std::size_t last_cold_load_ = SIZE_MAX;
  const AppProfile& profile_;
  Rng rng_;
  std::vector<std::uint64_t> all_block_pc_;
  std::vector<std::uint32_t> all_block_len_;
  std::vector<PhaseState> phases_;
};

}  // namespace

sim::Trace generate_trace(const AppProfile& profile, std::size_t n,
                          std::uint64_t seed) {
  DSML_REQUIRE(n > 0, "generate_trace: n must be positive");
  TraceBuilder builder(profile, seed == 0 ? profile.seed : seed);
  return builder.build(n);
}

}  // namespace dsml::workload
