// SimPoint substrate (Sherwood et al., ASPLOS 2002 — the paper's ref [13]).
//
// The paper simulates only SimPoint-selected 100M-instruction intervals
// instead of whole SPEC runs. We reproduce the pipeline on our synthetic
// traces: slice the trace into fixed-length intervals, build per-interval
// basic-block vectors (BBVs), reduce dimensionality by random projection,
// cluster with k-means (k chosen by the Bayesian Information Criterion as in
// X-means/SimPoint), and pick, per cluster, the interval closest to the
// centroid, weighted by cluster population.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "sim/config.hpp"
#include "sim/core.hpp"
#include "sim/trace.hpp"

namespace dsml::workload {

/// Per-interval basic-block frequency vectors after L1 normalisation and
/// random projection.
struct BasicBlockVectors {
  std::size_t interval_length = 0;
  std::vector<std::vector<double>> vectors;  ///< one per full interval

  std::size_t n_intervals() const noexcept { return vectors.size(); }
};

/// Collect BBVs. A basic block is identified by the pc of the instruction
/// following a branch (its entry point); execution counts are weighted by
/// block length, L1-normalised per interval, and randomly projected to
/// `projected_dims` dimensions (SimPoint uses 15).
BasicBlockVectors collect_bbv(const sim::Trace& trace,
                              std::size_t interval_length,
                              std::size_t projected_dims = 15,
                              std::uint64_t seed = 42);

struct KMeansResult {
  std::vector<std::size_t> assignment;           ///< point -> cluster
  std::vector<std::vector<double>> centroids;
  double inertia = 0.0;                          ///< sum of squared distances
  std::size_t k = 0;
};

/// Lloyd's algorithm with k-means++ seeding.
KMeansResult k_means(const std::vector<std::vector<double>>& points,
                     std::size_t k, Rng& rng, std::size_t max_iter = 100);

/// Bayesian Information Criterion of a clustering under the identical
/// spherical Gaussian model (Pelleg & Moore); higher is better.
double k_means_bic(const std::vector<std::vector<double>>& points,
                   const KMeansResult& clustering);

struct SimPoint {
  std::size_t interval_index = 0;
  double weight = 0.0;  ///< cluster population share
};

struct SimPoints {
  std::size_t interval_length = 0;
  std::size_t n_intervals = 0;
  std::vector<SimPoint> points;
};

/// Full SimPoint pipeline: BBV → k-means for k = 1..max_clusters → best BIC
/// → per-cluster representative.
SimPoints choose_simpoints(const sim::Trace& trace,
                           std::size_t interval_length,
                           std::size_t max_clusters = 6,
                           std::uint64_t seed = 42);

/// Concatenate the representative intervals into one reduced trace (ordered
/// by interval index). This is what the design-space sweep simulates.
sim::Trace extract_intervals(const sim::Trace& trace, const SimPoints& points);

/// SimPoint's weighted whole-run estimate: simulate each representative
/// interval separately and extrapolate by cluster weights. Returns estimated
/// total cycles for the full trace.
double weighted_cycle_estimate(const sim::ProcessorConfig& config,
                               const sim::Trace& trace,
                               const SimPoints& points);

}  // namespace dsml::workload
