#include "workload/simpoint.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/error.hpp"

namespace dsml::workload {

BasicBlockVectors collect_bbv(const sim::Trace& trace,
                              std::size_t interval_length,
                              std::size_t projected_dims,
                              std::uint64_t seed) {
  DSML_REQUIRE(interval_length > 0, "collect_bbv: interval_length must be > 0");
  DSML_REQUIRE(projected_dims > 0, "collect_bbv: projected_dims must be > 0");
  DSML_REQUIRE(trace.size() >= interval_length,
               "collect_bbv: trace shorter than one interval");

  BasicBlockVectors out;
  out.interval_length = interval_length;
  const std::size_t n_intervals = trace.size() / interval_length;

  // Identify block entries: instruction 0 and every instruction following a
  // branch starts a block. Blocks are keyed by entry pc; the random
  // projection row for each block is generated lazily from a hash of the pc
  // so we never materialise the (blocks x dims) matrix.
  auto projection_row = [&](std::uint64_t block_pc, std::size_t dim) {
    std::uint64_t h = block_pc * 0x9e3779b97f4a7c15ULL + seed * 0xbf58476d1ce4e5b9ULL +
                      dim * 0x94d049bb133111ebULL;
    h ^= h >> 31;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 29;
    // Map to {-1, +1} (sparse Achlioptas-style projections also work; the
    // dense sign projection is simplest and distance-preserving enough).
    return (h & 1) != 0 ? 1.0 : -1.0;
  };

  out.vectors.reserve(n_intervals);
  std::size_t idx = 0;
  for (std::size_t iv = 0; iv < n_intervals; ++iv) {
    std::unordered_map<std::uint64_t, double> counts;
    std::uint64_t current_block = trace.instrs[idx].pc;
    std::size_t block_len = 0;
    for (std::size_t k = 0; k < interval_length; ++k, ++idx) {
      const sim::Instr& ins = trace.instrs[idx];
      ++block_len;
      if (ins.op == sim::OpClass::kBranch || k + 1 == interval_length) {
        // SimPoint weights block executions by block length so the vector
        // reflects instructions spent, not just visit counts.
        counts[current_block] += static_cast<double>(block_len);
        if (idx + 1 < trace.size()) {
          current_block = trace.instrs[idx + 1].pc;
        }
        block_len = 0;
      }
    }
    // L1 normalise, then project.
    double total = 0.0;
    for (const auto& [pc, c] : counts) total += c;
    std::vector<double> projected(projected_dims, 0.0);
    if (total > 0.0) {
      for (const auto& [pc, c] : counts) {
        const double w = c / total;
        for (std::size_t d = 0; d < projected_dims; ++d) {
          projected[d] += w * projection_row(pc, d);
        }
      }
    }
    out.vectors.push_back(std::move(projected));
  }
  return out;
}

namespace {

double sq_distance(const std::vector<double>& a, const std::vector<double>& b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace

KMeansResult k_means(const std::vector<std::vector<double>>& points,
                     std::size_t k, Rng& rng, std::size_t max_iter) {
  DSML_REQUIRE(!points.empty(), "k_means: no points");
  DSML_REQUIRE(k >= 1 && k <= points.size(),
               "k_means: k outside [1, n_points]");
  const std::size_t dims = points.front().size();
  for (const auto& p : points) {
    DSML_REQUIRE(p.size() == dims, "k_means: ragged points");
  }

  KMeansResult result;
  result.k = k;
  // k-means++ seeding.
  result.centroids.push_back(points[rng.below(points.size())]);
  std::vector<double> dist2(points.size(),
                            std::numeric_limits<double>::infinity());
  while (result.centroids.size() < k) {
    double total = 0.0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      dist2[i] = std::min(dist2[i],
                          sq_distance(points[i], result.centroids.back()));
      total += dist2[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with centroids; duplicate one.
      result.centroids.push_back(points[rng.below(points.size())]);
      continue;
    }
    double x = rng.uniform() * total;
    std::size_t chosen = points.size() - 1;
    for (std::size_t i = 0; i < points.size(); ++i) {
      x -= dist2[i];
      if (x <= 0.0) {
        chosen = i;
        break;
      }
    }
    result.centroids.push_back(points[chosen]);
  }

  result.assignment.assign(points.size(), 0);
  for (std::size_t iter = 0; iter < max_iter; ++iter) {
    bool changed = false;
    // Assignment step.
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::size_t best = 0;
      double best_d = sq_distance(points[i], result.centroids[0]);
      for (std::size_t c = 1; c < k; ++c) {
        const double d = sq_distance(points[i], result.centroids[c]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        changed = true;
      }
    }
    // Update step.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dims, 0.0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < points.size(); ++i) {
      const std::size_t c = result.assignment[i];
      ++counts[c];
      for (std::size_t d = 0; d < dims; ++d) sums[c][d] += points[i][d];
    }
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed an empty cluster at the farthest point.
        std::size_t far = 0;
        double far_d = -1.0;
        for (std::size_t i = 0; i < points.size(); ++i) {
          const double d =
              sq_distance(points[i], result.centroids[result.assignment[i]]);
          if (d > far_d) {
            far_d = d;
            far = i;
          }
        }
        result.centroids[c] = points[far];
        changed = true;
        continue;
      }
      for (std::size_t d = 0; d < dims; ++d) {
        result.centroids[c][d] =
            sums[c][d] / static_cast<double>(counts[c]);
      }
    }
    if (!changed && iter > 0) break;
  }

  result.inertia = 0.0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    result.inertia +=
        sq_distance(points[i], result.centroids[result.assignment[i]]);
  }
  return result;
}

double k_means_bic(const std::vector<std::vector<double>>& points,
                   const KMeansResult& clustering) {
  DSML_REQUIRE(points.size() == clustering.assignment.size(),
               "k_means_bic: size mismatch");
  const auto n = static_cast<double>(points.size());
  const auto d = static_cast<double>(points.front().size());
  const auto k = static_cast<double>(clustering.k);
  if (points.size() <= clustering.k) {
    return -std::numeric_limits<double>::infinity();
  }
  // Pelleg–Moore: identical spherical variance MLE across clusters.
  const double variance =
      std::max(clustering.inertia / ((n - k) * d), 1e-12);
  std::vector<std::size_t> counts(clustering.k, 0);
  for (std::size_t a : clustering.assignment) ++counts[a];
  double log_likelihood =
      -n * d / 2.0 * std::log(2.0 * M_PI * variance) - (n - k) * d / 2.0;
  for (std::size_t c = 0; c < clustering.k; ++c) {
    const auto nc = static_cast<double>(counts[c]);
    if (nc > 0.0) log_likelihood += nc * std::log(nc / n);
  }
  const double free_params = k * (d + 1.0);
  return log_likelihood - free_params / 2.0 * std::log(n);
}

SimPoints choose_simpoints(const sim::Trace& trace,
                           std::size_t interval_length,
                           std::size_t max_clusters, std::uint64_t seed) {
  const BasicBlockVectors bbv = collect_bbv(trace, interval_length, 15, seed);
  DSML_REQUIRE(bbv.n_intervals() >= 1, "choose_simpoints: no intervals");
  Rng rng(seed);

  const std::size_t k_cap = std::min(max_clusters, bbv.n_intervals());
  KMeansResult best;
  double best_bic = -std::numeric_limits<double>::infinity();
  for (std::size_t k = 1; k <= k_cap; ++k) {
    KMeansResult r = k_means(bbv.vectors, k, rng);
    const double bic = k_means_bic(bbv.vectors, r);
    if (bic > best_bic) {
      best_bic = bic;
      best = std::move(r);
    }
  }

  SimPoints sp;
  sp.interval_length = interval_length;
  sp.n_intervals = bbv.n_intervals();
  std::vector<std::size_t> counts(best.k, 0);
  for (std::size_t a : best.assignment) ++counts[a];
  for (std::size_t c = 0; c < best.k; ++c) {
    if (counts[c] == 0) continue;
    // Representative: interval closest to the centroid.
    std::size_t rep = 0;
    double rep_d = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < bbv.vectors.size(); ++i) {
      if (best.assignment[i] != c) continue;
      const double d = sq_distance(bbv.vectors[i], best.centroids[c]);
      if (d < rep_d) {
        rep_d = d;
        rep = i;
      }
    }
    sp.points.push_back(SimPoint{
        rep, static_cast<double>(counts[c]) /
                 static_cast<double>(bbv.n_intervals())});
  }
  std::sort(sp.points.begin(), sp.points.end(),
            [](const SimPoint& a, const SimPoint& b) {
              return a.interval_index < b.interval_index;
            });
  return sp;
}

sim::Trace extract_intervals(const sim::Trace& trace,
                             const SimPoints& points) {
  DSML_REQUIRE(!points.points.empty(), "extract_intervals: no points");
  sim::Trace out;
  out.instrs.reserve(points.points.size() * points.interval_length);
  for (const SimPoint& p : points.points) {
    const std::size_t begin = p.interval_index * points.interval_length;
    DSML_REQUIRE(begin + points.interval_length <= trace.size(),
                 "extract_intervals: interval out of range");
    out.instrs.insert(out.instrs.end(),
                      trace.instrs.begin() + static_cast<std::ptrdiff_t>(begin),
                      trace.instrs.begin() +
                          static_cast<std::ptrdiff_t>(begin +
                                                      points.interval_length));
  }
  return out;
}

double weighted_cycle_estimate(const sim::ProcessorConfig& config,
                               const sim::Trace& trace,
                               const SimPoints& points) {
  DSML_REQUIRE(!points.points.empty(), "weighted_cycle_estimate: no points");
  double estimate = 0.0;
  for (const SimPoint& p : points.points) {
    const std::size_t begin = p.interval_index * points.interval_length;
    sim::OutOfOrderCore core(config);
    // Functional warmup (as in SimPoint practice): run the preceding
    // interval through the same core first, so caches, TLBs and predictors
    // are in a representative state — without it each interval pays
    // whole-program cold-start costs and the estimate biases high.
    if (p.interval_index > 0) {
      const std::size_t warm_begin = begin - points.interval_length;
      core.run(std::span<const sim::Instr>(
          trace.instrs.data() + warm_begin, points.interval_length));
    }
    const sim::SimResult r = core.run(std::span<const sim::Instr>(
        trace.instrs.data() + begin, points.interval_length));
    estimate += p.weight * static_cast<double>(r.cycles) *
                static_cast<double>(points.n_intervals);
  }
  return estimate;
}

}  // namespace dsml::workload
