#include "workload/profiles.hpp"

#include "common/error.hpp"

namespace dsml::workload {

namespace {

constexpr std::uint64_t kKB = 1024;
constexpr std::uint64_t kMB = 1024 * 1024;

// Working-set tiers are sized to straddle the Table-1 cache menus:
//   L1 menu 16/32/64 KB   → L1-scale tiers of 20–48 KB
//   L2 menu 256/1024 KB   → L2-scale tiers of 384–768 KB
//   L3 menu off / 8 MB    → L3-scale tiers of 1.5–3 MB
// plus a memory-resident tail no cache can hold. The tier fractions set how
// much each cache decision matters for the application, i.e. its
// design-space range (§4.1).

// applu: dense 5-point stencil solver. Overwhelmingly floating point, long
// unit-stride sweeps over blocked arrays, highly predictable loop branches,
// long dependence distances (software-pipelined inner loops). Compute
// throughput dominates — the paper's narrowest range (1.62x).
AppProfile make_applu() {
  AppProfile p;
  p.name = "applu";
  p.static_blocks = 96;
  p.code_bytes = 24 * kKB;
  p.mean_block_len = 12.0;
  p.mean_dep_distance = 14.0;
  p.code_skew = 1.2;
  p.seed = 1001;
  Phase sweep;
  sweep.mix = {0.18, 0.01, 0.28, 0.22, 0.20, 0.08, 0.03};
  sweep.mem.stride_fraction = 0.84;
  sweep.mem.stride_bytes = 8;
  sweep.mem.stream_count = 4;
  sweep.mem.stream_segment_bytes = 72 * kKB;
  sweep.mem.levels = {{0.82, 24 * kKB}, {0.155, 512 * kKB},
                      {0.02, 1536 * kKB}, {0.005, 6 * kMB}};
  sweep.branch = {0.90, 0.95, 64};
  sweep.weight = 0.7;
  sweep.hot_blocks = 12;
  Phase rhs;
  rhs.mix = {0.22, 0.01, 0.30, 0.16, 0.19, 0.09, 0.03};
  rhs.mem = sweep.mem;
  rhs.mem.stride_fraction = 0.72;
  rhs.mem.stream_segment_bytes = 80 * kKB;
  rhs.branch = {0.88, 0.93, 48};
  rhs.weight = 0.3;
  rhs.hot_blocks = 10;
  p.phases = {sweep, rhs};
  return p;
}

// equake: FE earthquake simulation — sparse matrix-vector products: FP
// streams plus indirect scattered reads a bit beyond L2 scale.
AppProfile make_equake() {
  AppProfile p;
  p.name = "equake";
  p.static_blocks = 128;
  p.code_bytes = 32 * kKB;
  p.mean_block_len = 9.0;
  p.mean_dep_distance = 9.0;
  p.code_skew = 1.4;
  p.seed = 1002;
  Phase smvp;
  smvp.mix = {0.22, 0.01, 0.27, 0.13, 0.24, 0.07, 0.06};
  smvp.mem.stride_fraction = 0.55;
  smvp.mem.stride_bytes = 8;
  smvp.mem.stream_count = 4;
  smvp.mem.stream_segment_bytes = 96 * kKB;
  smvp.mem.levels = {{0.57, 28 * kKB}, {0.25, 576 * kKB},
                     {0.15, 1536 * kKB}, {0.03, 6 * kMB}};
  smvp.branch = {0.82, 0.90, 40};
  smvp.weight = 0.6;
  smvp.hot_blocks = 14;
  Phase update;
  update.mix = {0.24, 0.02, 0.30, 0.10, 0.20, 0.10, 0.04};
  update.mem = smvp.mem;
  update.mem.stride_fraction = 0.65;
  update.branch = {0.85, 0.92, 56};
  update.weight = 0.4;
  update.hot_blocks = 12;
  p.phases = {smvp, update};
  return p;
}

// gcc: the compiler. Large code footprint (instruction-cache pressure from
// thousands of hot basic blocks), very branchy with poorly biased
// data-dependent branches, pointer-rich data. Sensitive to nearly every
// front-end and cache parameter (paper range 5.27x).
AppProfile make_gcc() {
  AppProfile p;
  p.name = "gcc";
  p.static_blocks = 8192;
  p.code_bytes = 1536 * kKB;
  p.mean_block_len = 5.0;
  p.mean_dep_distance = 5.0;
  p.code_skew = 2.4;
  p.seed = 1003;
  Phase parse;
  parse.mix = {0.43, 0.01, 0.01, 0.00, 0.25, 0.12, 0.18};
  parse.mem.stride_fraction = 0.18;
  parse.mem.stride_bytes = 4;
  parse.mem.stream_count = 2;
  parse.mem.stream_segment_bytes = 48 * kKB;
  parse.mem.levels = {{0.52, 28 * kKB}, {0.27, 576 * kKB},
                      {0.17, 1792 * kKB}, {0.04, 6 * kMB}};
  parse.branch = {0.45, 0.78, 8};
  parse.weight = 0.4;
  parse.hot_blocks = 2400;
  Phase optimize;
  optimize.mix = {0.46, 0.02, 0.01, 0.00, 0.26, 0.09, 0.16};
  optimize.mem = parse.mem;
  optimize.mem.stride_fraction = 0.12;
  optimize.branch = {0.50, 0.75, 10};
  optimize.weight = 0.35;
  optimize.hot_blocks = 2800;
  Phase emit;
  emit.mix = {0.42, 0.01, 0.00, 0.00, 0.24, 0.16, 0.17};
  emit.mem = parse.mem;
  emit.mem.stride_fraction = 0.28;
  emit.branch = {0.55, 0.80, 12};
  emit.weight = 0.25;
  emit.hot_blocks = 1800;
  p.phases = {parse, optimize, emit};
  return p;
}

// mesa: software 3-D rendering. FP with good locality in the rasteriser,
// moderately predictable branches — mid-pack sensitivity (2.22x).
AppProfile make_mesa() {
  AppProfile p;
  p.name = "mesa";
  p.static_blocks = 2048;
  p.code_bytes = 256 * kKB;
  p.mean_block_len = 7.0;
  p.mean_dep_distance = 7.0;
  p.code_skew = 1.9;
  p.seed = 1004;
  Phase transform;
  transform.mix = {0.26, 0.02, 0.24, 0.14, 0.20, 0.10, 0.04};
  transform.mem.stride_fraction = 0.55;
  transform.mem.stride_bytes = 8;
  transform.mem.stream_count = 4;
  transform.mem.stream_segment_bytes = 80 * kKB;
  transform.mem.levels = {{0.58, 28 * kKB}, {0.26, 640 * kKB},
                          {0.12, 1536 * kKB}, {0.04, 5 * kMB}};
  transform.branch = {0.75, 0.88, 24};
  transform.weight = 0.45;
  transform.hot_blocks = 700;
  Phase raster;
  raster.mix = {0.32, 0.02, 0.18, 0.08, 0.22, 0.12, 0.06};
  raster.mem = transform.mem;
  raster.mem.stride_fraction = 0.45;
  raster.mem.stride_bytes = 4;
  raster.branch = {0.65, 0.82, 16};
  raster.weight = 0.55;
  raster.hot_blocks = 900;
  p.phases = {transform, raster};
  return p;
}

// mcf: network-simplex optimiser — the canonical pointer chaser. Small code,
// dependent loads over working sets at every scale up to a memory-resident
// tail, poorly biased data-dependent branches whose outcomes depend on the
// loaded values. Memory behaviour dominates; the paper's widest range
// (6.38x) because L2/L3 choices and the branch predictor interact with the
// load chains.
AppProfile make_mcf() {
  AppProfile p;
  p.name = "mcf";
  p.static_blocks = 64;
  p.code_bytes = 16 * kKB;
  p.mean_block_len = 5.0;
  p.mean_dep_distance = 3.0;
  p.code_skew = 1.5;
  p.seed = 1005;
  Phase refresh;
  refresh.mix = {0.38, 0.01, 0.00, 0.00, 0.33, 0.08, 0.20};
  refresh.mem.stride_fraction = 0.06;
  refresh.mem.stride_bytes = 4;
  refresh.mem.stream_count = 2;
  refresh.mem.stream_segment_bytes = 32 * kKB;
  refresh.mem.levels = {{0.34, 24 * kKB}, {0.21, 640 * kKB},
                        {0.42, 2 * kMB}, {0.03, 12 * kMB}};
  refresh.branch = {0.30, 0.66, 6};
  refresh.weight = 0.65;
  refresh.hot_blocks = 18;
  Phase price;
  price.mix = {0.40, 0.02, 0.00, 0.00, 0.30, 0.09, 0.19};
  price.mem = refresh.mem;
  price.mem.levels = {{0.32, 24 * kKB}, {0.23, 768 * kKB},
                      {0.42, 2 * kMB}, {0.03, 12 * kMB}};
  price.branch = {0.35, 0.68, 8};
  price.weight = 0.35;
  price.hot_blocks = 14;
  p.phases = {refresh, price};
  return p;
}

}  // namespace

std::vector<AppProfile> spec_profiles() {
  return {make_applu(), make_equake(), make_gcc(), make_mesa(), make_mcf()};
}

AppProfile spec_profile(const std::string& name) {
  for (auto& p : spec_profiles()) {
    if (p.name == name) return p;
  }
  throw InvalidArgument("spec_profile: unknown application '" + name + "'");
}

std::vector<std::string> spec_profile_names() {
  return {"applu", "equake", "gcc", "mesa", "mcf"};
}

}  // namespace dsml::workload
