#include "data/column.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

namespace dsml::data {

const char* to_string(ColumnKind kind) noexcept {
  switch (kind) {
    case ColumnKind::kNumeric: return "numeric";
    case ColumnKind::kFlag: return "flag";
    case ColumnKind::kCategorical: return "categorical";
  }
  return "?";
}

Column Column::numeric(std::string name, std::vector<double> values) {
  Column c;
  c.name_ = std::move(name);
  c.kind_ = ColumnKind::kNumeric;
  c.num_ = std::move(values);
  return c;
}

Column Column::flag(std::string name, std::vector<bool> values) {
  Column c;
  c.name_ = std::move(name);
  c.kind_ = ColumnKind::kFlag;
  c.levels_ = {"no", "yes"};
  c.codes_.reserve(values.size());
  for (bool v : values) c.codes_.push_back(v ? 1u : 0u);
  return c;
}

Column Column::categorical(std::string name, std::vector<std::string> values,
                           bool ordered) {
  // Levels in order of first appearance.
  std::vector<std::string> levels;
  std::unordered_map<std::string, std::uint32_t> index;
  for (const auto& v : values) {
    if (index.emplace(v, static_cast<std::uint32_t>(levels.size())).second) {
      levels.push_back(v);
    }
  }
  return categorical_with_levels(std::move(name), std::move(levels),
                                 std::move(values), ordered);
}

Column Column::categorical_with_levels(std::string name,
                                       std::vector<std::string> levels,
                                       std::vector<std::string> values,
                                       bool ordered) {
  Column c;
  c.name_ = std::move(name);
  c.kind_ = ColumnKind::kCategorical;
  c.ordered_ = ordered;
  c.levels_ = std::move(levels);
  std::unordered_map<std::string, std::uint32_t> index;
  for (std::size_t i = 0; i < c.levels_.size(); ++i) {
    index.emplace(c.levels_[i], static_cast<std::uint32_t>(i));
  }
  c.codes_.reserve(values.size());
  for (const auto& v : values) {
    auto it = index.find(v);
    DSML_REQUIRE(it != index.end(),
                 "Column: value '" + v + "' not among declared levels of '" +
                     c.name_ + "'");
    c.codes_.push_back(it->second);
  }
  return c;
}

std::size_t Column::size() const noexcept {
  return kind_ == ColumnKind::kNumeric ? num_.size() : codes_.size();
}

double Column::numeric_at(std::size_t i) const {
  DSML_REQUIRE(i < size(), "Column::numeric_at: row out of range");
  if (kind_ == ColumnKind::kNumeric) return num_[i];
  return static_cast<double>(codes_[i]);
}

std::size_t Column::code_at(std::size_t i) const {
  DSML_REQUIRE(kind_ != ColumnKind::kNumeric,
               "Column::code_at: numeric column has no codes");
  DSML_REQUIRE(i < codes_.size(), "Column::code_at: row out of range");
  return codes_[i];
}

std::string Column::label_at(std::size_t i) const {
  DSML_REQUIRE(i < size(), "Column::label_at: row out of range");
  if (kind_ == ColumnKind::kNumeric) {
    std::ostringstream os;
    os << num_[i];
    return os.str();
  }
  return levels_[codes_[i]];
}

bool Column::is_constant() const {
  if (size() <= 1) return true;
  if (kind_ == ColumnKind::kNumeric) {
    return std::all_of(num_.begin(), num_.end(),
                       [&](double v) { return v == num_.front(); });
  }
  return std::all_of(codes_.begin(), codes_.end(),
                     [&](std::uint32_t v) { return v == codes_.front(); });
}

Column Column::select(std::span<const std::size_t> rows) const {
  Column out;
  out.name_ = name_;
  out.kind_ = kind_;
  out.ordered_ = ordered_;
  out.levels_ = levels_;
  if (kind_ == ColumnKind::kNumeric) {
    out.num_.reserve(rows.size());
    for (std::size_t r : rows) {
      DSML_REQUIRE(r < num_.size(), "Column::select: row out of range");
      out.num_.push_back(num_[r]);
    }
  } else {
    out.codes_.reserve(rows.size());
    for (std::size_t r : rows) {
      DSML_REQUIRE(r < codes_.size(), "Column::select: row out of range");
      out.codes_.push_back(codes_[r]);
    }
  }
  return out;
}

void Column::append(const Column& other) {
  DSML_REQUIRE(name_ == other.name_ && kind_ == other.kind_,
               "Column::append: incompatible columns");
  DSML_REQUIRE(levels_ == other.levels_,
               "Column::append: level dictionaries differ");
  num_.insert(num_.end(), other.num_.begin(), other.num_.end());
  codes_.insert(codes_.end(), other.codes_.begin(), other.codes_.end());
}

}  // namespace dsml::data
