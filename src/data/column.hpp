// Typed data columns.
//
// The paper's inputs mix numeric fields (cache sizes, clock speed), flags
// (SMT yes/no, issue-wrong), and categorical fields (branch predictor kind,
// processor model). Clementine treats these differently per model family —
// linear regression needs numerics (ordinal-mappable categoricals are mapped,
// others omitted) while neural networks accept everything via automatic
// transformation. Column captures the type so the Encoder can reproduce
// those behaviours.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace dsml::data {

enum class ColumnKind : std::uint8_t { kNumeric, kFlag, kCategorical };

const char* to_string(ColumnKind kind) noexcept;

class Column {
 public:
  /// Numeric column from raw values.
  static Column numeric(std::string name, std::vector<double> values);

  /// Boolean flag column.
  static Column flag(std::string name, std::vector<bool> values);

  /// Categorical column from string labels. `ordered` marks categoricals
  /// whose level order is meaningful (e.g. predictor sophistication), which
  /// makes them eligible for ordinal mapping in linear models.
  static Column categorical(std::string name, std::vector<std::string> values,
                            bool ordered = false);

  /// Categorical column with an explicit level order; every value must be
  /// one of the given levels.
  static Column categorical_with_levels(std::string name,
                                        std::vector<std::string> levels,
                                        std::vector<std::string> values,
                                        bool ordered = false);

  const std::string& name() const noexcept { return name_; }
  ColumnKind kind() const noexcept { return kind_; }
  bool ordered() const noexcept { return ordered_; }
  std::size_t size() const noexcept;

  /// Numeric view. Numeric columns return their value; flags return 0/1;
  /// categorical columns return the level code (ordinal position).
  double numeric_at(std::size_t i) const;

  /// Level code of a categorical/flag entry.
  std::size_t code_at(std::size_t i) const;

  /// String label of entry i (formats numerics).
  std::string label_at(std::size_t i) const;

  /// Categorical levels (empty for numeric columns).
  const std::vector<std::string>& levels() const noexcept { return levels_; }
  std::size_t level_count() const noexcept { return levels_.size(); }

  /// True if every entry holds the same value.
  bool is_constant() const;

  /// Subset of rows, in the given order.
  Column select(std::span<const std::size_t> rows) const;

  /// Concatenate rows of another column with identical name/kind/levels.
  void append(const Column& other);

 private:
  Column() = default;

  std::string name_;
  ColumnKind kind_ = ColumnKind::kNumeric;
  bool ordered_ = false;
  std::vector<double> num_;         // numeric payload
  std::vector<std::uint32_t> codes_; // flag/categorical payload
  std::vector<std::string> levels_;  // categorical level dictionary
};

}  // namespace dsml::data
