// Dataset → design-matrix encoding, reproducing Clementine's documented data
// preparation (paper §3.4):
//
//  * every input is min-max scaled to [0,1] using ranges observed on the
//    training data;
//  * constant columns are dropped ("Clementine omits some predictor
//    variables because these input parameters do not have any variation");
//  * linear-regression mode maps ordered categoricals to their ordinal code
//    and omits unordered categoricals ("for some other input parameters this
//    kind of transformation is not possible, hence these are omitted");
//  * neural-network mode one-hot encodes unordered categoricals (automatic
//    transformation of any input type).
//
// The Encoder is fitted on training data and applied unchanged to test data
// so no information leaks across the train/test boundary.
#pragma once

#include <string>
#include <vector>

#include "common/serial.hpp"
#include "data/dataset.hpp"
#include "linalg/matrix.hpp"

namespace dsml::data {

enum class EncodingMode {
  kLinearRegression,  ///< ordinal mapping; unordered categoricals omitted
  kNeuralNetwork,     ///< one-hot unordered categoricals
};

struct EncoderOptions {
  EncodingMode mode = EncodingMode::kNeuralNetwork;
  bool scale_inputs = true;    ///< min-max scale features to [0,1]
  bool scale_target = false;   ///< min-max scale the target (NNs want this)
  bool drop_constant = true;   ///< drop zero-variation columns
  bool add_intercept = false;  ///< prepend an all-ones column (LR wants this)
};

/// One encoded output feature and where it came from.
struct EncodedFeature {
  std::string name;          ///< e.g. "l2_size" or "branch_pred=bimodal"
  std::size_t source_column; ///< index into the source Dataset's features
  int one_hot_level;         ///< level index for one-hot features, -1 otherwise
  double scale_min = 0.0;    ///< training-data min (pre-scaling)
  double scale_max = 1.0;    ///< training-data max
};

class Encoder {
 public:
  Encoder() = default;

  /// Learn the feature mapping and scaling ranges from `train`.
  void fit(const Dataset& train, const EncoderOptions& options);

  bool fitted() const noexcept { return fitted_; }

  /// Encode a dataset with the fitted mapping. The dataset must have the
  /// same schema as the training data. Unseen numeric values are scaled with
  /// the training range (clamping is NOT applied; extrapolation is the
  /// model's problem, as in Clementine).
  linalg::Matrix encode(const Dataset& dataset) const;

  /// Encode the target column (identity unless scale_target).
  std::vector<double> encode_target(const Dataset& dataset) const;

  /// Map a scaled prediction back to target units.
  double decode_target(double value) const;

  const std::vector<EncodedFeature>& features() const noexcept {
    return features_;
  }
  std::vector<std::string> feature_names() const;
  std::size_t n_outputs() const noexcept {
    return features_.size() + (options_.add_intercept ? 1 : 0);
  }
  const EncoderOptions& options() const noexcept { return options_; }

  /// Names of source columns that were dropped, with reasons (reported so
  /// experiments can log Clementine-style predictor elimination).
  const std::vector<std::string>& dropped() const noexcept { return dropped_; }

  /// Persist the fitted encoder / restore it (model serialization).
  void save(serial::Writer& writer) const;
  static Encoder load(serial::Reader& reader);

 private:
  bool fitted_ = false;
  EncoderOptions options_;
  std::vector<EncodedFeature> features_;
  std::vector<std::string> dropped_;
  double target_min_ = 0.0;
  double target_max_ = 1.0;
};

}  // namespace dsml::data
