// Row-sampling utilities for the experiment protocols in the paper:
// random 1–5% training samples (sampled DSE), random 50/50 halves
// (Clementine's internal train/simulate split), and five-repeat 50% subsets
// for the cross-validation error estimate of §3.3.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace dsml::data {

/// Indices of a random `fraction` of [0, n) (at least `min_rows`), without
/// replacement, sorted ascending.
std::vector<std::size_t> sample_fraction(std::size_t n, double fraction,
                                         Rng& rng, std::size_t min_rows = 2);

/// Complement of `selected` within [0, n); `selected` must be sorted.
std::vector<std::size_t> complement(std::size_t n,
                                    const std::vector<std::size_t>& selected);

/// Random split of [0, n) into two halves (first gets the extra element).
std::pair<std::vector<std::size_t>, std::vector<std::size_t>> split_half(
    std::size_t n, Rng& rng);

/// K-fold partition of [0, n): returns (train, validation) index pairs.
std::vector<std::pair<std::vector<std::size_t>, std::vector<std::size_t>>>
k_fold(std::size_t n, std::size_t k, Rng& rng);

}  // namespace dsml::data
