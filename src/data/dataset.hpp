// A Dataset is a collection of typed feature columns plus one numeric target
// (cycle count for the simulation experiments, SPECint2000-rate for the
// chronological experiments).
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "data/column.hpp"

namespace dsml::data {

class Dataset {
 public:
  Dataset() = default;

  /// Adds a feature column; all columns (and the target) must agree on row
  /// count once more than one is present.
  void add_feature(Column column);

  /// Sets the prediction target.
  void set_target(std::string name, std::vector<double> values);

  std::size_t n_rows() const noexcept;
  std::size_t n_features() const noexcept { return features_.size(); }
  bool has_target() const noexcept { return target_.has_value(); }

  const Column& feature(std::size_t i) const;
  const Column& feature(const std::string& name) const;
  std::optional<std::size_t> find_feature(const std::string& name) const;

  const std::string& target_name() const;
  std::span<const double> target() const;
  double target_at(std::size_t row) const;

  /// Row subset (keeps all columns and the target).
  Dataset select_rows(std::span<const std::size_t> rows) const;

  /// Row-wise concatenation; schemas must match.
  void append(const Dataset& other);

  /// Flat CSV export: feature labels plus target column.
  csv::Table to_csv() const;

 private:
  void check_rows(std::size_t n) const;

  std::vector<Column> features_;
  std::optional<std::string> target_name_;
  std::optional<std::vector<double>> target_;
};

}  // namespace dsml::data
