#include "data/split.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dsml::data {

std::vector<std::size_t> sample_fraction(std::size_t n, double fraction,
                                         Rng& rng, std::size_t min_rows) {
  DSML_REQUIRE(fraction > 0.0 && fraction <= 1.0,
               "sample_fraction: fraction outside (0,1]");
  DSML_REQUIRE(n >= min_rows, "sample_fraction: dataset smaller than min_rows");
  auto k = static_cast<std::size_t>(
      std::llround(fraction * static_cast<double>(n)));
  k = std::clamp<std::size_t>(k, min_rows, n);
  auto idx = rng.sample_without_replacement(n, k);
  std::sort(idx.begin(), idx.end());
  return idx;
}

std::vector<std::size_t> complement(std::size_t n,
                                    const std::vector<std::size_t>& selected) {
  std::vector<std::size_t> out;
  out.reserve(n - selected.size());
  std::size_t j = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (j < selected.size() && selected[j] == i) {
      ++j;
    } else {
      out.push_back(i);
    }
  }
  return out;
}

std::pair<std::vector<std::size_t>, std::vector<std::size_t>> split_half(
    std::size_t n, Rng& rng) {
  DSML_REQUIRE(n >= 2, "split_half: need at least two rows");
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  rng.shuffle(idx);
  const std::size_t half = (n + 1) / 2;
  std::vector<std::size_t> first(idx.begin(), idx.begin() + half);
  std::vector<std::size_t> second(idx.begin() + half, idx.end());
  std::sort(first.begin(), first.end());
  std::sort(second.begin(), second.end());
  return {std::move(first), std::move(second)};
}

std::vector<std::pair<std::vector<std::size_t>, std::vector<std::size_t>>>
k_fold(std::size_t n, std::size_t k, Rng& rng) {
  DSML_REQUIRE(k >= 2 && k <= n, "k_fold: need 2 <= k <= n");
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  rng.shuffle(idx);
  std::vector<std::pair<std::vector<std::size_t>, std::vector<std::size_t>>>
      folds;
  folds.reserve(k);
  for (std::size_t f = 0; f < k; ++f) {
    std::vector<std::size_t> train;
    std::vector<std::size_t> val;
    for (std::size_t i = 0; i < n; ++i) {
      if (i % k == f) {
        val.push_back(idx[i]);
      } else {
        train.push_back(idx[i]);
      }
    }
    std::sort(train.begin(), train.end());
    std::sort(val.begin(), val.end());
    folds.emplace_back(std::move(train), std::move(val));
  }
  return folds;
}

}  // namespace dsml::data
