#include "data/dataset.hpp"

#include <sstream>

namespace dsml::data {

void Dataset::add_feature(Column column) {
  if (!features_.empty() || target_.has_value()) {
    check_rows(column.size());
  }
  DSML_REQUIRE(!find_feature(column.name()).has_value(),
               "Dataset: duplicate feature '" + column.name() + "'");
  features_.push_back(std::move(column));
}

void Dataset::set_target(std::string name, std::vector<double> values) {
  if (!features_.empty()) check_rows(values.size());
  target_name_ = std::move(name);
  target_ = std::move(values);
}

std::size_t Dataset::n_rows() const noexcept {
  if (!features_.empty()) return features_.front().size();
  if (target_) return target_->size();
  return 0;
}

const Column& Dataset::feature(std::size_t i) const {
  DSML_REQUIRE(i < features_.size(), "Dataset::feature: index out of range");
  return features_[i];
}

const Column& Dataset::feature(const std::string& name) const {
  auto idx = find_feature(name);
  DSML_REQUIRE(idx.has_value(), "Dataset: no feature named '" + name + "'");
  return features_[*idx];
}

std::optional<std::size_t> Dataset::find_feature(
    const std::string& name) const {
  for (std::size_t i = 0; i < features_.size(); ++i) {
    if (features_[i].name() == name) return i;
  }
  return std::nullopt;
}

const std::string& Dataset::target_name() const {
  DSML_REQUIRE(target_name_.has_value(), "Dataset: no target set");
  return *target_name_;
}

std::span<const double> Dataset::target() const {
  DSML_REQUIRE(target_.has_value(), "Dataset: no target set");
  return *target_;
}

double Dataset::target_at(std::size_t row) const {
  auto t = target();
  DSML_REQUIRE(row < t.size(), "Dataset::target_at: row out of range");
  return t[row];
}

Dataset Dataset::select_rows(std::span<const std::size_t> rows) const {
  Dataset out;
  for (const auto& col : features_) out.features_.push_back(col.select(rows));
  if (target_) {
    std::vector<double> t;
    t.reserve(rows.size());
    for (std::size_t r : rows) {
      DSML_REQUIRE(r < target_->size(), "select_rows: row out of range");
      t.push_back((*target_)[r]);
    }
    out.target_name_ = target_name_;
    out.target_ = std::move(t);
  }
  return out;
}

void Dataset::append(const Dataset& other) {
  DSML_REQUIRE(features_.size() == other.features_.size(),
               "Dataset::append: schema mismatch");
  DSML_REQUIRE(target_.has_value() == other.target_.has_value(),
               "Dataset::append: target mismatch");
  for (std::size_t i = 0; i < features_.size(); ++i) {
    features_[i].append(other.features_[i]);
  }
  if (target_) {
    target_->insert(target_->end(), other.target_->begin(),
                    other.target_->end());
  }
}

csv::Table Dataset::to_csv() const {
  csv::Table table;
  for (const auto& col : features_) table.header.push_back(col.name());
  if (target_) table.header.push_back(*target_name_);
  const std::size_t n = n_rows();
  table.rows.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    std::vector<std::string> row;
    row.reserve(table.header.size());
    for (const auto& col : features_) row.push_back(col.label_at(r));
    if (target_) {
      std::ostringstream os;
      os << (*target_)[r];
      row.push_back(os.str());
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

void Dataset::check_rows(std::size_t n) const {
  DSML_REQUIRE(n == n_rows(),
               "Dataset: row count mismatch (have " +
                   std::to_string(n_rows()) + ", got " + std::to_string(n) +
                   ")");
}

}  // namespace dsml::data
