#include "data/encoder.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dsml::data {

namespace {

// Scale x from [lo, hi] to [0, 1]; degenerate ranges map to 0.5 so a value
// equal to the constant training value is "in the middle".
double scale01(double x, double lo, double hi) {
  if (hi <= lo) return 0.5;
  return (x - lo) / (hi - lo);
}

}  // namespace

void Encoder::fit(const Dataset& train, const EncoderOptions& options) {
  DSML_REQUIRE(train.n_rows() > 0, "Encoder::fit: empty dataset");
  options_ = options;
  features_.clear();
  dropped_.clear();

  for (std::size_t c = 0; c < train.n_features(); ++c) {
    const Column& col = train.feature(c);
    if (options.drop_constant && col.is_constant()) {
      dropped_.push_back(col.name() + " (no variation)");
      continue;
    }
    const bool numeric_like =
        col.kind() == ColumnKind::kNumeric ||
        col.kind() == ColumnKind::kFlag ||
        (col.kind() == ColumnKind::kCategorical && col.ordered());
    if (numeric_like) {
      EncodedFeature f;
      f.name = col.name();
      f.source_column = c;
      f.one_hot_level = -1;
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < col.size(); ++r) {
        lo = std::min(lo, col.numeric_at(r));
        hi = std::max(hi, col.numeric_at(r));
      }
      f.scale_min = lo;
      f.scale_max = hi;
      features_.push_back(std::move(f));
      continue;
    }
    // Unordered categorical.
    if (options.mode == EncodingMode::kLinearRegression) {
      dropped_.push_back(col.name() + " (categorical, not numeric-mappable)");
      continue;
    }
    // One-hot: one output per level observed in training.
    for (std::size_t level = 0; level < col.level_count(); ++level) {
      EncodedFeature f;
      f.name = col.name() + "=" + col.levels()[level];
      f.source_column = c;
      f.one_hot_level = static_cast<int>(level);
      f.scale_min = 0.0;
      f.scale_max = 1.0;
      features_.push_back(std::move(f));
    }
  }
  DSML_REQUIRE(!features_.empty(),
               "Encoder::fit: every feature was dropped; nothing to model");

  if (train.has_target()) {
    const auto t = train.target();
    target_min_ = *std::min_element(t.begin(), t.end());
    target_max_ = *std::max_element(t.begin(), t.end());
  }
  fitted_ = true;
}

linalg::Matrix Encoder::encode(const Dataset& dataset) const {
  DSML_REQUIRE(fitted_, "Encoder::encode: not fitted");
  const std::size_t n = dataset.n_rows();
  const std::size_t offset = options_.add_intercept ? 1 : 0;
  linalg::Matrix x(n, features_.size() + offset);
  if (options_.add_intercept) {
    for (std::size_t r = 0; r < n; ++r) x(r, 0) = 1.0;
  }
  for (std::size_t j = 0; j < features_.size(); ++j) {
    const EncodedFeature& f = features_[j];
    DSML_REQUIRE(f.source_column < dataset.n_features(),
                 "Encoder::encode: dataset schema mismatch");
    const Column& col = dataset.feature(f.source_column);
    for (std::size_t r = 0; r < n; ++r) {
      double value;
      if (f.one_hot_level >= 0) {
        value = (col.code_at(r) == static_cast<std::size_t>(f.one_hot_level))
                    ? 1.0
                    : 0.0;
      } else {
        value = col.numeric_at(r);
        if (options_.scale_inputs) {
          value = scale01(value, f.scale_min, f.scale_max);
        }
      }
      x(r, j + offset) = value;
    }
  }
  return x;
}

std::vector<double> Encoder::encode_target(const Dataset& dataset) const {
  DSML_REQUIRE(fitted_, "Encoder::encode_target: not fitted");
  const auto t = dataset.target();
  std::vector<double> out(t.begin(), t.end());
  if (options_.scale_target) {
    for (double& v : out) v = scale01(v, target_min_, target_max_);
  }
  return out;
}

double Encoder::decode_target(double value) const {
  DSML_REQUIRE(fitted_, "Encoder::decode_target: not fitted");
  if (!options_.scale_target) return value;
  if (target_max_ <= target_min_) return target_min_;
  return target_min_ + value * (target_max_ - target_min_);
}

void Encoder::save(serial::Writer& writer) const {
  writer.tag("encoder");
  writer.boolean(fitted_);
  writer.u64(static_cast<std::uint64_t>(options_.mode));
  writer.boolean(options_.scale_inputs);
  writer.boolean(options_.scale_target);
  writer.boolean(options_.drop_constant);
  writer.boolean(options_.add_intercept);
  writer.f64(target_min_);
  writer.f64(target_max_);
  writer.u64(features_.size());
  for (const auto& f : features_) {
    writer.str(f.name);
    writer.u64(f.source_column);
    writer.i64(f.one_hot_level);
    writer.f64(f.scale_min);
    writer.f64(f.scale_max);
  }
  writer.u64(dropped_.size());
  for (const auto& d : dropped_) writer.str(d);
}

Encoder Encoder::load(serial::Reader& reader) {
  reader.expect_tag("encoder");
  Encoder enc;
  enc.fitted_ = reader.boolean();
  enc.options_.mode = static_cast<EncodingMode>(reader.u64());
  enc.options_.scale_inputs = reader.boolean();
  enc.options_.scale_target = reader.boolean();
  enc.options_.drop_constant = reader.boolean();
  enc.options_.add_intercept = reader.boolean();
  enc.target_min_ = reader.f64();
  enc.target_max_ = reader.f64();
  const std::uint64_t n_features = reader.u64();
  enc.features_.reserve(n_features);
  for (std::uint64_t i = 0; i < n_features; ++i) {
    EncodedFeature f;
    f.name = reader.str();
    f.source_column = reader.u64();
    f.one_hot_level = static_cast<int>(reader.i64());
    f.scale_min = reader.f64();
    f.scale_max = reader.f64();
    enc.features_.push_back(std::move(f));
  }
  const std::uint64_t n_dropped = reader.u64();
  for (std::uint64_t i = 0; i < n_dropped; ++i) {
    enc.dropped_.push_back(reader.str());
  }
  return enc;
}

std::vector<std::string> Encoder::feature_names() const {
  std::vector<std::string> names;
  names.reserve(n_outputs());
  if (options_.add_intercept) names.push_back("(intercept)");
  for (const auto& f : features_) names.push_back(f.name);
  return names;
}

}  // namespace dsml::data
