#include "sim/core.hpp"

#include <algorithm>
#include <vector>

namespace dsml::sim {

namespace {

/// Tracks "how many events happened in cycle c" for bandwidth limits
/// (dispatch/issue/commit width) without a full calendar: a ring keyed by
/// cycle number with lazy reset.
class BandwidthLimiter {
 public:
  explicit BandwidthLimiter(std::uint32_t per_cycle)
      : per_cycle_(per_cycle), cycle_of_(kSlots, ~0ULL), count_(kSlots, 0) {}

  /// Earliest cycle >= `earliest` with a free slot; claims the slot.
  std::uint64_t claim(std::uint64_t earliest) {
    std::uint64_t c = earliest;
    for (;;) {
      auto& cyc = cycle_of_[c & (kSlots - 1)];
      auto& cnt = count_[c & (kSlots - 1)];
      if (cyc != c) {
        cyc = c;
        cnt = 0;
      }
      if (cnt < per_cycle_) {
        ++cnt;
        return c;
      }
      ++c;
    }
  }

 private:
  static constexpr std::size_t kSlots = 1024;
  std::uint32_t per_cycle_;
  std::vector<std::uint64_t> cycle_of_;
  std::vector<std::uint32_t> count_;
};

/// A pool of identical functional units; each unit is pipelined (initiation
/// interval 1) so contention comes from the unit count and issue bursts.
class UnitPool {
 public:
  explicit UnitPool(int count) : free_at_(static_cast<std::size_t>(count), 0) {}

  /// Earliest cycle >= `earliest` a unit can accept this op; books the unit.
  std::uint64_t acquire(std::uint64_t earliest) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < free_at_.size(); ++i) {
      if (free_at_[i] < free_at_[best]) best = i;
    }
    const std::uint64_t start = std::max(earliest, free_at_[best]);
    free_at_[best] = start + 1;  // pipelined: busy for one issue slot
    return start;
  }

 private:
  std::vector<std::uint64_t> free_at_;
};

}  // namespace

OutOfOrderCore::OutOfOrderCore(const ProcessorConfig& config,
                               const LatencyModel& latency)
    : config_(config),
      lat_(latency),
      l1d_(static_cast<std::uint64_t>(config.l1d_size_kb) * 1024,
           static_cast<std::uint32_t>(config.l1d_line_b),
           static_cast<std::uint32_t>(config.l1d_assoc)),
      l1i_(static_cast<std::uint64_t>(config.l1i_size_kb) * 1024,
           static_cast<std::uint32_t>(config.l1i_line_b),
           static_cast<std::uint32_t>(config.l1i_assoc)),
      l2_(static_cast<std::uint64_t>(config.l2_size_kb) * 1024,
          static_cast<std::uint32_t>(config.l2_line_b),
          static_cast<std::uint32_t>(config.l2_assoc)),
      l3_(config.has_l3()
              ? static_cast<std::uint64_t>(config.l3_size_mb) * 1024 * 1024
              : 1024 * 1024,  // placeholder geometry; unused when absent
          config.has_l3() ? static_cast<std::uint32_t>(config.l3_line_b) : 256,
          config.has_l3() ? static_cast<std::uint32_t>(config.l3_assoc) : 8),
      itlb_(static_cast<std::uint64_t>(config.itlb_size_kb)),
      dtlb_(static_cast<std::uint64_t>(config.dtlb_size_kb)),
      predictor_(make_branch_predictor(config.branch_predictor)) {
  config.validate();
}

int OutOfOrderCore::data_access_latency(std::uint64_t addr) {
  int latency = config_.l1d_size_kb >= 64 ? lat_.l1d_hit_large : lat_.l1d_hit;
  if (!dtlb_.access(addr)) latency += lat_.tlb_miss;
  if (l1d_.access(addr)) return latency;
  latency += config_.l2_size_kb >= 1024 ? lat_.l2_hit_large : lat_.l2_hit;
  if (l2_.access(addr)) return latency;
  if (config_.has_l3()) {
    latency += lat_.l3_hit;
    if (l3_.access(addr)) return latency;
  }
  return latency + lat_.memory;
}

int OutOfOrderCore::fetch_access_latency(std::uint64_t pc) {
  int latency = 0;
  if (!itlb_.access(pc)) latency += lat_.tlb_miss;
  if (l1i_.access(pc)) return latency;
  latency += config_.l2_size_kb >= 1024 ? lat_.l2_hit_large : lat_.l2_hit;
  if (l2_.access(pc)) return latency;
  if (config_.has_l3()) {
    latency += lat_.l3_hit;
    if (l3_.access(pc)) return latency;
  }
  return latency + lat_.memory;
}

SimResult OutOfOrderCore::run(std::span<const Instr> trace) {
  DSML_REQUIRE(!trace.empty(), "OutOfOrderCore::run: empty trace");
  const std::size_t n = trace.size();
  const auto width = static_cast<std::uint32_t>(config_.width);

  // Completion & commit time rings. The window is bounded by the RUU, so a
  // ring a bit larger than the largest RUU suffices; older producers have
  // long completed.
  constexpr std::size_t kRing = 512;
  static_assert((kRing & (kRing - 1)) == 0);
  std::vector<std::uint64_t> complete_ring(kRing, 0);
  std::vector<std::uint64_t> commit_ring(kRing, 0);
  // Commit cycles of memory ops (LSQ occupancy tracking).
  std::vector<std::uint64_t> mem_commit_ring(kRing, 0);
  std::size_t mem_op_count = 0;

  BandwidthLimiter dispatch_bw(width);
  BandwidthLimiter issue_bw(width);
  BandwidthLimiter commit_bw(width);

  UnitPool ialu(config_.fu.ialu);
  UnitPool imult(config_.fu.imult);
  UnitPool memport(config_.fu.memport);
  UnitPool fpalu(config_.fu.fpalu);
  UnitPool fpmult(config_.fu.fpmult);

  const auto ruu = static_cast<std::size_t>(config_.ruu_size);
  const auto lsq = static_cast<std::size_t>(config_.lsq_size);

  std::uint64_t fetch_ready = 1;  // cycle the next fetch group can start
  std::uint64_t last_fetch_line = ~0ULL;
  std::uint32_t fetched_in_group = 0;
  std::uint64_t prev_commit = 0;

  SimStats stats;

  for (std::size_t i = 0; i < n; ++i) {
    const Instr& ins = trace[i];

    // ---------------- fetch ----------------
    // A new I$ line costs a cache lookup; within a line fetch is free.
    const std::uint64_t line =
        ins.pc / static_cast<std::uint64_t>(config_.l1i_line_b);
    if (line != last_fetch_line) {
      fetch_ready += static_cast<std::uint64_t>(fetch_access_latency(ins.pc));
      last_fetch_line = line;
      fetched_in_group = 0;
    }
    if (++fetched_in_group > width) {
      ++fetch_ready;  // fetch bandwidth exhausted; next group next cycle
      fetched_in_group = 1;
    }
    const std::uint64_t fetch_time = fetch_ready;

    // ---------------- dispatch ----------------
    std::uint64_t window_free = 0;
    if (i >= ruu) window_free = commit_ring[(i - ruu) & (kRing - 1)];
    const bool is_mem = ins.op == OpClass::kLoad || ins.op == OpClass::kStore;
    if (is_mem && mem_op_count >= lsq) {
      window_free = std::max(
          window_free, mem_commit_ring[(mem_op_count - lsq) & (kRing - 1)]);
    }
    const std::uint64_t dispatch_time = dispatch_bw.claim(std::max(
        fetch_time + static_cast<std::uint64_t>(lat_.decode_pipeline),
        window_free));

    // ---------------- operand readiness ----------------
    std::uint64_t ready = dispatch_time + 1;
    if (ins.dep1 != 0 && ins.dep1 <= i && ins.dep1 < kRing) {
      ready = std::max(ready, complete_ring[(i - ins.dep1) & (kRing - 1)]);
    }
    if (ins.dep2 != 0 && ins.dep2 <= i && ins.dep2 < kRing) {
      ready = std::max(ready, complete_ring[(i - ins.dep2) & (kRing - 1)]);
    }

    // ---------------- issue & execute ----------------
    std::uint64_t issue_time = 0;
    std::uint64_t complete_time = 0;
    switch (ins.op) {
      case OpClass::kIntAlu:
      case OpClass::kBranch: {
        issue_time = issue_bw.claim(ialu.acquire(ready));
        complete_time = issue_time + static_cast<std::uint64_t>(lat_.int_alu);
        break;
      }
      case OpClass::kIntMult: {
        issue_time = issue_bw.claim(imult.acquire(ready));
        complete_time = issue_time + static_cast<std::uint64_t>(lat_.int_mult);
        break;
      }
      case OpClass::kFpAlu: {
        issue_time = issue_bw.claim(fpalu.acquire(ready));
        complete_time = issue_time + static_cast<std::uint64_t>(lat_.fp_alu);
        break;
      }
      case OpClass::kFpMult: {
        issue_time = issue_bw.claim(fpmult.acquire(ready));
        complete_time = issue_time + static_cast<std::uint64_t>(lat_.fp_mult);
        break;
      }
      case OpClass::kLoad: {
        issue_time = issue_bw.claim(memport.acquire(ready));
        complete_time = issue_time + static_cast<std::uint64_t>(lat_.agen) +
                        static_cast<std::uint64_t>(
                            data_access_latency(ins.mem_addr));
        break;
      }
      case OpClass::kStore: {
        issue_time = issue_bw.claim(memport.acquire(ready));
        // Stores retire once the address is generated; the write drains in
        // the background but still updates the cache state now.
        data_access_latency(ins.mem_addr);
        complete_time = issue_time + static_cast<std::uint64_t>(lat_.agen);
        break;
      }
    }

    // ---------------- branch resolution ----------------
    if (ins.op == OpClass::kBranch) {
      ++stats.branch_count;
      const bool predicted = predictor_->predict_and_update(ins.pc, ins.taken);
      if (predicted != ins.taken) {
        ++stats.mispredicts;
        std::uint64_t penalty =
            static_cast<std::uint64_t>(lat_.mispredict_redirect);
        if (config_.issue_wrong) {
          // Wrong-path issue keeps the front end running: the machine
          // resumes one cycle earlier, but the wrong path touches the
          // instruction cache (possible pollution, possible prefetch).
          penalty = penalty > 1 ? penalty - 1 : 0;
          const std::uint64_t wrong_pc = ins.taken ? ins.pc + 4 : ins.target;
          for (int w = 0; w < 2; ++w) {
            l1i_.access(wrong_pc +
                        static_cast<std::uint64_t>(w * config_.l1i_line_b));
          }
        }
        fetch_ready = std::max(fetch_ready, complete_time + penalty);
        last_fetch_line = ~0ULL;
        fetched_in_group = 0;
      } else if (ins.taken) {
        // Correctly predicted taken branch still ends the fetch group.
        last_fetch_line = ~0ULL;
        fetched_in_group = 0;
        fetch_ready = std::max(fetch_ready, fetch_time + 1);
      }
    }

    // ---------------- commit ----------------
    const std::uint64_t commit_time =
        commit_bw.claim(std::max(complete_time + 1, prev_commit));
    prev_commit = commit_time;
    complete_ring[i & (kRing - 1)] = complete_time;
    commit_ring[i & (kRing - 1)] = commit_time;
    if (is_mem) {
      mem_commit_ring[mem_op_count & (kRing - 1)] = commit_time;
      ++mem_op_count;
    }
  }

  SimResult result;
  result.cycles = prev_commit;
  stats.instructions = n;
  stats.cycles = prev_commit;
  stats.ipc = prev_commit > 0 ? static_cast<double>(n) /
                                    static_cast<double>(prev_commit)
                              : 0.0;
  stats.l1d_miss_rate = l1d_.miss_rate();
  stats.l1i_miss_rate = l1i_.miss_rate();
  stats.l2_miss_rate = l2_.miss_rate();
  stats.l3_miss_rate = config_.has_l3() ? l3_.miss_rate() : 0.0;
  stats.branch_mispredict_rate =
      stats.branch_count > 0 ? static_cast<double>(stats.mispredicts) /
                                   static_cast<double>(stats.branch_count)
                             : 0.0;
  stats.itlb_miss_rate =
      itlb_.accesses() > 0 ? static_cast<double>(itlb_.misses()) /
                                 static_cast<double>(itlb_.accesses())
                           : 0.0;
  stats.dtlb_miss_rate =
      dtlb_.accesses() > 0 ? static_cast<double>(dtlb_.misses()) /
                                 static_cast<double>(dtlb_.accesses())
                           : 0.0;
  result.stats = stats;
  return result;
}

SimResult simulate(const ProcessorConfig& config, const Trace& trace) {
  OutOfOrderCore core(config);
  return core.run(trace.span());
}

}  // namespace dsml::sim
