#include "sim/trace.hpp"

namespace dsml::sim {

const char* to_string(OpClass op) noexcept {
  switch (op) {
    case OpClass::kIntAlu: return "ialu";
    case OpClass::kIntMult: return "imult";
    case OpClass::kFpAlu: return "fpalu";
    case OpClass::kFpMult: return "fpmult";
    case OpClass::kLoad: return "load";
    case OpClass::kStore: return "store";
    case OpClass::kBranch: return "branch";
  }
  return "?";
}

}  // namespace dsml::sim
