#include "sim/branch.hpp"

#include <bit>

#include "common/error.hpp"

namespace dsml::sim {

namespace {

inline bool counter_taken(std::uint8_t c) noexcept { return c >= 2; }

inline std::uint8_t counter_update(std::uint8_t c, bool taken) noexcept {
  if (taken) return c < 3 ? c + 1 : 3;
  return c > 0 ? c - 1 : 0;
}

}  // namespace

std::unique_ptr<BranchPredictor> make_branch_predictor(
    BranchPredictorKind kind) {
  switch (kind) {
    case BranchPredictorKind::kPerfect:
      return std::make_unique<PerfectPredictor>();
    case BranchPredictorKind::kBimodal:
      return std::make_unique<BimodalPredictor>();
    case BranchPredictorKind::kTwoLevel:
      return std::make_unique<TwoLevelPredictor>();
    case BranchPredictorKind::kCombination:
      return std::make_unique<CombinationPredictor>();
  }
  throw InvalidArgument("make_branch_predictor: unknown kind");
}

bool PerfectPredictor::predict_and_update(std::uint64_t /*pc*/, bool taken) {
  record(true);
  return taken;
}

BimodalPredictor::BimodalPredictor(std::size_t table_size)
    : table_(table_size, 1), mask_(table_size - 1) {
  DSML_REQUIRE(std::has_single_bit(table_size),
               "BimodalPredictor: table size must be a power of two");
}

bool BimodalPredictor::peek(std::uint64_t pc) const {
  return counter_taken(table_[(pc >> 2) & mask_]);
}

void BimodalPredictor::train(std::uint64_t pc, bool taken) {
  std::uint8_t& c = table_[(pc >> 2) & mask_];
  c = counter_update(c, taken);
}

bool BimodalPredictor::predict_and_update(std::uint64_t pc, bool taken) {
  const bool prediction = peek(pc);
  record(prediction == taken);
  train(pc, taken);
  return prediction;
}

TwoLevelPredictor::TwoLevelPredictor(std::size_t table_size,
                                     std::uint32_t history_bits)
    : table_(table_size, 1),
      mask_(table_size - 1),
      history_mask_((1ULL << history_bits) - 1) {
  DSML_REQUIRE(std::has_single_bit(table_size),
               "TwoLevelPredictor: table size must be a power of two");
  DSML_REQUIRE(history_bits >= 1 && history_bits <= 32,
               "TwoLevelPredictor: history_bits outside [1,32]");
}

std::size_t TwoLevelPredictor::index(std::uint64_t pc) const {
  return ((pc >> 2) ^ history_) & mask_;
}

bool TwoLevelPredictor::peek(std::uint64_t pc) const {
  return counter_taken(table_[index(pc)]);
}

void TwoLevelPredictor::train(std::uint64_t pc, bool taken) {
  std::uint8_t& c = table_[index(pc)];
  c = counter_update(c, taken);
  history_ = ((history_ << 1) | (taken ? 1 : 0)) & history_mask_;
}

bool TwoLevelPredictor::predict_and_update(std::uint64_t pc, bool taken) {
  const bool prediction = peek(pc);
  record(prediction == taken);
  train(pc, taken);
  return prediction;
}

CombinationPredictor::CombinationPredictor()
    : meta_(1024, 2), meta_mask_(1023) {}

bool CombinationPredictor::predict_and_update(std::uint64_t pc, bool taken) {
  const bool p_bimodal = bimodal_.peek(pc);
  const bool p_two_level = two_level_.peek(pc);
  std::uint8_t& meta = meta_[(pc >> 2) & meta_mask_];
  const bool prediction = counter_taken(meta) ? p_two_level : p_bimodal;
  record(prediction == taken);
  // Train the meta predictor toward the component that was right.
  const bool bimodal_right = p_bimodal == taken;
  const bool two_level_right = p_two_level == taken;
  if (bimodal_right != two_level_right) {
    meta = counter_update(meta, two_level_right);
  }
  bimodal_.train(pc, taken);
  two_level_.train(pc, taken);
  return prediction;
}

}  // namespace dsml::sim
