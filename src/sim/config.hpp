// The micro-architectural configuration space of the paper's Table 1.
//
// Table 1 lists 24 parameters. The raw cross product of the listed values is
// larger than the 4608 configurations the paper reports, so the authors must
// have varied some parameters jointly; we tie the parameters that are
// naturally co-designed — RUU size with LSQ size and the TLB pair (queue /
// translation resources scale with the core), the functional-unit mix with
// the pipeline width (as the 4/2/2/4/2 vs 8/4/4/8/4 notation suggests), the
// L1 line size across I and D caches, and the L3 triple (size/line/assoc are
// either all "absent" or all "present") — which lands exactly on
// 3·3·2·4·2·4·2·2·2 = 4608 points while every one of the 24 parameters still
// varies across the space. The ties are recorded in DESIGN.md.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace dsml::sim {

enum class BranchPredictorKind : std::uint8_t {
  kPerfect,
  kBimodal,
  kTwoLevel,
  kCombination,
};

const char* to_string(BranchPredictorKind kind) noexcept;

/// Functional-unit counts (SimpleScalar's res: parameters).
struct FunctionalUnitMix {
  int ialu = 4;
  int imult = 2;
  int memport = 2;
  int fpalu = 4;
  int fpmult = 2;

  bool operator==(const FunctionalUnitMix&) const = default;
  std::string to_string() const;  ///< "4/2/2/4/2"
};

/// One point of the design space: every Table-1 parameter, in natural units.
struct ProcessorConfig {
  // L1 data cache
  int l1d_size_kb = 32;
  int l1d_line_b = 32;
  int l1d_assoc = 4;
  // L1 instruction cache
  int l1i_size_kb = 32;
  int l1i_line_b = 32;
  int l1i_assoc = 4;
  // L2 (unified)
  int l2_size_kb = 256;
  int l2_line_b = 128;
  int l2_assoc = 4;
  // L3 (optional: size 0 disables, matching Table 1's 0-valued rows)
  int l3_size_mb = 0;
  int l3_line_b = 0;
  int l3_assoc = 0;
  // Front end / core
  BranchPredictorKind branch_predictor = BranchPredictorKind::kBimodal;
  int width = 4;          ///< decode = issue = commit width
  bool issue_wrong = false;  ///< issue wrong-path instructions after branches
  int ruu_size = 128;     ///< register update unit (instruction window)
  int lsq_size = 64;      ///< load/store queue
  int itlb_size_kb = 256;  ///< ITLB reach in KB (entries = reach / page size)
  int dtlb_size_kb = 512;  ///< DTLB reach in KB
  FunctionalUnitMix fu;

  bool has_l3() const noexcept { return l3_size_mb > 0; }

  /// Validates parameter values against Table 1's menus; throws
  /// InvalidArgument on violations.
  void validate() const;

  /// Compact unique identifier, stable across runs — used as the simulation
  /// cache key component.
  std::string key() const;
};

/// All 4608 configurations of the paper's microprocessor study, in a stable
/// deterministic order.
std::vector<ProcessorConfig> enumerate_design_space();

/// Number of points in the full space (= enumerate_design_space().size()).
constexpr std::size_t kDesignSpaceSize = 4608;

/// Builds the 24-feature dataset rows for a set of configurations (paper's
/// model inputs). The target column is supplied by the caller (simulated
/// cycle counts).
data::Dataset make_config_dataset(const std::vector<ProcessorConfig>& configs,
                                  std::vector<double> cycles = {});

}  // namespace dsml::sim
