// Instruction trace model consumed by the timing simulator.
//
// A trace is a dynamic instruction stream with the information a trace-driven
// out-of-order timing model needs: operation class (which functional unit),
// program counter (instruction cache & branch predictor indexing), memory
// address for loads/stores, branch outcome, and register dependencies
// expressed as distances to older producing instructions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace dsml::sim {

enum class OpClass : std::uint8_t {
  kIntAlu,
  kIntMult,
  kFpAlu,
  kFpMult,
  kLoad,
  kStore,
  kBranch,
};

const char* to_string(OpClass op) noexcept;

struct Instr {
  OpClass op = OpClass::kIntAlu;
  std::uint64_t pc = 0;       ///< byte address of the instruction
  std::uint64_t mem_addr = 0; ///< effective address (loads/stores)
  bool taken = false;         ///< branch outcome
  std::uint64_t target = 0;   ///< branch target pc
  /// Distances (in dynamic instructions) to the producers of the two source
  /// operands; 0 means "no dependency / value ready long ago".
  std::uint32_t dep1 = 0;
  std::uint32_t dep2 = 0;
};

struct Trace {
  std::vector<Instr> instrs;

  std::size_t size() const noexcept { return instrs.size(); }
  std::span<const Instr> span() const noexcept { return instrs; }
};

}  // namespace dsml::sim
