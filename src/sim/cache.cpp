#include "sim/cache.hpp"

#include <bit>

namespace dsml::sim {

Cache::Cache(std::uint64_t size_bytes, std::uint32_t line_bytes,
             std::uint32_t assoc)
    : line_bytes_(line_bytes), assoc_(assoc) {
  DSML_REQUIRE(size_bytes > 0 && line_bytes > 0 && assoc > 0,
               "Cache: sizes must be positive");
  DSML_REQUIRE(std::has_single_bit(size_bytes),
               "Cache: size must be a power of two");
  DSML_REQUIRE(std::has_single_bit(static_cast<std::uint64_t>(line_bytes)),
               "Cache: line size must be a power of two");
  const std::uint64_t lines = size_bytes / line_bytes;
  DSML_REQUIRE(lines >= assoc, "Cache: fewer lines than ways");
  sets_ = static_cast<std::uint32_t>(lines / assoc);
  DSML_REQUIRE(std::has_single_bit(static_cast<std::uint64_t>(sets_)),
               "Cache: set count must be a power of two");
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(
      static_cast<std::uint64_t>(line_bytes)));
  set_mask_ = sets_ - 1;
  ways_.assign(static_cast<std::size_t>(sets_) * assoc_, Way{});
}

bool Cache::access(std::uint64_t addr) {
  const std::uint64_t line = addr >> line_shift_;
  const auto set = static_cast<std::size_t>(line & set_mask_);
  const std::uint64_t tag = line >> std::countr_zero(
      static_cast<std::uint64_t>(sets_));
  Way* base = &ways_[set * assoc_];
  ++stamp_;
  Way* victim = base;
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = stamp_;
      ++hits_;
      return true;
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }
  ++misses_;
  victim->valid = true;
  victim->tag = tag;
  victim->lru = stamp_;
  return false;
}

bool Cache::probe(std::uint64_t addr) const {
  const std::uint64_t line = addr >> line_shift_;
  const auto set = static_cast<std::size_t>(line & set_mask_);
  const std::uint64_t tag = line >> std::countr_zero(
      static_cast<std::uint64_t>(sets_));
  const Way* base = &ways_[set * assoc_];
  for (std::uint32_t w = 0; w < assoc_; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

void Cache::flush() {
  for (Way& way : ways_) way = Way{};
  stamp_ = 0;
}

double Cache::miss_rate() const noexcept {
  const std::uint64_t total = hits_ + misses_;
  return total > 0 ? static_cast<double>(misses_) /
                         static_cast<double>(total)
                   : 0.0;
}

Tlb::Tlb(std::uint64_t reach_kb, std::uint32_t page_bytes, std::uint32_t assoc)
    : page_bytes_(page_bytes),
      cache_(reach_kb * 1024ULL / page_bytes * 8ULL, 8, assoc) {
  // Model: one 8-byte "line" per page translation entry; the cache geometry
  // then provides (reach / page) entries with the requested associativity.
  DSML_REQUIRE(reach_kb * 1024ULL >= page_bytes,
               "Tlb: reach smaller than one page");
}

bool Tlb::access(std::uint64_t addr) {
  // Index by virtual page number; each translation occupies one entry.
  const std::uint64_t vpn = addr / page_bytes_;
  return cache_.access(vpn * 8ULL);
}

}  // namespace dsml::sim
