// Trace-driven out-of-order superscalar timing model.
//
// This plays the role SimpleScalar's sim-outorder plays in the paper: it
// turns (configuration, instruction trace) into a cycle count. The model is
// a single-pass dependency/resource timing simulation in the style of
// trace-driven "timing-first" models:
//
//   fetch    — advances at `width` instructions/cycle, stalling on
//              instruction-cache and ITLB misses and restarting after
//              mispredicted branches resolve;
//   dispatch — in order, bounded by the RUU (instruction window) and LSQ
//              occupancy: instruction i cannot dispatch before instruction
//              i - ruu_size commits;
//   issue    — out of order once operands are ready, bounded by issue width
//              per cycle and by functional-unit availability per class;
//   execute  — per-class latencies; loads add data-cache hierarchy and DTLB
//              latency from real tag-array models;
//   commit   — in order, `width` per cycle.
//
// Every structure the paper's Table 1 varies — cache geometry, branch
// predictor kind, widths, wrong-path issue, RUU/LSQ, TLBs, FU mix — feeds
// into the timing, so the design space has the interactions the surrogate
// models are supposed to learn.
#pragma once

#include <cstdint>
#include <span>

#include "sim/branch.hpp"
#include "sim/cache.hpp"
#include "sim/config.hpp"
#include "sim/trace.hpp"

namespace dsml::sim {

struct SimStats {
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  double ipc = 0.0;
  double l1d_miss_rate = 0.0;
  double l1i_miss_rate = 0.0;
  double l2_miss_rate = 0.0;
  double l3_miss_rate = 0.0;
  double branch_mispredict_rate = 0.0;
  double itlb_miss_rate = 0.0;
  double dtlb_miss_rate = 0.0;
  std::uint64_t branch_count = 0;
  std::uint64_t mispredicts = 0;
};

struct SimResult {
  std::uint64_t cycles = 0;
  SimStats stats;
};

/// Latency table (cycles). These mirror common sim-outorder settings for an
/// early-2000s deep pipeline; documented here so benches/tests can reason
/// about them.
struct LatencyModel {
  int decode_pipeline = 3;      ///< fetch→dispatch depth
  int int_alu = 1;
  int int_mult = 3;
  int fp_alu = 2;
  int fp_mult = 4;
  int agen = 1;                 ///< address generation before D$ access
  int l1d_hit = 1;
  int l1d_hit_large = 2;        ///< 64KB L1 pays one extra cycle
  int l2_hit = 12;
  int l2_hit_large = 15;        ///< 1MB L2 pays a little more
  int l3_hit = 40;
  int memory = 170;
  int tlb_miss = 36;
  int mispredict_redirect = 7;  ///< resolve→refetch penalty
};

class OutOfOrderCore {
 public:
  explicit OutOfOrderCore(const ProcessorConfig& config,
                          const LatencyModel& latency = {});

  /// Simulate a trace from a cold-cache state; returns total cycles and
  /// detailed statistics. May be called once per core instance (caches and
  /// predictors carry state).
  SimResult run(std::span<const Instr> trace);

 private:
  /// Latency of a data access through the hierarchy, updating cache state.
  int data_access_latency(std::uint64_t addr);
  /// Latency of an instruction fetch through the hierarchy.
  int fetch_access_latency(std::uint64_t pc);

  ProcessorConfig config_;
  LatencyModel lat_;
  Cache l1d_;
  Cache l1i_;
  Cache l2_;
  Cache l3_;  // constructed even when absent; gated by config_.has_l3()
  Tlb itlb_;
  Tlb dtlb_;
  std::unique_ptr<BranchPredictor> predictor_;
};

/// Facade: simulate one configuration against one trace.
SimResult simulate(const ProcessorConfig& config, const Trace& trace);

}  // namespace dsml::sim
