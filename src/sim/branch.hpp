// Branch direction predictors: the four kinds of Table 1.
//
//   perfect     — oracle; never mispredicts (an upper bound SimpleScalar
//                 also offers);
//   bimodal     — PC-indexed table of 2-bit saturating counters;
//   2-level     — gshare-style: global history XOR PC indexes the counter
//                 table;
//   combination — tournament of bimodal and 2-level with a meta-predictor
//                 choosing per branch.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/config.hpp"

namespace dsml::sim {

class BranchPredictor {
 public:
  virtual ~BranchPredictor() = default;

  /// Predict the direction of the branch at `pc`, then update internal state
  /// with the true outcome. Returns the prediction.
  virtual bool predict_and_update(std::uint64_t pc, bool taken) = 0;

  std::uint64_t lookups() const noexcept { return lookups_; }
  std::uint64_t mispredicts() const noexcept { return mispredicts_; }
  double mispredict_rate() const noexcept {
    return lookups_ > 0 ? static_cast<double>(mispredicts_) /
                              static_cast<double>(lookups_)
                        : 0.0;
  }

 protected:
  void record(bool correct) noexcept {
    ++lookups_;
    if (!correct) ++mispredicts_;
  }

 private:
  std::uint64_t lookups_ = 0;
  std::uint64_t mispredicts_ = 0;
};

/// Factory for the predictor kinds of Table 1. Table sizes follow
/// SimpleScalar defaults (2K-entry bimodal, 1K-entry level-2 table with
/// 12-bit history, 1K-entry meta table).
std::unique_ptr<BranchPredictor> make_branch_predictor(
    BranchPredictorKind kind);

class PerfectPredictor final : public BranchPredictor {
 public:
  bool predict_and_update(std::uint64_t pc, bool taken) override;
};

class BimodalPredictor final : public BranchPredictor {
 public:
  explicit BimodalPredictor(std::size_t table_size = 2048);
  bool predict_and_update(std::uint64_t pc, bool taken) override;

  /// Raw prediction without stats/update — used by the tournament predictor.
  bool peek(std::uint64_t pc) const;
  void train(std::uint64_t pc, bool taken);

 private:
  std::vector<std::uint8_t> table_;  // 2-bit counters
  std::size_t mask_;
};

class TwoLevelPredictor final : public BranchPredictor {
 public:
  explicit TwoLevelPredictor(std::size_t table_size = 4096,
                             std::uint32_t history_bits = 12);
  bool predict_and_update(std::uint64_t pc, bool taken) override;

  bool peek(std::uint64_t pc) const;
  void train(std::uint64_t pc, bool taken);  ///< updates table and history

 private:
  std::size_t index(std::uint64_t pc) const;

  std::vector<std::uint8_t> table_;
  std::size_t mask_;
  std::uint64_t history_ = 0;
  std::uint64_t history_mask_;
};

class CombinationPredictor final : public BranchPredictor {
 public:
  CombinationPredictor();
  bool predict_and_update(std::uint64_t pc, bool taken) override;

 private:
  BimodalPredictor bimodal_;
  TwoLevelPredictor two_level_;
  std::vector<std::uint8_t> meta_;  // 2-bit: >=2 favours two-level
  std::size_t meta_mask_;
};

}  // namespace dsml::sim
