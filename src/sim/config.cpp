#include "sim/config.hpp"

#include <array>
#include <sstream>

#include "common/error.hpp"

namespace dsml::sim {

const char* to_string(BranchPredictorKind kind) noexcept {
  switch (kind) {
    case BranchPredictorKind::kPerfect: return "perfect";
    case BranchPredictorKind::kBimodal: return "bimodal";
    case BranchPredictorKind::kTwoLevel: return "2-level";
    case BranchPredictorKind::kCombination: return "combination";
  }
  return "?";
}

std::string FunctionalUnitMix::to_string() const {
  std::ostringstream os;
  os << ialu << '/' << imult << '/' << memport << '/' << fpalu << '/'
     << fpmult;
  return os.str();
}

namespace {

template <typename T, std::size_t N>
bool one_of(T value, const std::array<T, N>& menu) {
  for (const T& m : menu) {
    if (value == m) return true;
  }
  return false;
}

}  // namespace

void ProcessorConfig::validate() const {
  DSML_REQUIRE(one_of(l1d_size_kb, std::array{16, 32, 64}),
               "config: l1d_size_kb must be 16/32/64");
  DSML_REQUIRE(one_of(l1d_line_b, std::array{32, 64}),
               "config: l1d_line_b must be 32/64");
  DSML_REQUIRE(l1d_assoc == 4, "config: l1d_assoc must be 4");
  DSML_REQUIRE(one_of(l1i_size_kb, std::array{16, 32, 64}),
               "config: l1i_size_kb must be 16/32/64");
  DSML_REQUIRE(one_of(l1i_line_b, std::array{32, 64}),
               "config: l1i_line_b must be 32/64");
  DSML_REQUIRE(l1i_assoc == 4, "config: l1i_assoc must be 4");
  DSML_REQUIRE(one_of(l2_size_kb, std::array{256, 1024}),
               "config: l2_size_kb must be 256/1024");
  DSML_REQUIRE(l2_line_b == 128, "config: l2_line_b must be 128");
  DSML_REQUIRE(one_of(l2_assoc, std::array{4, 8}),
               "config: l2_assoc must be 4/8");
  if (l3_size_mb == 0) {
    DSML_REQUIRE(l3_line_b == 0 && l3_assoc == 0,
                 "config: absent L3 requires line/assoc 0");
  } else {
    DSML_REQUIRE(l3_size_mb == 8, "config: l3_size_mb must be 0/8");
    DSML_REQUIRE(l3_line_b == 256, "config: present L3 requires 256B lines");
    DSML_REQUIRE(l3_assoc == 8, "config: present L3 requires assoc 8");
  }
  DSML_REQUIRE(one_of(width, std::array{4, 8}), "config: width must be 4/8");
  DSML_REQUIRE(one_of(ruu_size, std::array{128, 256}),
               "config: ruu_size must be 128/256");
  DSML_REQUIRE(one_of(lsq_size, std::array{64, 128}),
               "config: lsq_size must be 64/128");
  DSML_REQUIRE(one_of(itlb_size_kb, std::array{256, 1024}),
               "config: itlb_size_kb must be 256/1024");
  DSML_REQUIRE(one_of(dtlb_size_kb, std::array{512, 2048}),
               "config: dtlb_size_kb must be 512/2048");
  const FunctionalUnitMix narrow{4, 2, 2, 4, 2};
  const FunctionalUnitMix wide{8, 4, 4, 8, 4};
  DSML_REQUIRE(fu == narrow || fu == wide,
               "config: fu mix must be 4/2/2/4/2 or 8/4/4/8/4");
}

std::string ProcessorConfig::key() const {
  std::ostringstream os;
  os << "d" << l1d_size_kb << "." << l1d_line_b << "_i" << l1i_size_kb << "."
     << l1i_line_b << "_l2." << l2_size_kb << "." << l2_assoc << "_l3."
     << l3_size_mb << "_bp." << to_string(branch_predictor) << "_w" << width
     << (issue_wrong ? "_iw1" : "_iw0") << "_ruu" << ruu_size << "_lsq"
     << lsq_size << "_tlb" << itlb_size_kb << "." << dtlb_size_kb << "_fu"
     << fu.ialu;
  return os.str();
}

std::vector<ProcessorConfig> enumerate_design_space() {
  std::vector<ProcessorConfig> space;
  space.reserve(kDesignSpaceSize);
  const std::array<int, 3> l1_sizes{16, 32, 64};
  const std::array<int, 2> l1_lines{32, 64};
  const std::array<std::pair<int, int>, 4> l2s{
      std::pair{256, 4}, std::pair{256, 8}, std::pair{1024, 4},
      std::pair{1024, 8}};
  const std::array<bool, 2> l3s{false, true};
  const std::array<BranchPredictorKind, 4> bps{
      BranchPredictorKind::kPerfect, BranchPredictorKind::kBimodal,
      BranchPredictorKind::kTwoLevel, BranchPredictorKind::kCombination};
  const std::array<int, 2> widths{4, 8};
  const std::array<bool, 2> wrongs{false, true};
  const std::array<bool, 2> big_cores{false, true};

  for (int l1d : l1_sizes)
    for (int l1i : l1_sizes)
      for (int line : l1_lines)
        for (auto [l2_size, l2_assoc] : l2s)
          for (bool l3 : l3s)
            for (auto bp : bps)
              for (int width : widths)
                for (bool wrong : wrongs)
                  for (bool big : big_cores) {
                    ProcessorConfig c;
                    c.l1d_size_kb = l1d;
                    c.l1d_line_b = line;
                    c.l1i_size_kb = l1i;
                    c.l1i_line_b = line;
                    c.l2_size_kb = l2_size;
                    c.l2_assoc = l2_assoc;
                    if (l3) {
                      c.l3_size_mb = 8;
                      c.l3_line_b = 256;
                      c.l3_assoc = 8;
                    }
                    c.branch_predictor = bp;
                    c.width = width;
                    c.issue_wrong = wrong;
                    // Queue and translation resources scale together.
                    c.ruu_size = big ? 256 : 128;
                    c.lsq_size = big ? 128 : 64;
                    c.itlb_size_kb = big ? 1024 : 256;
                    c.dtlb_size_kb = big ? 2048 : 512;
                    // FU mix follows the pipeline width.
                    c.fu = width == 8 ? FunctionalUnitMix{8, 4, 4, 8, 4}
                                      : FunctionalUnitMix{4, 2, 2, 4, 2};
                    c.validate();
                    space.push_back(c);
                  }
  DSML_ASSERT(space.size() == kDesignSpaceSize);
  return space;
}

data::Dataset make_config_dataset(const std::vector<ProcessorConfig>& configs,
                                  std::vector<double> cycles) {
  DSML_REQUIRE(!configs.empty(), "make_config_dataset: no configurations");
  const std::size_t n = configs.size();

  auto numeric = [&](const char* name, auto getter) {
    std::vector<double> values;
    values.reserve(n);
    for (const auto& c : configs) values.push_back(double(getter(c)));
    return data::Column::numeric(name, std::move(values));
  };

  data::Dataset ds;
  ds.add_feature(numeric("l1d_size_kb", [](auto& c) { return c.l1d_size_kb; }));
  ds.add_feature(numeric("l1d_line_b", [](auto& c) { return c.l1d_line_b; }));
  ds.add_feature(numeric("l1d_assoc", [](auto& c) { return c.l1d_assoc; }));
  ds.add_feature(numeric("l1i_size_kb", [](auto& c) { return c.l1i_size_kb; }));
  ds.add_feature(numeric("l1i_line_b", [](auto& c) { return c.l1i_line_b; }));
  ds.add_feature(numeric("l1i_assoc", [](auto& c) { return c.l1i_assoc; }));
  ds.add_feature(numeric("l2_size_kb", [](auto& c) { return c.l2_size_kb; }));
  ds.add_feature(numeric("l2_line_b", [](auto& c) { return c.l2_line_b; }));
  ds.add_feature(numeric("l2_assoc", [](auto& c) { return c.l2_assoc; }));
  ds.add_feature(numeric("l3_size_mb", [](auto& c) { return c.l3_size_mb; }));
  ds.add_feature(numeric("l3_line_b", [](auto& c) { return c.l3_line_b; }));
  ds.add_feature(numeric("l3_assoc", [](auto& c) { return c.l3_assoc; }));
  {
    std::vector<std::string> bp;
    bp.reserve(n);
    for (const auto& c : configs) bp.emplace_back(to_string(c.branch_predictor));
    // Branch predictor kinds are ordered by sophistication in Table 1, which
    // makes the ordinal mapping meaningful for linear models (per §3.4 the
    // authors map what can be mapped to numbers).
    ds.add_feature(data::Column::categorical_with_levels(
        "branch_predictor", {"perfect", "bimodal", "2-level", "combination"},
        std::move(bp), /*ordered=*/true));
  }
  ds.add_feature(numeric("width", [](auto& c) { return c.width; }));
  {
    std::vector<bool> iw;
    iw.reserve(n);
    for (const auto& c : configs) iw.push_back(c.issue_wrong);
    ds.add_feature(data::Column::flag("issue_wrong", std::move(iw)));
  }
  ds.add_feature(numeric("ruu_size", [](auto& c) { return c.ruu_size; }));
  ds.add_feature(numeric("lsq_size", [](auto& c) { return c.lsq_size; }));
  ds.add_feature(numeric("itlb_size_kb", [](auto& c) { return c.itlb_size_kb; }));
  ds.add_feature(numeric("dtlb_size_kb", [](auto& c) { return c.dtlb_size_kb; }));
  ds.add_feature(numeric("fu_ialu", [](auto& c) { return c.fu.ialu; }));
  ds.add_feature(numeric("fu_imult", [](auto& c) { return c.fu.imult; }));
  ds.add_feature(numeric("fu_memport", [](auto& c) { return c.fu.memport; }));
  ds.add_feature(numeric("fu_fpalu", [](auto& c) { return c.fu.fpalu; }));
  ds.add_feature(numeric("fu_fpmult", [](auto& c) { return c.fu.fpmult; }));

  if (!cycles.empty()) {
    DSML_REQUIRE(cycles.size() == n,
                 "make_config_dataset: cycles size mismatch");
    ds.set_target("cycles", std::move(cycles));
  }
  return ds;
}

}  // namespace dsml::sim
