// Set-associative cache and TLB models with true LRU replacement.
//
// These are functional hit/miss models: the timing model queries them per
// access and turns the answers into latency. Tag arrays are real, so line
// size, capacity, and associativity interact with the address stream exactly
// as in a hardware cache.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.hpp"

namespace dsml::sim {

class Cache {
 public:
  /// size_bytes and line_bytes must be powers of two; assoc >= 1; the set
  /// count (size / line / assoc) must be at least 1.
  Cache(std::uint64_t size_bytes, std::uint32_t line_bytes,
        std::uint32_t assoc);

  /// Access a byte address; returns true on hit. Misses allocate (the model
  /// is write-allocate for simplicity — SimpleScalar's default dl1 is too).
  bool access(std::uint64_t addr);

  /// Non-allocating lookup (used to model wrong-path pollution control).
  bool probe(std::uint64_t addr) const;

  /// Invalidate everything.
  void flush();

  std::uint64_t hits() const noexcept { return hits_; }
  std::uint64_t misses() const noexcept { return misses_; }
  std::uint64_t accesses() const noexcept { return hits_ + misses_; }
  double miss_rate() const noexcept;

  std::uint32_t line_bytes() const noexcept { return line_bytes_; }
  std::uint32_t sets() const noexcept { return sets_; }
  std::uint32_t assoc() const noexcept { return assoc_; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // last-use stamp
    bool valid = false;
  };

  std::uint32_t line_bytes_ = 0;
  std::uint32_t assoc_ = 0;
  std::uint32_t sets_ = 0;
  std::uint32_t line_shift_ = 0;
  std::uint64_t set_mask_ = 0;
  std::uint64_t stamp_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::vector<Way> ways_;  // sets_ x assoc_, row-major
};

/// TLB modelled as a set-associative cache of page translations. Table 1
/// expresses TLB size as a reach in KB; entries = reach / page size.
class Tlb {
 public:
  Tlb(std::uint64_t reach_kb, std::uint32_t page_bytes = 4096,
      std::uint32_t assoc = 4);

  bool access(std::uint64_t addr);
  std::uint64_t misses() const noexcept { return cache_.misses(); }
  std::uint64_t accesses() const noexcept { return cache_.accesses(); }

 private:
  std::uint32_t page_bytes_;
  Cache cache_;
};

}  // namespace dsml::sim
