#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace dsml::net {

namespace {

std::string errno_message(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

void Fd::reset(int fd) noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

Fd listen_tcp(const std::string& address, std::uint16_t port, int backlog) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw IoError(errno_message("net: socket()"));

  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    throw IoError(errno_message("net: setsockopt(SO_REUSEADDR)"));
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    throw InvalidArgument("net: '" + address +
                          "' is not an IPv4 address to bind");
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    throw IoError(errno_message("net: bind(" + address + ":" +
                                std::to_string(port) + ")"));
  }
  if (::listen(fd.get(), backlog) != 0) {
    throw IoError(errno_message("net: listen()"));
  }
  return fd;
}

std::uint16_t local_port(const Fd& fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    throw IoError(errno_message("net: getsockname()"));
  }
  return ntohs(addr.sin_port);
}

namespace {

/// One non-blocking connect attempt against a resolved address, polled up to
/// `timeout_ms`. Returns an invalid Fd with errno set on failure; errno is
/// ETIMEDOUT when the deadline expired.
Fd connect_one_timed(const addrinfo* ai, std::uint32_t timeout_ms) {
  Fd fd(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
  if (!fd.valid()) return Fd();
  try {
    set_nonblocking(fd);
  } catch (const IoError&) {
    errno = EINVAL;
    return Fd();
  }
  if (::connect(fd.get(), ai->ai_addr, ai->ai_addrlen) != 0) {
    if (errno != EINPROGRESS) return Fd();
    pollfd pfd{fd.get(), POLLOUT, 0};
    for (;;) {
      const int ready = ::poll(&pfd, 1, static_cast<int>(timeout_ms));
      if (ready < 0 && errno == EINTR) continue;
      if (ready < 0) return Fd();
      if (ready == 0) {
        errno = ETIMEDOUT;
        return Fd();
      }
      break;
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      return Fd();
    }
    if (err != 0) {
      errno = err;
      return Fd();
    }
  }
  try {
    set_blocking(fd);
  } catch (const IoError&) {
    errno = EINVAL;
    return Fd();
  }
  return fd;
}

Fd connect_tcp_impl(const std::string& host, std::uint16_t port,
                    std::uint32_t timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const std::string service = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), service.c_str(), &hints,
                               &results);
  if (rc != 0) {
    throw IoError("net: cannot resolve '" + host +
                  "': " + ::gai_strerror(rc));
  }

  Fd fd;
  int last_errno = 0;
  for (const addrinfo* ai = results; ai != nullptr; ai = ai->ai_next) {
    if (timeout_ms > 0) {
      fd = connect_one_timed(ai, timeout_ms);
      if (fd.valid()) break;
      last_errno = errno;
      continue;
    }
    fd.reset(::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol));
    if (!fd.valid()) {
      last_errno = errno;
      continue;
    }
    if (::connect(fd.get(), ai->ai_addr, ai->ai_addrlen) == 0) break;
    last_errno = errno;
    fd.reset();
  }
  ::freeaddrinfo(results);
  if (!fd.valid()) {
    if (last_errno == ETIMEDOUT && timeout_ms > 0) {
      throw IoError("net: connect(" + host + ":" + service +
                    "): timed out after " + std::to_string(timeout_ms) +
                    " ms");
    }
    errno = last_errno;
    throw IoError(errno_message("net: connect(" + host + ":" + service + ")"));
  }
  const int one = 1;
  // Best-effort: a platform refusing TCP_NODELAY still round-trips
  // correctly, just with Nagle-shaped latency.
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

Fd connect_tcp(const std::string& host, std::uint16_t port) {
  return connect_tcp_impl(host, port, /*timeout_ms=*/0);
}

Fd connect_tcp(const std::string& host, std::uint16_t port,
               std::uint32_t timeout_ms) {
  return connect_tcp_impl(host, port, timeout_ms);
}

void set_nonblocking(const Fd& fd) {
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0 ||
      ::fcntl(fd.get(), F_SETFL, flags | O_NONBLOCK) != 0) {
    throw IoError(errno_message("net: fcntl(O_NONBLOCK)"));
  }
}

void set_blocking(const Fd& fd) {
  const int flags = ::fcntl(fd.get(), F_GETFL, 0);
  if (flags < 0 ||
      ::fcntl(fd.get(), F_SETFL, flags & ~O_NONBLOCK) != 0) {
    throw IoError(errno_message("net: fcntl(~O_NONBLOCK)"));
  }
}

}  // namespace dsml::net
