// Blocking newline-delimited TCP client.
//
// The counterpart of net/server.hpp for drivers that want simple
// call-and-response semantics: `dsml loadgen` opens one LineClient per
// simulated connection, and the tests use it to talk to an in-process
// Server. One request line out (terminator appended), one response line
// back (terminator stripped); responses are buffered internally so
// pipelined servers and short reads are handled transparently.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/socket.hpp"

namespace dsml::net {

class LineClient {
 public:
  /// Connects immediately; throws IoError if the server is unreachable.
  LineClient(const std::string& host, std::uint16_t port);

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// Sends `line` plus a '\n' terminator. Throws IoError on a broken
  /// connection.
  void send_line(std::string_view line);

  /// Blocks for the next '\n'-terminated line and returns it without the
  /// terminator. Throws IoError on EOF or a broken connection.
  std::string recv_line();

  /// send_line + recv_line.
  std::string request(std::string_view line);

  /// Half-closes the write side (the server sees EOF after draining).
  void shutdown_write();

 private:
  Fd fd_;
  std::string buf_;
};

}  // namespace dsml::net
