// Blocking newline-delimited TCP client.
//
// The counterpart of net/server.hpp for drivers that want simple
// call-and-response semantics: `dsml loadgen` opens one LineClient per
// simulated connection, the fleet coordinator opens one per worker shard,
// and the tests use it to talk to an in-process Server. One request line out
// (terminator appended), one response line back (terminator stripped);
// responses are buffered internally so pipelined servers and short reads are
// handled transparently.
//
// Deadlines: by default every call blocks indefinitely — fine for tests, but
// a hung server then wedges the caller forever. ClientOptions adds a connect
// deadline (non-blocking connect + poll) and a per-call I/O deadline
// (SO_RCVTIMEO/SO_SNDTIMEO, so the kernel enforces it with no extra
// syscalls); an expired deadline surfaces as IoError naming the timeout.
// `dsml loadgen --timeout-ms` and the fleet coordinator's per-request
// deadlines are both this mechanism.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/socket.hpp"

namespace dsml::net {

struct ClientOptions {
  /// Connect deadline in milliseconds; 0 = block until the kernel gives up.
  std::uint32_t connect_timeout_ms = 0;
  /// Per-send/recv deadline in milliseconds; 0 = block indefinitely.
  std::uint32_t io_timeout_ms = 0;
};

class LineClient {
 public:
  /// Connects immediately; throws IoError if the server is unreachable (or
  /// the connect deadline expires).
  LineClient(const std::string& host, std::uint16_t port,
             ClientOptions options = {});

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// Sends `line` plus a '\n' terminator. Throws IoError on a broken
  /// connection or an expired I/O deadline.
  void send_line(std::string_view line);

  /// Blocks for the next '\n'-terminated line and returns it without the
  /// terminator. Throws IoError on EOF, a broken connection, or an expired
  /// I/O deadline.
  std::string recv_line();

  /// send_line + recv_line.
  std::string request(std::string_view line);

  /// Half-closes the write side (the server sees EOF after draining).
  void shutdown_write();

 private:
  Fd fd_;
  std::string buf_;
  std::uint32_t io_timeout_ms_ = 0;
};

}  // namespace dsml::net
