// RAII POSIX TCP sockets for the net layer.
//
// The serving front-end (net/server.hpp) and the loadgen client
// (net/client.hpp) share these primitives: a move-only file-descriptor
// owner plus the small set of socket operations the layer needs — create a
// listening socket, accept, connect, and switch descriptors to
// non-blocking mode. Failures surface as IoError with errno context; no
// descriptor ever leaks past an exception because ownership is always in
// an Fd.
//
// Scope: IPv4 TCP on POSIX (the repo targets Linux CI runners). The event
// loop above this is poll(2)-based, so nothing here requires epoll or any
// platform extension.
#pragma once

#include <cstdint>
#include <string>

namespace dsml::net {

/// Move-only owner of a POSIX file descriptor (-1 = empty). Closing
/// ignores EINTR per POSIX semantics (the descriptor is gone either way).
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }

  /// Closes the held descriptor (if any) and adopts `fd`.
  void reset(int fd = -1) noexcept;

  /// Gives up ownership without closing.
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

 private:
  int fd_ = -1;
};

/// Creates a TCP socket bound to `address:port` (dotted-quad IPv4; port 0
/// picks an ephemeral port — read it back with local_port) and starts
/// listening. SO_REUSEADDR is set so restarting a server does not trip over
/// TIME_WAIT. Throws IoError.
Fd listen_tcp(const std::string& address, std::uint16_t port, int backlog);

/// The port a bound socket actually listens on (resolves port 0).
std::uint16_t local_port(const Fd& fd);

/// Blocking connect to `host:port`; `host` may be a name ("localhost") or
/// an IPv4 literal. TCP_NODELAY is set — the protocol is one small request
/// line per round trip, exactly the shape Nagle's algorithm penalizes.
/// Throws IoError.
Fd connect_tcp(const std::string& host, std::uint16_t port);

/// connect_tcp with a deadline: the connect is attempted non-blocking and
/// polled for up to `timeout_ms` milliseconds (0 = block indefinitely, same
/// as the two-argument overload). The returned socket is switched back to
/// blocking mode. A deadline that expires — a peer that neither accepts nor
/// refuses, e.g. a full backlog or a black-holed host — throws IoError
/// naming the timeout, so fleet health-checkers never wedge on a dead
/// worker. Throws IoError on any other failure.
Fd connect_tcp(const std::string& host, std::uint16_t port,
               std::uint32_t timeout_ms);

/// Switches `fd` to non-blocking mode. Throws IoError.
void set_nonblocking(const Fd& fd);

/// Switches `fd` back to blocking mode. Throws IoError.
void set_blocking(const Fd& fd);

}  // namespace dsml::net
