#include "net/server.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace dsml::net {

namespace {

struct NetMetrics {
  metrics::Counter& accepted = metrics::counter("net.accepted");
  metrics::Counter& shed = metrics::counter("net.shed");
  metrics::Counter& closed = metrics::counter("net.closed");
  metrics::Counter& requests = metrics::counter("net.requests");
  metrics::Counter& bytes_read = metrics::counter("net.bytes_read");
  metrics::Counter& bytes_written = metrics::counter("net.bytes_written");
  metrics::Counter& accept_errors = metrics::counter("net.accept_errors");
  metrics::Counter& read_errors = metrics::counter("net.read_errors");
  metrics::Counter& write_errors = metrics::counter("net.write_errors");
  metrics::Counter& overlong = metrics::counter("net.overlong_lines");
  metrics::Counter& idle_closed = metrics::counter("net.idle_closed");
};

NetMetrics& net_metrics() {
  static NetMetrics m;
  return m;
}

/// One serve-protocol-shaped error line ({"ok":false,...}\n) composed by the
/// transport itself, for failures the handler never sees (shed connections,
/// overlong lines, a throwing handler).
std::string error_line(std::string_view message, std::string_view kind) {
  json::Writer w(/*compact=*/true);
  w.begin_object()
      .field("ok", false)
      .field("error", message)
      .field("error_type", kind)
      .end_object();
  return w.str();
}

}  // namespace

struct Server::Connection {
  enum class State { kReading, kDispatching, kWriting, kDraining, kClosing };

  Fd fd;
  std::string in_buf;
  std::string out_buf;
  std::size_t out_off = 0;  ///< bytes of out_buf already written
  State state = State::kReading;
  /// Last-activity stamp for the idle timeout; restarted on every
  /// successful read or write.
  trace::Stopwatch last_activity;

  std::size_t pending() const noexcept { return out_buf.size() - out_off; }

  bool wants_read(const ServerOptions& options) const noexcept {
    if (state == State::kDraining || state == State::kClosing) return false;
    // Flow control: a connection whose responses are not being consumed is
    // not read either, so its write buffer stays bounded.
    return pending() < options.max_write_buffer_bytes;
  }
  bool wants_write() const noexcept {
    return state != State::kClosing && pending() > 0;
  }
};

Server::Server(ServerOptions options, RequestHandler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {
  DSML_REQUIRE(handler_ != nullptr, "net::Server: handler is required");
  DSML_REQUIRE(options_.max_connections >= 1,
               "net::Server: max_connections must be >= 1");
  DSML_REQUIRE(options_.max_request_bytes >= 1,
               "net::Server: max_request_bytes must be >= 1");
  if (options_.adopted_fd >= 0) {
    listen_fd_.reset(options_.adopted_fd);
  } else {
    listen_fd_ =
        listen_tcp(options_.bind_address, options_.port, options_.backlog);
  }
  set_nonblocking(listen_fd_);
  port_ = local_port(listen_fd_);

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    throw IoError(std::string("net: pipe(): ") + std::strerror(errno));
  }
  stop_read_.reset(pipe_fds[0]);
  stop_write_.reset(pipe_fds[1]);
  set_nonblocking(stop_read_);
}

Server::~Server() = default;

void Server::request_stop() noexcept {
  stop_requested_.store(true, std::memory_order_release);
  // Async-signal-safe wake-up; a full pipe means a wake-up is already
  // pending, so the result is intentionally ignored.
  const ssize_t ignored = ::write(stop_write_.get(), "x", 1);
  (void)ignored;
}

ServerSummary Server::summary() const {
  std::lock_guard<std::mutex> lock(summary_mutex_);
  return summary_;
}

void Server::accept_ready() {
  for (;;) {
    const int raw = ::accept(listen_fd_.get(), nullptr, nullptr);
    if (raw < 0) {
      if (errno == EINTR) continue;
      // EAGAIN: backlog drained. Anything else (ECONNABORTED, transient
      // resource exhaustion) is per-connection, not loop-fatal: give up on
      // this batch and let the next poll round retry.
      return;
    }
    Fd fd(raw);
    try {
      DSML_FAIL("net.accept");
    } catch (const std::exception&) {
      {
        std::lock_guard<std::mutex> lock(summary_mutex_);
        summary_.accept_errors += 1;
      }
      net_metrics().accept_errors.add();
      continue;  // injected accept failure: drop before admission
    }
    if (connections_.size() >= options_.max_connections) {
      // Admission control (only reachable when shedding — otherwise the
      // listener is not polled at capacity): fail fast with one protocol
      // error line instead of queueing the client blind. The line fits any
      // socket send buffer, so this best-effort blocking send cannot stall
      // the loop.
      const std::string line = error_line(
          "server at connection capacity (" +
              std::to_string(options_.max_connections) + ")",
          "StateError");
      const ssize_t ignored =
          ::send(fd.get(), line.data(), line.size(), MSG_NOSIGNAL);
      (void)ignored;
      {
        std::lock_guard<std::mutex> lock(summary_mutex_);
        summary_.shed += 1;
      }
      net_metrics().shed.add();
      continue;
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto connection = std::make_unique<Connection>();
    connection->fd = std::move(fd);
    connections_.push_back(std::move(connection));
    {
      std::lock_guard<std::mutex> lock(summary_mutex_);
      summary_.accepted += 1;
    }
    net_metrics().accepted.add();
  }
}

void Server::fail_overlong(Connection& c) {
  {
    std::lock_guard<std::mutex> lock(summary_mutex_);
    summary_.overlong += 1;
  }
  net_metrics().overlong.add();
  c.in_buf.clear();
  c.out_buf.append(error_line(
      "request line exceeds " + std::to_string(options_.max_request_bytes) +
          " bytes",
      "InvalidArgument"));
  // Whatever else the client pipelined after the oversized line is
  // untrustworthy framing: flush the error, then close.
  c.state = Connection::State::kDraining;
}

void Server::dispatch_lines(Connection& c) {
  std::size_t start = 0;
  while (c.state == Connection::State::kReading ||
         c.state == Connection::State::kWriting) {
    const std::size_t nl = c.in_buf.find('\n', start);
    if (nl == std::string::npos) break;
    std::string_view line(c.in_buf.data() + start, nl - start);
    start = nl + 1;
    // CRLF framing: tolerate clients that terminate lines with \r\n (the
    // stdin loop tolerates it too — the JSON parser treats \r as
    // whitespace — so both front-ends accept identical byte streams).
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.size() > options_.max_request_bytes) {
      fail_overlong(c);
      break;
    }
    c.state = Connection::State::kDispatching;
    {
      std::lock_guard<std::mutex> lock(summary_mutex_);
      summary_.requests += 1;
    }
    net_metrics().requests.add();
    std::string response;
    try {
      response = handler_(line);
    } catch (const std::exception& e) {
      // The handler contract is to answer failures, not throw them; if one
      // escapes anyway the connection still gets a well-formed error line
      // and the loop keeps serving.
      response = error_line(e.what(), "StateError");
    }
    c.out_buf.append(response);
    c.state = c.pending() > 0 ? Connection::State::kWriting
                              : Connection::State::kReading;
  }
  if (c.state == Connection::State::kDraining) {
    return;  // fail_overlong already cleared the input buffer
  }
  c.in_buf.erase(0, start);
  if (c.in_buf.size() > options_.max_request_bytes) fail_overlong(c);
}

void Server::read_ready(Connection& c) {
  try {
    DSML_FAIL("net.read");
  } catch (const std::exception&) {
    {
      std::lock_guard<std::mutex> lock(summary_mutex_);
      summary_.read_errors += 1;
    }
    net_metrics().read_errors.add();
    c.state = Connection::State::kClosing;
    return;
  }
  char buf[16384];
  const ssize_t n = ::recv(c.fd.get(), buf, sizeof(buf), 0);
  if (n < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) return;
    {
      std::lock_guard<std::mutex> lock(summary_mutex_);
      summary_.read_errors += 1;
    }
    net_metrics().read_errors.add();
    c.state = Connection::State::kClosing;
    return;
  }
  if (n == 0) {
    // Peer EOF: answer what is already buffered, then close.
    c.state = c.pending() > 0 ? Connection::State::kDraining
                              : Connection::State::kClosing;
    return;
  }
  net_metrics().bytes_read.add(static_cast<std::uint64_t>(n));
  c.last_activity.restart();
  c.in_buf.append(buf, static_cast<std::size_t>(n));
  dispatch_lines(c);
  // Optimistic flush: most responses fit the socket buffer, so answering
  // inside the same poll round saves the client one loop latency.
  if (c.wants_write()) write_ready(c);
}

void Server::write_ready(Connection& c) {
  try {
    DSML_FAIL("net.write");
  } catch (const std::exception&) {
    {
      std::lock_guard<std::mutex> lock(summary_mutex_);
      summary_.write_errors += 1;
    }
    net_metrics().write_errors.add();
    c.state = Connection::State::kClosing;
    return;
  }
  while (c.pending() > 0) {
    const ssize_t n = ::send(c.fd.get(), c.out_buf.data() + c.out_off,
                             c.pending(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      {
        std::lock_guard<std::mutex> lock(summary_mutex_);
        summary_.write_errors += 1;
      }
      net_metrics().write_errors.add();
      c.state = Connection::State::kClosing;
      return;
    }
    net_metrics().bytes_written.add(static_cast<std::uint64_t>(n));
    c.last_activity.restart();
    c.out_off += static_cast<std::size_t>(n);
  }
  c.out_buf.clear();
  c.out_off = 0;
  if (c.state == Connection::State::kDraining) {
    c.state = Connection::State::kClosing;
  } else {
    c.state = Connection::State::kReading;
  }
}

void Server::run() {
  trace::Span span("net.server", "net");
  std::vector<pollfd> fds;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    fds.clear();
    fds.push_back(pollfd{stop_read_.get(), POLLIN, 0});
    // At capacity without shedding, the listener is simply not polled:
    // connections queue in the kernel backlog until a slot frees.
    const bool poll_listen =
        options_.shed_when_full ||
        connections_.size() < options_.max_connections;
    fds.push_back(pollfd{poll_listen ? listen_fd_.get() : -1, POLLIN, 0});
    for (const auto& c : connections_) {
      short events = 0;
      if (c->wants_read(options_)) events |= POLLIN;
      if (c->wants_write()) events |= POLLOUT;
      fds.push_back(pollfd{c->fd.get(), events, 0});
    }

    // accept_ready() below appends to connections_, so remember how many
    // connections this round's pollfds actually cover: a freshly accepted
    // connection has no revents yet and must wait for the next round.
    const std::size_t polled = connections_.size();

    // With an idle timeout armed, poll must wake by the earliest deadline;
    // otherwise a quiet fleet would never sweep its idle connections.
    int poll_timeout = -1;
    if (options_.idle_timeout_ms > 0 && !connections_.empty()) {
      const double idle_ms = static_cast<double>(options_.idle_timeout_ms);
      double soonest = idle_ms;
      for (const auto& c : connections_) {
        const double remaining = idle_ms - c->last_activity.seconds() * 1e3;
        if (remaining < soonest) soonest = remaining;
      }
      poll_timeout = soonest < 1.0 ? 1 : static_cast<int>(soonest) + 1;
    }

    const int ready = ::poll(fds.data(), fds.size(), poll_timeout);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("net: poll(): ") + std::strerror(errno));
    }
    if ((fds[0].revents & POLLIN) != 0) break;
    if ((fds[1].revents & POLLIN) != 0) accept_ready();

    for (std::size_t i = 0; i < polled; ++i) {
      Connection& c = *connections_[i];
      const short revents = fds[2 + i].revents;
      if ((revents & (POLLERR | POLLNVAL)) != 0) {
        c.state = Connection::State::kClosing;
        continue;
      }
      // Write first: draining the output buffer may re-enable reading.
      if ((revents & POLLOUT) != 0 && c.wants_write()) write_ready(c);
      // POLLHUP can still carry buffered bytes; recv() reports the EOF.
      if ((revents & (POLLIN | POLLHUP)) != 0 && c.wants_read(options_)) {
        read_ready(c);
      }
    }

    if (options_.idle_timeout_ms > 0) {
      const double idle_ms = static_cast<double>(options_.idle_timeout_ms);
      std::uint64_t idled = 0;
      for (auto& c : connections_) {
        if (c->state == Connection::State::kClosing) continue;
        if (c->last_activity.seconds() * 1e3 < idle_ms) continue;
        c->state = Connection::State::kClosing;
        ++idled;
      }
      if (idled > 0) {
        {
          std::lock_guard<std::mutex> lock(summary_mutex_);
          summary_.idle_closed += idled;
        }
        net_metrics().idle_closed.add(idled);
      }
    }

    std::size_t finished = 0;
    auto alive = connections_.begin();
    for (auto& c : connections_) {
      if (c->state == Connection::State::kClosing) {
        ++finished;
      } else {
        *alive++ = std::move(c);
      }
    }
    connections_.erase(alive, connections_.end());
    if (finished > 0) {
      std::lock_guard<std::mutex> lock(summary_mutex_);
      summary_.closed += finished;
      net_metrics().closed.add(finished);
    }
  }
  {
    std::lock_guard<std::mutex> lock(summary_mutex_);
    summary_.closed += connections_.size();
    net_metrics().closed.add(connections_.size());
  }
  connections_.clear();
}

}  // namespace dsml::net
