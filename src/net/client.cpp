#include "net/client.hpp"

#include <sys/socket.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace dsml::net {

LineClient::LineClient(const std::string& host, std::uint16_t port)
    : fd_(connect_tcp(host, port)) {}

void LineClient::send_line(std::string_view line) {
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::send(fd_.get(), framed.data() + off,
                             framed.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("net: send(): ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string LineClient::recv_line() {
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return line;
    }
    char chunk[16384];
    const ssize_t n = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw IoError(std::string("net: recv(): ") + std::strerror(errno));
    }
    if (n == 0) {
      throw IoError("net: connection closed before a full response line");
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string LineClient::request(std::string_view line) {
  send_line(line);
  return recv_line();
}

void LineClient::shutdown_write() {
  ::shutdown(fd_.get(), SHUT_WR);
}

}  // namespace dsml::net
