#include "net/client.hpp"

#include <sys/socket.h>
#include <sys/time.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace dsml::net {

namespace {

timeval timeout_to_timeval(std::uint32_t ms) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  return tv;
}

}  // namespace

LineClient::LineClient(const std::string& host, std::uint16_t port,
                       ClientOptions options)
    : fd_(options.connect_timeout_ms > 0
              ? connect_tcp(host, port, options.connect_timeout_ms)
              : connect_tcp(host, port)),
      io_timeout_ms_(options.io_timeout_ms) {
  if (io_timeout_ms_ > 0) {
    const timeval tv = timeout_to_timeval(io_timeout_ms_);
    // The kernel enforces the deadline on every blocking send/recv, so the
    // hot path needs no extra poll. Failure to set the option would leave
    // the client able to hang forever, which defeats the point — surface it.
    if (::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) !=
            0 ||
        ::setsockopt(fd_.get(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) !=
            0) {
      throw IoError(std::string("net: setsockopt(SO_RCVTIMEO): ") +
                    std::strerror(errno));
    }
  }
}

void LineClient::send_line(std::string_view line) {
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::send(fd_.get(), framed.data() + off,
                             framed.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if ((errno == EAGAIN || errno == EWOULDBLOCK) && io_timeout_ms_ > 0) {
        throw IoError("net: send(): timed out after " +
                      std::to_string(io_timeout_ms_) + " ms");
      }
      throw IoError(std::string("net: send(): ") + std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string LineClient::recv_line() {
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = buf_.substr(0, nl);
      buf_.erase(0, nl + 1);
      return line;
    }
    char chunk[16384];
    const ssize_t n = ::recv(fd_.get(), chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if ((errno == EAGAIN || errno == EWOULDBLOCK) && io_timeout_ms_ > 0) {
        throw IoError("net: recv(): timed out after " +
                      std::to_string(io_timeout_ms_) + " ms");
      }
      throw IoError(std::string("net: recv(): ") + std::strerror(errno));
    }
    if (n == 0) {
      throw IoError("net: connection closed before a full response line");
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string LineClient::request(std::string_view line) {
  send_line(line);
  return recv_line();
}

void LineClient::shutdown_write() {
  ::shutdown(fd_.get(), SHUT_WR);
}

}  // namespace dsml::net
