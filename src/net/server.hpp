// TCP serving front-end: a portable poll(2)-based event loop speaking
// newline-delimited requests.
//
// The server is protocol-agnostic transport: it owns sockets, framing, and
// flow control, and hands each complete request line to a caller-supplied
// RequestHandler that returns the bytes to send back (the engine plugs
// `engine::ServeHandler` in here, so the wire protocol is *exactly* the
// `dsml serve` stdin JSON-lines protocol — one request per line, one
// newline-terminated response per request). Keeping the transport below the
// engine keeps the layer DAG clean: net depends only on common.
//
// Per-connection state machine:
//
//     kReading ──complete line──▶ kDispatching ──response──▶ kWriting
//        ▲                                                      │
//        └───────────────── write buffer drained ───────────────┘
//     any state ──peer EOF / overlong line──▶ kDraining (flush, then close)
//     any state ──read/write error──────────▶ kClosing  (drop immediately)
//
// Flow control, all bounded:
//  - read buffer: a request line longer than `max_request_bytes` gets an
//    error response and the connection drains/closes (`net.overlong_lines`);
//  - write buffer: while a connection's pending output exceeds
//    `max_write_buffer_bytes` its socket is not polled for reading, so a
//    client that pipelines requests without reading responses stalls
//    itself, not the server;
//  - accept admission: at `max_connections` the listener either stops
//    accepting (backpressure into the kernel backlog) or, with
//    `shed_when_full`, accepts, answers one error line, and closes
//    (`net.shed`) so clients fail fast instead of queueing blind.
//
// Backpressure composes with the engine: the InferenceSession bounded queue
// rejects over-admission with StateError, which the handler turns into an
// error *response* — so `net.*` sheds connections while `engine.session.*`
// sheds requests, and both are observable.
//
// Threading: run() is single-threaded (one poll loop; dispatch is inline).
// request_stop() may be called from any thread or from a signal handler —
// it is async-signal-safe (an atomic store plus a self-pipe write).
// Failpoints `net.accept` / `net.read` / `net.write` inject connection-level
// failures the loop must contain.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "net/socket.hpp"

namespace dsml::net {

/// Answers one request line (terminator stripped) with the exact bytes to
/// write back — normally one newline-terminated response, or "" for no
/// response (blank keep-alive lines). Must not throw for request-level
/// failures; anything it does throw is answered with a generic error line
/// so the loop survives.
using RequestHandler = std::function<std::string(std::string_view line)>;

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back via Server::port()
  int backlog = 128;

  /// Adopt an already-listening socket instead of binding a new one
  /// (bind_address/port/backlog are then ignored). The fleet supervisor
  /// binds the listener itself and passes it to forked workers: the port
  /// survives a worker crash, so clients queue in the kernel backlog while
  /// the replacement respawns instead of getting connection-refused. The
  /// Server takes ownership of the descriptor.
  int adopted_fd = -1;

  /// Open-connection admission bound.
  std::size_t max_connections = 64;

  /// At capacity: accept, answer one error line, close (true) or leave the
  /// connection in the kernel backlog until a slot frees (false).
  bool shed_when_full = true;

  /// Longest accepted request line; beyond it the connection gets an error
  /// response and is drained/closed.
  std::size_t max_request_bytes = 1u << 20;

  /// Pending-output bound past which a connection stops being read.
  std::size_t max_write_buffer_bytes = 8u << 20;

  /// Close connections with no read/write activity for this long; 0 keeps
  /// the historical block-forever behaviour. Without it an idle client holds
  /// a max_connections slot indefinitely — a fleet health-checker that pings
  /// and forgets would eventually starve the worker of slots.
  std::uint32_t idle_timeout_ms = 0;
};

struct ServerSummary {
  std::uint64_t accepted = 0;       ///< connections admitted
  std::uint64_t shed = 0;           ///< connections refused at capacity
  std::uint64_t closed = 0;         ///< admitted connections finished
  std::uint64_t requests = 0;       ///< complete lines dispatched
  std::uint64_t accept_errors = 0;  ///< connections dropped during accept
  std::uint64_t read_errors = 0;    ///< connections dropped on read failure
  std::uint64_t write_errors = 0;   ///< connections dropped on write failure
  std::uint64_t overlong = 0;       ///< request lines over the byte bound
  std::uint64_t idle_closed = 0;    ///< connections closed by idle timeout
};

class Server {
 public:
  /// Binds and listens immediately (so port() is valid before run()).
  /// Throws IoError if the address cannot be bound.
  Server(ServerOptions options, RequestHandler handler);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  std::uint16_t port() const { return port_; }

  /// Runs the event loop until request_stop(). Open connections are closed
  /// when the loop exits. Throws IoError only for unrecoverable loop
  /// failures (poll itself failing) — per-connection errors never escape.
  void run();

  /// Stops run() from any thread or signal handler (async-signal-safe).
  void request_stop() noexcept;

  ServerSummary summary() const;

 private:
  struct Connection;

  void accept_ready();
  void read_ready(Connection& c);
  void write_ready(Connection& c);
  void dispatch_lines(Connection& c);
  void fail_overlong(Connection& c);

  ServerOptions options_;
  RequestHandler handler_;
  Fd listen_fd_;
  Fd stop_read_;
  Fd stop_write_;
  std::uint16_t port_ = 0;
  std::atomic<bool> stop_requested_{false};
  std::vector<std::unique_ptr<Connection>> connections_;

  mutable std::mutex summary_mutex_;
  ServerSummary summary_;
};

}  // namespace dsml::net
