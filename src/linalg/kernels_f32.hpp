// Float32 kernels for the opt-in f32 inference path.
//
// These back engine::InferenceSession's f32 mode (ml/f32.hpp): model weights
// are converted to float once at registry-load time and batches stream
// through these kernels. Unlike everything else in linalg, results are NOT
// bit-pinned — the contract is an error budget (predictions within 1e-5
// relative of the double path, enforced by `dsml bench` and the
// test_backend property tests), which is why FMA is allowed in the vector
// variants. double remains the default everywhere.
//
// Dispatch follows linalg::active_backend() exactly like kernels.hpp: naive
// and blocked share the scalar loops here, simd uses the vector TU picked by
// cpuid.
#pragma once

#include <cstddef>

namespace dsml::linalg::kernels::f32 {

/// C(m x n) += A(m x k) * B(k x n), row-major float, leading dimensions as
/// in kernels::gemm_accumulate. C must be initialized by the caller.
void gemm_accumulate(const float* a, std::size_t lda, const float* b,
                     std::size_t ldb, float* c, std::size_t ldc,
                     std::size_t m, std::size_t k, std::size_t n);

/// out(cols x rows) = transpose of a(rows x cols).
void transpose(const float* a, std::size_t lda, std::size_t rows,
               std::size_t cols, float* out, std::size_t ldo);

/// y[i] += a * x[i] for i in [0, n) — the column-accumulate primitive the
/// f32 linear-regression predictor is built from.
void axpy(std::size_t n, float a, const float* x, float* y);

/// One batched dense layer on pre-transposed weights:
/// out(rows x fan_out) = act(x(rows x fan_in) * wt + bias), where wt is
/// fan_in x fan_out row-major (i.e. already transposed, as stored in the f32
/// weight snapshot) and act is the logistic sigmoid when
/// `sigmoid_activation`, identity otherwise.
void affine_forward(const float* x, std::size_t ldx, std::size_t rows,
                    std::size_t fan_in, const float* wt, const float* bias,
                    std::size_t fan_out, bool sigmoid_activation, float* out,
                    std::size_t ldo);

}  // namespace dsml::linalg::kernels::f32
