#include "linalg/kernels_f32.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/backend.hpp"
#include "linalg/simd/simd_kernels.hpp"

namespace dsml::linalg::kernels::f32 {

namespace {

// Scalar fallbacks, shared by the naive and blocked backends. The f32
// operands here are small (a session batch by a weight matrix), so there is
// no cache-blocking tier: one full-depth pass, like the reference GEMM.
void gemm_row_block_scalar(const float* a, std::size_t lda, const float* b,
                           std::size_t ldb, float* c, std::size_t ldc,
                           std::size_t i0, std::size_t i1, std::size_t k0,
                           std::size_t k1, std::size_t n) {
  for (std::size_t i = i0; i < i1; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (std::size_t k = k0; k < k1; ++k) {
      const float aik = arow[k];
      if (aik == 0.0f) continue;
      const float* brow = b + k * ldb;
      for (std::size_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void axpy_scalar(std::size_t n, float a, const float* x, float* y) {
  for (std::size_t i = 0; i < n; ++i) y[i] += a * x[i];
}

struct F32Table {
  void (*gemm_row_block)(const float*, std::size_t, const float*, std::size_t,
                         float*, std::size_t, std::size_t, std::size_t,
                         std::size_t, std::size_t, std::size_t);
  void (*axpy)(std::size_t, float, const float*, float*);
};

constexpr F32Table kScalarTable = {gemm_row_block_scalar, axpy_scalar};

const F32Table& active_table() {
  if (active_backend() == Backend::kSimd) {
    if (const simd::SimdOps* ops = detail::selected_simd_ops()) {
      static const F32Table simd_table = {ops->gemm_row_block_f32,
                                          ops->axpy_f32};
      return simd_table;
    }
  }
  return kScalarTable;
}

inline float sigmoid(float z) { return 1.0f / (1.0f + std::exp(-z)); }

}  // namespace

void gemm_accumulate(const float* a, std::size_t lda, const float* b,
                     std::size_t ldb, float* c, std::size_t ldc,
                     std::size_t m, std::size_t k, std::size_t n) {
  active_table().gemm_row_block(a, lda, b, ldb, c, ldc, 0, m, 0, k, n);
}

void transpose(const float* a, std::size_t lda, std::size_t rows,
               std::size_t cols, float* out, std::size_t ldo) {
  constexpr std::size_t kTile = 32;
  for (std::size_t r0 = 0; r0 < rows; r0 += kTile) {
    const std::size_t r1 = std::min(r0 + kTile, rows);
    for (std::size_t c0 = 0; c0 < cols; c0 += kTile) {
      const std::size_t c1 = std::min(c0 + kTile, cols);
      for (std::size_t r = r0; r < r1; ++r) {
        const float* arow = a + r * lda;
        for (std::size_t c = c0; c < c1; ++c) {
          out[c * ldo + r] = arow[c];
        }
      }
    }
  }
}

void axpy(std::size_t n, float a, const float* x, float* y) {
  active_table().axpy(n, a, x, y);
}

void affine_forward(const float* x, std::size_t ldx, std::size_t rows,
                    std::size_t fan_in, const float* wt, const float* bias,
                    std::size_t fan_out, bool sigmoid_activation, float* out,
                    std::size_t ldo) {
  for (std::size_t r = 0; r < rows; ++r) {
    std::copy_n(bias, fan_out, out + r * ldo);
  }
  gemm_accumulate(x, ldx, wt, fan_out, out, ldo, rows, fan_in, fan_out);
  if (sigmoid_activation) {
    for (std::size_t r = 0; r < rows; ++r) {
      float* orow = out + r * ldo;
      for (std::size_t j = 0; j < fan_out; ++j) orow[j] = sigmoid(orow[j]);
    }
  }
}

}  // namespace dsml::linalg::kernels::f32
