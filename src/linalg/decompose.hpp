// Matrix factorizations and solvers.
//
// QR (Householder) is the workhorse for least squares — numerically safer
// than forming normal equations for the regression design matrices used by
// the LR models. Cholesky is provided for symmetric positive-definite
// systems (Gram matrices, covariance).
#pragma once

#include "linalg/matrix.hpp"

namespace dsml::linalg {

/// Householder QR of an m x n matrix with m >= n.
///
/// Stores the factorization compactly; use `solve_least_squares` or the
/// accessors. Throws NumericalError if the matrix is rank-deficient to
/// working precision (a diagonal of R below `rank_tol * max_diag`).
class QR {
 public:
  explicit QR(const Matrix& a);

  std::size_t rows() const noexcept { return m_; }
  std::size_t cols() const noexcept { return n_; }

  /// Minimum-residual solution of A x = b (least squares when m > n).
  Vector solve(std::span<const double> b) const;

  /// Upper-triangular factor R (n x n).
  Matrix r() const;

  /// Apply Q^T to a vector of length m.
  Vector apply_qt(std::span<const double> b) const;

  /// |R_ii| smallest / largest — crude conditioning diagnostic.
  double diag_ratio() const noexcept { return diag_ratio_; }

  /// True if the factorization detected (near-)rank deficiency. `solve`
  /// still works by regularising tiny pivots, but inference statistics based
  /// on (X^T X)^-1 should be treated with care.
  bool rank_deficient() const noexcept { return rank_deficient_; }

 private:
  std::size_t m_ = 0;
  std::size_t n_ = 0;
  Matrix qr_;            // Householder vectors below the diagonal, R on/above
  Vector rdiag_;         // diagonal of R
  double diag_ratio_ = 0.0;
  bool rank_deficient_ = false;
};

/// Cholesky factorization (A = L L^T) of a symmetric positive-definite
/// matrix. Throws NumericalError if A is not positive definite.
class Cholesky {
 public:
  explicit Cholesky(const Matrix& a);

  Vector solve(std::span<const double> b) const;

  /// Inverse of A via forward/back substitution of identity columns.
  Matrix inverse() const;

  const Matrix& l() const noexcept { return l_; }

 private:
  Matrix l_;
};

/// Convenience: least-squares solution to A x = b via QR.
Vector solve_least_squares(const Matrix& a, std::span<const double> b);

/// Solve an upper-triangular system R x = b.
Vector solve_upper_triangular(const Matrix& r, std::span<const double> b);

/// Inverse of (A^T A) computed from the R factor of A's QR — this is the
/// coefficient covariance kernel used for regression t statistics.
Matrix xtx_inverse_from_qr(const QR& qr);

}  // namespace dsml::linalg
