// AVX2+FMA kernel table. Compiled with -mavx2 -mfma -ffp-contract=off (see
// src/linalg/CMakeLists.txt); the contract flag matters — without it the
// compiler may fuse the explicit _mm256_mul_pd/_mm256_add_pd pairs (and the
// scalar remainder loops) into FMAs, which rounds once instead of twice and
// silently breaks bit-identity with the blocked backend.
#include "linalg/simd/simd_kernels.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace dsml::linalg::simd {
namespace {

// ---------------------------------------------------------------------------
// double kernels — bit-identical to the scalar loops in kernels.cpp.
// ---------------------------------------------------------------------------

// The j loop writes independent output elements, so 4-wide vectorization
// never reorders any single accumulation chain: c[i][j] still receives
// aik * b[k][j] in ascending-k order, one rounding per multiply and one per
// add, exactly like the scalar row block.
void gemm_row_block_avx2(const double* a, std::size_t lda, const double* b,
                         std::size_t ldb, double* c, std::size_t ldc,
                         std::size_t i0, std::size_t i1, std::size_t k0,
                         std::size_t k1, std::size_t n) {
  for (std::size_t i = i0; i < i1; ++i) {
    const double* arow = a + i * lda;
    double* crow = c + i * ldc;
    for (std::size_t k = k0; k < k1; ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b + k * ldb;
      const __m256d av = _mm256_set1_pd(aik);
      std::size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        const __m256d bv = _mm256_loadu_pd(brow + j);
        __m256d cv = _mm256_loadu_pd(crow + j);
        cv = _mm256_add_pd(cv, _mm256_mul_pd(av, bv));
        _mm256_storeu_pd(crow + j, cv);
      }
      for (; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

// gemv is a per-row serial reduction, so vectorizing within a row would
// change the summation tree. Instead each lane owns one whole row: lane L
// accumulates a[i+L][j] * x[j] with j ascending, mul then add — the same
// rounding sequence as the scalar kernel, four rows per pass.
void gemv_avx2(const double* a, std::size_t lda, std::size_t m, std::size_t n,
               const double* x, double* y) {
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const double* r0 = a + i * lda;
    const double* r1 = r0 + lda;
    const double* r2 = r1 + lda;
    const double* r3 = r2 + lda;
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t j = 0; j < n; ++j) {
      const __m256d av = _mm256_set_pd(r3[j], r2[j], r1[j], r0[j]);
      const __m256d xv = _mm256_set1_pd(x[j]);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(av, xv));
    }
    _mm256_storeu_pd(y + i, acc);
  }
  for (; i < m; ++i) {
    const double* arow = a + i * lda;
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) s += arow[j] * x[j];
    y[i] = s;
  }
}

// Same across-rows lane layout as gemv_avx2, with the column-subset gather
// done by scalar loads (n_cols is small — the selected regressors).
void gemv_columns_avx2(const double* a, std::size_t lda, std::size_t m,
                       const std::size_t* cols, std::size_t n_cols,
                       const double* beta, double* y) {
  std::size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const double* r0 = a + i * lda;
    const double* r1 = r0 + lda;
    const double* r2 = r1 + lda;
    const double* r3 = r2 + lda;
    __m256d acc = _mm256_setzero_pd();
    for (std::size_t k = 0; k < n_cols; ++k) {
      const std::size_t c = cols[k];
      const __m256d av = _mm256_set_pd(r3[c], r2[c], r1[c], r0[c]);
      const __m256d bv = _mm256_set1_pd(beta[k]);
      acc = _mm256_add_pd(acc, _mm256_mul_pd(av, bv));
    }
    _mm256_storeu_pd(y + i, acc);
  }
  for (; i < m; ++i) {
    const double* arow = a + i * lda;
    double s = 0.0;
    for (std::size_t k = 0; k < n_cols; ++k) s += arow[cols[k]] * beta[k];
    y[i] = s;
  }
}

// ---------------------------------------------------------------------------
// f32 kernels — error-budgeted, FMA on purpose.
// ---------------------------------------------------------------------------

void gemm_row_block_f32_avx2(const float* a, std::size_t lda, const float* b,
                             std::size_t ldb, float* c, std::size_t ldc,
                             std::size_t i0, std::size_t i1, std::size_t k0,
                             std::size_t k1, std::size_t n) {
  for (std::size_t i = i0; i < i1; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (std::size_t k = k0; k < k1; ++k) {
      const float aik = arow[k];
      if (aik == 0.0f) continue;
      const float* brow = b + k * ldb;
      const __m256 av = _mm256_set1_ps(aik);
      std::size_t j = 0;
      for (; j + 8 <= n; j += 8) {
        const __m256 bv = _mm256_loadu_ps(brow + j);
        __m256 cv = _mm256_loadu_ps(crow + j);
        cv = _mm256_fmadd_ps(av, bv, cv);
        _mm256_storeu_ps(crow + j, cv);
      }
      for (; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void axpy_f32_avx2(std::size_t n, float a, const float* x, float* y) {
  const __m256 av = _mm256_set1_ps(a);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xv = _mm256_loadu_ps(x + i);
    __m256 yv = _mm256_loadu_ps(y + i);
    yv = _mm256_fmadd_ps(av, xv, yv);
    _mm256_storeu_ps(y + i, yv);
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

constexpr SimdOps kAvx2Ops = {
    "avx2",          gemm_row_block_avx2,     gemv_avx2,
    gemv_columns_avx2, gemm_row_block_f32_avx2, axpy_f32_avx2,
};

}  // namespace

const SimdOps* avx2_ops() noexcept { return &kAvx2Ops; }

}  // namespace dsml::linalg::simd

#else  // the build requested this TU without AVX2+FMA codegen flags

namespace dsml::linalg::simd {
const SimdOps* avx2_ops() noexcept { return nullptr; }
}  // namespace dsml::linalg::simd

#endif
