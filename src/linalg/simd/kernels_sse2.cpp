// SSE2 kernel table — the fallback vector backend for x86 CPUs without
// AVX2+FMA. Compiled with -msse2 -ffp-contract=off; the same bit-identity
// rules as kernels_avx2.cpp apply (explicit mul then add, two lanes of
// independent accumulation chains). SSE2 has no FMA, so the f32 kernels pair
// mul/add too — they just give up the fused rounding, not correctness.
#include "linalg/simd/simd_kernels.hpp"

#if defined(__SSE2__)

#include <emmintrin.h>

namespace dsml::linalg::simd {
namespace {

void gemm_row_block_sse2(const double* a, std::size_t lda, const double* b,
                         std::size_t ldb, double* c, std::size_t ldc,
                         std::size_t i0, std::size_t i1, std::size_t k0,
                         std::size_t k1, std::size_t n) {
  for (std::size_t i = i0; i < i1; ++i) {
    const double* arow = a + i * lda;
    double* crow = c + i * ldc;
    for (std::size_t k = k0; k < k1; ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b + k * ldb;
      const __m128d av = _mm_set1_pd(aik);
      std::size_t j = 0;
      for (; j + 2 <= n; j += 2) {
        const __m128d bv = _mm_loadu_pd(brow + j);
        __m128d cv = _mm_loadu_pd(crow + j);
        cv = _mm_add_pd(cv, _mm_mul_pd(av, bv));
        _mm_storeu_pd(crow + j, cv);
      }
      for (; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void gemv_sse2(const double* a, std::size_t lda, std::size_t m, std::size_t n,
               const double* x, double* y) {
  std::size_t i = 0;
  for (; i + 2 <= m; i += 2) {
    const double* r0 = a + i * lda;
    const double* r1 = r0 + lda;
    __m128d acc = _mm_setzero_pd();
    for (std::size_t j = 0; j < n; ++j) {
      const __m128d av = _mm_set_pd(r1[j], r0[j]);
      const __m128d xv = _mm_set1_pd(x[j]);
      acc = _mm_add_pd(acc, _mm_mul_pd(av, xv));
    }
    _mm_storeu_pd(y + i, acc);
  }
  for (; i < m; ++i) {
    const double* arow = a + i * lda;
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) s += arow[j] * x[j];
    y[i] = s;
  }
}

void gemv_columns_sse2(const double* a, std::size_t lda, std::size_t m,
                       const std::size_t* cols, std::size_t n_cols,
                       const double* beta, double* y) {
  std::size_t i = 0;
  for (; i + 2 <= m; i += 2) {
    const double* r0 = a + i * lda;
    const double* r1 = r0 + lda;
    __m128d acc = _mm_setzero_pd();
    for (std::size_t k = 0; k < n_cols; ++k) {
      const std::size_t c = cols[k];
      const __m128d av = _mm_set_pd(r1[c], r0[c]);
      const __m128d bv = _mm_set1_pd(beta[k]);
      acc = _mm_add_pd(acc, _mm_mul_pd(av, bv));
    }
    _mm_storeu_pd(y + i, acc);
  }
  for (; i < m; ++i) {
    const double* arow = a + i * lda;
    double s = 0.0;
    for (std::size_t k = 0; k < n_cols; ++k) s += arow[cols[k]] * beta[k];
    y[i] = s;
  }
}

void gemm_row_block_f32_sse2(const float* a, std::size_t lda, const float* b,
                             std::size_t ldb, float* c, std::size_t ldc,
                             std::size_t i0, std::size_t i1, std::size_t k0,
                             std::size_t k1, std::size_t n) {
  for (std::size_t i = i0; i < i1; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (std::size_t k = k0; k < k1; ++k) {
      const float aik = arow[k];
      if (aik == 0.0f) continue;
      const float* brow = b + k * ldb;
      const __m128 av = _mm_set1_ps(aik);
      std::size_t j = 0;
      for (; j + 4 <= n; j += 4) {
        const __m128 bv = _mm_loadu_ps(brow + j);
        __m128 cv = _mm_loadu_ps(crow + j);
        cv = _mm_add_ps(cv, _mm_mul_ps(av, bv));
        _mm_storeu_ps(crow + j, cv);
      }
      for (; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void axpy_f32_sse2(std::size_t n, float a, const float* x, float* y) {
  const __m128 av = _mm_set1_ps(a);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 xv = _mm_loadu_ps(x + i);
    __m128 yv = _mm_loadu_ps(y + i);
    yv = _mm_add_ps(yv, _mm_mul_ps(av, xv));
    _mm_storeu_ps(y + i, yv);
  }
  for (; i < n; ++i) y[i] += a * x[i];
}

constexpr SimdOps kSse2Ops = {
    "sse2",          gemm_row_block_sse2,     gemv_sse2,
    gemv_columns_sse2, gemm_row_block_f32_sse2, axpy_f32_sse2,
};

}  // namespace

const SimdOps* sse2_ops() noexcept { return &kSse2Ops; }

}  // namespace dsml::linalg::simd

#else  // the build requested this TU without SSE2 codegen

namespace dsml::linalg::simd {
const SimdOps* sse2_ops() noexcept { return nullptr; }
}  // namespace dsml::linalg::simd

#endif
