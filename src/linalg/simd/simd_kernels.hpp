// Vector kernel entry points for the runtime-dispatched `simd` backend.
//
// Each TU in this directory (kernels_avx2.cpp, kernels_sse2.cpp) is compiled
// with its own arch flags and exports one SimdOps table; backend.cpp picks a
// table at startup via cpuid. This header is deliberately self-contained
// (nothing but <cstddef>) so the vector TUs depend on no other linalg header
// and the linalg_simd layer stays a leaf under common.
//
// Bit-identity contract for the double kernels: every operation pairs an
// explicit vector multiply with an explicit vector add (never a fused
// multiply-add), vectorized across *independent* output elements, so each
// scalar accumulation chain sees exactly the same sequence of IEEE roundings
// as the blocked kernels in kernels.cpp. The TUs are compiled with
// -ffp-contract=off so the compiler cannot re-fuse those pairs. The f32
// kernels are exempt from that contract — they serve the error-budgeted f32
// inference path and use FMA on purpose.
#pragma once

#include <cstddef>

namespace dsml::linalg::simd {

/// One backend variant's kernel table. Function pointers are never null in a
/// table returned by avx2_ops()/sse2_ops().
struct SimdOps {
  /// Variant tag for diagnostics and bench output ("avx2", "sse2").
  const char* variant;

  /// One row block of C += A * B over rows [i0, i1) and depth [k0, k1);
  /// identical loop structure (and identical per-element rounding) to the
  /// scalar gemm_row_block in kernels.cpp, including the aik == 0.0 skip.
  void (*gemm_row_block)(const double* a, std::size_t lda, const double* b,
                         std::size_t ldb, double* c, std::size_t ldc,
                         std::size_t i0, std::size_t i1, std::size_t k0,
                         std::size_t k1, std::size_t n);

  /// y[i] = sum_j a(i, j) * x[j]. Vectorized across rows (each lane owns one
  /// row's serial ascending-j reduction), so per-element order matches the
  /// scalar gemv exactly.
  void (*gemv)(const double* a, std::size_t lda, std::size_t m, std::size_t n,
               const double* x, double* y);

  /// y[i] = sum_k a(i, cols[k]) * beta[k]; same across-rows lane layout as
  /// gemv.
  void (*gemv_columns)(const double* a, std::size_t lda, std::size_t m,
                       const std::size_t* cols, std::size_t n_cols,
                       const double* beta, double* y);

  /// f32 row block of C += A * B (layout as gemm_row_block). FMA allowed:
  /// the f32 path is error-budgeted, not bit-pinned.
  void (*gemm_row_block_f32)(const float* a, std::size_t lda, const float* b,
                             std::size_t ldb, float* c, std::size_t ldc,
                             std::size_t i0, std::size_t i1, std::size_t k0,
                             std::size_t k1, std::size_t n);

  /// y[i] += a * x[i] over n floats (the f32 LR column-accumulate kernel).
  void (*axpy_f32)(std::size_t n, float a, const float* x, float* y);
};

/// The AVX2+FMA table, or nullptr when this build carries no AVX2 TU.
/// Callers must still gate on cpuid before using it.
const SimdOps* avx2_ops() noexcept;

/// The SSE2 table, or nullptr when this build carries no SSE2 TU.
const SimdOps* sse2_ops() noexcept;

}  // namespace dsml::linalg::simd
