// Cache-blocked dense kernels and a reusable scratch-buffer Workspace.
//
// These are the hot inner loops beneath Matrix and the batched ML paths
// (Mlp batched prediction, linear-regression prediction, GEMM). Two rules
// govern every kernel here:
//
//  1. Accumulation is k-innermost-ascending with contiguous row spans, so
//     every kernel is bit-identical to the naive reference loop it replaces
//     (tiling reorders *which* output tile is produced first, never the
//     order of additions into one output element). Golden tests in
//     tests/test_kernels.cpp pin this down.
//  2. No kernel allocates: callers pass output storage and (where scratch is
//     needed) a Workspace, so per-call heap traffic on hot paths is zero.
//
// The j-inner loops accumulate into independent output elements (no
// loop-carried reduction), which lets the compiler autovectorize them at -O2
// without -ffast-math; the per-row dot kernels (gemv/gemv_columns) keep the
// serial reduction order on purpose so they stay bit-compatible with dot().
//
// Since the backend-dispatch layer (backend.hpp) every public kernel here
// routes through the active backend's table (naive | blocked | simd). All
// backends are bit-identical for double, so callers never observe a
// numerical difference — only throughput changes. gemm_accumulate_reference
// stays a direct call to the naive loop: it is the golden baseline the
// equivalence gates compare whichever backend is active against.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dsml::linalg {

/// An arena of reusable double buffers. take() hands out a span of the
/// requested size (contents unspecified); Scope restores the arena to its
/// entry state on destruction so nested users compose. Buffers are recycled
/// across calls, so steady-state take() performs no allocation.
///
/// A Workspace is single-threaded by design; parallel code takes one per
/// thread via tls_workspace().
class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// RAII marker: returns the arena to its entry state, releasing every
  /// buffer taken inside the scope for reuse (capacity is kept).
  class Scope {
   public:
    explicit Scope(Workspace& ws) noexcept : ws_(ws), mark_(ws.used_) {}
    ~Scope() { ws_.used_ = mark_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Workspace& ws_;
    std::size_t mark_;
  };

  /// A buffer of n doubles, valid until the enclosing Scope ends. Spans from
  /// earlier take() calls stay valid across later ones.
  std::span<double> take(std::size_t n);

  /// Buffers currently handed out (for tests).
  std::size_t buffers_in_use() const noexcept { return used_; }

 private:
  std::vector<std::vector<double>> slabs_;
  std::size_t used_ = 0;
};

/// The calling thread's Workspace. Per-thread, so concurrent batched
/// predictions never share scratch (the TSan suite exercises this).
Workspace& tls_workspace();

namespace kernels {

/// Rows of C produced per tile; sized so a C tile plus the B depth-tile stay
/// cache resident.
inline constexpr std::size_t kRowBlock = 64;
/// Depth (k) per tile: bounds the B working set that must persist across one
/// row block.
inline constexpr std::size_t kDepthBlock = 256;
/// B operands at or below this footprint are treated as cache resident and
/// multiplied in a single depth pass (roughly half a typical 1-2 MiB L2, so
/// A/C row traffic still fits alongside).
inline constexpr std::size_t kCacheResidentBytes = 1u << 20;

/// C(m x n) += A(m x k) * B(k x n), all row-major with the given leading
/// dimensions. C must be initialized by the caller. Cache-blocked over rows
/// and depth; bit-identical to gemm_accumulate_reference.
void gemm_accumulate(const double* a, std::size_t lda, const double* b,
                     std::size_t ldb, double* c, std::size_t ldc,
                     std::size_t m, std::size_t k, std::size_t n);

/// Naive i-k-j reference for gemm_accumulate — the golden baseline the
/// equivalence tests compare against. Not for hot paths.
void gemm_accumulate_reference(const double* a, std::size_t lda,
                               const double* b, std::size_t ldb, double* c,
                               std::size_t ldc, std::size_t m, std::size_t k,
                               std::size_t n);

/// out(cols x rows) = transpose of a(rows x cols); blocked 32x32 tiles.
void transpose(const double* a, std::size_t lda, std::size_t rows,
               std::size_t cols, double* out, std::size_t ldo);

/// y[i] = sum_j a(i, j) * x[j], j ascending (same reduction order as dot()).
void gemv(const double* a, std::size_t lda, std::size_t m, std::size_t n,
          const double* x, double* y);

/// Fused select-columns GEMV: y[i] = sum_k a(i, cols[k]) * beta[k], k
/// ascending. Equivalent to select_columns(cols).multiply(beta) without
/// materialising the column subset.
void gemv_columns(const double* a, std::size_t lda, std::size_t m,
                  const std::size_t* cols, std::size_t n_cols,
                  const double* beta, double* y);

/// One batched dense layer: out(rows x fan_out) = act(x(rows x fan_in) * wT
/// + bias), where w is the fan_out x fan_in row-major weight matrix and act
/// is the logistic sigmoid when `sigmoid_activation`, identity otherwise.
/// Uses `ws` for the transposed-weight scratch. Bit-identical to the scalar
/// per-sample forward pass (bias first, then fan-in terms ascending).
void affine_forward(const double* x, std::size_t ldx, std::size_t rows,
                    std::size_t fan_in, const double* w, const double* bias,
                    std::size_t fan_out, bool sigmoid_activation, double* out,
                    std::size_t ldo, Workspace& ws);

}  // namespace kernels
}  // namespace dsml::linalg
