#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.hpp"

namespace dsml::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows.size() > 0 ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    DSML_REQUIRE(row.size() == cols_, "Matrix: ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  DSML_REQUIRE(r < rows_ && c < cols_, "Matrix::at: index out of range");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  DSML_REQUIRE(r < rows_ && c < cols_, "Matrix::at: index out of range");
  return (*this)(r, c);
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  kernels::transpose(data_.data(), cols_, rows_, cols_, t.data_.data(), rows_);
  return t;
}

Matrix Matrix::multiply(const Matrix& other) const {
  DSML_REQUIRE(cols_ == other.rows_, "Matrix::multiply: dimension mismatch");
  Matrix out(rows_, other.cols_);
  kernels::gemm_accumulate(data_.data(), cols_, other.data_.data(),
                           other.cols_, out.data_.data(), other.cols_, rows_,
                           cols_, other.cols_);
  return out;
}

Vector Matrix::multiply(std::span<const double> v) const {
  DSML_REQUIRE(v.size() == cols_, "Matrix::multiply: vector size mismatch");
  Vector out(rows_, 0.0);
  kernels::gemv(data_.data(), cols_, rows_, cols_, v.data(), out.data());
  return out;
}

Vector Matrix::multiply_transposed(std::span<const double> v) const {
  DSML_REQUIRE(v.size() == rows_,
               "Matrix::multiply_transposed: vector size mismatch");
  Vector out(cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double vi = v[i];
    if (vi == 0.0) continue;
    const auto r = row(i);
    for (std::size_t j = 0; j < cols_; ++j) out[j] += vi * r[j];
  }
  return out;
}

Matrix Matrix::gram() const {
  Matrix g(cols_, cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const auto r = row(i);
    for (std::size_t a = 0; a < cols_; ++a) {
      const double ra = r[a];
      if (ra == 0.0) continue;
      for (std::size_t b = a; b < cols_; ++b) {
        g(a, b) += ra * r[b];
      }
    }
  }
  for (std::size_t a = 0; a < cols_; ++a) {
    for (std::size_t b = 0; b < a; ++b) {
      g(a, b) = g(b, a);
    }
  }
  return g;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  DSML_REQUIRE(same_shape(other), "Matrix::operator+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  DSML_REQUIRE(same_shape(other), "Matrix::operator-=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) noexcept {
  for (double& x : data_) x *= s;
  return *this;
}

Matrix Matrix::select_columns(std::span<const std::size_t> cols) const {
  Matrix out(rows_, cols.size());
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t j = 0; j < cols.size(); ++j) {
      DSML_REQUIRE(cols[j] < cols_, "select_columns: index out of range");
      out(r, j) = (*this)(r, cols[j]);
    }
  }
  return out;
}

Matrix Matrix::select_rows(std::span<const std::size_t> rows) const {
  Matrix out(rows.size(), cols_);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    DSML_REQUIRE(rows[i] < rows_, "select_rows: index out of range");
    std::copy_n(row(rows[i]).data(), cols_, out.row(i).data());
  }
  return out;
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  DSML_REQUIRE(a.same_shape(b), "max_abs_diff: shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    m = std::max(m, std::abs(a.data_[i] - b.data_[i]));
  }
  return m;
}

double dot(std::span<const double> a, std::span<const double> b) {
  DSML_REQUIRE(a.size() == b.size(), "dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  DSML_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

Vector subtract(std::span<const double> a, std::span<const double> b) {
  DSML_REQUIRE(a.size() == b.size(), "subtract: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vector add(std::span<const double> a, std::span<const double> b) {
  DSML_REQUIRE(a.size() == b.size(), "add: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vector scale(std::span<const double> a, double s) {
  Vector out(a.begin(), a.end());
  for (double& x : out) x *= s;
  return out;
}

}  // namespace dsml::linalg
