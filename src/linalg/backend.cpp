#include "linalg/backend.hpp"

#include <atomic>
#include <cstdlib>

#include "common/error.hpp"
#include "linalg/simd/simd_kernels.hpp"

namespace dsml::linalg {

namespace {

// Override slot (set_backend/ScopedBackend) and the lazily cached
// DSML_BACKEND/cpuid resolution. Both hold -1 for "unset"; plain relaxed
// atomics suffice because a racing first resolution computes the same value
// on every thread and the kernels carry no data dependency on the winner.
std::atomic<int> g_override{-1};
std::atomic<int> g_resolved_default{-1};

const simd::SimdOps* detect_simd_ops() noexcept {
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
#if defined(DSML_LINALG_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    if (const simd::SimdOps* ops = simd::avx2_ops()) return ops;
  }
#endif
#if defined(DSML_LINALG_HAVE_SSE2)
  if (__builtin_cpu_supports("sse2")) {
    if (const simd::SimdOps* ops = simd::sse2_ops()) return ops;
  }
#endif
#endif
  return nullptr;
}

Backend resolve_default() {
  const char* env = std::getenv("DSML_BACKEND");
  if (env != nullptr && *env != '\0') return parse_backend(env);
  return simd_available() ? Backend::kSimd : Backend::kBlocked;
}

}  // namespace

const char* to_string(Backend backend) noexcept {
  switch (backend) {
    case Backend::kNaive:
      return "naive";
    case Backend::kBlocked:
      return "blocked";
    case Backend::kSimd:
      return "simd";
  }
  return "?";
}

Backend parse_backend(const std::string& name) {
  if (name == "naive") return Backend::kNaive;
  if (name == "blocked") return Backend::kBlocked;
  if (name == "simd") return Backend::kSimd;
  throw InvalidArgument("unknown linalg backend '" + name +
                        "' (expected naive, blocked or simd)");
}

const simd::SimdOps* detail::selected_simd_ops() noexcept {
  // cpuid never changes while the process runs, so detect once and cache.
  static const simd::SimdOps* const ops = detect_simd_ops();
  return ops;
}

bool simd_available() noexcept {
  return detail::selected_simd_ops() != nullptr;
}

const char* simd_variant() noexcept {
  const simd::SimdOps* ops = detail::selected_simd_ops();
  return ops != nullptr ? ops->variant : "none";
}

Backend active_backend() {
  const int override_slot = g_override.load(std::memory_order_relaxed);
  if (override_slot >= 0) return static_cast<Backend>(override_slot);
  int resolved = g_resolved_default.load(std::memory_order_relaxed);
  if (resolved < 0) {
    resolved = static_cast<int>(resolve_default());
    g_resolved_default.store(resolved, std::memory_order_relaxed);
  }
  return static_cast<Backend>(resolved);
}

void set_backend(Backend backend) noexcept {
  g_override.store(static_cast<int>(backend), std::memory_order_relaxed);
}

void reset_backend() noexcept {
  g_override.store(-1, std::memory_order_relaxed);
  g_resolved_default.store(-1, std::memory_order_relaxed);
}

ScopedBackend::ScopedBackend(Backend backend) noexcept
    : previous_(g_override.exchange(static_cast<int>(backend),
                                    std::memory_order_relaxed)) {}

ScopedBackend::~ScopedBackend() {
  g_override.store(previous_, std::memory_order_relaxed);
}

}  // namespace dsml::linalg
