// Dense row-major matrix and vector types.
//
// Sized for the library's needs: regression design matrices of a few
// thousand rows by a few dozen columns and MLP weight matrices of a few
// hundred entries. The multiply/transpose entry points delegate to the
// cache-blocked kernels in linalg/kernels.hpp, which are bit-identical to
// the naive loops they replaced (see docs/PERFORMANCE.md for the argument).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace dsml::linalg {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Construct from nested initializer list (row major); all rows must have
  /// equal width.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Checked element access.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  std::span<double> data() noexcept { return data_; }
  std::span<const double> data() const noexcept { return data_; }

  Matrix transposed() const;

  /// this * other (dims must agree).
  Matrix multiply(const Matrix& other) const;

  /// this * v.
  Vector multiply(std::span<const double> v) const;

  /// transpose(this) * v  — avoids materialising the transpose.
  Vector multiply_transposed(std::span<const double> v) const;

  /// transpose(this) * this, exploiting symmetry (Gram matrix for normal
  /// equations and covariance computations).
  Matrix gram() const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s) noexcept;

  bool same_shape(const Matrix& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  /// Extract the given columns (in order) into a new matrix.
  Matrix select_columns(std::span<const std::size_t> cols) const;

  /// Extract the given rows (in order) into a new matrix.
  Matrix select_rows(std::span<const std::size_t> rows) const;

  /// Max |a_ij - b_ij|; matrices must be the same shape.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// Vector helpers (free functions over std::vector<double>).
double dot(std::span<const double> a, std::span<const double> b);
double norm2(std::span<const double> a);
void axpy(double alpha, std::span<const double> x, std::span<double> y);
Vector subtract(std::span<const double> a, std::span<const double> b);
Vector add(std::span<const double> a, std::span<const double> b);
Vector scale(std::span<const double> a, double s);

}  // namespace dsml::linalg
