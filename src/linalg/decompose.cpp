#include "linalg/decompose.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dsml::linalg {

namespace {
constexpr double kRankTol = 1e-12;
}

QR::QR(const Matrix& a) : m_(a.rows()), n_(a.cols()), qr_(a), rdiag_(a.cols()) {
  DSML_REQUIRE(m_ >= n_ && n_ > 0, "QR: requires m >= n > 0");
  for (std::size_t k = 0; k < n_; ++k) {
    // Compute the norm of column k below (and including) the diagonal.
    double norm = 0.0;
    for (std::size_t i = k; i < m_; ++i) {
      norm = std::hypot(norm, qr_(i, k));
    }
    if (norm == 0.0) {
      rdiag_[k] = 0.0;
      continue;
    }
    if (qr_(k, k) < 0.0) norm = -norm;
    for (std::size_t i = k; i < m_; ++i) qr_(i, k) /= norm;
    qr_(k, k) += 1.0;
    // Apply the reflector to the remaining columns.
    for (std::size_t j = k + 1; j < n_; ++j) {
      double s = 0.0;
      for (std::size_t i = k; i < m_; ++i) s += qr_(i, k) * qr_(i, j);
      s = -s / qr_(k, k);
      for (std::size_t i = k; i < m_; ++i) qr_(i, j) += s * qr_(i, k);
    }
    rdiag_[k] = -norm;
  }
  double max_diag = 0.0;
  double min_diag = std::numeric_limits<double>::infinity();
  for (double d : rdiag_) {
    max_diag = std::max(max_diag, std::abs(d));
    min_diag = std::min(min_diag, std::abs(d));
  }
  diag_ratio_ = max_diag > 0.0 ? min_diag / max_diag : 0.0;
  rank_deficient_ = (max_diag == 0.0) || (min_diag <= kRankTol * max_diag);
}

Vector QR::apply_qt(std::span<const double> b) const {
  DSML_REQUIRE(b.size() == m_, "QR::apply_qt: size mismatch");
  Vector y(b.begin(), b.end());
  for (std::size_t k = 0; k < n_; ++k) {
    if (rdiag_[k] == 0.0 && qr_(k, k) == 0.0) continue;
    double s = 0.0;
    for (std::size_t i = k; i < m_; ++i) s += qr_(i, k) * y[i];
    if (qr_(k, k) == 0.0) continue;
    s = -s / qr_(k, k);
    for (std::size_t i = k; i < m_; ++i) y[i] += s * qr_(i, k);
  }
  return y;
}

Vector QR::solve(std::span<const double> b) const {
  Vector y = apply_qt(b);
  // Truncated back substitution in R: pivots below kRankTol of the largest
  // correspond to (numerically) unidentifiable directions — e.g. duplicated
  // or exactly collinear design columns — whose coefficients we pin to zero
  // instead of amplifying rounding noise into huge cancelling pairs.
  double max_diag = 0.0;
  for (double d : rdiag_) max_diag = std::max(max_diag, std::abs(d));
  const double pivot_floor = kRankTol * max_diag;
  Vector x(n_, 0.0);
  for (std::size_t kk = n_; kk-- > 0;) {
    const double diag = rdiag_[kk];
    if (std::abs(diag) <= pivot_floor) {
      x[kk] = 0.0;
      continue;
    }
    double s = y[kk];
    for (std::size_t j = kk + 1; j < n_; ++j) s -= qr_(kk, j) * x[j];
    x[kk] = s / diag;
  }
  return x;
}

Matrix QR::r() const {
  Matrix r(n_, n_);
  for (std::size_t i = 0; i < n_; ++i) {
    r(i, i) = rdiag_[i];
    for (std::size_t j = i + 1; j < n_; ++j) r(i, j) = qr_(i, j);
  }
  return r;
}

Cholesky::Cholesky(const Matrix& a) : l_(a.rows(), a.cols()) {
  DSML_REQUIRE(a.rows() == a.cols() && a.rows() > 0,
               "Cholesky: matrix must be square");
  const std::size_t n = a.rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
      if (i == j) {
        if (s <= 0.0) {
          throw NumericalError("Cholesky: matrix is not positive definite");
        }
        l_(i, i) = std::sqrt(s);
      } else {
        l_(i, j) = s / l_(j, j);
      }
    }
  }
}

Vector Cholesky::solve(std::span<const double> b) const {
  const std::size_t n = l_.rows();
  DSML_REQUIRE(b.size() == n, "Cholesky::solve: size mismatch");
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l_(i, k) * y[k];
    y[i] = s / l_(i, i);
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= l_(k, ii) * x[k];
    x[ii] = s / l_(ii, ii);
  }
  return x;
}

Matrix Cholesky::inverse() const {
  const std::size_t n = l_.rows();
  Matrix inv(n, n);
  Vector e(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    e[j] = 1.0;
    Vector col = solve(e);
    e[j] = 0.0;
    for (std::size_t i = 0; i < n; ++i) inv(i, j) = col[i];
  }
  return inv;
}

Vector solve_least_squares(const Matrix& a, std::span<const double> b) {
  return QR(a).solve(b);
}

Vector solve_upper_triangular(const Matrix& r, std::span<const double> b) {
  const std::size_t n = r.rows();
  DSML_REQUIRE(r.cols() == n && b.size() == n,
               "solve_upper_triangular: shape mismatch");
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = b[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= r(ii, j) * x[j];
    DSML_REQUIRE(std::abs(r(ii, ii)) > 0.0,
                 "solve_upper_triangular: zero pivot");
    x[ii] = s / r(ii, ii);
  }
  return x;
}

Matrix xtx_inverse_from_qr(const QR& qr) {
  // (X^T X)^-1 = R^-1 R^-T. Compute R^-1 column by column, then multiply.
  const Matrix r = qr.r();
  const std::size_t n = r.rows();
  Matrix rinv(n, n);
  Vector e(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    e[j] = 1.0;
    Vector col = solve_upper_triangular(r, e);
    e[j] = 0.0;
    for (std::size_t i = 0; i < n; ++i) rinv(i, j) = col[i];
  }
  // (X^T X)^-1 = R^-1 * (R^-1)^T
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      double s = 0.0;
      for (std::size_t k = std::max(i, j); k < n; ++k) {
        s += rinv(i, k) * rinv(j, k);
      }
      out(i, j) = s;
      out(j, i) = s;
    }
  }
  return out;
}

}  // namespace dsml::linalg
