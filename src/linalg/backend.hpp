// Runtime kernel-backend selection for the linalg dispatch layer.
//
// Every public kernel in kernels.hpp (and the f32 kernels in kernels_f32.hpp)
// routes through a per-backend table chosen here. Three backends exist:
//
//   naive   — the reference loops (single full-depth GEMM pass, scalar dots).
//   blocked — the cache-blocked scalar kernels (the pre-dispatch default).
//   simd    — vector kernels from src/linalg/simd/, cpuid-gated (AVX2+FMA
//             preferred, SSE2 fallback; falls back to blocked when neither
//             vector TU is usable on this machine).
//
// All three produce bit-identical double results: the simd kernels vectorize
// across independent output elements (or across rows for the gemv
// reductions) with explicit mul-then-add, never reassociating or fusing a
// single accumulation chain. tests/test_backend.cpp pins this with exact
// equality over remainder-lane shapes, and every pre-existing bench
// bit-identity gate runs against whichever backend is active.
//
// Selection, in priority order:
//   1. set_backend()/ScopedBackend — the global `--backend` CLI flag, tests.
//   2. The DSML_BACKEND environment variable ("naive"|"blocked"|"simd";
//      anything else raises InvalidArgument at first dispatch).
//   3. cpuid: simd when a vector TU matches the CPU, else blocked.
#pragma once

#include <iosfwd>
#include <string>

namespace dsml::linalg {

enum class Backend {
  kNaive,
  kBlocked,
  kSimd,
};

/// "naive", "blocked" or "simd".
const char* to_string(Backend backend) noexcept;

/// Parses a backend name as accepted by --backend / DSML_BACKEND (exact,
/// lowercase). Throws InvalidArgument for anything else, listing the valid
/// names.
Backend parse_backend(const std::string& name);

/// True when a vector kernel TU is compiled in and the running CPU supports
/// it (checked once via cpuid).
bool simd_available() noexcept;

/// Which vector variant the simd backend dispatches to on this machine:
/// "avx2", "sse2", or "none" (simd then aliases the blocked kernels).
const char* simd_variant() noexcept;

/// The backend all kernels currently dispatch through. Resolves the
/// DSML_BACKEND override lazily on first use; a malformed value raises
/// InvalidArgument here rather than being silently ignored.
Backend active_backend();

/// Process-wide backend override (the global --backend flag). Takes
/// precedence over DSML_BACKEND and cpuid until reset_backend().
void set_backend(Backend backend) noexcept;

/// Drops any set_backend() override and forgets the cached DSML_BACKEND
/// resolution, so the next active_backend() re-reads the environment.
/// Primarily for tests that mutate DSML_BACKEND.
void reset_backend() noexcept;

/// RAII backend override: applies `backend` on construction and restores the
/// previous override state (including "no override") on destruction. The CLI
/// uses one per --backend run so repeated in-process invocations stay
/// isolated; tests use it to pin each backend in turn.
class ScopedBackend {
 public:
  explicit ScopedBackend(Backend backend) noexcept;
  ~ScopedBackend();
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  int previous_;  // raw override slot: -1 = none, else static_cast<int>(Backend)
};

namespace simd {
struct SimdOps;
}

namespace detail {
/// The cpuid-selected vector ops table, or nullptr when no vector TU matches
/// this machine. Internal to the linalg dispatch layer (kernels.cpp,
/// kernels_f32.cpp); everyone else asks simd_available()/simd_variant().
const simd::SimdOps* selected_simd_ops() noexcept;
}  // namespace detail

}  // namespace dsml::linalg
