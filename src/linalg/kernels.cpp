#include "linalg/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "common/metrics.hpp"
#include "linalg/backend.hpp"
#include "linalg/simd/simd_kernels.hpp"

namespace dsml::linalg {

std::span<double> Workspace::take(std::size_t n) {
  if (used_ == slabs_.size()) slabs_.emplace_back();
  std::vector<double>& slab = slabs_[used_++];
  if (slab.size() < n) {
    slab.resize(n);
    // High-water mark of any single workspace slab; set_max keeps only the
    // largest, so hot-loop re-takes of an already-sized slab never touch it.
    static metrics::Gauge& high_water = metrics::gauge("linalg.workspace_bytes");
    high_water.set_max(static_cast<double>(n * sizeof(double)));
  }
  return {slab.data(), n};
}

Workspace& tls_workspace() {
  thread_local Workspace ws;
  return ws;
}

namespace kernels {

namespace {

// One row block of C += A * B, over the depth slice [k0, k1). The j loop is
// innermost over a contiguous C row, so additions into c[i][j] happen in
// ascending k order — identical to the naive reference. The aik == 0.0 skip
// mirrors Matrix::multiply's historical sparsity shortcut (weight masks zero
// whole entries), and keeps 0 * Inf / 0 * NaN behavior unchanged. The simd
// backend's row blocks reproduce this loop with vector mul+add across the
// independent j elements (see simd/simd_kernels.hpp for the contract).
void gemm_row_block(const double* a, std::size_t lda, const double* b,
                    std::size_t ldb, double* c, std::size_t ldc,
                    std::size_t i0, std::size_t i1, std::size_t k0,
                    std::size_t k1, std::size_t n) {
  for (std::size_t i = i0; i < i1; ++i) {
    const double* arow = a + i * lda;
    double* crow = c + i * ldc;
    for (std::size_t k = k0; k < k1; ++k) {
      const double aik = arow[k];
      if (aik == 0.0) continue;
      const double* brow = b + k * ldb;
      for (std::size_t j = 0; j < n; ++j) {
        crow[j] += aik * brow[j];
      }
    }
  }
}

using RowBlockFn = void (*)(const double*, std::size_t, const double*,
                            std::size_t, double*, std::size_t, std::size_t,
                            std::size_t, std::size_t, std::size_t,
                            std::size_t);

// The cache-blocking driver shared by the blocked and simd backends; only
// the row-block body differs. Depth-splitting pays only when B is too big to
// sit in L2 across a row block: it then bounds the B working set so a tile
// loaded once is reused by all kRowBlock rows. When B already fits, the
// split would just re-walk each C tile per depth slice, so run the full
// depth in one pass. Either way additions into any c[i][j] happen in the
// same ascending-k order, so the result is bit-identical to the reference.
void gemm_tiled(RowBlockFn row_block, const double* a, std::size_t lda,
                const double* b, std::size_t ldb, double* c, std::size_t ldc,
                std::size_t m, std::size_t k, std::size_t n) {
  const std::size_t depth_block =
      k * n * sizeof(double) <= kCacheResidentBytes ? k : kDepthBlock;
  for (std::size_t i0 = 0; i0 < m; i0 += kRowBlock) {
    const std::size_t i1 = std::min(i0 + kRowBlock, m);
    for (std::size_t k0 = 0; k0 < k; k0 += depth_block) {
      const std::size_t k1 = std::min(k0 + depth_block, k);
      row_block(a, lda, b, ldb, c, ldc, i0, i1, k0, k1, n);
    }
  }
}

void gemv_scalar(const double* a, std::size_t lda, std::size_t m,
                 std::size_t n, const double* x, double* y) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * lda;
    double s = 0.0;
    for (std::size_t j = 0; j < n; ++j) s += arow[j] * x[j];
    y[i] = s;
  }
}

void gemv_columns_scalar(const double* a, std::size_t lda, std::size_t m,
                         const std::size_t* cols, std::size_t n_cols,
                         const double* beta, double* y) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* arow = a + i * lda;
    double s = 0.0;
    for (std::size_t k = 0; k < n_cols; ++k) s += arow[cols[k]] * beta[k];
    y[i] = s;
  }
}

// ---------------------------------------------------------------------------
// Backend dispatch. One table per Backend; all double entries are
// bit-identical, so switching backends can never change a result — only how
// fast it arrives. The simd table aliases the blocked entries when no vector
// TU matches this machine (simd_variant() == "none").
// ---------------------------------------------------------------------------

struct KernelTable {
  void (*gemm_accumulate)(const double*, std::size_t, const double*,
                          std::size_t, double*, std::size_t, std::size_t,
                          std::size_t, std::size_t);
  void (*gemv)(const double*, std::size_t, std::size_t, std::size_t,
               const double*, double*);
  void (*gemv_columns)(const double*, std::size_t, std::size_t,
                       const std::size_t*, std::size_t, const double*,
                       double*);
};

void gemm_naive(const double* a, std::size_t lda, const double* b,
                std::size_t ldb, double* c, std::size_t ldc, std::size_t m,
                std::size_t k, std::size_t n) {
  gemm_row_block(a, lda, b, ldb, c, ldc, 0, m, 0, k, n);
}

void gemm_blocked(const double* a, std::size_t lda, const double* b,
                  std::size_t ldb, double* c, std::size_t ldc, std::size_t m,
                  std::size_t k, std::size_t n) {
  gemm_tiled(gemm_row_block, a, lda, b, ldb, c, ldc, m, k, n);
}

void gemm_simd(const double* a, std::size_t lda, const double* b,
               std::size_t ldb, double* c, std::size_t ldc, std::size_t m,
               std::size_t k, std::size_t n) {
  gemm_tiled(detail::selected_simd_ops()->gemm_row_block, a, lda, b, ldb, c,
             ldc, m, k, n);
}

void gemv_simd(const double* a, std::size_t lda, std::size_t m, std::size_t n,
               const double* x, double* y) {
  detail::selected_simd_ops()->gemv(a, lda, m, n, x, y);
}

void gemv_columns_simd(const double* a, std::size_t lda, std::size_t m,
                       const std::size_t* cols, std::size_t n_cols,
                       const double* beta, double* y) {
  detail::selected_simd_ops()->gemv_columns(a, lda, m, cols, n_cols, beta, y);
}

constexpr KernelTable kNaiveTable = {gemm_naive, gemv_scalar,
                                     gemv_columns_scalar};
constexpr KernelTable kBlockedTable = {gemm_blocked, gemv_scalar,
                                       gemv_columns_scalar};
constexpr KernelTable kSimdTable = {gemm_simd, gemv_simd, gemv_columns_simd};

const KernelTable& table_for(Backend backend) {
  switch (backend) {
    case Backend::kNaive:
      return kNaiveTable;
    case Backend::kBlocked:
      return kBlockedTable;
    case Backend::kSimd:
      break;
  }
  return detail::selected_simd_ops() != nullptr ? kSimdTable : kBlockedTable;
}

const KernelTable& active_table() { return table_for(active_backend()); }

inline double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

}  // namespace

void gemm_accumulate(const double* a, std::size_t lda, const double* b,
                     std::size_t ldb, double* c, std::size_t ldc,
                     std::size_t m, std::size_t k, std::size_t n) {
  static metrics::Counter& calls = metrics::counter("linalg.gemm_calls");
  calls.add();
  active_table().gemm_accumulate(a, lda, b, ldb, c, ldc, m, k, n);
}

void gemm_accumulate_reference(const double* a, std::size_t lda,
                               const double* b, std::size_t ldb, double* c,
                               std::size_t ldc, std::size_t m, std::size_t k,
                               std::size_t n) {
  gemm_row_block(a, lda, b, ldb, c, ldc, 0, m, 0, k, n);
}

void transpose(const double* a, std::size_t lda, std::size_t rows,
               std::size_t cols, double* out, std::size_t ldo) {
  constexpr std::size_t kTile = 32;
  for (std::size_t r0 = 0; r0 < rows; r0 += kTile) {
    const std::size_t r1 = std::min(r0 + kTile, rows);
    for (std::size_t c0 = 0; c0 < cols; c0 += kTile) {
      const std::size_t c1 = std::min(c0 + kTile, cols);
      for (std::size_t r = r0; r < r1; ++r) {
        const double* arow = a + r * lda;
        for (std::size_t c = c0; c < c1; ++c) {
          out[c * ldo + r] = arow[c];
        }
      }
    }
  }
}

void gemv(const double* a, std::size_t lda, std::size_t m, std::size_t n,
          const double* x, double* y) {
  active_table().gemv(a, lda, m, n, x, y);
}

void gemv_columns(const double* a, std::size_t lda, std::size_t m,
                  const std::size_t* cols, std::size_t n_cols,
                  const double* beta, double* y) {
  active_table().gemv_columns(a, lda, m, cols, n_cols, beta, y);
}

void affine_forward(const double* x, std::size_t ldx, std::size_t rows,
                    std::size_t fan_in, const double* w, const double* bias,
                    std::size_t fan_out, bool sigmoid_activation, double* out,
                    std::size_t ldo, Workspace& ws) {
  Workspace::Scope scope(ws);
  // wT(fan_in x fan_out) lets the GEMM walk contiguous spans of both inputs.
  std::span<double> wt = ws.take(fan_in * fan_out);
  transpose(w, fan_in, fan_out, fan_in, wt.data(), fan_out);
  // Seed each output row with the bias so the per-element addition sequence
  // is bias first, then x[0]*w[.,0], x[1]*w[.,1], ... — exactly the scalar
  // `z = b[i]; z += w[i][j] * in[j]` loop. The GEMM dispatches through the
  // active backend, so affine_forward inherits naive/blocked/simd behavior
  // (and their shared bit pattern) without a table entry of its own.
  for (std::size_t r = 0; r < rows; ++r) {
    std::copy_n(bias, fan_out, out + r * ldo);
  }
  gemm_accumulate(x, ldx, wt.data(), fan_out, out, ldo, rows, fan_in, fan_out);
  if (sigmoid_activation) {
    for (std::size_t r = 0; r < rows; ++r) {
      double* orow = out + r * ldo;
      for (std::size_t j = 0; j < fan_out; ++j) orow[j] = sigmoid(orow[j]);
    }
  }
}

}  // namespace kernels
}  // namespace dsml::linalg
