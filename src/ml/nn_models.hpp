// The six neural-network training regimes of the paper (§3.2), re-created
// from the documented behaviour of SPSS Clementine's neural network node:
//
//   NN-Q  Quick            — one hidden layer sized by rule of thumb,
//                            decaying learning rate, early stopping;
//   NN-D  Dynamic          — starts with a small hidden layer and grows it
//                            while validation error keeps improving;
//   NN-M  Multiple         — trains several candidate topologies and keeps
//                            the best;
//   NN-P  Prune            — trains a deliberately large network, then
//                            alternately removes the weakest hidden units
//                            and input features while quality holds;
//   NN-E  Exhaustive prune — the slowest, most thorough search: a wide
//                            topology menu, long training, a full prune
//                            schedule and magnitude weight-pruning; usually
//                            the most accurate (paper §4.2);
//   NN-S  Single           — one small hidden layer with a constant
//                            learning rate; the Ipek-et-al. baseline.
//
// All regimes follow Clementine's protocol (§3.3): the training data is
// split into random halves, one used for weight updates and one to "simulate"
// (select topology / stop early); the best network is finally fine-tuned on
// the full training set.
#pragma once

#include <optional>

#include "data/encoder.hpp"
#include "ml/mlp.hpp"
#include "ml/model.hpp"

namespace dsml::ml {

enum class NnMethod {
  kQuick,
  kDynamic,
  kMultiple,
  kPrune,
  kExhaustivePrune,
  kSingle,
};

const char* to_string(NnMethod method) noexcept;

class NeuralRegressor final : public Regressor {
 public:
  struct Options {
    NnMethod method = NnMethod::kExhaustivePrune;
    std::uint64_t seed = 0x5eed;
    /// 0 = per-method default.
    std::size_t max_epochs = 0;
    double momentum = 0.9;
    /// Scales every per-method epoch budget; lets tests run fast and lets
    /// callers buy accuracy with time.
    double epoch_scale = 1.0;
  };

  NeuralRegressor();
  explicit NeuralRegressor(Options options);

  void fit(const data::Dataset& train) override;
  std::vector<double> predict(const data::Dataset& dataset) const override;
  std::string name() const override;
  std::vector<PredictorImportance> importance() const override;
  bool fitted() const noexcept override { return net_.has_value(); }

  /// The trained network (fit() required).
  const Mlp& network() const;

  const Options& options() const noexcept { return options_; }

  /// The fitted feature encoder (read-only; snapshot builders such as the
  /// f32 serving path fold its scaling into their own tables).
  const data::Encoder& encoder() const noexcept { return encoder_; }

  /// Persist / restore a fitted model (see ml/serialize.hpp for the
  /// file-level facade).
  void save(serial::Writer& writer) const;
  static NeuralRegressor load(serial::Reader& reader);

 private:
  struct Candidate {
    Mlp net;
    double val_mse = 0.0;
  };

  Candidate train_candidate(std::vector<std::size_t> hidden,
                            const linalg::Matrix& x_learn,
                            std::span<const double> y_learn,
                            const linalg::Matrix& x_val,
                            std::span<const double> y_val,
                            std::size_t max_epochs, double lr0, double lr1,
                            std::size_t patience, Rng& rng) const;

  Candidate run_quick(const linalg::Matrix& xl, std::span<const double> yl,
                      const linalg::Matrix& xv, std::span<const double> yv,
                      Rng& rng) const;
  Candidate run_single(const linalg::Matrix& xl, std::span<const double> yl,
                       const linalg::Matrix& xv, std::span<const double> yv,
                       Rng& rng) const;
  Candidate run_dynamic(const linalg::Matrix& xl, std::span<const double> yl,
                        const linalg::Matrix& xv, std::span<const double> yv,
                        Rng& rng) const;
  Candidate run_multiple(const linalg::Matrix& xl, std::span<const double> yl,
                         const linalg::Matrix& xv, std::span<const double> yv,
                         bool wide_menu, Rng& rng) const;
  Candidate run_prune(Candidate start, const linalg::Matrix& xl,
                      std::span<const double> yl, const linalg::Matrix& xv,
                      std::span<const double> yv, bool exhaustive,
                      Rng& rng) const;

  std::size_t scaled(std::size_t epochs) const;

  Options options_;
  data::Encoder encoder_;
  std::optional<Mlp> net_;
  linalg::Matrix train_x_;           // retained for importance sweeps
  std::vector<double> train_y_scaled_;
};

}  // namespace dsml::ml
