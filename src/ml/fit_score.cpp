#include "ml/fit_score.hpp"

#include "common/failpoint.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace dsml::engine {

FitScoreResult fit_and_score(const FitScoreRequest& request) {
  DSML_REQUIRE(request.train != nullptr, "fit_and_score: null train dataset");
  DSML_REQUIRE(request.model.make != nullptr,
               "fit_and_score: model has no factory");
  trace::Span cell_span([&] { return "fit_and_score " + request.model.name; },
                        "engine");
  static metrics::Counter& cells = metrics::counter("engine.fit_score.cells");
  static metrics::Counter& failures =
      metrics::counter("engine.fit_score.failures");
  cells.add();

  FitScoreResult result;
  result.name = request.model.name;
  try {
    if (request.failpoint != nullptr) DSML_FAIL(request.failpoint);
    if (request.estimate) {
      result.estimate =
          ml::estimate_error(request.model.make, *request.train,
                             request.validation);
    }
    if (request.fit) {
      auto model = request.model.make();
      trace::Stopwatch fit_timer;
      model->fit(*request.train);
      result.fit_seconds = fit_timer.seconds();
      result.model = std::move(model);
      if (request.score != nullptr) {
        result.predictions = result.model->predict(*request.score);
      }
    }
  } catch (const std::exception& e) {
    failures.add();
    result.model.reset();
    result.predictions.clear();
    result.failure =
        FailureRecord{request.model.name, error_kind(e), e.what()};
  }
  return result;
}

}  // namespace dsml::engine
