// Error metrics. The paper reports the mean (and, for Figures 7–8, standard
// deviation) of the percentage prediction error 100*|ŷ−y|/y.
#pragma once

#include <span>
#include <vector>

namespace dsml::ml {

/// Per-record absolute percentage errors: 100*|ŷ_i − y_i| / y_i.
/// Requires strictly positive true values (cycle counts and SPEC rates are).
std::vector<double> absolute_percentage_errors(
    std::span<const double> predicted, std::span<const double> truth);

/// Mean absolute percentage error.
double mape(std::span<const double> predicted, std::span<const double> truth);

/// Summary of an error distribution (what one figure errorbar shows).
struct ErrorSummary {
  double mean = 0.0;
  double stddev = 0.0;
  double max = 0.0;
  std::size_t count = 0;
};

ErrorSummary summarize_errors(std::span<const double> predicted,
                              std::span<const double> truth);

/// Root mean squared error.
double rmse(std::span<const double> predicted, std::span<const double> truth);

/// Coefficient of determination R².
double r_squared(std::span<const double> predicted,
                 std::span<const double> truth);

}  // namespace dsml::ml
