// Model persistence: train a surrogate once, ship it, reload it later.
//
// The file format is a versioned, self-describing text format; both model
// families (LinearRegression and NeuralRegressor) round-trip exactly,
// including their fitted encoders, so a reloaded model produces
// bit-identical predictions.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "ml/model.hpp"

namespace dsml::ml {

/// Serialize a fitted model. Supported concrete types: LinearRegression,
/// NeuralRegressor (SelectModel: save its chosen model). Throws
/// InvalidArgument for unsupported types, StateError if unfitted.
void save_model(const Regressor& model, std::ostream& out);
void save_model(const Regressor& model, const std::string& path);

/// Restore a model saved with save_model. Throws IoError on malformed or
/// version-incompatible input.
std::unique_ptr<Regressor> load_model(std::istream& in);
std::unique_ptr<Regressor> load_model(const std::string& path);

}  // namespace dsml::ml
