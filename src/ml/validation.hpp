// Cross-validation error estimation and the "Select" meta-model (paper §3.3
// and Table 3's Select row).
//
// Clementine does not report a predictive-error estimate, so the paper rolls
// its own: generate five random 50% subsets of the training data, fit on each
// subset and measure error on the held-out half, then report the average and
// the maximum of the five fold errors. The paper found the maximum to be the
// closer estimate of the true error and uses it throughout; we expose both.
//
// Select fits every candidate model, estimates each one's error this way,
// and commits to the candidate with the smallest estimated error — the
// procedure behind the paper's "select method" row, which at 1% sampling
// actually beats always-using-NN-E.
#pragma once

#include "common/error.hpp"
#include "common/rng.hpp"
#include "ml/model.hpp"

namespace dsml::ml {

/// One cross-validation fold that threw instead of producing an error value.
struct FoldFailure {
  std::size_t fold = 0;    ///< repeat index (0-based)
  std::string error_type;  ///< taxonomy name from error_kind()
  std::string message;
};

struct ErrorEstimate {
  double average = 0.0;       ///< mean of the five fold MAPEs
  double maximum = 0.0;       ///< max of the five fold MAPEs (paper's choice)
  std::vector<double> folds;  ///< individual fold MAPEs (successful only)
  std::vector<FoldFailure> failed;  ///< folds that threw and were tolerated
};

struct ValidationOptions {
  std::size_t repeats = 5;      ///< number of random 50% subsets
  std::uint64_t seed = 0xC0FFEE;
};

/// Estimate the predictive error of the model family produced by `factory`
/// on `train` using repeated 50/50 splits. A fold whose fit/predict throws is
/// recorded in `ErrorEstimate::failed` rather than propagated, as long as at
/// least half the folds succeed; otherwise a TrainingError summarising the
/// first failure is thrown. With no failures the result is bit-identical to
/// the historical all-or-nothing implementation.
ErrorEstimate estimate_error(const ModelFactory& factory,
                             const data::Dataset& train,
                             const ValidationOptions& options = {});

/// The Select meta-model: estimates every candidate's error, fits the best
/// estimated candidate on the full training data, and exposes it as a
/// Regressor. The chosen candidate's name is reported as
/// "Select(<candidate>)".
class SelectModel final : public Regressor {
 public:
  SelectModel(std::vector<NamedModel> candidates,
              ValidationOptions options = {});

  void fit(const data::Dataset& train) override;
  std::vector<double> predict(const data::Dataset& dataset) const override;
  std::string name() const override;
  std::vector<PredictorImportance> importance() const override;
  bool fitted() const noexcept override { return chosen_ != nullptr; }

  /// Which candidate won (fit() required).
  const std::string& chosen_name() const;

  /// Estimated error of the winning candidate.
  const ErrorEstimate& chosen_estimate() const;

  /// Estimated error per candidate, in candidate order (fit() required).
  /// A candidate that failed outright has an infinite maximum/average.
  const std::vector<ErrorEstimate>& estimates() const { return estimates_; }

  /// Failures tolerated during the last fit(): candidates whose estimate or
  /// final fit threw, plus fold-level failures from candidates that survived
  /// ("<name> fold k"). Empty on a clean fit. fit() throws TrainingError
  /// only when *every* candidate fails.
  const std::vector<FailureRecord>& failures() const { return failures_; }

 private:
  std::vector<NamedModel> candidates_;
  ValidationOptions options_;
  std::unique_ptr<Regressor> chosen_;
  std::string chosen_name_;
  std::vector<ErrorEstimate> estimates_;
  std::vector<FailureRecord> failures_;
  std::size_t chosen_index_ = 0;
};

}  // namespace dsml::ml
