// Multiple linear regression with the four SPSS/Clementine predictor-
// selection methods the paper evaluates (§3.1):
//
//   LR-E  Enter     — all predictors in one step;
//   LR-F  Forwards  — start empty, repeatedly add the most significant
//                     predictor while its partial-F p-value < entry_p;
//   LR-B  Backwards — start full, repeatedly remove the least significant
//                     predictor while its p-value > removal_p;
//   LR-S  Stepwise  — forward steps interleaved with backward removal
//                     checks until the model is stable.
//
// Fitting is least squares via Householder QR; inference statistics
// (coefficient standard errors, t statistics, partial-F p-values,
// standardized betas) come from the classical OLS theory in Montgomery,
// Peck & Vining, the paper's reference [7].
#pragma once

#include <optional>

#include "data/encoder.hpp"
#include "linalg/decompose.hpp"
#include "ml/model.hpp"

namespace dsml::ml {

enum class LinRegMethod { kEnter, kStepwise, kForward, kBackward };

const char* to_string(LinRegMethod method) noexcept;

/// One fitted ordinary-least-squares model over a subset of design-matrix
/// columns (column 0 is always the intercept).
struct OlsFit {
  std::vector<std::size_t> columns;   ///< design-matrix columns in the model
  linalg::Vector beta;                ///< coefficient per entry of `columns`
  std::vector<double> std_errors;     ///< coefficient standard errors
  std::vector<double> t_stats;        ///< beta / std_error
  std::vector<double> p_values;       ///< two-sided t-test p-values
  double sigma2 = 0.0;                ///< residual variance estimate
  double ss_res = 0.0;                ///< residual sum of squares
  double ss_tot = 0.0;                ///< total sum of squares about the mean
  double r2 = 0.0;
  double adjusted_r2 = 0.0;
  std::size_t n = 0;                  ///< observations
  std::size_t dof = 0;                ///< residual degrees of freedom
  /// Diagnostic only (not serialized): true when the QR solve failed and the
  /// coefficients came from the ridge-regularised fallback; inference
  /// statistics are zeroed in that case, like any rank-deficient fit.
  bool ridge_fallback = false;
};

/// Fit OLS on the given columns of X (X must contain an intercept column that
/// is included in `columns` if desired). Requires n > |columns|.
OlsFit fit_ols(const linalg::Matrix& x, std::span<const double> y,
               std::span<const std::size_t> columns);

class LinearRegression final : public Regressor {
 public:
  struct Options {
    LinRegMethod method = LinRegMethod::kBackward;
    /// SPSS defaults: probability-of-F to enter 0.05, to remove 0.10.
    double entry_p = 0.05;
    double removal_p = 0.10;
    /// Upper bound on selected predictors (guards tiny samples); 0 = n-2.
    std::size_t max_predictors = 0;
  };

  LinearRegression();
  explicit LinearRegression(Options options);

  void fit(const data::Dataset& train) override;
  std::vector<double> predict(const data::Dataset& dataset) const override;
  std::string name() const override;
  std::vector<PredictorImportance> importance() const override;
  bool fitted() const noexcept override { return fit_.has_value(); }

  /// Names of predictors retained by the selection method (no intercept).
  std::vector<std::string> selected_predictors() const;

  /// Full fit statistics.
  const OlsFit& ols() const;

  /// Standardized beta (|beta_j| * sd(x_j) / sd(y)) per selected predictor —
  /// the relative-importance number §4.4 quotes for linear models.
  std::vector<PredictorImportance> standardized_betas() const;

  const Options& options() const noexcept { return options_; }

  /// The fitted feature encoder (read-only; snapshot builders such as the
  /// f32 serving path fold its scaling into their own tables).
  const data::Encoder& encoder() const noexcept { return encoder_; }

  /// Persist / restore a fitted model (see ml/serialize.hpp for the
  /// file-level facade).
  void save(serial::Writer& writer) const;
  static LinearRegression load(serial::Reader& reader);

 private:
  std::vector<std::size_t> select_columns(const linalg::Matrix& x,
                                          std::span<const double> y) const;

  Options options_;
  data::Encoder encoder_;
  std::optional<OlsFit> fit_;
  std::vector<std::string> feature_names_;  // encoder outputs incl. intercept
  std::vector<double> train_x_sd_;          // per design column
  double train_y_sd_ = 0.0;
};

}  // namespace dsml::ml
