#include "ml/f32.hpp"

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/error.hpp"
#include "data/encoder.hpp"
#include "linalg/kernels_f32.hpp"
#include "ml/linreg.hpp"
#include "ml/mlp.hpp"
#include "ml/nn_models.hpp"

namespace dsml::ml {

namespace {

namespace f32k = linalg::kernels::f32;

/// How one encoded feature is produced from its source column, with the
/// min-max scaling folded to value = raw * mul + add (the encoder's
/// scale01((x - lo) / (hi - lo)) becomes mul = 1/(hi-lo), add = -lo*mul;
/// a degenerate range becomes the constant 0.5 the encoder emits).
struct EncodeSpec {
  std::size_t source_column = 0;
  int one_hot_level = -1;  ///< >= 0: value = (code == level), no scaling
  float mul = 1.0f;
  float add = 0.0f;
  bool constant = false;   ///< degenerate/disabled: value is always `add`
};

EncodeSpec make_spec(const data::EncodedFeature& f, bool scale_inputs) {
  EncodeSpec spec;
  spec.source_column = f.source_column;
  spec.one_hot_level = f.one_hot_level;
  if (f.one_hot_level >= 0 || !scale_inputs) return spec;
  if (f.scale_max <= f.scale_min) {
    spec.constant = true;
    spec.add = 0.5f;
    return spec;
  }
  const double inv = 1.0 / (f.scale_max - f.scale_min);
  spec.mul = static_cast<float>(inv);
  spec.add = static_cast<float>(-f.scale_min * inv);
  return spec;
}

/// Fill `out` with one encoded feature column over all rows of `dataset`.
void fill_column(const data::Dataset& dataset, const EncodeSpec& spec,
                 float* out, std::size_t stride) {
  const std::size_t n = dataset.n_rows();
  if (spec.constant) {
    for (std::size_t r = 0; r < n; ++r) out[r * stride] = spec.add;
    return;
  }
  DSML_REQUIRE(spec.source_column < dataset.n_features(),
               "F32Predictor: dataset schema mismatch");
  const data::Column& col = dataset.feature(spec.source_column);
  if (spec.one_hot_level >= 0) {
    const auto level = static_cast<std::size_t>(spec.one_hot_level);
    for (std::size_t r = 0; r < n; ++r) {
      out[r * stride] = col.code_at(r) == level ? 1.0f : 0.0f;
    }
    return;
  }
  for (std::size_t r = 0; r < n; ++r) {
    out[r * stride] =
        static_cast<float>(col.numeric_at(r)) * spec.mul + spec.add;
  }
}

// ---------------------------------------------------------------------------
// Linear regression: y = base + sum_k w_k * raw_k, with the encoder scaling
// and the intercept/constant-feature contributions folded into base/w_k at
// snapshot time. Only the *selected* columns are ever encoded — the double
// path encodes the full design matrix and then selects, so this snapshot
// does strictly less work per row.
// ---------------------------------------------------------------------------

class F32LinReg final : public F32Predictor {
 public:
  explicit F32LinReg(const LinearRegression& model)
      : encoder_(model.encoder()) {
    const OlsFit& fit = model.ols();
    const auto& features = encoder_.features();
    const bool scale = encoder_.options().scale_inputs;
    const std::size_t offset = encoder_.options().add_intercept ? 1 : 0;
    double base = 0.0;
    for (std::size_t k = 0; k < fit.columns.size(); ++k) {
      const std::size_t c = fit.columns[k];
      const double beta = fit.beta[k];
      if (c < offset) {  // intercept column
        base += beta;
        continue;
      }
      const EncodeSpec spec = make_spec(features[c - offset], scale);
      if (spec.constant) {
        base += beta * static_cast<double>(spec.add);
        continue;
      }
      Term term;
      term.spec = spec;
      if (spec.one_hot_level >= 0) {
        term.weight = static_cast<float>(beta);
      } else {
        // Fold the scale into the weight: beta * (raw*mul + add) =
        // (beta*mul) * raw + beta*add.
        term.weight = static_cast<float>(beta * static_cast<double>(spec.mul));
        base += beta * static_cast<double>(spec.add);
        term.spec.mul = 1.0f;
        term.spec.add = 0.0f;
      }
      terms_.push_back(term);
    }
    base_ = static_cast<float>(base);
  }

  std::vector<double> predict(const data::Dataset& dataset) const override {
    const std::size_t n = dataset.n_rows();
    std::vector<float> acc(n, base_);
    std::vector<float> column(n);
    for (const Term& term : terms_) {
      fill_column(dataset, term.spec, column.data(), 1);
      f32k::axpy(n, term.weight, column.data(), acc.data());
    }
    std::vector<double> out(n);
    for (std::size_t r = 0; r < n; ++r) {
      out[r] = encoder_.decode_target(static_cast<double>(acc[r]));
    }
    return out;
  }

 private:
  struct Term {
    EncodeSpec spec;
    float weight = 0.0f;
  };

  data::Encoder encoder_;  // retained for decode_target
  std::vector<Term> terms_;
  float base_ = 0.0f;
};

// ---------------------------------------------------------------------------
// Neural network: encode the batch into a row-major f32 matrix, then run the
// layer stack through the f32 affine kernel on weights transposed once here.
// Disabled inputs (the prune regimes) encode as 0.0f, mirroring the double
// path's NaN-safe masking.
// ---------------------------------------------------------------------------

class F32Mlp final : public F32Predictor {
 public:
  explicit F32Mlp(const NeuralRegressor& model) : encoder_(model.encoder()) {
    const Mlp& net = model.network();
    const auto& features = encoder_.features();
    const bool scale = encoder_.options().scale_inputs;
    DSML_REQUIRE(features.size() == net.n_inputs(),
                 "F32Mlp: encoder/network width mismatch");
    specs_.reserve(features.size());
    for (std::size_t j = 0; j < features.size(); ++j) {
      EncodeSpec spec = make_spec(features[j], scale);
      if (!net.input_enabled(j)) {
        spec.constant = true;
        spec.add = 0.0f;
      }
      specs_.push_back(spec);
    }
    layers_.reserve(net.layer_count());
    for (std::size_t l = 0; l < net.layer_count(); ++l) {
      const Mlp::LayerView view = net.layer_view(l);
      LayerF32 layer;
      layer.fan_in = view.weights->cols();
      layer.fan_out = view.weights->rows();
      layer.sigmoid = !view.output;
      // Store wT (fan_in x fan_out) so the forward GEMM walks contiguous
      // spans; one conversion+transpose here, none per batch.
      layer.wt.resize(layer.fan_in * layer.fan_out);
      for (std::size_t o = 0; o < layer.fan_out; ++o) {
        for (std::size_t i = 0; i < layer.fan_in; ++i) {
          layer.wt[i * layer.fan_out + o] =
              static_cast<float>((*view.weights)(o, i));
        }
      }
      layer.bias.resize(view.bias.size());
      for (std::size_t b = 0; b < layer.bias.size(); ++b) {
        layer.bias[b] = static_cast<float>(view.bias[b]);
      }
      layers_.push_back(std::move(layer));
    }
  }

  std::vector<double> predict(const data::Dataset& dataset) const override {
    const std::size_t n = dataset.n_rows();
    const std::size_t n_inputs = specs_.size();
    std::vector<float> cur(n * n_inputs);
    for (std::size_t j = 0; j < n_inputs; ++j) {
      fill_column(dataset, specs_[j], cur.data() + j, n_inputs);
    }
    std::size_t fan_in = n_inputs;
    std::vector<float> next;
    for (const LayerF32& layer : layers_) {
      next.resize(n * layer.fan_out);
      f32k::affine_forward(cur.data(), fan_in, n, layer.fan_in,
                           layer.wt.data(), layer.bias.data(), layer.fan_out,
                           layer.sigmoid, next.data(), layer.fan_out);
      cur.swap(next);
      fan_in = layer.fan_out;
    }
    // The output layer is one linear unit: column 0 of the final block.
    std::vector<double> out(n);
    for (std::size_t r = 0; r < n; ++r) {
      out[r] = encoder_.decode_target(static_cast<double>(cur[r * fan_in]));
    }
    return out;
  }

 private:
  struct LayerF32 {
    std::size_t fan_in = 0;
    std::size_t fan_out = 0;
    bool sigmoid = true;
    std::vector<float> wt;    // fan_in x fan_out (pre-transposed)
    std::vector<float> bias;  // fan_out
  };

  data::Encoder encoder_;
  std::vector<EncodeSpec> specs_;
  std::vector<LayerF32> layers_;
};

}  // namespace

std::unique_ptr<F32Predictor> make_f32_predictor(const Regressor& model) {
  if (const auto* lr = dynamic_cast<const LinearRegression*>(&model)) {
    DSML_REQUIRE(lr->fitted(), "make_f32_predictor: model not fitted");
    return std::make_unique<F32LinReg>(*lr);
  }
  if (const auto* nn = dynamic_cast<const NeuralRegressor*>(&model)) {
    DSML_REQUIRE(nn->fitted(), "make_f32_predictor: model not fitted");
    return std::make_unique<F32Mlp>(*nn);
  }
  return nullptr;
}

}  // namespace dsml::ml
