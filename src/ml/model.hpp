// The Regressor interface every predictive model in the paper implements:
// four linear-regression variants (LR-E/S/F/B) and six neural-network
// training regimes (NN-Q/D/M/P/E and the Ipek-style NN-S baseline).
//
// A model owns its data preparation (paper §3.4): callers hand it a typed
// Dataset, and the model internally encodes/scales features the way its
// family requires. fit() + predict() is the whole contract; importance()
// exposes the per-predictor relevance numbers §4.4 reports.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace dsml::ml {

/// Relative importance of one source predictor (0 = no effect on the
/// prediction, 1 = completely determines it). For linear models this is the
/// absolute standardized beta; for networks a min-max sensitivity sweep.
struct PredictorImportance {
  std::string name;
  double importance = 0.0;
};

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Train on a dataset (must have a target). May be called once per object.
  virtual void fit(const data::Dataset& train) = 0;

  /// Predict the target for every row. Requires fit() first; the dataset
  /// must have the training schema.
  virtual std::vector<double> predict(const data::Dataset& dataset) const = 0;

  /// Short identifier matching the paper's naming (e.g. "LR-B", "NN-E").
  virtual std::string name() const = 0;

  /// Per-source-predictor importance, descending. Empty if unfitted.
  virtual std::vector<PredictorImportance> importance() const { return {}; }

  virtual bool fitted() const noexcept = 0;
};

/// Factory producing fresh, unfitted model instances — the unit the
/// cross-validation estimator and the Select meta-method operate on.
using ModelFactory = std::function<std::unique_ptr<Regressor>()>;

/// A named factory, convenient for experiment sweeps over model menus.
struct NamedModel {
  std::string name;
  ModelFactory make;
};

}  // namespace dsml::ml
