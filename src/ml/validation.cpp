#include "ml/validation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <string>

#include "common/failpoint.hpp"
#include "common/metrics.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "data/split.hpp"
#include "ml/fit_score.hpp"
#include "ml/metrics.hpp"

namespace dsml::ml {

ErrorEstimate estimate_error(const ModelFactory& factory,
                             const data::Dataset& train,
                             const ValidationOptions& options) {
  DSML_REQUIRE(options.repeats >= 1, "estimate_error: repeats must be >= 1");
  DSML_REQUIRE(train.n_rows() >= 8,
               "estimate_error: need at least 8 rows to split");
  // All fold splits are drawn serially from one Rng first — the exact
  // stream the historical serial loop consumed — then the folds run in
  // parallel, each writing only its own slot. Fold errors are therefore
  // bit-for-bit identical to the serial implementation regardless of
  // thread count (pinned by EstimateErrorMatchesSerialReference).
  Rng rng(options.seed);
  std::vector<std::pair<std::vector<std::size_t>, std::vector<std::size_t>>>
      splits;
  splits.reserve(options.repeats);
  for (std::size_t rep = 0; rep < options.repeats; ++rep) {
    splits.push_back(data::split_half(train.n_rows(), rng));
  }
  // Each fold writes only its own slot; a fold that throws becomes a
  // FoldFailure instead of killing its siblings. Successful folds keep their
  // repeat order so a failure-free run is bit-identical to the historical
  // all-or-nothing implementation.
  std::vector<double> fold_errors(options.repeats, 0.0);
  std::vector<std::optional<FoldFailure>> fold_failures(options.repeats);
  trace::Span cv_span("ml::estimate_error", "ml");
  static metrics::Counter& folds_run = metrics::counter("ml.cv_folds");
  static metrics::Counter& folds_failed = metrics::counter("ml.cv_folds_failed");
  parallel_for(0, options.repeats, [&](std::size_t rep) {
    // Lazy name: the string is only built when tracing is live, and each
    // fold's span lives on the thread that runs it (depth is thread-local,
    // so concurrent folds nest correctly).
    trace::Span fold_span([&] { return "fold " + std::to_string(rep); }, "ml");
    folds_run.add();
    try {
      DSML_FAIL("estimate_error.fold");
      const auto& [fit_idx, holdout_idx] = splits[rep];
      const data::Dataset fit_part = train.select_rows(fit_idx);
      const data::Dataset holdout_part = train.select_rows(holdout_idx);
      auto model = factory();
      model->fit(fit_part);
      const auto predicted = model->predict(holdout_part);
      fold_errors[rep] = mape(predicted, holdout_part.target());
    } catch (const std::exception& e) {
      folds_failed.add();
      fold_failures[rep] = FoldFailure{rep, error_kind(e), e.what()};
    }
  });
  ErrorEstimate est;
  for (std::size_t rep = 0; rep < options.repeats; ++rep) {
    if (fold_failures[rep].has_value()) {
      est.failed.push_back(std::move(*fold_failures[rep]));
    } else {
      est.folds.push_back(fold_errors[rep]);
    }
  }
  if (est.folds.size() * 2 < options.repeats) {
    const FoldFailure& first = est.failed.front();
    throw TrainingError(
        "", "cross-validation",
        std::to_string(est.failed.size()) + " of " +
            std::to_string(options.repeats) + " folds failed; fold " +
            std::to_string(first.fold) + ": " + first.message);
  }
  est.average = stats::mean(est.folds);
  est.maximum = stats::max(est.folds);
  return est;
}

SelectModel::SelectModel(std::vector<NamedModel> candidates,
                         ValidationOptions options)
    : candidates_(std::move(candidates)), options_(options) {
  DSML_REQUIRE(!candidates_.empty(), "SelectModel: no candidates");
}

void SelectModel::fit(const data::Dataset& train) {
  // Candidates are scored in parallel: each evaluation owns its models and
  // its Rng (seeded per candidate, so results are identical to the serial
  // order), and writes only its own estimates_ slot. The winner is picked
  // serially afterwards to keep tie-breaking deterministic.
  //
  // Degradation: a candidate whose estimate throws is marked with an
  // infinite estimate and skipped; a winner whose final fit throws falls
  // back to the next-best candidate. Every tolerated failure lands in
  // failures_, and only all candidates failing is fatal.
  trace::Span select_span("SelectModel::fit", "ml");
  chosen_.reset();
  failures_.clear();
  estimates_.assign(candidates_.size(), ErrorEstimate{});
  std::vector<std::optional<FailureRecord>> estimate_failures(
      candidates_.size());
  parallel_for(0, candidates_.size(), [&](std::size_t i) {
    trace::Span cand_span(
        [&] { return "candidate " + candidates_[i].name; }, "ml");
    engine::FitScoreRequest request;
    request.model = candidates_[i];
    request.train = &train;
    request.estimate = true;
    request.validation = options_;
    request.validation.seed = options_.seed + i;  // folds differ per
                                                  // candidate, as when each
                                                  // model is evaluated
                                                  // independently
    request.fit = false;  // only the winner is fitted, below
    request.failpoint = "select.candidate";
    engine::FitScoreResult cell = engine::fit_and_score(request);
    if (cell.ok()) {
      estimates_[i] = std::move(cell.estimate);
    } else {
      estimates_[i].average = std::numeric_limits<double>::infinity();
      estimates_[i].maximum = std::numeric_limits<double>::infinity();
      estimate_failures[i] = std::move(*cell.failure);
    }
  });
  // Serial reduction keeps failures_ in candidate order regardless of which
  // pool worker hit what first.
  for (std::size_t i = 0; i < candidates_.size(); ++i) {
    if (estimate_failures[i].has_value()) {
      failures_.push_back(std::move(*estimate_failures[i]));
      continue;
    }
    for (const FoldFailure& f : estimates_[i].failed) {
      failures_.push_back(FailureRecord{
          candidates_[i].name + " fold " + std::to_string(f.fold),
          f.error_type, f.message});
    }
  }
  // Candidates with a finite estimate, best first; ties keep candidate
  // order, matching the historical first-minimum winner.
  std::vector<std::size_t> ranked;
  for (std::size_t i = 0; i < estimates_.size(); ++i) {
    if (std::isfinite(estimates_[i].maximum)) ranked.push_back(i);
  }
  std::stable_sort(ranked.begin(), ranked.end(), [&](std::size_t a,
                                                     std::size_t b) {
    return estimates_[a].maximum < estimates_[b].maximum;
  });
  if (ranked.empty()) {
    throw TrainingError(
        "SelectModel", "cross-validation",
        "all " + std::to_string(candidates_.size()) +
            " candidates failed" +
            (failures_.empty()
                 ? std::string(" (non-finite error estimates)")
                 : "; first: " + failures_.front().message));
  }
  for (std::size_t idx : ranked) {
    engine::FitScoreRequest request;
    request.model = candidates_[idx];
    request.train = &train;
    request.failpoint = "select.final_fit";
    engine::FitScoreResult cell = engine::fit_and_score(request);
    if (cell.ok()) {
      chosen_ = std::move(cell.model);
      chosen_index_ = idx;
      chosen_name_ = candidates_[idx].name;
      return;
    }
    failures_.push_back(FailureRecord{candidates_[idx].name + " final fit",
                                      cell.failure->error_type,
                                      cell.failure->message});
  }
  throw TrainingError("SelectModel", "final fit",
                      "every candidate's final fit failed; first: " +
                          failures_.back().message);
}

std::vector<double> SelectModel::predict(const data::Dataset& dataset) const {
  DSML_REQUIRE(chosen_ != nullptr, "SelectModel::predict: not fitted");
  return chosen_->predict(dataset);
}

std::string SelectModel::name() const {
  if (chosen_ == nullptr) return "Select";
  return "Select(" + chosen_name_ + ")";
}

std::vector<PredictorImportance> SelectModel::importance() const {
  if (chosen_ == nullptr) return {};
  return chosen_->importance();
}

const std::string& SelectModel::chosen_name() const {
  DSML_REQUIRE(chosen_ != nullptr, "SelectModel::chosen_name: not fitted");
  return chosen_name_;
}

const ErrorEstimate& SelectModel::chosen_estimate() const {
  DSML_REQUIRE(chosen_ != nullptr, "SelectModel::chosen_estimate: not fitted");
  return estimates_[chosen_index_];
}

}  // namespace dsml::ml
