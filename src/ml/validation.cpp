#include "ml/validation.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "common/metrics.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "data/split.hpp"
#include "ml/metrics.hpp"

namespace dsml::ml {

ErrorEstimate estimate_error(const ModelFactory& factory,
                             const data::Dataset& train,
                             const ValidationOptions& options) {
  DSML_REQUIRE(options.repeats >= 1, "estimate_error: repeats must be >= 1");
  DSML_REQUIRE(train.n_rows() >= 8,
               "estimate_error: need at least 8 rows to split");
  // All fold splits are drawn serially from one Rng first — the exact
  // stream the historical serial loop consumed — then the folds run in
  // parallel, each writing only its own slot. Fold errors are therefore
  // bit-for-bit identical to the serial implementation regardless of
  // thread count (pinned by EstimateErrorMatchesSerialReference).
  Rng rng(options.seed);
  std::vector<std::pair<std::vector<std::size_t>, std::vector<std::size_t>>>
      splits;
  splits.reserve(options.repeats);
  for (std::size_t rep = 0; rep < options.repeats; ++rep) {
    splits.push_back(data::split_half(train.n_rows(), rng));
  }
  ErrorEstimate est;
  est.folds.assign(options.repeats, 0.0);
  trace::Span cv_span("ml::estimate_error", "ml");
  static metrics::Counter& folds_run = metrics::counter("ml.cv_folds");
  parallel_for(0, options.repeats, [&](std::size_t rep) {
    // Lazy name: the string is only built when tracing is live, and each
    // fold's span lives on the thread that runs it (depth is thread-local,
    // so concurrent folds nest correctly).
    trace::Span fold_span([&] { return "fold " + std::to_string(rep); }, "ml");
    folds_run.add();
    const auto& [fit_idx, holdout_idx] = splits[rep];
    const data::Dataset fit_part = train.select_rows(fit_idx);
    const data::Dataset holdout_part = train.select_rows(holdout_idx);
    auto model = factory();
    model->fit(fit_part);
    const auto predicted = model->predict(holdout_part);
    est.folds[rep] = mape(predicted, holdout_part.target());
  });
  est.average = stats::mean(est.folds);
  est.maximum = stats::max(est.folds);
  return est;
}

SelectModel::SelectModel(std::vector<NamedModel> candidates,
                         ValidationOptions options)
    : candidates_(std::move(candidates)), options_(options) {
  DSML_REQUIRE(!candidates_.empty(), "SelectModel: no candidates");
}

void SelectModel::fit(const data::Dataset& train) {
  // Candidates are scored in parallel: each evaluation owns its models and
  // its Rng (seeded per candidate, so results are identical to the serial
  // order), and writes only its own estimates_ slot. The winner is picked
  // serially afterwards to keep tie-breaking deterministic.
  trace::Span select_span("SelectModel::fit", "ml");
  estimates_.assign(candidates_.size(), ErrorEstimate{});
  parallel_for(0, candidates_.size(), [&](std::size_t i) {
    trace::Span cand_span(
        [&] { return "candidate " + candidates_[i].name; }, "ml");
    ValidationOptions opts = options_;
    opts.seed = options_.seed + i;  // folds differ per candidate, as when
                                    // each model is evaluated independently
    estimates_[i] = estimate_error(candidates_[i].make, train, opts);
  });
  double best = std::numeric_limits<double>::infinity();
  std::size_t best_idx = 0;
  for (std::size_t i = 0; i < estimates_.size(); ++i) {
    if (estimates_[i].maximum < best) {
      best = estimates_[i].maximum;
      best_idx = i;
    }
  }
  chosen_index_ = best_idx;
  chosen_name_ = candidates_[best_idx].name;
  chosen_ = candidates_[best_idx].make();
  chosen_->fit(train);
}

std::vector<double> SelectModel::predict(const data::Dataset& dataset) const {
  DSML_REQUIRE(chosen_ != nullptr, "SelectModel::predict: not fitted");
  return chosen_->predict(dataset);
}

std::string SelectModel::name() const {
  if (chosen_ == nullptr) return "Select";
  return "Select(" + chosen_name_ + ")";
}

std::vector<PredictorImportance> SelectModel::importance() const {
  if (chosen_ == nullptr) return {};
  return chosen_->importance();
}

const std::string& SelectModel::chosen_name() const {
  DSML_REQUIRE(chosen_ != nullptr, "SelectModel::chosen_name: not fitted");
  return chosen_name_;
}

const ErrorEstimate& SelectModel::chosen_estimate() const {
  DSML_REQUIRE(chosen_ != nullptr, "SelectModel::chosen_estimate: not fitted");
  return estimates_[chosen_index_];
}

}  // namespace dsml::ml
