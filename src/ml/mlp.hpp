// Feed-forward multilayer perceptron with online backpropagation.
//
// This is the network substrate beneath the five Clementine-style training
// regimes (ml/nn_models.hpp). Architecture follows the paper's description
// (§3.2): fully connected layers, sigmoid hidden activations, and — since we
// model a single scaled response — one linear output unit. Training is
// stochastic gradient descent with momentum (the "backpropagation procedure,
// variation of steepest descent" the paper cites), sample order reshuffled
// every epoch from a caller-supplied deterministic Rng.
//
// The prune-based regimes need structural surgery, so the network supports
// removing hidden units, disabling input features, and magnitude-based
// weight pruning with frozen masks.
//
// Prediction is const and thread-safe: forward passes draw scratch from the
// calling thread's linalg::Workspace instead of shared members, and the
// batched predict(Matrix) runs layer-wise blocked kernels over row chunks
// dispatched across the global thread pool.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "common/serial.hpp"
#include "linalg/kernels.hpp"
#include "linalg/matrix.hpp"

namespace dsml::ml {

class Mlp {
 public:
  /// Builds a network with the given hidden-layer widths (may be empty for a
  /// pure linear model). Weights are initialised uniform ±1/sqrt(fan_in).
  Mlp(std::size_t n_inputs, std::vector<std::size_t> hidden, Rng& rng);

  std::size_t n_inputs() const noexcept { return n_inputs_; }
  const std::vector<std::size_t>& hidden_sizes() const noexcept {
    return hidden_sizes_;
  }

  /// Number of trainable (non-masked) weights, biases included.
  std::size_t parameter_count() const noexcept;

  /// Forward pass; x.size() must equal n_inputs(). Thread-safe: scratch
  /// comes from the calling thread's workspace, so concurrent predict calls
  /// on one trained network never share state.
  double predict(std::span<const double> x) const;

  /// Batch prediction over the rows of a matrix: layer-wise matrix-matrix
  /// kernels over row chunks, parallelized across the global thread pool
  /// with per-thread scratch. Bit-identical to calling predict() per row
  /// (same per-element addition order; see linalg/kernels.hpp).
  std::vector<double> predict(const linalg::Matrix& x) const;

  /// Mean squared error over a batch (batched forward, serial reduction in
  /// row order — bit-identical to the per-row formulation).
  double mse(const linalg::Matrix& x, std::span<const double> y) const;

  /// One epoch of online backprop over (x, y) in a random order; returns the
  /// epoch's running MSE (computed pre-update per sample).
  double train_epoch(const linalg::Matrix& x, std::span<const double> y,
                     double learning_rate, double momentum, Rng& rng);

  // ---- structural surgery (for the prune regimes) ----

  /// L1 norm of the outgoing weights of one hidden unit — the saliency used
  /// to decide pruning order.
  double hidden_unit_saliency(std::size_t layer, std::size_t unit) const;

  /// Saliency of an input feature: L1 norm of its first-layer weights.
  double input_saliency(std::size_t input) const;

  /// Remove hidden unit `unit` of hidden layer `layer` (and its fan-in /
  /// fan-out weights). The layer must keep at least one unit.
  void remove_hidden_unit(std::size_t layer, std::size_t unit);

  /// Append one freshly initialised unit to hidden layer `layer`, keeping all
  /// existing weights (the growth step of the Dynamic regime).
  void add_hidden_unit(std::size_t layer, Rng& rng);

  /// Permanently disable an input feature: zero and freeze its first-layer
  /// weights (the feature column may still be present in inputs; it just no
  /// longer affects the output).
  void disable_input(std::size_t input);

  bool input_enabled(std::size_t input) const;
  std::size_t enabled_input_count() const noexcept;

  /// Zero and freeze the `fraction` smallest-magnitude weights network-wide
  /// (biases exempt).
  void prune_smallest_weights(double fraction);

  /// Read-only view of one layer's parameters, for snapshot builders (the
  /// f32 serving path converts weights once at registry-load time).
  struct LayerView {
    const linalg::Matrix* weights = nullptr;  ///< fan_out x fan_in row-major
    std::span<const double> bias;
    bool output = false;  ///< linear activation if true, sigmoid otherwise
  };
  std::size_t layer_count() const noexcept { return layers_.size(); }
  LayerView layer_view(std::size_t index) const;

  /// Persist weights/masks/topology; momentum buffers reset on load.
  void save(serial::Writer& writer) const;
  static Mlp load(serial::Reader& reader);

 private:
  Mlp() = default;  // used by load()

  struct Layer {
    linalg::Matrix w;         // out x in
    linalg::Matrix w_mask;    // 1 trainable, 0 frozen
    linalg::Matrix w_vel;     // momentum buffer
    std::vector<double> b;
    std::vector<double> b_vel;
    bool output = false;      // linear activation if true, sigmoid otherwise
  };

  void forward_pass(std::span<const double> x,
                    std::vector<std::vector<double>>& activations) const;

  /// Batched forward over `rows` consecutive input rows (row-major, leading
  /// dimension ldx) writing one prediction per row into out[0..rows).
  /// Scratch comes from `ws`; safe to call concurrently with distinct
  /// workspaces.
  void forward_block(const double* x, std::size_t ldx, std::size_t rows,
                     double* out, linalg::Workspace& ws) const;

  bool all_inputs_enabled() const noexcept;

  std::size_t n_inputs_ = 0;
  std::vector<std::size_t> hidden_sizes_;
  std::vector<Layer> layers_;
  std::vector<bool> input_enabled_;
};

}  // namespace dsml::ml
