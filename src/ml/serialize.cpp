#include "ml/serialize.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/atomic_io.hpp"
#include "common/failpoint.hpp"
#include "common/serial.hpp"
#include "ml/linreg.hpp"
#include "ml/nn_models.hpp"
#include "ml/validation.hpp"

namespace dsml::ml {

namespace {
constexpr const char* kMagic = "dsml-model";
constexpr std::uint64_t kVersion = 1;
}  // namespace

void save_model(const Regressor& model, std::ostream& out) {
  serial::Writer writer(out);
  writer.tag(kMagic);
  writer.u64(kVersion);
  if (const auto* lr = dynamic_cast<const LinearRegression*>(&model)) {
    writer.str("linreg");
    lr->save(writer);
    return;
  }
  if (const auto* nn = dynamic_cast<const NeuralRegressor*>(&model)) {
    writer.str("neural");
    nn->save(writer);
    return;
  }
  throw InvalidArgument("save_model: unsupported model type '" +
                        model.name() + "'");
}

void save_model(const Regressor& model, const std::string& path) {
  // Serialize fully in memory, then temp-file + rename: a crash mid-save can
  // never leave a truncated model where a readable one used to be.
  std::ostringstream out;
  save_model(model, out);
  DSML_FAIL("serialize.save");
  io::write_file_atomic(path, out.str());
}

std::unique_ptr<Regressor> load_model(std::istream& in) {
  serial::Reader reader(in);
  reader.expect_tag(kMagic);
  const std::uint64_t version = reader.u64();
  if (version != kVersion) {
    throw IoError("load_model: unsupported format version " +
                  std::to_string(version));
  }
  const std::string type = reader.str();
  std::unique_ptr<Regressor> model;
  if (type == "linreg") {
    model =
        std::make_unique<LinearRegression>(LinearRegression::load(reader));
  } else if (type == "neural") {
    model = std::make_unique<NeuralRegressor>(NeuralRegressor::load(reader));
  } else {
    throw IoError("load_model: unknown model type '" + type + "'");
  }
  // A model file holds exactly one model: anything after the last field is
  // corruption (e.g. a concatenated or overwritten artifact), and silently
  // accepting it would mask a truncated read elsewhere.
  reader.expect_end();
  return model;
}

std::unique_ptr<Regressor> load_model(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("load_model: cannot open '" + path + "'");
  return load_model(in);
}

}  // namespace dsml::ml
