#include "ml/serialize.hpp"

#include <filesystem>
#include <fstream>

#include "common/serial.hpp"
#include "ml/linreg.hpp"
#include "ml/nn_models.hpp"
#include "ml/validation.hpp"

namespace dsml::ml {

namespace {
constexpr const char* kMagic = "dsml-model";
constexpr std::uint64_t kVersion = 1;
}  // namespace

void save_model(const Regressor& model, std::ostream& out) {
  serial::Writer writer(out);
  writer.tag(kMagic);
  writer.u64(kVersion);
  if (const auto* lr = dynamic_cast<const LinearRegression*>(&model)) {
    writer.str("linreg");
    lr->save(writer);
    return;
  }
  if (const auto* nn = dynamic_cast<const NeuralRegressor*>(&model)) {
    writer.str("neural");
    nn->save(writer);
    return;
  }
  throw InvalidArgument("save_model: unsupported model type '" +
                        model.name() + "'");
}

void save_model(const Regressor& model, const std::string& path) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path);
  if (!out) throw IoError("save_model: cannot write '" + path + "'");
  save_model(model, out);
}

std::unique_ptr<Regressor> load_model(std::istream& in) {
  serial::Reader reader(in);
  reader.expect_tag(kMagic);
  const std::uint64_t version = reader.u64();
  if (version != kVersion) {
    throw IoError("load_model: unsupported format version " +
                  std::to_string(version));
  }
  const std::string type = reader.str();
  if (type == "linreg") {
    return std::make_unique<LinearRegression>(LinearRegression::load(reader));
  }
  if (type == "neural") {
    return std::make_unique<NeuralRegressor>(NeuralRegressor::load(reader));
  }
  throw IoError("load_model: unknown model type '" + type + "'");
}

std::unique_ptr<Regressor> load_model(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("load_model: cannot open '" + path + "'");
  return load_model(in);
}

}  // namespace dsml::ml
