// Float32 inference snapshots — the opt-in serving fast path.
//
// A fitted Regressor stays double everywhere; make_f32_predictor() builds a
// one-time float32 snapshot of its weights and encoding (folded scaling,
// pre-transposed layers) that batches rows through the f32 SIMD kernels in
// linalg/kernels_f32.hpp. engine::ModelRegistry builds the snapshot at
// registration; engine::InferenceSession routes batches through it only when
// SessionOptions::use_f32 is set.
//
// Contract: predictions stay within a 1e-5 relative error budget of the
// double path (enforced by `dsml bench`'s f32_session section and the
// test_backend property tests); they are NOT bit-identical and never replace
// the double path by default. Snapshots are immutable after construction and
// safe to share across threads.
#pragma once

#include <memory>
#include <vector>

#include "data/dataset.hpp"

namespace dsml::ml {

class Regressor;

/// An immutable float32 inference snapshot of a fitted model.
class F32Predictor {
 public:
  virtual ~F32Predictor() = default;

  /// Predict the target for every row; same dataset contract as
  /// Regressor::predict. Output is double (converted once per row at the
  /// end of the f32 pipeline).
  virtual std::vector<double> predict(const data::Dataset& dataset) const = 0;
};

/// Builds the f32 snapshot for a fitted model, or nullptr when the model's
/// type has no f32 path (the session then falls back to double). Throws
/// InvalidArgument on an unfitted model.
std::unique_ptr<F32Predictor> make_f32_predictor(const Regressor& model);

}  // namespace dsml::ml
