#include "ml/metrics.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace dsml::ml {

std::vector<double> absolute_percentage_errors(
    std::span<const double> predicted, std::span<const double> truth) {
  DSML_REQUIRE(predicted.size() == truth.size() && !truth.empty(),
               "absolute_percentage_errors: size mismatch or empty");
  std::vector<double> errors(truth.size());
  for (std::size_t i = 0; i < truth.size(); ++i) {
    DSML_REQUIRE(truth[i] > 0.0,
                 "absolute_percentage_errors: non-positive true value");
    errors[i] = 100.0 * std::abs(predicted[i] - truth[i]) / truth[i];
  }
  return errors;
}

double mape(std::span<const double> predicted, std::span<const double> truth) {
  const auto errors = absolute_percentage_errors(predicted, truth);
  return stats::mean(errors);
}

ErrorSummary summarize_errors(std::span<const double> predicted,
                              std::span<const double> truth) {
  const auto errors = absolute_percentage_errors(predicted, truth);
  ErrorSummary s;
  s.mean = stats::mean(errors);
  s.stddev = errors.size() >= 2 ? stats::stddev(errors) : 0.0;
  s.max = stats::max(errors);
  s.count = errors.size();
  return s;
}

double rmse(std::span<const double> predicted, std::span<const double> truth) {
  DSML_REQUIRE(predicted.size() == truth.size() && !truth.empty(),
               "rmse: size mismatch or empty");
  double ss = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = predicted[i] - truth[i];
    ss += d * d;
  }
  return std::sqrt(ss / static_cast<double>(truth.size()));
}

double r_squared(std::span<const double> predicted,
                 std::span<const double> truth) {
  DSML_REQUIRE(predicted.size() == truth.size() && truth.size() >= 2,
               "r_squared: need >= 2 points");
  const double my = stats::mean(truth);
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    ss_res += (truth[i] - predicted[i]) * (truth[i] - predicted[i]);
    ss_tot += (truth[i] - my) * (truth[i] - my);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace dsml::ml
