// The one fit→estimate→score evaluation cell shared by every training path.
//
// Before the engine layer, `run_sampled_dse`, `run_chronological`, and
// `SelectModel::fit` each hand-rolled the same loop: optionally estimate a
// candidate's predictive error by cross-validation (paper §3.3), fit it on
// the full training sample, time the fit, score a held-out dataset, and
// convert any exception into a FailureRecord so one bad cell degrades
// instead of killing the experiment. fit_and_score() is that loop, written
// once: callers describe the cell with a FitScoreRequest and decide which
// stages run; failure capture, failpoint injection, tracing, and metrics are
// uniform across all of them.
//
// The cell lives in the ml layer (src/ml, dsml_ml) so SelectModel::fit and
// the dse drivers can call it without an upward dependency on the engine
// layer; the engine proper (registry, sessions, serving) builds on top of
// the same result type and keeps the dsml::engine namespace it introduced.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "ml/model.hpp"
#include "ml/validation.hpp"

namespace dsml::engine {

/// Describes one evaluation cell. Datasets are borrowed (never copied) and
/// must outlive the call.
struct FitScoreRequest {
  /// The candidate under evaluation (name + fresh-instance factory).
  ml::NamedModel model;

  /// Training sample; required.
  const data::Dataset* train = nullptr;

  /// Run ml::estimate_error (repeated 50/50 cross-validation) first.
  bool estimate = false;
  ml::ValidationOptions validation;

  /// Fit a fresh instance on the full training sample.
  bool fit = true;

  /// After a successful fit, predict these rows (e.g. the full design space
  /// or the held-out year). Ignored when null or when `fit` is false.
  const data::Dataset* score = nullptr;

  /// Optional fault-injection site fired at the top of the cell, so callers
  /// keep their historical failpoint names ("dse.sampled.eval",
  /// "select.candidate", ...) through the refactor.
  const char* failpoint = nullptr;
};

/// What one cell produced. `failure` captures the first exception thrown by
/// any stage; when set, the other outputs are whatever completed before it
/// (the fitted model and predictions are always cleared so a failed cell
/// cannot leak a half-trained artifact).
struct FitScoreResult {
  std::string name;                      ///< request.model.name
  std::unique_ptr<ml::Regressor> model;  ///< fitted instance (fit stage ok)
  ml::ErrorEstimate estimate;            ///< estimate stage output
  std::vector<double> predictions;       ///< score-stage predictions
  double fit_seconds = 0.0;              ///< wall-clock of the fit stage
  std::optional<FailureRecord> failure;  ///< set when the cell threw

  bool ok() const noexcept { return !failure.has_value(); }
};

/// Runs one cell. Never throws for cell-level failures — exceptions from the
/// estimate/fit/score stages (and the injected failpoint) become
/// `result.failure` with the taxonomy type from error_kind(). Contract
/// violations (null `train`) still throw InvalidArgument.
FitScoreResult fit_and_score(const FitScoreRequest& request);

}  // namespace dsml::engine
