#include "ml/ensemble.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dsml::ml {

std::vector<double> ensemble_disagreement(
    const std::vector<std::span<const double>>& members) {
  if (members.empty()) return {};
  const std::size_t rows = members.front().size();
  for (const auto& m : members) {
    DSML_REQUIRE(m.size() == rows,
                 "ensemble_disagreement: member size mismatch");
  }
  std::vector<double> out(rows, 0.0);
  if (members.size() < 2) return out;

  const double k = static_cast<double>(members.size());
  for (std::size_t r = 0; r < rows; ++r) {
    double mean = 0.0;
    for (const auto& m : members) mean += m[r];
    mean /= k;
    double var = 0.0;
    for (const auto& m : members) {
      const double d = m[r] - mean;
      var += d * d;
    }
    var /= k;
    // Relative spread; the epsilon keeps a degenerate all-zero row finite.
    const double scale = std::abs(mean) > 1e-12 ? std::abs(mean) : 1e-12;
    out[r] = std::sqrt(var) / scale;
  }
  return out;
}

std::vector<double> ensemble_disagreement(
    const std::vector<std::vector<double>>& members) {
  std::vector<std::span<const double>> views;
  views.reserve(members.size());
  for (const auto& m : members) views.emplace_back(m.data(), m.size());
  return ensemble_disagreement(views);
}

}  // namespace dsml::ml
