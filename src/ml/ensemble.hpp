// Ensemble disagreement: how much a set of models argue about each row.
//
// The active-learning sampler (dse::AdaptiveSampler) ranks unsimulated
// configurations by how much the surrogate ensemble — typically the LR and
// NN models trained on the points simulated so far — disagrees on them, and
// spends the next simulation budget where disagreement is highest. This is
// the query-by-committee variance criterion from the ML-for-simulation
// literature (PAPERS.md: Ali & Akram 2024; Concorde 2025): regions where a
// linear and a non-linear surrogate diverge are regions neither has enough
// training support in.
#pragma once

#include <span>
#include <vector>

namespace dsml::ml {

/// Per-row disagreement of an ensemble of prediction vectors: the population
/// standard deviation across members, normalised by the mean magnitude of
/// the row (relative, so high-cycle configurations do not dominate purely by
/// scale). All member vectors must be the same length. One member (or none)
/// means nothing to argue about: all zeros.
///
/// Deterministic: a plain serial reduction over members, so the ranking an
/// adaptive sampler derives from it is bit-identical across thread counts.
std::vector<double> ensemble_disagreement(
    const std::vector<std::span<const double>>& members);

/// Convenience overload for owned vectors.
std::vector<double> ensemble_disagreement(
    const std::vector<std::vector<double>>& members);

}  // namespace dsml::ml
