#include "ml/linreg.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "common/failpoint.hpp"
#include "common/metrics.hpp"
#include "common/retry.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "linalg/kernels.hpp"

namespace dsml::ml {

const char* to_string(LinRegMethod method) noexcept {
  switch (method) {
    case LinRegMethod::kEnter: return "LR-E";
    case LinRegMethod::kStepwise: return "LR-S";
    case LinRegMethod::kForward: return "LR-F";
    case LinRegMethod::kBackward: return "LR-B";
  }
  return "LR-?";
}

OlsFit fit_ols(const linalg::Matrix& x, std::span<const double> y,
               std::span<const std::size_t> columns) {
  DSML_REQUIRE(!columns.empty(), "fit_ols: no columns selected");
  DSML_REQUIRE(x.rows() == y.size(), "fit_ols: row count mismatch");
  DSML_REQUIRE(x.rows() > columns.size(),
               "fit_ols: need more observations than coefficients");

  const linalg::Matrix xs = x.select_columns(columns);
  OlsFit fit;
  fit.columns.assign(columns.begin(), columns.end());
  fit.n = x.rows();
  fit.dof = fit.n - columns.size();

  // Attempt 0 is the historical Householder QR path, untouched — a clean
  // solve is bit-identical to the pre-retry implementation. If it throws
  // NumericalError (singular to working precision) or produces non-finite
  // coefficients, attempts 1..2 fall back to ridge-regularised normal
  // equations (X^T X + lambda I) with an escalating penalty before giving
  // up. The ridge path zeroes inference statistics like any rank-deficient
  // fit; OlsFit::ridge_fallback records that it happened.
  static constexpr double kRidge[] = {0.0, 1e-8, 1e-4};
  std::optional<linalg::QR> qr;
  std::optional<linalg::Cholesky> ridge_chol;
  retry(
      3, [](std::size_t) { /* no RNG involved in an OLS solve */ },
      [&](std::size_t attempt) {
        if (attempt == 0) {
          DSML_FAIL("linreg.solve");
          qr.emplace(xs);
          fit.beta = qr->solve(y);
        } else {
          qr.reset();
          fit.ridge_fallback = true;
          static metrics::Counter& ridge_solves =
              metrics::counter("ml.linreg_ridge_solves");
          ridge_solves.add();
          linalg::Matrix xtx = xs.transposed().multiply(xs);
          // Scale the penalty by the largest Gram diagonal so lambda means
          // the same thing for standardized and raw designs.
          double max_diag = 0.0;
          for (std::size_t j = 0; j < xtx.cols(); ++j) {
            max_diag = std::max(
                max_diag, xtx(j, j));  // dsml-lint: allow(matrix-elem-in-loop)
          }
          const double lambda =
              kRidge[attempt] * (max_diag > 0.0 ? max_diag : 1.0);
          for (std::size_t j = 0; j < xtx.cols(); ++j) {
            xtx(j, j) += lambda;  // dsml-lint: allow(matrix-elem-in-loop)
          }
          const linalg::Vector xty = xs.multiply_transposed(y);
          ridge_chol.emplace(xtx);
          fit.beta = ridge_chol->solve(xty);
        }
        for (double b : fit.beta) {
          if (!std::isfinite(b)) {
            throw NumericalError("fit_ols: non-finite coefficients");
          }
        }
      });

  // Residuals and sums of squares.
  const linalg::Vector yhat = xs.multiply(fit.beta);
  const double ymean = stats::mean(y);
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double r = y[i] - yhat[i];
    fit.ss_res += r * r;
    fit.ss_tot += (y[i] - ymean) * (y[i] - ymean);
  }
  fit.sigma2 = fit.dof > 0 ? fit.ss_res / static_cast<double>(fit.dof) : 0.0;
  fit.r2 = fit.ss_tot > 0.0 ? 1.0 - fit.ss_res / fit.ss_tot
                            : (fit.ss_res == 0.0 ? 1.0 : 0.0);
  const auto p = static_cast<double>(columns.size() - 1);  // sans intercept
  const auto n = static_cast<double>(fit.n);
  fit.adjusted_r2 =
      fit.dof > 1 ? 1.0 - (1.0 - fit.r2) * (n - 1.0) / (n - p - 1.0) : fit.r2;

  // Coefficient covariance = sigma2 * (X^T X)^-1 via the R factor.
  fit.std_errors.assign(columns.size(), 0.0);
  fit.t_stats.assign(columns.size(), 0.0);
  fit.p_values.assign(columns.size(), 1.0);
  // The ridge fallback's penalties are tiny relative to the Gram diagonal,
  // so inverting the regularised Gram matrix is an accurate (X^T X)^-1
  // surrogate — without it every fallback p-value would be 1.0 and the
  // stepwise procedures would strip the model down to its intercept.
  std::optional<linalg::Matrix> cov;
  if (qr.has_value() && !qr->rank_deficient() && fit.dof > 0) {
    cov = linalg::xtx_inverse_from_qr(*qr);
  } else if (ridge_chol.has_value() && fit.dof > 0) {
    cov = ridge_chol->inverse();
  }
  if (cov.has_value()) {
    const linalg::Matrix& cov_kernel = *cov;
    for (std::size_t j = 0; j < columns.size(); ++j) {
      // Diagonal-only read, once per fit.
      const double var =
          fit.sigma2 * cov_kernel(j, j);  // dsml-lint: allow(matrix-elem-in-loop)
      fit.std_errors[j] = var > 0.0 ? std::sqrt(var) : 0.0;
      if (fit.std_errors[j] > 0.0) {
        fit.t_stats[j] = fit.beta[j] / fit.std_errors[j];
        fit.p_values[j] = stats::t_test_p_value(
            fit.t_stats[j], static_cast<double>(fit.dof));
      } else {
        // Perfect fit along this direction: infinitely significant.
        fit.t_stats[j] = fit.beta[j] == 0.0
                             ? 0.0
                             : std::numeric_limits<double>::infinity();
        fit.p_values[j] = fit.beta[j] == 0.0 ? 1.0 : 0.0;
      }
    }
  }
  return fit;
}

LinearRegression::LinearRegression() : LinearRegression(Options{}) {}

LinearRegression::LinearRegression(Options options)
    : options_(options) {
  DSML_REQUIRE(options_.entry_p > 0.0 && options_.entry_p < 1.0,
               "LinearRegression: entry_p outside (0,1)");
  DSML_REQUIRE(options_.removal_p >= options_.entry_p &&
                   options_.removal_p < 1.0,
               "LinearRegression: removal_p must be in [entry_p, 1)");
}

void LinearRegression::fit(const data::Dataset& train) {
  DSML_REQUIRE(train.has_target(), "LinearRegression::fit: dataset lacks target");
  trace::Span span("LinearRegression::fit", "ml");
  static metrics::Counter& fits = metrics::counter("ml.linreg_fits");
  fits.add();
  data::EncoderOptions enc;
  enc.mode = data::EncodingMode::kLinearRegression;
  enc.scale_inputs = true;
  enc.scale_target = false;
  enc.drop_constant = true;
  enc.add_intercept = true;
  encoder_.fit(train, enc);
  feature_names_ = encoder_.feature_names();

  const linalg::Matrix x = encoder_.encode(train);
  const std::vector<double> y = encoder_.encode_target(train);
  // Degenerate-data guards: the encoder drops constant columns, so a design
  // with only the intercept left means no predictor varies at all, and a
  // non-finite target would silently poison every sum of squares.
  DSML_REQUIRE(x.cols() >= 2,
               "LinearRegression::fit: no varying predictors (every feature "
               "column is constant)");
  for (double v : y) {
    DSML_REQUIRE(std::isfinite(v),
                 "LinearRegression::fit: target contains non-finite values");
  }

  // Per-column standard deviations for standardized betas. One row-major
  // sweep with row spans rather than a per-column x(i, j) walk; each column's
  // accumulator still sees its values in ascending-row order, so the
  // resulting stddevs are bit-identical to the column-at-a-time version.
  {
    std::vector<stats::RunningStats> per_col(x.cols());
    for (std::size_t i = 0; i < x.rows(); ++i) {
      const auto row = x.row(i);
      for (std::size_t j = 0; j < x.cols(); ++j) per_col[j].add(row[j]);
    }
    train_x_sd_.assign(x.cols(), 0.0);
    for (std::size_t j = 0; j < x.cols(); ++j) {
      train_x_sd_[j] = per_col[j].stddev();
    }
  }
  {
    stats::RunningStats rs;
    for (double v : y) rs.add(v);
    train_y_sd_ = rs.stddev();
  }

  const std::vector<std::size_t> columns = select_columns(x, y);
  fit_ = fit_ols(x, y, columns);
}

std::vector<std::size_t> LinearRegression::select_columns(
    const linalg::Matrix& x, std::span<const double> y) const {
  const std::size_t n_cols = x.cols();
  const std::size_t n = x.rows();
  DSML_REQUIRE(n >= 3, "LinearRegression: need at least 3 observations");

  // Hard cap so the design stays overdetermined even on tiny samples.
  std::size_t max_predictors = options_.max_predictors > 0
                                   ? options_.max_predictors
                                   : (n >= 3 ? n - 2 : 1);
  max_predictors = std::min(max_predictors, n_cols - 1);

  std::vector<std::size_t> in_model = {0};  // intercept

  // Universe of usable predictors: a greedy maximal linearly-independent
  // subset. SPEC announcements routinely carry exactly collinear fields
  // (total_cores = total_chips x cores_per_chip, duplicated cache
  // descriptions); admitting them makes Enter's fit numerically meaningless
  // and Backward's p-value ordering arbitrary, so they are excluded up
  // front — the same effect as SPSS's tolerance check.
  std::vector<std::size_t> universe;
  {
    std::vector<std::size_t> picked = {0};
    for (std::size_t j = 1; j < n_cols; ++j) {
      picked.push_back(j);
      if (picked.size() >= n) {
        picked.pop_back();
        break;
      }
      const linalg::QR qr(x.select_columns(picked));
      if (qr.rank_deficient()) {
        picked.pop_back();
      } else {
        universe.push_back(j);
      }
    }
  }

  auto candidate_columns = [&](const std::vector<std::size_t>& current) {
    std::vector<std::size_t> out;
    for (std::size_t j : universe) {
      if (std::find(current.begin(), current.end(), j) == current.end()) {
        out.push_back(j);
      }
    }
    return out;
  };

  // One forward step: add the candidate with the smallest p-value if it
  // clears the entry threshold. Returns true if a predictor was added.
  auto forward_step = [&]() {
    if (in_model.size() - 1 >= max_predictors) return false;
    double best_p = options_.entry_p;
    std::size_t best_col = n_cols;  // sentinel
    for (std::size_t j : candidate_columns(in_model)) {
      std::vector<std::size_t> trial = in_model;
      trial.push_back(j);
      if (trial.size() >= n) continue;  // would exhaust dof
      OlsFit f;
      try {
        f = fit_ols(x, y, trial);
      } catch (const NumericalError&) {
        continue;
      }
      const double p = f.p_values.back();
      if (p < best_p) {
        best_p = p;
        best_col = j;
      }
    }
    if (best_col == n_cols) return false;
    in_model.push_back(best_col);
    return true;
  };

  // One backward step: remove the worst predictor if it misses the removal
  // threshold. Returns true if a predictor was removed.
  auto backward_step = [&]() {
    if (in_model.size() <= 1) return false;
    const OlsFit f = fit_ols(x, y, in_model);
    double worst_p = options_.removal_p;
    std::size_t worst_pos = 0;  // position in in_model; 0 = intercept = never
    for (std::size_t k = 1; k < in_model.size(); ++k) {
      if (f.p_values[k] > worst_p) {
        worst_p = f.p_values[k];
        worst_pos = k;
      }
    }
    if (worst_pos == 0) return false;
    in_model.erase(in_model.begin() +
                   static_cast<std::ptrdiff_t>(worst_pos));
    return true;
  };

  switch (options_.method) {
    case LinRegMethod::kEnter: {
      // All (independent) predictors at once, capped to keep the system
      // overdetermined.
      for (std::size_t j : universe) {
        if (in_model.size() - 1 >= max_predictors) break;
        in_model.push_back(j);
      }
      break;
    }
    case LinRegMethod::kForward: {
      while (forward_step()) {
      }
      break;
    }
    case LinRegMethod::kBackward: {
      for (std::size_t j : universe) {
        if (in_model.size() - 1 >= max_predictors) break;
        in_model.push_back(j);
      }
      while (backward_step()) {
      }
      break;
    }
    case LinRegMethod::kStepwise: {
      bool changed = true;
      while (changed) {
        changed = forward_step();
        while (backward_step()) {
          changed = true;
        }
      }
      break;
    }
  }
  std::sort(in_model.begin(), in_model.end());
  return in_model;
}

std::vector<double> LinearRegression::predict(
    const data::Dataset& dataset) const {
  DSML_REQUIRE(fit_.has_value(), "LinearRegression::predict: not fitted");
  const linalg::Matrix x = encoder_.encode(dataset);
  // Shape-aware kernel choice (measured by tools/bench_ml.cpp's lr_predict
  // section): the fused gather GEMV beats materialising the column subset at
  // every sparse selection — the copy is a full extra pass over data read
  // exactly once — but when the stepwise fit kept a *prefix* of the design
  // (every column 0..k-1, the common Enter-method outcome) the gather
  // indirection is pure overhead and the dense GEMV reads the design matrix
  // in place. Both kernels accumulate each row in ascending column order, so
  // the choice is invisible: results are bit-identical either way. Chunked
  // over the pool for full-design-space batches.
  std::vector<double> out(x.rows());
  bool prefix_selection = true;
  for (std::size_t k = 0; k < fit_->columns.size() && prefix_selection; ++k) {
    prefix_selection = fit_->columns[k] == k;
  }
  constexpr std::size_t kChunk = 512;
  parallel_for_chunks(
      0, x.rows(), kChunk, [&](std::size_t b, std::size_t e) {
        if (prefix_selection) {
          linalg::kernels::gemv(x.row(b).data(), x.cols(), e - b,
                                fit_->columns.size(), fit_->beta.data(),
                                out.data() + b);
        } else {
          linalg::kernels::gemv_columns(
              x.row(b).data(), x.cols(), e - b, fit_->columns.data(),
              fit_->columns.size(), fit_->beta.data(), out.data() + b);
        }
      });
  return out;
}

std::string LinearRegression::name() const {
  return to_string(options_.method);
}

const OlsFit& LinearRegression::ols() const {
  DSML_REQUIRE(fit_.has_value(), "LinearRegression::ols: not fitted");
  return *fit_;
}

std::vector<std::string> LinearRegression::selected_predictors() const {
  DSML_REQUIRE(fit_.has_value(),
               "LinearRegression::selected_predictors: not fitted");
  std::vector<std::string> names;
  for (std::size_t col : fit_->columns) {
    if (col == 0) continue;  // intercept
    names.push_back(feature_names_[col]);
  }
  return names;
}

std::vector<PredictorImportance> LinearRegression::standardized_betas() const {
  DSML_REQUIRE(fit_.has_value(),
               "LinearRegression::standardized_betas: not fitted");
  std::vector<PredictorImportance> out;
  if (train_y_sd_ <= 0.0) return out;
  for (std::size_t k = 0; k < fit_->columns.size(); ++k) {
    const std::size_t col = fit_->columns[k];
    if (col == 0) continue;
    PredictorImportance imp;
    imp.name = feature_names_[col];
    imp.importance =
        std::abs(fit_->beta[k]) * train_x_sd_[col] / train_y_sd_;
    out.push_back(std::move(imp));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.importance > b.importance;
  });
  return out;
}

void LinearRegression::save(serial::Writer& writer) const {
  DSML_REQUIRE(fit_.has_value(), "LinearRegression::save: not fitted");
  writer.tag("linreg");
  writer.u64(static_cast<std::uint64_t>(options_.method));
  writer.f64(options_.entry_p);
  writer.f64(options_.removal_p);
  writer.u64(options_.max_predictors);
  encoder_.save(writer);
  writer.u64(feature_names_.size());
  for (const auto& name : feature_names_) writer.str(name);
  writer.f64_vector(train_x_sd_);
  writer.f64(train_y_sd_);
  const OlsFit& f = *fit_;
  writer.u64_vector(
      std::vector<std::uint64_t>(f.columns.begin(), f.columns.end()));
  writer.f64_vector(f.beta);
  writer.f64_vector(f.std_errors);
  writer.f64_vector(f.t_stats);
  writer.f64_vector(f.p_values);
  writer.f64(f.sigma2);
  writer.f64(f.ss_res);
  writer.f64(f.ss_tot);
  writer.f64(f.r2);
  writer.f64(f.adjusted_r2);
  writer.u64(f.n);
  writer.u64(f.dof);
}

LinearRegression LinearRegression::load(serial::Reader& reader) {
  reader.expect_tag("linreg");
  Options opt;
  opt.method = static_cast<LinRegMethod>(reader.u64());
  opt.entry_p = reader.f64();
  opt.removal_p = reader.f64();
  opt.max_predictors = reader.u64();
  LinearRegression model(opt);
  model.encoder_ = data::Encoder::load(reader);
  const std::uint64_t n_names = reader.u64();
  for (std::uint64_t i = 0; i < n_names; ++i) {
    model.feature_names_.push_back(reader.str());
  }
  model.train_x_sd_ = reader.f64_vector();
  model.train_y_sd_ = reader.f64();
  OlsFit f;
  for (std::uint64_t c : reader.u64_vector()) {
    f.columns.push_back(static_cast<std::size_t>(c));
  }
  f.beta = reader.f64_vector();
  f.std_errors = reader.f64_vector();
  f.t_stats = reader.f64_vector();
  f.p_values = reader.f64_vector();
  f.sigma2 = reader.f64();
  f.ss_res = reader.f64();
  f.ss_tot = reader.f64();
  f.r2 = reader.f64();
  f.adjusted_r2 = reader.f64();
  f.n = reader.u64();
  f.dof = reader.u64();
  DSML_REQUIRE(f.columns.size() == f.beta.size(),
               "LinearRegression::load: inconsistent fit");
  model.fit_ = std::move(f);
  return model;
}

std::vector<PredictorImportance> LinearRegression::importance() const {
  if (!fit_.has_value()) return {};
  return standardized_betas();
}

}  // namespace dsml::ml
