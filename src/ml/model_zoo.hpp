// Canonical model menus used across the paper's experiments.
//
// The paper evaluates nine models — four LR methods and five NN methods —
// plus NN-S (the Ipek-style baseline) in the sampled-DSE study. These
// helpers build the corresponding NamedModel lists so experiments and
// benches all agree on configuration.
#pragma once

#include "ml/linreg.hpp"
#include "ml/model.hpp"
#include "ml/nn_models.hpp"

namespace dsml::ml {

/// Knobs threaded through to every constructed model.
struct ZooOptions {
  std::uint64_t nn_seed = 0x5eed;
  /// Multiplies NN epoch budgets (tests use < 1 for speed).
  double nn_epoch_scale = 1.0;
};

/// One specific model by paper name ("LR-E", "LR-S", "LR-F", "LR-B", "NN-Q",
/// "NN-D", "NN-M", "NN-P", "NN-E", "NN-S"). Throws InvalidArgument for an
/// unknown name.
NamedModel make_model(const std::string& name, const ZooOptions& options = {});

/// The nine models of Figures 7–8, in the paper's x-axis order:
/// LR-E, LR-S, LR-B, LR-F, NN-Q, NN-D, NN-M, NN-P, NN-E.
std::vector<NamedModel> chronological_menu(const ZooOptions& options = {});

/// The three models shown in Figures 2–6: LR-B, NN-E, NN-S.
std::vector<NamedModel> sampled_dse_menu(const ZooOptions& options = {});

/// All ten model names known to the zoo.
std::vector<std::string> all_model_names();

}  // namespace dsml::ml
