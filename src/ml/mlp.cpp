#include "ml/mlp.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "linalg/kernels.hpp"

namespace dsml::ml {

namespace {
inline double sigmoid(double x) noexcept { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

Mlp::Mlp(std::size_t n_inputs, std::vector<std::size_t> hidden, Rng& rng)
    : n_inputs_(n_inputs), hidden_sizes_(std::move(hidden)) {
  DSML_REQUIRE(n_inputs_ > 0, "Mlp: need at least one input");
  for (std::size_t h : hidden_sizes_) {
    DSML_REQUIRE(h > 0, "Mlp: hidden layer of width zero");
  }
  input_enabled_.assign(n_inputs_, true);

  std::size_t fan_in = n_inputs_;
  for (std::size_t li = 0; li <= hidden_sizes_.size(); ++li) {
    const bool is_output = (li == hidden_sizes_.size());
    const std::size_t fan_out = is_output ? 1 : hidden_sizes_[li];
    Layer layer;
    layer.output = is_output;
    layer.w = linalg::Matrix(fan_out, fan_in);
    layer.w_mask = linalg::Matrix(fan_out, fan_in, 1.0);
    layer.w_vel = linalg::Matrix(fan_out, fan_in);
    layer.b.assign(fan_out, 0.0);
    layer.b_vel.assign(fan_out, 0.0);
    const double r = 1.0 / std::sqrt(static_cast<double>(fan_in));
    for (std::size_t i = 0; i < fan_out; ++i) {
      for (std::size_t j = 0; j < fan_in; ++j) {
        // One-time construction, and the Rng draw order is load-bearing.
        layer.w(i, j) = rng.uniform(-r, r);  // dsml-lint: allow(matrix-elem-in-loop)
      }
      layer.b[i] = rng.uniform(-r, r);
    }
    layers_.push_back(std::move(layer));
    fan_in = fan_out;
  }
}

Mlp::LayerView Mlp::layer_view(std::size_t index) const {
  DSML_REQUIRE(index < layers_.size(), "Mlp::layer_view: layer out of range");
  const Layer& layer = layers_[index];
  return {&layer.w, layer.b, layer.output};
}

std::size_t Mlp::parameter_count() const noexcept {
  std::size_t n = 0;
  for (const auto& layer : layers_) {
    for (double m : layer.w_mask.data()) {
      if (m != 0.0) ++n;
    }
    n += layer.b.size();
  }
  return n;
}

void Mlp::forward_pass(
    std::span<const double> x,
    std::vector<std::vector<double>>& activations) const {
  auto& input = activations[0];
  for (std::size_t j = 0; j < n_inputs_; ++j) {
    input[j] = input_enabled_[j] ? x[j] : 0.0;
  }
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    const Layer& layer = layers_[li];
    const auto& in = activations[li];
    auto& out = activations[li + 1];
    for (std::size_t i = 0; i < layer.w.rows(); ++i) {
      double z = layer.b[i];
      const auto wrow = layer.w.row(i);
      for (std::size_t j = 0; j < wrow.size(); ++j) z += wrow[j] * in[j];
      out[i] = layer.output ? z : sigmoid(z);
    }
  }
}

bool Mlp::all_inputs_enabled() const noexcept {
  return std::all_of(input_enabled_.begin(), input_enabled_.end(),
                     [](bool e) { return e; });
}

void Mlp::forward_block(const double* x, std::size_t ldx, std::size_t rows,
                        double* out, linalg::Workspace& ws) const {
  linalg::Workspace::Scope scope(ws);
  const double* cur = x;
  std::size_t ldcur = ldx;
  if (!all_inputs_enabled()) {
    // Mirror the scalar path's masking: a disabled feature reads as 0.0
    // whatever the input holds (NaN included), not merely 0-weighted.
    std::span<double> masked = ws.take(rows * n_inputs_);
    for (std::size_t r = 0; r < rows; ++r) {
      const double* src = x + r * ldx;
      double* dst = masked.data() + r * n_inputs_;
      for (std::size_t j = 0; j < n_inputs_; ++j) {
        dst[j] = input_enabled_[j] ? src[j] : 0.0;
      }
    }
    cur = masked.data();
    ldcur = n_inputs_;
  }
  std::size_t fan_in = n_inputs_;
  for (const Layer& layer : layers_) {
    const std::size_t fan_out = layer.w.rows();
    std::span<double> next = ws.take(rows * fan_out);
    linalg::kernels::affine_forward(cur, ldcur, rows, fan_in,
                                    layer.w.data().data(), layer.b.data(),
                                    fan_out, !layer.output, next.data(),
                                    fan_out, ws);
    cur = next.data();
    ldcur = fan_out;
    fan_in = fan_out;
  }
  // The output layer is a single linear unit, so the final activation block
  // is one column: copy it out.
  for (std::size_t r = 0; r < rows; ++r) out[r] = cur[r * ldcur];
}

double Mlp::predict(std::span<const double> x) const {
  DSML_REQUIRE(x.size() == n_inputs_, "Mlp::predict: input size mismatch");
  double out = 0.0;
  forward_block(x.data(), x.size(), 1, &out, linalg::tls_workspace());
  return out;
}

std::vector<double> Mlp::predict(const linalg::Matrix& x) const {
  DSML_REQUIRE(x.cols() == n_inputs_, "Mlp::predict: input width mismatch");
  std::vector<double> out(x.rows());
  // Chunks are dispatched across the pool; every chunk writes only its own
  // out[b, e) slice and scratch is per worker thread, so the result is
  // deterministic and identical to the serial row loop.
  constexpr std::size_t kChunk = 256;
  parallel_for_chunks(0, x.rows(), kChunk,
                      [&](std::size_t b, std::size_t e) {
                        forward_block(x.row(b).data(), x.cols(), e - b,
                                      out.data() + b, linalg::tls_workspace());
                      });
  return out;
}

double Mlp::mse(const linalg::Matrix& x, std::span<const double> y) const {
  DSML_REQUIRE(x.rows() == y.size() && !y.empty(), "Mlp::mse: size mismatch");
  const std::vector<double> pred = predict(x);
  double ss = 0.0;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const double d = pred[r] - y[r];
    ss += d * d;
  }
  return ss / static_cast<double>(y.size());
}

double Mlp::train_epoch(const linalg::Matrix& x, std::span<const double> y,
                        double learning_rate, double momentum, Rng& rng) {
  DSML_REQUIRE(x.rows() == y.size() && !y.empty(),
               "Mlp::train_epoch: size mismatch");
  DSML_REQUIRE(x.cols() == n_inputs_, "Mlp::train_epoch: input width mismatch");
  trace::Span span("Mlp::train_epoch", "ml");
  static metrics::Counter& epochs = metrics::counter("ml.train_epochs");
  epochs.add();

  std::vector<std::size_t> order(x.rows());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);

  // Per-call scratch: train_epoch owns its activation/delta buffers, so
  // training one network never interferes with concurrent predictions on
  // another (or the same) network.
  std::vector<std::vector<double>> activations(layers_.size() + 1);
  std::vector<std::vector<double>> deltas(layers_.size());
  activations[0].assign(n_inputs_, 0.0);
  for (std::size_t li = 0; li < layers_.size(); ++li) {
    activations[li + 1].assign(layers_[li].w.rows(), 0.0);
    deltas[li].assign(layers_[li].w.rows(), 0.0);
  }

  double ss = 0.0;
  for (std::size_t sample : order) {
    forward_pass(x.row(sample), activations);
    const double yhat = activations.back()[0];
    const double err = yhat - y[sample];
    ss += err * err;

    // Output delta (linear activation): dL/dz = err.
    deltas.back()[0] = err;
    // Hidden deltas, back to front. The fan-out sums walk next.w row by row
    // (contiguous spans) instead of down a column; per element the products
    // still accumulate in ascending i, so the result is bit-identical to
    // the column walk.
    for (std::size_t li = layers_.size() - 1; li-- > 0;) {
      const Layer& next = layers_[li + 1];
      auto& delta = deltas[li];
      const auto& delta_next = deltas[li + 1];
      const auto& act = activations[li + 1];
      std::fill(delta.begin(), delta.end(), 0.0);
      for (std::size_t i = 0; i < next.w.rows(); ++i) {
        const double dn = delta_next[i];
        const auto wrow = next.w.row(i);
        for (std::size_t j = 0; j < delta.size(); ++j) {
          delta[j] += wrow[j] * dn;
        }
      }
      for (std::size_t j = 0; j < delta.size(); ++j) {
        delta[j] = delta[j] * act[j] * (1.0 - act[j]);  // sigmoid'
      }
    }
    // Weight updates with momentum.
    for (std::size_t li = 0; li < layers_.size(); ++li) {
      Layer& layer = layers_[li];
      const auto& in = activations[li];
      const auto& delta = deltas[li];
      for (std::size_t i = 0; i < layer.w.rows(); ++i) {
        const double di = delta[i];
        auto wrow = layer.w.row(i);
        auto vrow = layer.w_vel.row(i);
        const auto mrow = layer.w_mask.row(i);
        for (std::size_t j = 0; j < wrow.size(); ++j) {
          if (mrow[j] == 0.0) continue;
          vrow[j] = momentum * vrow[j] - learning_rate * di * in[j];
          wrow[j] += vrow[j];
        }
        layer.b_vel[i] = momentum * layer.b_vel[i] - learning_rate * di;
        layer.b[i] += layer.b_vel[i];
      }
    }
  }
  const double mse = ss / static_cast<double>(y.size());
  static metrics::Gauge& loss = metrics::gauge("ml.train_loss");
  loss.set(mse);
  trace::counter("ml.train_loss", mse);
  return mse;
}

double Mlp::hidden_unit_saliency(std::size_t layer, std::size_t unit) const {
  DSML_REQUIRE(layer < hidden_sizes_.size(),
               "hidden_unit_saliency: layer out of range");
  DSML_REQUIRE(unit < layers_[layer].w.rows(),
               "hidden_unit_saliency: unit out of range");
  // Outgoing weights live in the next layer's column `unit`.
  const Layer& next = layers_[layer + 1];
  double s = 0.0;
  for (std::size_t i = 0; i < next.w.rows(); ++i) {
    // Cold pruning heuristic, one column.
    s += std::abs(next.w(i, unit));  // dsml-lint: allow(matrix-elem-in-loop)
  }
  return s;
}

double Mlp::input_saliency(std::size_t input) const {
  DSML_REQUIRE(input < n_inputs_, "input_saliency: input out of range");
  if (!input_enabled_[input]) return 0.0;
  const Layer& first = layers_.front();
  double s = 0.0;
  for (std::size_t i = 0; i < first.w.rows(); ++i) {
    // Cold pruning heuristic, one column.
    s += std::abs(first.w(i, input));  // dsml-lint: allow(matrix-elem-in-loop)
  }
  return s;
}

void Mlp::remove_hidden_unit(std::size_t layer, std::size_t unit) {
  DSML_REQUIRE(layer < hidden_sizes_.size(),
               "remove_hidden_unit: layer out of range");
  DSML_REQUIRE(hidden_sizes_[layer] > 1,
               "remove_hidden_unit: cannot empty a hidden layer");
  Layer& cur = layers_[layer];
  DSML_REQUIRE(unit < cur.w.rows(), "remove_hidden_unit: unit out of range");

  auto drop_row = [](linalg::Matrix& m, std::size_t row) {
    linalg::Matrix out(m.rows() - 1, m.cols());
    std::size_t dst = 0;
    for (std::size_t r = 0; r < m.rows(); ++r) {
      if (r == row) continue;
      std::copy_n(m.row(r).data(), m.cols(), out.row(dst).data());
      ++dst;
    }
    m = std::move(out);
  };
  auto drop_col = [](linalg::Matrix& m, std::size_t col) {
    linalg::Matrix out(m.rows(), m.cols() - 1);
    for (std::size_t r = 0; r < m.rows(); ++r) {
      std::size_t dst = 0;
      for (std::size_t c = 0; c < m.cols(); ++c) {
        if (c == col) continue;
        // Cold network surgery.
        out(r, dst++) = m(r, c);  // dsml-lint: allow(matrix-elem-in-loop)
      }
    }
    m = std::move(out);
  };

  drop_row(cur.w, unit);
  drop_row(cur.w_mask, unit);
  drop_row(cur.w_vel, unit);
  cur.b.erase(cur.b.begin() + static_cast<std::ptrdiff_t>(unit));
  cur.b_vel.erase(cur.b_vel.begin() + static_cast<std::ptrdiff_t>(unit));

  Layer& next = layers_[layer + 1];
  drop_col(next.w, unit);
  drop_col(next.w_mask, unit);
  drop_col(next.w_vel, unit);

  --hidden_sizes_[layer];
}

void Mlp::add_hidden_unit(std::size_t layer, Rng& rng) {
  DSML_REQUIRE(layer < hidden_sizes_.size(),
               "add_hidden_unit: layer out of range");
  Layer& cur = layers_[layer];
  const std::size_t fan_in = cur.w.cols();

  auto append_row = [](linalg::Matrix& m, double fill) {
    linalg::Matrix out(m.rows() + 1, m.cols(), fill);
    for (std::size_t r = 0; r < m.rows(); ++r) {
      std::copy_n(m.row(r).data(), m.cols(), out.row(r).data());
    }
    m = std::move(out);
  };
  auto append_col = [](linalg::Matrix& m, double fill) {
    linalg::Matrix out(m.rows(), m.cols() + 1, fill);
    for (std::size_t r = 0; r < m.rows(); ++r) {
      std::copy_n(m.row(r).data(), m.cols(), out.row(r).data());
    }
    m = std::move(out);
  };

  append_row(cur.w, 0.0);
  append_row(cur.w_mask, 1.0);
  append_row(cur.w_vel, 0.0);
  const double r_in = 1.0 / std::sqrt(static_cast<double>(fan_in));
  const std::size_t new_row = cur.w.rows() - 1;
  // Cold network surgery: one fresh row, Rng draw order load-bearing.
  for (std::size_t j = 0; j < fan_in; ++j) {
    cur.w(new_row, j) = rng.uniform(-r_in, r_in);  // dsml-lint: allow(matrix-elem-in-loop)
    // Respect disabled inputs in the first layer.
    if (layer == 0 && !input_enabled_[j]) {
      cur.w(new_row, j) = 0.0;  // dsml-lint: allow(matrix-elem-in-loop)
      cur.w_mask(new_row, j) = 0.0;  // dsml-lint: allow(matrix-elem-in-loop)
    }
  }
  cur.b.push_back(rng.uniform(-r_in, r_in));
  cur.b_vel.push_back(0.0);

  Layer& next = layers_[layer + 1];
  append_col(next.w, 0.0);
  append_col(next.w_mask, 1.0);
  append_col(next.w_vel, 0.0);
  const double r_out =
      1.0 / std::sqrt(static_cast<double>(next.w.cols()));
  for (std::size_t i = 0; i < next.w.rows(); ++i) {
    next.w(i, next.w.cols() - 1) = rng.uniform(-r_out, r_out);
  }

  ++hidden_sizes_[layer];
}

void Mlp::disable_input(std::size_t input) {
  DSML_REQUIRE(input < n_inputs_, "disable_input: input out of range");
  input_enabled_[input] = false;
  Layer& first = layers_.front();
  // Cold: zeroes one column when pruning disables a feature.
  for (std::size_t i = 0; i < first.w.rows(); ++i) {
    first.w(i, input) = 0.0;  // dsml-lint: allow(matrix-elem-in-loop)
    first.w_mask(i, input) = 0.0;  // dsml-lint: allow(matrix-elem-in-loop)
    first.w_vel(i, input) = 0.0;  // dsml-lint: allow(matrix-elem-in-loop)
  }
}

bool Mlp::input_enabled(std::size_t input) const {
  DSML_REQUIRE(input < n_inputs_, "input_enabled: input out of range");
  return input_enabled_[input];
}

std::size_t Mlp::enabled_input_count() const noexcept {
  return static_cast<std::size_t>(
      std::count(input_enabled_.begin(), input_enabled_.end(), true));
}

namespace {

void save_matrix(serial::Writer& writer, const linalg::Matrix& m) {
  writer.u64(m.rows());
  writer.u64(m.cols());
  for (double v : m.data()) writer.f64(v);
}

linalg::Matrix load_matrix(serial::Reader& reader) {
  const std::uint64_t rows = reader.u64();
  const std::uint64_t cols = reader.u64();
  linalg::Matrix m(rows, cols);
  for (double& v : m.data()) v = reader.f64();
  return m;
}

}  // namespace

void Mlp::save(serial::Writer& writer) const {
  writer.tag("mlp");
  writer.u64(n_inputs_);
  writer.u64(hidden_sizes_.size());
  for (std::size_t h : hidden_sizes_) writer.u64(h);
  writer.u64(input_enabled_.size());
  for (bool e : input_enabled_) writer.boolean(e);
  writer.u64(layers_.size());
  for (const auto& layer : layers_) {
    save_matrix(writer, layer.w);
    save_matrix(writer, layer.w_mask);
    writer.f64_vector(layer.b);
    writer.boolean(layer.output);
  }
}

Mlp Mlp::load(serial::Reader& reader) {
  reader.expect_tag("mlp");
  Mlp net;
  net.n_inputs_ = reader.u64();
  const std::uint64_t n_hidden = reader.u64();
  for (std::uint64_t i = 0; i < n_hidden; ++i) {
    net.hidden_sizes_.push_back(reader.u64());
  }
  const std::uint64_t n_inputs_flags = reader.u64();
  net.input_enabled_.resize(n_inputs_flags);
  for (std::uint64_t i = 0; i < n_inputs_flags; ++i) {
    net.input_enabled_[i] = reader.boolean();
  }
  const std::uint64_t n_layers = reader.u64();
  for (std::uint64_t i = 0; i < n_layers; ++i) {
    Layer layer;
    layer.w = load_matrix(reader);
    layer.w_mask = load_matrix(reader);
    layer.b = reader.f64_vector();
    layer.output = reader.boolean();
    DSML_REQUIRE(layer.w.same_shape(layer.w_mask) &&
                     layer.b.size() == layer.w.rows(),
                 "Mlp::load: inconsistent layer shapes");
    layer.w_vel = linalg::Matrix(layer.w.rows(), layer.w.cols());
    layer.b_vel.assign(layer.b.size(), 0.0);
    net.layers_.push_back(std::move(layer));
  }
  DSML_REQUIRE(!net.layers_.empty() &&
                   net.layers_.front().w.cols() == net.n_inputs_,
               "Mlp::load: input width mismatch");
  return net;
}

void Mlp::prune_smallest_weights(double fraction) {
  DSML_REQUIRE(fraction >= 0.0 && fraction < 1.0,
               "prune_smallest_weights: fraction outside [0,1)");
  if (fraction == 0.0) return;
  std::vector<double> magnitudes;
  for (const auto& layer : layers_) {
    const auto w = layer.w.data();
    const auto m = layer.w_mask.data();
    for (std::size_t i = 0; i < w.size(); ++i) {
      if (m[i] != 0.0) magnitudes.push_back(std::abs(w[i]));
    }
  }
  if (magnitudes.empty()) return;
  const auto k = static_cast<std::size_t>(
      fraction * static_cast<double>(magnitudes.size()));
  if (k == 0) return;
  std::nth_element(magnitudes.begin(),
                   magnitudes.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   magnitudes.end());
  const double threshold = magnitudes[k - 1];
  for (auto& layer : layers_) {
    auto w = layer.w.data();
    auto m = layer.w_mask.data();
    auto v = layer.w_vel.data();
    for (std::size_t i = 0; i < w.size(); ++i) {
      if (m[i] != 0.0 && std::abs(w[i]) <= threshold) {
        w[i] = 0.0;
        m[i] = 0.0;
        v[i] = 0.0;
      }
    }
  }
}

}  // namespace dsml::ml
