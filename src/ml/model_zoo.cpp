#include "ml/model_zoo.hpp"

namespace dsml::ml {

namespace {

NamedModel make_lr(const std::string& name, LinRegMethod method) {
  return NamedModel{name, [method]() -> std::unique_ptr<Regressor> {
                      LinearRegression::Options opt;
                      opt.method = method;
                      return std::make_unique<LinearRegression>(opt);
                    }};
}

NamedModel make_nn(const std::string& name, NnMethod method,
                   const ZooOptions& zoo) {
  return NamedModel{name, [method, zoo]() -> std::unique_ptr<Regressor> {
                      NeuralRegressor::Options opt;
                      opt.method = method;
                      opt.seed = zoo.nn_seed;
                      opt.epoch_scale = zoo.nn_epoch_scale;
                      return std::make_unique<NeuralRegressor>(opt);
                    }};
}

}  // namespace

NamedModel make_model(const std::string& name, const ZooOptions& options) {
  if (name == "LR-E") return make_lr(name, LinRegMethod::kEnter);
  if (name == "LR-S") return make_lr(name, LinRegMethod::kStepwise);
  if (name == "LR-F") return make_lr(name, LinRegMethod::kForward);
  if (name == "LR-B") return make_lr(name, LinRegMethod::kBackward);
  if (name == "NN-Q") return make_nn(name, NnMethod::kQuick, options);
  if (name == "NN-D") return make_nn(name, NnMethod::kDynamic, options);
  if (name == "NN-M") return make_nn(name, NnMethod::kMultiple, options);
  if (name == "NN-P") return make_nn(name, NnMethod::kPrune, options);
  if (name == "NN-E")
    return make_nn(name, NnMethod::kExhaustivePrune, options);
  if (name == "NN-S") return make_nn(name, NnMethod::kSingle, options);
  throw InvalidArgument("make_model: unknown model '" + name + "'");
}

std::vector<NamedModel> chronological_menu(const ZooOptions& options) {
  std::vector<NamedModel> menu;
  for (const char* name :
       {"LR-E", "LR-S", "LR-B", "LR-F", "NN-Q", "NN-D", "NN-M", "NN-P",
        "NN-E"}) {
    menu.push_back(make_model(name, options));
  }
  return menu;
}

std::vector<NamedModel> sampled_dse_menu(const ZooOptions& options) {
  std::vector<NamedModel> menu;
  for (const char* name : {"LR-B", "NN-E", "NN-S"}) {
    menu.push_back(make_model(name, options));
  }
  return menu;
}

std::vector<std::string> all_model_names() {
  return {"LR-E", "LR-S", "LR-F", "LR-B", "NN-Q",
          "NN-D", "NN-M", "NN-P", "NN-E", "NN-S"};
}

}  // namespace dsml::ml
