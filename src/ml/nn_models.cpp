#include "ml/nn_models.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/failpoint.hpp"
#include "common/retry.hpp"
#include "common/trace.hpp"
#include "data/split.hpp"
#include "ml/metrics.hpp"

namespace dsml::ml {

const char* to_string(NnMethod method) noexcept {
  switch (method) {
    case NnMethod::kQuick: return "NN-Q";
    case NnMethod::kDynamic: return "NN-D";
    case NnMethod::kMultiple: return "NN-M";
    case NnMethod::kPrune: return "NN-P";
    case NnMethod::kExhaustivePrune: return "NN-E";
    case NnMethod::kSingle: return "NN-S";
  }
  return "NN-?";
}

NeuralRegressor::NeuralRegressor() : NeuralRegressor(Options{}) {}

NeuralRegressor::NeuralRegressor(Options options) : options_(options) {
  DSML_REQUIRE(options_.momentum >= 0.0 && options_.momentum < 1.0,
               "NeuralRegressor: momentum outside [0,1)");
  DSML_REQUIRE(options_.epoch_scale > 0.0,
               "NeuralRegressor: epoch_scale must be positive");
}

namespace {

// Online SGD with momentum destabilises as hidden layers widen (per-sample
// gradients sum over more units), so learning rates are scaled down with
// network width; without this, wide nets saturate their sigmoids and
// collapse to predicting the mean.
double lr_scale(const Mlp& net) {
  std::size_t total_hidden = 0;
  for (std::size_t h : net.hidden_sizes()) total_hidden += h;
  return 1.0 /
         std::sqrt(std::max(1.0, static_cast<double>(total_hidden) / 12.0));
}

}  // namespace

std::size_t NeuralRegressor::scaled(std::size_t epochs) const {
  if (options_.max_epochs > 0) epochs = options_.max_epochs;
  const double e = static_cast<double>(epochs) * options_.epoch_scale;
  return std::max<std::size_t>(5, static_cast<std::size_t>(e));
}

// Train a fresh network with exponentially decaying learning rate (lr0→lr1),
// snapshotting the weights whenever validation error improves.
//
// SGD with momentum can blow up (non-finite epoch loss) on an unlucky weight
// draw; rather than returning a poisoned network, a diverged attempt throws
// TrainingError and is retried up to twice with halved learning rates and a
// fresh deterministic seed. Attempt 0 consumes the caller's RNG with the
// original rates, so a run that never diverges is bit-identical to the
// pre-retry implementation.
NeuralRegressor::Candidate NeuralRegressor::train_candidate(
    std::vector<std::size_t> hidden, const linalg::Matrix& x_learn,
    std::span<const double> y_learn, const linalg::Matrix& x_val,
    std::span<const double> y_val, std::size_t max_epochs, double lr0,
    double lr1, std::size_t patience, Rng& rng) const {
  auto attempt_once = [&](double a_lr0, double a_lr1, Rng& r) -> Candidate {
    Mlp net(x_learn.cols(), hidden, r);
    const double scale = lr_scale(net);
    a_lr0 *= scale;
    a_lr1 *= scale;
    Candidate best{net, net.mse(x_val, y_val)};
    const double decay =
        max_epochs > 1 ? std::pow(a_lr1 / a_lr0,
                                  1.0 / static_cast<double>(max_epochs - 1))
                       : 1.0;
    double lr = a_lr0;
    std::size_t since_improve = 0;
    for (std::size_t epoch = 0; epoch < max_epochs; ++epoch) {
      const double train_mse =
          net.train_epoch(x_learn, y_learn, lr, options_.momentum, r);
      lr *= decay;
      const double val = net.mse(x_val, y_val);
      if (DSML_FAIL_POISON("nn.nonfinite_loss") || !std::isfinite(train_mse) ||
          !std::isfinite(val)) {
        throw TrainingError(to_string(options_.method),
                            "epoch " + std::to_string(epoch),
                            "non-finite loss (training diverged)");
      }
      if (val < best.val_mse * (1.0 - 1e-5)) {
        best.net = net;
        best.val_mse = val;
        since_improve = 0;
      } else if (++since_improve >= patience) {
        break;
      }
    }
    return best;
  };
  // Retries must not consume the caller's RNG (that would shift every later
  // draw even on clean runs), so they use a private generator reseeded from
  // the configured seed and the attempt index.
  Rng retry_rng(options_.seed);
  return retry(
      3,
      [&](std::size_t attempt) {
        retry_rng.reseed(options_.seed + 0x9E3779B97F4A7C15ULL * attempt);
      },
      [&](std::size_t attempt) {
        const double damp = 1.0 / static_cast<double>(std::size_t{1} << attempt);
        return attempt_once(lr0 * damp, lr1 * damp,
                            attempt == 0 ? rng : retry_rng);
      });
}

namespace {

// Continue training an existing network (used by growth/prune retraining);
// returns the best-on-validation snapshot.
struct RetrainResult {
  Mlp net;
  double val_mse;
};

RetrainResult retrain(Mlp net, const linalg::Matrix& xl,
                      std::span<const double> yl, const linalg::Matrix& xv,
                      std::span<const double> yv, std::size_t epochs,
                      double lr0, double lr1, double momentum, Rng& rng) {
  const double scale = lr_scale(net);
  lr0 *= scale;
  lr1 *= scale;
  RetrainResult best{net, net.mse(xv, yv)};
  const double decay =
      epochs > 1 ? std::pow(lr1 / lr0, 1.0 / static_cast<double>(epochs - 1))
                 : 1.0;
  double lr = lr0;
  for (std::size_t e = 0; e < epochs; ++e) {
    const double train_mse = net.train_epoch(xl, yl, lr, momentum, rng);
    lr *= decay;
    const double val = net.mse(xv, yv);
    // No local retry here: retraining starts from an already-good snapshot,
    // so divergence means the caller's whole growth/prune step is suspect.
    // The degradation layers upstream (estimate_error, SelectModel, dse
    // drivers) catch and record this.
    if (!std::isfinite(train_mse) || !std::isfinite(val)) {
      throw TrainingError("NN", "retrain epoch " + std::to_string(e),
                          "non-finite loss (training diverged)");
    }
    if (val < best.val_mse * (1.0 - 1e-5)) {
      best.net = net;
      best.val_mse = val;
    }
  }
  return best;
}

}  // namespace

NeuralRegressor::Candidate NeuralRegressor::run_quick(
    const linalg::Matrix& xl, std::span<const double> yl,
    const linalg::Matrix& xv, std::span<const double> yv, Rng& rng) const {
  const std::size_t n_in = xl.cols();
  const std::size_t h = std::max<std::size_t>(3, (n_in + 1) / 2);
  return train_candidate({h}, xl, yl, xv, yv, scaled(400), 0.4, 0.02, 80,
                         rng);
}

NeuralRegressor::Candidate NeuralRegressor::run_single(
    const linalg::Matrix& xl, std::span<const double> yl,
    const linalg::Matrix& xv, std::span<const double> yv, Rng& rng) const {
  const std::size_t n_in = xl.cols();
  const std::size_t h = std::clamp<std::size_t>(n_in / 2, 2, 16);
  // Constant learning rate: lr1 == lr0; no early stopping (patience spans
  // the full budget) — the fast, simple Ipek-style baseline.
  const std::size_t epochs = scaled(250);
  return train_candidate({h}, xl, yl, xv, yv, epochs, 0.3, 0.3, epochs, rng);
}

NeuralRegressor::Candidate NeuralRegressor::run_dynamic(
    const linalg::Matrix& xl, std::span<const double> yl,
    const linalg::Matrix& xv, std::span<const double> yv, Rng& rng) const {
  const std::size_t n_in = xl.cols();
  const std::size_t max_units = std::max<std::size_t>(4, n_in);
  Candidate best =
      train_candidate({2}, xl, yl, xv, yv, scaled(200), 0.4, 0.05, 50, rng);
  Mlp current = best.net;
  std::size_t failures = 0;
  while (current.hidden_sizes()[0] < max_units && failures < 2) {
    current.add_hidden_unit(0, rng);
    RetrainResult r = retrain(current, xl, yl, xv, yv, scaled(120), 0.2,
                              0.02, options_.momentum, rng);
    current = r.net;
    if (r.val_mse < best.val_mse * (1.0 - 1e-4)) {
      best = {r.net, r.val_mse};
      failures = 0;
    } else {
      ++failures;
    }
  }
  return best;
}

NeuralRegressor::Candidate NeuralRegressor::run_multiple(
    const linalg::Matrix& xl, std::span<const double> yl,
    const linalg::Matrix& xv, std::span<const double> yv, bool wide_menu,
    Rng& rng) const {
  const std::size_t n = xl.cols();
  std::vector<std::vector<std::size_t>> menu;
  menu.push_back({std::max<std::size_t>(2, n / 4)});
  menu.push_back({std::max<std::size_t>(3, n / 2)});
  menu.push_back({std::max<std::size_t>(4, n)});
  if (n >= 6) menu.push_back({std::max<std::size_t>(4, n / 2),
                              std::max<std::size_t>(2, n / 4)});
  if (wide_menu) {
    menu.push_back({std::max<std::size_t>(4, (3 * n) / 2)});
    menu.push_back({std::max<std::size_t>(4, 2 * n)});
    if (n >= 6) menu.push_back({n, std::max<std::size_t>(2, n / 2)});
  }
  const std::size_t epochs = wide_menu ? scaled(500) : scaled(350);
  const std::size_t patience = wide_menu ? 100 : 60;

  std::optional<Candidate> best;
  for (auto& hidden : menu) {
    Rng child = rng.split(hidden.size() * 131 + hidden[0]);
    Candidate c = train_candidate(hidden, xl, yl, xv, yv, epochs, 0.4, 0.02,
                                  patience, child);
    if (!best || c.val_mse < best->val_mse) best = std::move(c);
  }
  return *best;
}

NeuralRegressor::Candidate NeuralRegressor::run_prune(
    Candidate start, const linalg::Matrix& xl, std::span<const double> yl,
    const linalg::Matrix& xv, std::span<const double> yv, bool exhaustive,
    Rng& rng) const {
  Candidate best = std::move(start);
  Mlp current = best.net;
  // Accept a pruned network if validation error stays within this factor of
  // the best seen; exhaustive mode insists on stricter quality.
  const double tolerance = exhaustive ? 1.005 : 1.02;
  const std::size_t retrain_epochs = exhaustive ? scaled(150) : scaled(80);
  std::size_t unit_failures = 0;
  std::size_t input_failures = 0;
  bool try_unit = true;  // alternate unit/input pruning

  while (unit_failures < 2 || input_failures < 2) {
    bool did_something = false;
    if (try_unit && unit_failures < 2) {
      // Find the least salient removable hidden unit across layers.
      std::size_t best_layer = 0;
      std::size_t best_unit = 0;
      double best_sal = std::numeric_limits<double>::infinity();
      bool found = false;
      for (std::size_t l = 0; l < current.hidden_sizes().size(); ++l) {
        if (current.hidden_sizes()[l] <= 1) continue;
        for (std::size_t u = 0; u < current.hidden_sizes()[l]; ++u) {
          // Saliency lookup, not a Matrix element walk; the rule's
          // two-index heuristic cannot tell them apart.
          const double s = current.hidden_unit_saliency(l, u);  // dsml-lint: allow(matrix-elem-in-loop)
          if (s < best_sal) {
            best_sal = s;
            best_layer = l;
            best_unit = u;
            found = true;
          }
        }
      }
      if (found) {
        Mlp trial = current;
        trial.remove_hidden_unit(best_layer, best_unit);
        RetrainResult r = retrain(std::move(trial), xl, yl, xv, yv,
                                  retrain_epochs, 0.1, 0.01,
                                  options_.momentum, rng);
        if (r.val_mse <= best.val_mse * tolerance) {
          current = r.net;
          if (r.val_mse < best.val_mse) best = {r.net, r.val_mse};
          unit_failures = 0;
          did_something = true;
        } else {
          ++unit_failures;
        }
      } else {
        unit_failures = 2;
      }
    } else if (!try_unit && input_failures < 2) {
      // Disable the least salient input (keep at least two).
      if (current.enabled_input_count() > 2) {
        std::size_t weakest = 0;
        double weakest_sal = std::numeric_limits<double>::infinity();
        bool found = false;
        for (std::size_t i = 0; i < current.n_inputs(); ++i) {
          if (!current.input_enabled(i)) continue;
          const double s = current.input_saliency(i);
          if (s < weakest_sal) {
            weakest_sal = s;
            weakest = i;
            found = true;
          }
        }
        if (found) {
          Mlp trial = current;
          trial.disable_input(weakest);
          RetrainResult r = retrain(std::move(trial), xl, yl, xv, yv,
                                    retrain_epochs, 0.1, 0.01,
                                    options_.momentum, rng);
          if (r.val_mse <= best.val_mse * tolerance) {
            current = r.net;
            if (r.val_mse < best.val_mse) best = {r.net, r.val_mse};
            input_failures = 0;
            did_something = true;
          } else {
            ++input_failures;
          }
        } else {
          input_failures = 2;
        }
      } else {
        input_failures = 2;
      }
    }
    try_unit = !try_unit;
    if (!did_something && unit_failures >= 2 && input_failures >= 2) break;
  }

  if (exhaustive) {
    // Magnitude weight-pruning pass with a retrain to recover.
    Mlp trial = best.net;
    trial.prune_smallest_weights(0.10);
    RetrainResult r = retrain(std::move(trial), xl, yl, xv, yv,
                              scaled(150), 0.05, 0.005, options_.momentum,
                              rng);
    if (r.val_mse < best.val_mse) best = {r.net, r.val_mse};
  }
  return best;
}

void NeuralRegressor::fit(const data::Dataset& train) {
  DSML_REQUIRE(train.has_target(), "NeuralRegressor::fit: dataset lacks target");
  DSML_REQUIRE(train.n_rows() >= 4,
               "NeuralRegressor::fit: need at least 4 rows");
  trace::Span span(
      [&] { return std::string("NeuralRegressor::fit ") + name(); }, "ml");
  data::EncoderOptions enc;
  enc.mode = data::EncodingMode::kNeuralNetwork;
  enc.scale_inputs = true;
  enc.scale_target = true;
  enc.drop_constant = true;
  enc.add_intercept = false;
  encoder_.fit(train, enc);

  train_x_ = encoder_.encode(train);
  train_y_scaled_ = encoder_.encode_target(train);
  // Degenerate-data guards: with constant columns dropped and no intercept,
  // an empty design means nothing varies; non-finite targets would poison
  // every gradient silently.
  DSML_REQUIRE(train_x_.cols() >= 1,
               "NeuralRegressor::fit: no varying predictors (every feature "
               "column is constant)");
  for (double v : train_y_scaled_) {
    DSML_REQUIRE(std::isfinite(v),
                 "NeuralRegressor::fit: target contains non-finite values");
  }

  Rng rng(options_.seed);

  // Clementine protocol: random halves — one to train, one to "simulate".
  auto [learn_idx, val_idx] = data::split_half(train.n_rows(), rng);
  std::vector<std::size_t> all_idx(train.n_rows());
  for (std::size_t i = 0; i < all_idx.size(); ++i) all_idx[i] = i;
  const linalg::Matrix xl = train_x_.select_rows(learn_idx);
  const linalg::Matrix xv = train_x_.select_rows(val_idx);
  std::vector<double> yl, yv;
  yl.reserve(learn_idx.size());
  yv.reserve(val_idx.size());
  for (std::size_t i : learn_idx) yl.push_back(train_y_scaled_[i]);
  for (std::size_t i : val_idx) yv.push_back(train_y_scaled_[i]);

  Candidate best = [&] {
    switch (options_.method) {
      case NnMethod::kQuick: return run_quick(xl, yl, xv, yv, rng);
      case NnMethod::kSingle: return run_single(xl, yl, xv, yv, rng);
      case NnMethod::kDynamic: return run_dynamic(xl, yl, xv, yv, rng);
      case NnMethod::kMultiple:
        return run_multiple(xl, yl, xv, yv, /*wide_menu=*/false, rng);
      case NnMethod::kPrune: {
        const std::size_t n = xl.cols();
        const std::size_t h = std::min<std::size_t>(2 * n, 64);
        Candidate big = train_candidate({std::max<std::size_t>(4, h)}, xl, yl,
                                        xv, yv, scaled(400), 0.4, 0.02, 80,
                                        rng);
        return run_prune(std::move(big), xl, yl, xv, yv,
                         /*exhaustive=*/false, rng);
      }
      case NnMethod::kExhaustivePrune: {
        Candidate seed = run_multiple(xl, yl, xv, yv, /*wide_menu=*/true, rng);
        return run_prune(std::move(seed), xl, yl, xv, yv,
                         /*exhaustive=*/true, rng);
      }
    }
    DSML_ASSERT(false);
  }();

  // Final pass: fine-tune the winning topology on the full training set with
  // a small learning rate, still snapshotting against the validation half so
  // the fine-tune cannot make the model worse on held-out data.
  RetrainResult finetuned =
      retrain(best.net, train_x_, train_y_scaled_, xv, yv, scaled(120), 0.05,
              0.005, options_.momentum, rng);
  net_ = (finetuned.val_mse <= best.val_mse) ? std::move(finetuned.net)
                                             : std::move(best.net);
}

std::vector<double> NeuralRegressor::predict(
    const data::Dataset& dataset) const {
  DSML_REQUIRE(net_.has_value(), "NeuralRegressor::predict: not fitted");
  const linalg::Matrix x = encoder_.encode(dataset);
  std::vector<double> out = net_->predict(x);
  for (double& v : out) v = encoder_.decode_target(v);
  return out;
}

std::string NeuralRegressor::name() const {
  return to_string(options_.method);
}

const Mlp& NeuralRegressor::network() const {
  DSML_REQUIRE(net_.has_value(), "NeuralRegressor::network: not fitted");
  return *net_;
}

void NeuralRegressor::save(serial::Writer& writer) const {
  DSML_REQUIRE(net_.has_value(), "NeuralRegressor::save: not fitted");
  writer.tag("neural");
  writer.u64(static_cast<std::uint64_t>(options_.method));
  writer.u64(options_.seed);
  writer.u64(options_.max_epochs);
  writer.f64(options_.momentum);
  writer.f64(options_.epoch_scale);
  encoder_.save(writer);
  net_->save(writer);
  // Retained training sample (needed by importance()).
  writer.u64(train_x_.rows());
  writer.u64(train_x_.cols());
  for (double v : train_x_.data()) writer.f64(v);
  writer.f64_vector(train_y_scaled_);
}

NeuralRegressor NeuralRegressor::load(serial::Reader& reader) {
  reader.expect_tag("neural");
  Options opt;
  opt.method = static_cast<NnMethod>(reader.u64());
  opt.seed = reader.u64();
  opt.max_epochs = reader.u64();
  opt.momentum = reader.f64();
  opt.epoch_scale = reader.f64();
  NeuralRegressor model(opt);
  model.encoder_ = data::Encoder::load(reader);
  model.net_ = Mlp::load(reader);
  const std::uint64_t rows = reader.u64();
  const std::uint64_t cols = reader.u64();
  model.train_x_ = linalg::Matrix(rows, cols);
  for (double& v : model.train_x_.data()) v = reader.f64();
  model.train_y_scaled_ = reader.f64_vector();
  return model;
}

std::vector<PredictorImportance> NeuralRegressor::importance() const {
  if (!net_.has_value()) return {};
  // Sensitivity sweep per source predictor: for a sample of training rows,
  // replace the predictor's encoded value(s) by each extreme (numeric
  // min/max, or each categorical level) and measure how far the scaled
  // prediction moves. 0 = no effect, 1 = swings the whole output range.
  const std::size_t n_rows = std::min<std::size_t>(train_x_.rows(), 128);
  const auto& feats = encoder_.features();

  // Group encoded features by source column.
  std::vector<std::size_t> source_cols;
  for (const auto& f : feats) {
    if (std::find(source_cols.begin(), source_cols.end(), f.source_column) ==
        source_cols.end()) {
      source_cols.push_back(f.source_column);
    }
  }

  std::vector<PredictorImportance> out;
  std::vector<double> row(train_x_.cols());
  for (std::size_t sc : source_cols) {
    std::vector<std::size_t> group;
    for (std::size_t j = 0; j < feats.size(); ++j) {
      if (feats[j].source_column == sc) group.push_back(j);
    }
    double total_range = 0.0;
    std::string group_name = feats[group.front()].name;
    if (group.size() > 1) {
      // One-hot group: strip the "=level" suffix for reporting.
      const auto pos = group_name.find('=');
      if (pos != std::string::npos) group_name = group_name.substr(0, pos);
    }
    for (std::size_t r = 0; r < n_rows; ++r) {
      std::copy_n(train_x_.row(r).data(), row.size(), row.data());
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      if (group.size() == 1 && feats[group[0]].one_hot_level < 0) {
        // Numeric-like: sweep scaled min (0) and max (1).
        for (double v : {0.0, 1.0}) {
          row[group[0]] = v;
          const double p = net_->predict(row);
          lo = std::min(lo, p);
          hi = std::max(hi, p);
        }
      } else {
        // One-hot group: activate each level in turn.
        for (std::size_t active : group) {
          for (std::size_t j : group) row[j] = (j == active) ? 1.0 : 0.0;
          const double p = net_->predict(row);
          lo = std::min(lo, p);
          hi = std::max(hi, p);
        }
      }
      total_range += hi - lo;
    }
    PredictorImportance imp;
    imp.name = std::move(group_name);
    imp.importance =
        std::clamp(total_range / static_cast<double>(n_rows), 0.0, 1.0);
    out.push_back(std::move(imp));
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.importance > b.importance;
  });
  return out;
}

}  // namespace dsml::ml
