#include "engine/session.hpp"

#include <limits>
#include <utility>

#include "common/failpoint.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace dsml::engine {

namespace {

struct SessionMetrics {
  metrics::Counter& batches = metrics::counter("engine.session.batches");
  metrics::Counter& rows = metrics::counter("engine.session.rows");
  metrics::Counter& coalesced = metrics::counter("engine.session.coalesced");
  metrics::Counter& degraded = metrics::counter("engine.session.degraded");
  metrics::Counter& rejected = metrics::counter("engine.session.rejected");
  metrics::Counter& f32_batches =
      metrics::counter("engine.session.f32_batches");
  metrics::Counter& f32_fallbacks =
      metrics::counter("engine.session.f32_fallbacks");
  metrics::Histogram& batch_rows =
      metrics::histogram("engine.session.batch_rows");
  metrics::Histogram& batch_us = metrics::histogram("engine.session.batch_us");
};

SessionMetrics& session_metrics() {
  static SessionMetrics m;
  return m;
}

}  // namespace

InferenceSession::InferenceSession(ModelRegistry& registry,
                                   std::string model_name,
                                   SessionOptions options)
    : registry_(registry),
      model_name_(std::move(model_name)),
      options_(options) {
  DSML_REQUIRE(options_.max_batch_rows >= 1,
               "InferenceSession: max_batch_rows must be >= 1");
  DSML_REQUIRE(options_.max_queue_rows >= options_.max_batch_rows,
               "InferenceSession: max_queue_rows must cover one batch");
  registry_.get(model_name_);  // fail fast on an unregistered name
}

InferenceSession::~InferenceSession() = default;

std::vector<double> InferenceSession::predict(const data::Dataset& rows) {
  BatchOutcome outcome = predict_detailed(rows);
  if (!outcome.ok()) {
    throw NumericalError(
        "InferenceSession: " + std::to_string(outcome.failed_rows.size()) +
        " of " + std::to_string(rows.n_rows()) + " rows failed; row " +
        std::to_string(outcome.failed_rows.front()) + ": " +
        outcome.row_errors.front());
  }
  return std::move(outcome.values);
}

BatchOutcome InferenceSession::predict_detailed(const data::Dataset& rows) {
  const std::shared_ptr<const ModelEntry> entry = registry_.get(model_name_);
  const std::string mismatch = entry->schema.mismatch(rows);
  if (!mismatch.empty()) {
    throw InvalidArgument("InferenceSession: request schema does not match '" +
                          model_name_ + "' (" + mismatch + ")");
  }
  if (rows.n_rows() == 0) return BatchOutcome{};
  DSML_FAIL("engine.session.admit");

  Request request;
  request.rows = &rows;
  request.n_rows = rows.n_rows();

  std::unique_lock<std::mutex> lock(mutex_);
  if (queued_rows_ + request.n_rows > options_.max_queue_rows) {
    stats_.rejected += 1;
    session_metrics().rejected.add();
    throw StateError("InferenceSession: queue full (" +
                     std::to_string(queued_rows_) + " rows queued, " +
                     std::to_string(request.n_rows) + " requested, bound " +
                     std::to_string(options_.max_queue_rows) + ")");
  }
  queue_.push_back(&request);
  queued_rows_ += request.n_rows;
  while (!request.done) {
    if (!flushing_) {
      flush_locked(lock);
    } else {
      cv_.wait(lock);
    }
  }
  if (!request.error.empty()) {
    throw StateError("InferenceSession: batch failed: " + request.error);
  }
  return std::move(request.outcome);
}

void InferenceSession::flush_locked(std::unique_lock<std::mutex>& lock) {
  // Drain whole requests in admission order until the row budget is spent.
  // The drained set is the *batch*; the caller's own request may or may not
  // make the cut — the predict loop simply leads another flush if not.
  flushing_ = true;
  std::vector<Request*> batch;
  std::size_t batch_rows = 0;
  std::size_t taken = 0;
  for (Request* r : queue_) {
    if (!batch.empty() &&
        batch_rows + r->n_rows > options_.max_batch_rows) {
      break;
    }
    batch.push_back(r);
    batch_rows += r->n_rows;
    ++taken;
  }
  queue_.erase(queue_.begin(),
               queue_.begin() + static_cast<std::ptrdiff_t>(taken));
  queued_rows_ -= batch_rows;
  stats_.batches += 1;
  stats_.rows += batch_rows;
  if (batch.size() > 1) stats_.coalesced += batch.size();

  lock.unlock();
  // Everything outside the lock is exception-contained: a throw anywhere in
  // here must still relock, mark the batch done, and wake the followers, or
  // they would wait forever.
  std::string batch_error;
  bool degraded = false;
  try {
    trace::Span span([&] { return "session.flush " + model_name_; },
                     "engine");
    session_metrics().batches.add();
    session_metrics().rows.add(batch_rows);
    if (batch.size() > 1) session_metrics().coalesced.add(batch.size());
    const std::shared_ptr<const ModelEntry> entry =
        registry_.get(model_name_);
    trace::Stopwatch watch;
    BatchOutcome combined;
    // f32 routing is decided per flush: the snapshot rides the same entry
    // lookup, so a model re-registered mid-session swaps both paths at once.
    // Asking for f32 on a model without a snapshot degrades to double and is
    // counted, never failed.
    const bool f32_route = options_.use_f32 && entry->f32 != nullptr;
    if (options_.use_f32 && !f32_route) session_metrics().f32_fallbacks.add();
    const auto predict_batch = [&](const data::Dataset& rows) {
      if (f32_route) {
        session_metrics().f32_batches.add();
        return entry->f32->predict(rows);
      }
      return entry->model->predict(rows);
    };
    try {
      DSML_FAIL("engine.session.flush");
      if (batch.size() == 1) {
        combined.values = predict_batch(*batch.front()->rows);
      } else {
        data::Dataset assembled = *batch.front()->rows;
        for (std::size_t i = 1; i < batch.size(); ++i) {
          assembled.append(*batch[i]->rows);
        }
        combined.values = predict_batch(assembled);
      }
    } catch (const std::exception&) {
      if (!options_.retry_rows_on_batch_failure) throw;
      // Degrade: retry every row alone so one poisoned row (or an injected
      // batch failure) costs only itself. Bit-identity holds — per-row
      // prediction matches batched prediction exactly. Degraded rows always
      // take the double model (even in an f32 session): the retry exists to
      // isolate failures, and double is the reference the error budget is
      // measured against.
      degraded = true;
      session_metrics().degraded.add();
      combined = BatchOutcome{};
      combined.degraded = true;
      std::size_t offset = 0;
      for (Request* r : batch) {
        const BatchOutcome part = predict_rows(*entry->model, *r->rows);
        combined.values.insert(combined.values.end(), part.values.begin(),
                               part.values.end());
        for (std::size_t k = 0; k < part.failed_rows.size(); ++k) {
          combined.failed_rows.push_back(part.failed_rows[k] + offset);
          combined.row_errors.push_back(part.row_errors[k]);
        }
        offset += r->n_rows;
      }
    }
    session_metrics().batch_rows.observe(static_cast<double>(batch_rows));
    session_metrics().batch_us.observe(watch.seconds() * 1e6);
    // Split the combined outcome back per request, in admission order.
    std::size_t offset = 0;
    std::size_t fail_idx = 0;
    for (Request* r : batch) {
      BatchOutcome part;
      part.degraded = combined.degraded;
      part.values.assign(
          combined.values.begin() + static_cast<std::ptrdiff_t>(offset),
          combined.values.begin() +
              static_cast<std::ptrdiff_t>(offset + r->n_rows));
      while (fail_idx < combined.failed_rows.size() &&
             combined.failed_rows[fail_idx] < offset + r->n_rows) {
        part.failed_rows.push_back(combined.failed_rows[fail_idx] - offset);
        part.row_errors.push_back(combined.row_errors[fail_idx]);
        ++fail_idx;
      }
      r->outcome = std::move(part);
      offset += r->n_rows;
    }
  } catch (const std::exception& e) {
    batch_error = e.what();
  }

  lock.lock();
  if (degraded) stats_.degraded += 1;
  for (Request* r : batch) {
    if (!batch_error.empty()) r->error = batch_error;
    r->done = true;
  }
  flushing_ = false;
  cv_.notify_all();
}

BatchOutcome InferenceSession::predict_rows(const ml::Regressor& model,
                                            const data::Dataset& rows) {
  BatchOutcome out;
  out.degraded = true;
  out.values.assign(rows.n_rows(),
                    std::numeric_limits<double>::quiet_NaN());
  std::vector<std::size_t> one(1);
  for (std::size_t r = 0; r < rows.n_rows(); ++r) {
    try {
      DSML_FAIL("engine.session.row");
      one[0] = r;
      out.values[r] = model.predict(rows.select_rows(one)).front();
    } catch (const std::exception& e) {
      out.failed_rows.push_back(r);
      out.row_errors.push_back(e.what());
    }
  }
  return out;
}

SessionStats InferenceSession::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace dsml::engine
