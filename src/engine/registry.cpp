#include "engine/registry.hpp"

#include <sstream>
#include <utility>

#include "common/failpoint.hpp"
#include "common/metrics.hpp"
#include "common/serial.hpp"
#include "common/trace.hpp"
#include "ml/serialize.hpp"

namespace dsml::engine {

namespace {

struct RegistryMetrics {
  metrics::Counter& registrations = metrics::counter("registry.registrations");
  metrics::Counter& reloads = metrics::counter("registry.reloads");
  metrics::Counter& lookups = metrics::counter("registry.lookups");
  metrics::Counter& misses = metrics::counter("registry.misses");
  metrics::Counter& loads = metrics::counter("registry.loads");
  metrics::Counter& f32_snapshots = metrics::counter("registry.f32_snapshots");
  metrics::Counter& f32_failures = metrics::counter("registry.f32_failures");
  metrics::Counter& snapshot_loads =
      metrics::counter("registry.snapshot_loads");
};

RegistryMetrics& registry_metrics() {
  static RegistryMetrics m;
  return m;
}

}  // namespace

std::uint64_t ModelRegistry::register_model(
    const std::string& name, std::shared_ptr<const ml::Regressor> model,
    Schema schema, std::string source) {
  DSML_REQUIRE(!name.empty(), "ModelRegistry: empty model name");
  DSML_REQUIRE(model != nullptr, "ModelRegistry: null model for '" + name +
                                     "'");
  DSML_REQUIRE(model->fitted(),
               "ModelRegistry: model for '" + name + "' is not fitted");
  trace::Span span([&] { return "registry.register " + name; }, "engine");
  // Probe outside the lock: a model/schema pair that cannot score one
  // schema-shaped row would serve garbage (the Encoder resolves columns by
  // position), so the mismatch is rejected before the entry becomes visible.
  const data::Dataset probe = schema.probe_row();
  try {
    const std::vector<double> out = model->predict(probe);
    DSML_REQUIRE(out.size() == 1,
                 "ModelRegistry: probe produced " +
                     std::to_string(out.size()) + " predictions for one row");
  } catch (const InvalidArgument&) {
    throw;
  } catch (const std::exception& e) {
    throw InvalidArgument("ModelRegistry: model '" + name +
                          "' rejects its declared schema (" +
                          schema.describe() + "): " + e.what());
  }

  auto entry = std::make_shared<ModelEntry>();
  entry->name = name;
  entry->source = std::move(source);
  entry->model = std::move(model);
  entry->schema = std::move(schema);
  // Build the optional f32 weight snapshot once, here, so sessions asking
  // for f32 never convert per batch. A failed build degrades to "no f32
  // path" (the session falls back to double) rather than failing
  // registration — the double model is the product, f32 is an accelerator.
  try {
    entry->f32 = ml::make_f32_predictor(*entry->model);
    if (entry->f32 != nullptr) registry_metrics().f32_snapshots.add();
  } catch (const std::exception&) {
    registry_metrics().f32_failures.add();
    entry->f32 = nullptr;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  auto it = entries_.find(name);
  entry->version = (it == entries_.end()) ? 1 : it->second->version + 1;
  if (it == entries_.end()) {
    entries_.emplace(name, entry);
  } else {
    registry_metrics().reloads.add();
    it->second = entry;  // atomic swap: old snapshot stays valid for holders
  }
  registry_metrics().registrations.add();
  return entry->version;
}

std::uint64_t ModelRegistry::load_file(const std::string& name,
                                       const std::string& path,
                                       Schema schema) {
  trace::Span span([&] { return "registry.load " + path; }, "engine");
  registry_metrics().loads.add();
  DSML_FAIL("engine.registry.load");
  std::shared_ptr<const ml::Regressor> model = ml::load_model(path);
  return register_model(name, std::move(model), std::move(schema),
                        "file:" + path);
}

std::string ModelRegistry::serialize_entry(const std::string& name) const {
  const std::shared_ptr<const ModelEntry> entry = get(name);
  trace::Span span([&] { return "registry.snapshot " + name; }, "engine");
  std::ostringstream out;
  serial::Writer w(out);
  w.tag("registry-snapshot");
  w.u64(1);  // snapshot format version
  const std::vector<SchemaColumn>& columns = entry->schema.columns();
  w.u64(columns.size());
  for (const SchemaColumn& c : columns) {
    w.str(c.name);
    w.u64(static_cast<std::uint64_t>(c.kind));
    w.boolean(c.ordered);
    w.u64(c.levels.size());
    for (const std::string& level : c.levels) w.str(level);
  }
  w.tag("model");
  ml::save_model(*entry->model, out);
  return out.str();
}

std::uint64_t ModelRegistry::register_snapshot(const std::string& name,
                                               const std::string& blob,
                                               std::string source) {
  trace::Span span([&] { return "registry.snapshot.load " + name; }, "engine");
  registry_metrics().snapshot_loads.add();
  DSML_FAIL("engine.registry.snapshot");
  std::istringstream in(blob);
  serial::Reader r(in);
  r.expect_tag("registry-snapshot");
  const std::uint64_t format = r.u64();
  if (format != 1) {
    throw IoError("ModelRegistry: unsupported snapshot format version " +
                  std::to_string(format));
  }
  const std::uint64_t n_columns = r.u64();
  std::vector<SchemaColumn> columns;
  columns.reserve(n_columns);
  for (std::uint64_t i = 0; i < n_columns; ++i) {
    SchemaColumn c;
    c.name = r.str();
    const std::uint64_t kind = r.u64();
    if (kind > static_cast<std::uint64_t>(data::ColumnKind::kCategorical)) {
      throw IoError("ModelRegistry: snapshot column '" + c.name +
                    "' has unknown kind " + std::to_string(kind));
    }
    c.kind = static_cast<data::ColumnKind>(kind);
    c.ordered = r.boolean();
    const std::uint64_t n_levels = r.u64();
    c.levels.reserve(n_levels);
    for (std::uint64_t j = 0; j < n_levels; ++j) c.levels.push_back(r.str());
    columns.push_back(std::move(c));
  }
  r.expect_tag("model");
  std::shared_ptr<const ml::Regressor> model = ml::load_model(in);
  return register_model(name, std::move(model),
                        Schema::from_columns(std::move(columns)),
                        std::move(source));
}

std::shared_ptr<const ModelEntry> ModelRegistry::find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  registry_metrics().lookups.add();
  auto it = entries_.find(name);
  if (it == entries_.end()) {
    registry_metrics().misses.add();
    return nullptr;
  }
  return it->second;
}

std::shared_ptr<const ModelEntry> ModelRegistry::get(
    const std::string& name) const {
  auto entry = find(name);
  if (entry == nullptr) {
    throw StateError("ModelRegistry: no model registered as '" + name + "'");
  }
  return entry;
}

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void ModelRegistry::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
}

ModelRegistry& ModelRegistry::global() {
  static ModelRegistry registry;
  return registry;
}

}  // namespace dsml::engine
