#include "engine/schema.hpp"

#include <cstdio>
#include <utility>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace dsml::engine {

namespace {

/// FNV-1a, folding a length prefix before each string so {"ab","c"} and
/// {"a","bc"} hash differently.
void fnv_mix(std::uint64_t& h, std::string_view s) {
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  const std::size_t n = s.size();
  for (std::size_t shift = 0; shift < 64; shift += 8) {
    h ^= static_cast<std::uint64_t>((n >> shift) & 0xFF);
    h *= kPrime;
  }
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= kPrime;
  }
}

void fnv_mix(std::uint64_t& h, std::uint64_t v) {
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  for (std::size_t shift = 0; shift < 64; shift += 8) {
    h ^= (v >> shift) & 0xFF;
    h *= kPrime;
  }
}

std::string column_signature(const SchemaColumn& c) {
  std::string sig = c.name;
  sig += " [";
  sig += data::to_string(c.kind);
  if (c.ordered) sig += ", ordered";
  sig += "]";
  return sig;
}

bool parse_flag_cell(const std::string& raw, const SchemaColumn& column,
                     std::size_t row) {
  const std::string v = strings::to_lower(strings::trim(raw));
  if (v == "1" || v == "true" || v == "yes") return true;
  if (v == "0" || v == "false" || v == "no") return false;
  throw InvalidArgument("row " + std::to_string(row) + ", column '" +
                        column.name + "': expected a flag (0/1/true/false), " +
                        "got '" + raw + "'");
}

}  // namespace

Schema Schema::of(const data::Dataset& dataset) {
  Schema schema;
  schema.columns_.reserve(dataset.n_features());
  for (std::size_t i = 0; i < dataset.n_features(); ++i) {
    const data::Column& col = dataset.feature(i);
    schema.columns_.push_back(
        SchemaColumn{col.name(), col.kind(), col.ordered(), col.levels()});
  }
  schema.refingerprint();
  return schema;
}

Schema Schema::from_columns(std::vector<SchemaColumn> columns) {
  Schema schema;
  schema.columns_ = std::move(columns);
  schema.refingerprint();
  return schema;
}

void Schema::refingerprint() {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  fnv_mix(h, static_cast<std::uint64_t>(columns_.size()));
  for (const SchemaColumn& c : columns_) {
    fnv_mix(h, c.name);
    fnv_mix(h, static_cast<std::uint64_t>(c.kind));
    fnv_mix(h, static_cast<std::uint64_t>(c.ordered ? 1 : 0));
    fnv_mix(h, static_cast<std::uint64_t>(c.levels.size()));
    for (const std::string& level : c.levels) fnv_mix(h, level);
  }
  fingerprint_ = h;
}

bool Schema::matches(const data::Dataset& dataset) const {
  return mismatch(dataset).empty();
}

std::string Schema::mismatch(const data::Dataset& dataset) const {
  if (dataset.n_features() != columns_.size()) {
    return "expected " + std::to_string(columns_.size()) +
           " feature columns, got " + std::to_string(dataset.n_features());
  }
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    const SchemaColumn& want = columns_[i];
    const data::Column& got = dataset.feature(i);
    if (got.name() != want.name || got.kind() != want.kind ||
        got.ordered() != want.ordered || got.levels() != want.levels) {
      const SchemaColumn got_desc{got.name(), got.kind(), got.ordered(),
                                  got.levels()};
      return "column " + std::to_string(i) + ": expected " +
             column_signature(want) + ", got " + column_signature(got_desc);
    }
  }
  return "";
}

std::string Schema::describe() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(fingerprint_));
  return std::to_string(columns_.size()) + " columns, fingerprint " + buf;
}

data::Dataset Schema::probe_row() const {
  std::vector<std::vector<std::string>> row(1);
  row[0].reserve(columns_.size());
  for (const SchemaColumn& c : columns_) {
    switch (c.kind) {
      case data::ColumnKind::kNumeric:
        row[0].push_back("0");
        break;
      case data::ColumnKind::kFlag:
        row[0].push_back("0");
        break;
      case data::ColumnKind::kCategorical:
        DSML_ASSERT(!c.levels.empty());
        row[0].push_back(c.levels.front());
        break;
    }
  }
  return dataset_from_rows(row);
}

data::Dataset Schema::dataset_from_rows(
    const std::vector<std::vector<std::string>>& rows) const {
  for (std::size_t r = 0; r < rows.size(); ++r) {
    if (rows[r].size() != columns_.size()) {
      throw InvalidArgument("row " + std::to_string(r) + ": expected " +
                            std::to_string(columns_.size()) + " cells, got " +
                            std::to_string(rows[r].size()));
    }
  }
  data::Dataset out;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    const SchemaColumn& column = columns_[c];
    switch (column.kind) {
      case data::ColumnKind::kNumeric: {
        std::vector<double> values;
        values.reserve(rows.size());
        for (std::size_t r = 0; r < rows.size(); ++r) {
          try {
            values.push_back(strings::parse_double(rows[r][c]));
          } catch (const IoError&) {
            throw InvalidArgument("row " + std::to_string(r) + ", column '" +
                                  column.name + "': expected a number, got '" +
                                  rows[r][c] + "'");
          }
        }
        out.add_feature(data::Column::numeric(column.name, std::move(values)));
        break;
      }
      case data::ColumnKind::kFlag: {
        std::vector<bool> values;
        values.reserve(rows.size());
        for (std::size_t r = 0; r < rows.size(); ++r) {
          values.push_back(parse_flag_cell(rows[r][c], column, r));
        }
        out.add_feature(data::Column::flag(column.name, std::move(values)));
        break;
      }
      case data::ColumnKind::kCategorical: {
        std::vector<std::string> values;
        values.reserve(rows.size());
        for (std::size_t r = 0; r < rows.size(); ++r) {
          values.push_back(std::string(strings::trim(rows[r][c])));
        }
        try {
          out.add_feature(data::Column::categorical_with_levels(
              column.name, column.levels, std::move(values), column.ordered));
        } catch (const InvalidArgument& e) {
          throw InvalidArgument("column '" + column.name +
                                "': " + e.what() + " (known levels: " +
                                strings::join(column.levels, ", ") + ")");
        }
        break;
      }
    }
  }
  return out;
}

data::Dataset Schema::dataset_from_csv(const csv::Table& table) const {
  std::vector<std::size_t> source(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    bool found = false;
    for (std::size_t h = 0; h < table.header.size(); ++h) {
      if (table.header[h] == columns_[c].name) {
        source[c] = h;
        found = true;
        break;
      }
    }
    if (!found) {
      throw InvalidArgument("csv is missing schema column '" +
                            columns_[c].name + "'");
    }
  }
  std::vector<std::vector<std::string>> rows;
  rows.reserve(table.rows.size());
  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    if (table.rows[r].size() != table.header.size()) {
      throw InvalidArgument("csv row " + std::to_string(r) + " has " +
                            std::to_string(table.rows[r].size()) +
                            " cells for a " +
                            std::to_string(table.header.size()) +
                            "-column header");
    }
    std::vector<std::string> cells;
    cells.reserve(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      cells.push_back(table.rows[r][source[c]]);
    }
    rows.push_back(std::move(cells));
  }
  return dataset_from_rows(rows);
}

}  // namespace dsml::engine
