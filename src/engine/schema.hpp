// Dataset schemas as first-class, fingerprintable values.
//
// A fitted Regressor is only meaningful against the column layout it was
// trained on: the Encoder resolves features by position, so handing a model
// a dataset with reordered / retyped columns silently produces garbage
// predictions rather than an error. The engine therefore captures the
// training schema (name, kind, ordered-ness, and level dictionary per
// column) next to every registered model and checks a 64-bit FNV-1a
// fingerprint before any request reaches the model.
//
// Schema also owns the inverse direction: building a typed Dataset from
// untyped external rows (CSV files handed to `dsml predict --csv`, JSON
// objects handed to `dsml serve`), validating every cell against the
// column's declared kind and levels so malformed requests fail with a
// taxonomy error instead of corrupting a batch.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/csv.hpp"
#include "data/dataset.hpp"

namespace dsml::engine {

/// One feature column's contract: everything the Encoder's behaviour depends
/// on, and nothing it does not (values are data, not schema).
struct SchemaColumn {
  std::string name;
  data::ColumnKind kind = data::ColumnKind::kNumeric;
  bool ordered = false;                  ///< categorical ordinal-eligibility
  std::vector<std::string> levels;       ///< categorical level dictionary
};

class Schema {
 public:
  Schema() = default;

  /// Captures the feature schema of a dataset (the target is deliberately
  /// excluded: prediction-time datasets have none).
  static Schema of(const data::Dataset& dataset);

  /// Rebuilds a schema from explicit column contracts — the deserialization
  /// path for schemas shipped inside registry snapshots.
  static Schema from_columns(std::vector<SchemaColumn> columns);

  const std::vector<SchemaColumn>& columns() const noexcept {
    return columns_;
  }
  std::size_t size() const noexcept { return columns_.size(); }

  /// 64-bit FNV-1a over every column's name, kind, ordered flag, and level
  /// dictionary. Equal fingerprints ⇒ the Encoder treats the datasets
  /// identically.
  std::uint64_t fingerprint() const noexcept { return fingerprint_; }

  /// True when `dataset`'s feature columns match this schema exactly.
  bool matches(const data::Dataset& dataset) const;

  /// Human-readable mismatch diagnosis ("column 3: expected l2_size_kb
  /// [numeric], got l2_assoc [numeric]"); "" when the dataset matches.
  std::string mismatch(const data::Dataset& dataset) const;

  /// Short description for logs: "24 columns, fingerprint 0x...".
  std::string describe() const;

  /// One synthetic row obeying the schema (numerics 0, flags false, first
  /// level for categoricals). The registry probes candidate models with it.
  data::Dataset probe_row() const;

  /// Builds a dataset from string cells in schema column order (rows[i][j]
  /// is column j of row i). Numeric cells must parse as doubles, flag cells
  /// as 0/1/true/false/yes/no, categorical cells must name a known level.
  /// Throws InvalidArgument with row/column context otherwise.
  data::Dataset dataset_from_rows(
      const std::vector<std::vector<std::string>>& rows) const;

  /// Maps a CSV table onto the schema by header name (column order in the
  /// file is free; extra columns — including a target — are ignored).
  /// Throws InvalidArgument when a schema column is missing from the header.
  data::Dataset dataset_from_csv(const csv::Table& table) const;

 private:
  void refingerprint();

  std::vector<SchemaColumn> columns_;
  std::uint64_t fingerprint_ = 0;
};

}  // namespace dsml::engine
