#include "engine/serve.hpp"

#include <cstdio>
#include <istream>
#include <ostream>
#include <unordered_set>
#include <vector>

#include "common/failpoint.hpp"
#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/strings.hpp"
#include "common/trace.hpp"

namespace dsml::engine {

namespace {

struct ServeMetrics {
  metrics::Counter& requests = metrics::counter("engine.serve.requests");
  metrics::Counter& rows = metrics::counter("engine.serve.rows");
  metrics::Counter& errors = metrics::counter("engine.serve.errors");
  metrics::Counter& partial = metrics::counter("engine.serve.partial");
};

ServeMetrics& serve_metrics() {
  static ServeMetrics m;
  return m;
}

std::string numeric_cell(const json::Value& v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v.as_number());
  return buf;
}

/// Converts one request row (a JSON object keyed by column name) into cells
/// in schema column order, rejecting unknown and missing columns by name.
/// `known_columns` is the schema's name set, prebuilt once per request so
/// the unknown-key check is a hash probe instead of a per-key column scan.
std::vector<std::string> row_cells(
    const json::Value& row, const Schema& schema,
    const std::unordered_set<std::string_view>& known_columns,
    std::size_t index) {
  if (row.type() != json::Value::Type::kObject) {
    throw InvalidArgument("row " + std::to_string(index) +
                          " must be a JSON object keyed by column name");
  }
  for (const auto& [key, value] : row.fields()) {
    if (known_columns.count(key) == 0) {
      throw InvalidArgument("row " + std::to_string(index) +
                            " has unknown column '" + key + "'");
    }
  }
  std::vector<std::string> cells;
  cells.reserve(schema.size());
  for (const SchemaColumn& c : schema.columns()) {
    if (!row.contains(c.name)) {
      throw InvalidArgument("row " + std::to_string(index) +
                            " is missing column '" + c.name + "'");
    }
    const json::Value& v = row.at(c.name);
    switch (c.kind) {
      case data::ColumnKind::kNumeric:
        cells.push_back(numeric_cell(v));
        break;
      case data::ColumnKind::kFlag:
        if (v.type() == json::Value::Type::kBool) {
          cells.push_back(v.as_bool() ? "1" : "0");
        } else {
          cells.push_back(v.as_number() != 0.0 ? "1" : "0");
        }
        break;
      case data::ColumnKind::kCategorical:
        cells.push_back(v.as_string());
        break;
    }
  }
  return cells;
}

std::string error_response(const std::exception& e) {
  json::Writer w(/*compact=*/true);
  w.begin_object()
      .field("ok", false)
      .field("error", std::string_view(e.what()))
      .field("error_type", error_kind(e))
      .end_object();
  return w.str();
}

}  // namespace

ServeHandler::ServeHandler(ModelRegistry& registry, ServeOptions options)
    : registry_(registry), options_(std::move(options)) {}

ServeHandler::~ServeHandler() = default;

ServeSummary ServeHandler::summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return summary_;
}

std::string ServeHandler::handle(std::string_view line) {
  if (strings::trim(line).empty()) return "";
  {
    std::lock_guard<std::mutex> lock(mutex_);
    summary_.requests += 1;
  }
  serve_metrics().requests.add();
  trace::Span request_span("serve.request", "engine");
  return answer(line);
}

std::string ServeHandler::answer(std::string_view line) {
  try {
    DSML_FAIL("engine.serve.request");
    const json::Value request = json::Value::parse(line);
    std::string model_name = options_.default_model;
    if (request.contains("model")) {
      model_name = request.at("model").as_string();
    }
    if (model_name.empty()) {
      throw InvalidArgument("request needs a \"model\" field");
    }
    const std::shared_ptr<const ModelEntry> entry = registry_.find(model_name);
    if (entry == nullptr) {
      throw StateError("unknown model '" + model_name + "' (registered: " +
                       strings::join(registry_.names(), ", ") + ")");
    }
    if (!request.contains("rows") ||
        request.at("rows").type() != json::Value::Type::kArray) {
      throw InvalidArgument("request needs a \"rows\" array");
    }
    const std::vector<json::Value>& row_values = request.at("rows").items();
    std::unordered_set<std::string_view> known_columns;
    known_columns.reserve(entry->schema.size());
    for (const SchemaColumn& c : entry->schema.columns()) {
      known_columns.insert(c.name);
    }
    std::vector<std::vector<std::string>> cells;
    cells.reserve(row_values.size());
    for (std::size_t r = 0; r < row_values.size(); ++r) {
      cells.push_back(row_cells(row_values[r], entry->schema, known_columns, r));
    }
    const data::Dataset rows = entry->schema.dataset_from_rows(cells);

    InferenceSession* session = nullptr;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = sessions_.find(model_name);
      if (it == sessions_.end()) {
        it = sessions_
                 .emplace(model_name,
                          std::make_unique<InferenceSession>(
                              registry_, model_name, options_.session))
                 .first;
      }
      session = it->second.get();
    }
    const BatchOutcome outcome = session->predict_detailed(rows);

    json::Writer w(/*compact=*/true);
    w.begin_object()
        .field("ok", outcome.ok())
        .field("model", model_name)
        .field("version", entry->version);
    if (!outcome.ok()) w.field("partial", true);
    w.key("predictions").begin_array();
    std::size_t fail_idx = 0;
    for (std::size_t r = 0; r < outcome.values.size(); ++r) {
      if (fail_idx < outcome.failed_rows.size() &&
          outcome.failed_rows[fail_idx] == r) {
        w.null();
        ++fail_idx;
      } else {
        w.value(outcome.values[r]);
      }
    }
    w.end_array();
    if (!outcome.ok()) {
      w.key("errors").begin_array();
      for (std::size_t k = 0; k < outcome.failed_rows.size(); ++k) {
        w.begin_object()
            .field("row", static_cast<std::uint64_t>(outcome.failed_rows[k]))
            .field("error", std::string_view(outcome.row_errors[k]))
            .end_object();
      }
      w.end_array();
    }
    w.end_object();

    const std::size_t ok_rows =
        outcome.values.size() - outcome.failed_rows.size();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      summary_.rows += ok_rows;
      if (!outcome.ok()) summary_.partial += 1;
    }
    serve_metrics().rows.add(ok_rows);
    if (!outcome.ok()) serve_metrics().partial.add();
    return w.str();
  } catch (const std::exception& e) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      summary_.errors += 1;
    }
    serve_metrics().errors.add();
    return error_response(e);
  }
}

ServeSummary serve(ModelRegistry& registry, std::istream& in,
                   std::ostream& out, const ServeOptions& options) {
  trace::Span loop_span("engine.serve", "engine");
  ServeHandler handler(registry, options);
  std::string line;
  while (std::getline(in, line)) {
    const std::string response = handler.handle(line);
    if (response.empty()) continue;
    out << response;
    out.flush();
  }
  return handler.summary();
}

}  // namespace dsml::engine
