// Process-wide cache of the enumerated design space.
//
// `dsml predict` used to re-enumerate all 4608 processor configurations and
// rebuild their typed Dataset on every invocation — pure cold-start cost,
// paid again by every request in a long-lived serving process. The engine
// builds both exactly once per process and hands out const references; the
// `engine.predict.cold_start` counter records how many times the expensive
// build actually ran (visible in `dsml stats`), so a warm process shows 1
// no matter how many predictions it served.
#pragma once

#include "data/dataset.hpp"
#include "engine/schema.hpp"
#include "sim/config.hpp"

namespace dsml::engine {

/// The enumerated design space (Table 1's 4608 configurations), built on
/// first use and cached for the process lifetime.
const std::vector<sim::ProcessorConfig>& design_space_configs();

/// The design space as a typed feature Dataset (no target), built on first
/// use. Bit-identical to sim::make_config_dataset(design_space_configs()).
const data::Dataset& design_space_dataset();

/// Schema of the design-space dataset — the training schema of every
/// surrogate fitted on sweep data, used to validate models at registration.
const Schema& design_space_schema();

}  // namespace dsml::engine
