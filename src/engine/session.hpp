// Micro-batching inference sessions.
//
// Individual predict requests are cheap to issue but expensive to serve one
// by one: the batched kernels from the performance layer (Mlp::predict's
// forward_block, LinearRegression's fused gemv_columns) amortize encoding
// and matrix traversal over rows, so the engine coalesces concurrent
// requests into one Dataset batch before touching the model.
//
// Mechanics (leader/follower): a request appends itself to a bounded queue
// under the session mutex. If no flush is running, the requester becomes the
// *leader*: it drains the queue in admission order (up to max_batch_rows),
// releases the lock, assembles one Dataset via row-wise concatenation, runs
// a single Regressor::predict over it, splits the results back per request,
// and wakes the followers. Requests that arrive while a flush is running
// wait; the first to wake afterwards leads the next batch, naturally
// coalescing whatever queued up in the meantime.
//
// Determinism contract (pinned by tests/test_engine.cpp): every model's
// per-row prediction is independent of its batch neighbours — encoding is
// row-local and the batched kernels are bit-identical to their per-row
// references — so session results are **bit-identical** to calling
// Regressor::predict directly, whatever batch composition concurrency
// produced.
//
// Failure behaviour: a batch whose predict throws degrades to per-row
// retry, so one poisoned row fails alone instead of failing its batch
// neighbours (`engine.session.degraded` counts it; the `engine.session.
// flush` / `engine.session.row` failpoints inject both stages). Admission
// past the queue bound is rejected with StateError (`engine.session.admit`
// injects it).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/registry.hpp"

namespace dsml::engine {

struct SessionOptions {
  /// Row budget of one assembled batch; a flush drains whole requests until
  /// adding the next would exceed it (a single over-budget request still
  /// flushes alone — requests are never split).
  std::size_t max_batch_rows = 512;

  /// Rows admitted but not yet flushed; admission beyond this throws
  /// StateError (backpressure surfaces as an error, not an unbounded queue).
  std::size_t max_queue_rows = 4096;

  /// Degrade a failed batch to per-row retry instead of failing every
  /// request in it.
  bool retry_rows_on_batch_failure = true;

  /// Route batches through the model's float32 weight snapshot (built at
  /// registration; see ml/f32.hpp) instead of the double path. Opt-in:
  /// predictions then carry the documented <= 1e-5 relative error budget
  /// instead of the bit-identity contract. A model without an f32 snapshot
  /// silently serves double (`engine.session.f32_fallbacks` counts it), so
  /// enabling this can never make a session fail.
  bool use_f32 = false;
};

/// Per-request outcome with row granularity, for callers (the serve loop)
/// that must report partial failures instead of throwing.
struct BatchOutcome {
  std::vector<double> values;  ///< per row; NaN where the row failed
  std::vector<std::size_t> failed_rows;   ///< indices of failed rows
  std::vector<std::string> row_errors;    ///< parallel to failed_rows
  bool degraded = false;  ///< the enclosing batch fell back to per-row

  bool ok() const noexcept { return failed_rows.empty(); }
};

struct SessionStats {
  std::uint64_t batches = 0;       ///< flushes executed
  std::uint64_t rows = 0;          ///< rows predicted
  std::uint64_t coalesced = 0;     ///< requests that shared a flush
  std::uint64_t degraded = 0;      ///< batches that fell back to per-row
  std::uint64_t rejected = 0;      ///< admissions refused (queue full)
};

class InferenceSession {
 public:
  /// Binds to `model_name` in `registry`. The name is resolved per flush,
  /// so a model re-registered mid-session is picked up by the next batch.
  /// Throws StateError if the name is not registered at construction.
  InferenceSession(ModelRegistry& registry, std::string model_name,
                   SessionOptions options = {});

  ~InferenceSession();

  InferenceSession(const InferenceSession&) = delete;
  InferenceSession& operator=(const InferenceSession&) = delete;

  /// Blocking predict. `rows` must match the registered schema (checked by
  /// fingerprint; throws InvalidArgument on mismatch). May coalesce with
  /// concurrent requests; results are bit-identical either way. Throws the
  /// first row failure if any row could not be predicted.
  std::vector<double> predict(const data::Dataset& rows);

  /// Like predict(), but reports row failures in the outcome instead of
  /// throwing (batch assembly/admission errors still throw).
  BatchOutcome predict_detailed(const data::Dataset& rows);

  const std::string& model_name() const noexcept { return model_name_; }

  SessionStats stats() const;

 private:
  struct Request {
    const data::Dataset* rows = nullptr;
    std::size_t n_rows = 0;
    BatchOutcome outcome;
    std::string error;       ///< request-level failure (empty = none)
    bool done = false;
  };

  void flush_locked(std::unique_lock<std::mutex>& lock);
  static BatchOutcome predict_rows(const ml::Regressor& model,
                                   const data::Dataset& rows);

  ModelRegistry& registry_;
  std::string model_name_;
  SessionOptions options_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<Request*> queue_;   // admission order
  std::size_t queued_rows_ = 0;
  bool flushing_ = false;
  SessionStats stats_;
};

}  // namespace dsml::engine
