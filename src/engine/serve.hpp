// JSON-lines request serving: the engine's proof workload.
//
// Protocol (one JSON document per input line; one response per request):
//
//   → {"model": "gcc", "rows": [{"l1d_size_kb": 32, ..., "branch_predictor":
//      "bimodal", "issue_wrong": false}, ...]}
//   ← {"ok": true, "model": "gcc", "version": 1, "predictions": [123456.0]}
//
// Rows are objects keyed by the model's schema column names (extra keys are
// rejected, missing keys are reported with the column name). Failures never
// kill the loop:
//
//   - a malformed line / missing "rows" array / unknown model / bad row
//     value produces {"ok": false, "error": ..., "error_type": <taxonomy
//     name>} and counts as a request *error*;
//   - a row that fails *prediction* (e.g. an injected failpoint) produces a
//     partial response: "ok" false, "partial" true, null in `predictions`
//     at the failed positions, and an `errors` array naming each row —
//     surviving rows still carry their predictions. Partial responses are
//     counted separately from errors (`ServeSummary::partial`,
//     `engine.serve.partial`): some rows were answered, so reporting them
//     as failures would over-state how degraded the run was.
//
// The request/response logic lives in ServeHandler so every front-end
// speaks the identical protocol: serve() wraps it in a stdin/stdout
// getline loop, and the TCP front-end (net/server.hpp, `dsml serve
// --listen`) dispatches each framed line to the same handler — responses
// are byte-identical across transports. Requests route through an
// InferenceSession per model, so concurrent callers coalesce into shared
// batches; metrics (`engine.serve.*`) and trace spans follow every request.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "engine/registry.hpp"
#include "engine/session.hpp"

namespace dsml::engine {

struct ServeOptions {
  /// Used when a request omits "model"; "" means the field is required.
  std::string default_model;

  /// Session tuning shared by every model's session.
  SessionOptions session;
};

struct ServeSummary {
  std::uint64_t requests = 0;  ///< lines answered (including errors)
  std::uint64_t rows = 0;      ///< rows predicted successfully
  std::uint64_t errors = 0;    ///< whole-request failures (no row answered)
  std::uint64_t partial = 0;   ///< responses where only some rows failed
};

/// Answers serve-protocol requests one line at a time, independent of the
/// transport that framed them. Thread-safe: the stdin loop is single-
/// threaded, but a concurrent front-end may call handle() from several
/// threads and requests then coalesce in the per-model InferenceSessions.
class ServeHandler {
 public:
  /// Sessions are created lazily per requested model against `registry`,
  /// which must outlive the handler.
  explicit ServeHandler(ModelRegistry& registry, ServeOptions options = {});
  ~ServeHandler();

  ServeHandler(const ServeHandler&) = delete;
  ServeHandler& operator=(const ServeHandler&) = delete;

  /// Answers one request line with a newline-terminated compact JSON
  /// response; "" for blank lines (which are not counted as requests).
  /// Never throws for request-level failures.
  std::string handle(std::string_view line);

  ServeSummary summary() const;

 private:
  std::string answer(std::string_view line);

  ModelRegistry& registry_;
  ServeOptions options_;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<InferenceSession>> sessions_;
  ServeSummary summary_;
};

/// Reads requests from `in` until EOF, writing one compact JSON response
/// line to `out` per request. Never throws for request-level failures; the
/// summary says how much work was done.
ServeSummary serve(ModelRegistry& registry, std::istream& in,
                   std::ostream& out, const ServeOptions& options = {});

}  // namespace dsml::engine
