// JSON-lines request serving: the engine's proof workload.
//
// Protocol (one JSON document per input line; one response per request):
//
//   → {"model": "gcc", "rows": [{"l1d_size_kb": 32, ..., "branch_predictor":
//      "bimodal", "issue_wrong": false}, ...]}
//   ← {"ok": true, "model": "gcc", "version": 1, "predictions": [123456.0]}
//
// Rows are objects keyed by the model's schema column names (extra keys are
// rejected, missing keys are reported with the column name). Failures never
// kill the loop:
//
//   - a malformed line / unknown model / bad row value produces
//     {"ok": false, "error": ..., "error_type": <taxonomy name>};
//   - a row that fails *prediction* (e.g. an injected failpoint) produces a
//     partial response: "ok" false, "partial" true, null in `predictions`
//     at the failed positions, and an `errors` array naming each row —
//     surviving rows still carry their predictions.
//
// Requests route through an InferenceSession per model, so concurrent
// stdin feeders (or a future socket frontend) would coalesce into shared
// batches; metrics (`engine.serve.*`) and trace spans follow every request.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "engine/registry.hpp"
#include "engine/session.hpp"

namespace dsml::engine {

struct ServeOptions {
  /// Used when a request omits "model"; "" means the field is required.
  std::string default_model;

  /// Session tuning shared by every model's session.
  SessionOptions session;
};

struct ServeSummary {
  std::uint64_t requests = 0;  ///< lines answered (including errors)
  std::uint64_t rows = 0;      ///< rows predicted successfully
  std::uint64_t errors = 0;    ///< error or partial responses
};

/// Reads requests from `in` until EOF, writing one compact JSON response
/// line to `out` per request. Never throws for request-level failures; the
/// summary says how much work was done.
ServeSummary serve(ModelRegistry& registry, std::istream& in,
                   std::ostream& out, const ServeOptions& options = {});

}  // namespace dsml::engine
