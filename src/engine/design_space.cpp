#include "engine/design_space.hpp"

#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace dsml::engine {

namespace {

struct DesignSpaceCache {
  std::vector<sim::ProcessorConfig> configs;
  data::Dataset dataset;
  Schema schema;

  DesignSpaceCache() {
    trace::Span span("engine.design_space.build", "engine");
    metrics::counter("engine.predict.cold_start").add();
    configs = sim::enumerate_design_space();
    dataset = sim::make_config_dataset(configs);
    schema = Schema::of(dataset);
  }
};

/// Function-local static: built once, thread-safe by the C++11 guarantee.
const DesignSpaceCache& cache() {
  static DesignSpaceCache instance;
  return instance;
}

}  // namespace

const std::vector<sim::ProcessorConfig>& design_space_configs() {
  return cache().configs;
}

const data::Dataset& design_space_dataset() { return cache().dataset; }

const Schema& design_space_schema() { return cache().schema; }

}  // namespace dsml::engine
