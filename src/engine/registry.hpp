// Thread-safe registry of named, versioned fitted-model artifacts.
//
// The serving story needs models to be *loaded once and queried many times*:
// `dsml predict` used to reload its artifact from disk on every invocation,
// and nothing in the codebase could hold two models side by side. The
// registry owns immutable snapshots — `shared_ptr<const ModelEntry>` pairs
// of a fitted Regressor and the Schema it was trained on — keyed by caller
// chosen names. Registration validates the pair (the model must be fitted
// and must accept a schema-shaped probe row) and bumps a per-name version;
// re-registering a name atomically swaps the snapshot, so in-flight readers
// keep predicting against the entry they already resolved and simply see the
// new version on their next lookup. Readers never block writers for longer
// than a map find + two shared_ptr copies.
//
// Instrumentation follows the OBSERVABILITY.md discipline:
// `registry.registrations` / `registry.reloads` / `registry.lookups` /
// `registry.misses` / `registry.loads` counters and a trace span around
// artifact loads. ml::load_model is wrapped by load_file() — the only
// sanctioned path from tools/ (enforced by dsml-lint's
// `direct-model-load-in-tools` rule).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "engine/schema.hpp"
#include "ml/f32.hpp"
#include "ml/model.hpp"

namespace dsml::engine {

/// An immutable registered artifact. Entries are shared snapshots: once
/// handed out they never change, even if the name is re-registered.
struct ModelEntry {
  std::string name;        ///< registry key
  std::uint64_t version;   ///< 1 on first registration, +1 per swap
  std::string source;      ///< provenance ("file:model.dsml", "trained", ...)
  std::shared_ptr<const ml::Regressor> model;
  /// Float32 weight snapshot, built once at registration (ml/f32.hpp);
  /// nullptr when the model type has no f32 path or the snapshot build
  /// failed (`registry.f32_failures`). Sessions use it only when
  /// SessionOptions::use_f32 asks for it — double stays the default.
  std::shared_ptr<const ml::F32Predictor> f32;
  Schema schema;
};

class ModelRegistry {
 public:
  ModelRegistry() = default;

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Registers (or replaces) `name`. The model must be fitted and must
  /// successfully predict a one-row probe dataset built from `schema` —
  /// a mismatched pair is rejected here, at registration, rather than
  /// producing garbage at request time. Returns the entry's version.
  /// Throws InvalidArgument on a null/unfitted model or a failed probe.
  std::uint64_t register_model(const std::string& name,
                               std::shared_ptr<const ml::Regressor> model,
                               Schema schema, std::string source = "");

  /// Loads an artifact from disk (via ml::serialize) and registers it.
  /// The sanctioned model-loading path for tools/.
  std::uint64_t load_file(const std::string& name, const std::string& path,
                          Schema schema);

  /// Serializes `name`'s current entry — model weights *and* the schema it
  /// was trained on — into one self-describing text blob, the payload a
  /// fleet coordinator ships to workers. Throws StateError when the name is
  /// not registered.
  std::string serialize_entry(const std::string& name) const;

  /// Registers a blob produced by serialize_entry under `name`, with the
  /// full register_model validation and atomic-swap semantics: in-flight
  /// readers keep the snapshot they already resolved, the next lookup sees
  /// the new version. Throws IoError on a malformed blob. Returns the new
  /// version.
  std::uint64_t register_snapshot(const std::string& name,
                                  const std::string& blob,
                                  std::string source = "snapshot");

  /// Snapshot lookup; throws StateError when `name` is not registered.
  std::shared_ptr<const ModelEntry> get(const std::string& name) const;

  /// Snapshot lookup; nullptr when `name` is not registered.
  std::shared_ptr<const ModelEntry> find(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;

  std::size_t size() const;

  /// Drops every entry (snapshots already handed out stay alive).
  void clear();

  /// Process-wide instance shared by the CLI subcommands.
  static ModelRegistry& global();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const ModelEntry>> entries_;
};

}  // namespace dsml::engine
