#include "fleet/evaluator.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "common/trace.hpp"

namespace dsml::fleet {

FleetEvaluator::FleetEvaluator(std::string app, std::vector<Endpoint> workers,
                               CoordinatorOptions options)
    : app_(std::move(app)),
      workers_(std::move(workers)),
      options_(std::move(options)) {
  DSML_REQUIRE(!workers_.empty(), "fleet: no workers given");
}

dse::SweepShard FleetEvaluator::evaluate(
    const std::vector<std::size_t>& indices) {
  trace::Span gather_span([&] { return "fleet.gather " + app_; }, "fleet");
  GatherResult gathered =
      coordinator_gather(app_, workers_, options_, indices);
  for (FailureRecord& f : gathered.failures) {
    pending_.push_back(std::move(f));
  }
  for (std::string& label : gathered.evicted) {
    if (std::find(evicted_.begin(), evicted_.end(), label) ==
        evicted_.end()) {
      evicted_.push_back(std::move(label));
    }
  }

  // Flatten the per-worker shards into one response aligned to the request.
  // coordinator_gather guarantees exact coverage (or throws), so every
  // requested index appears exactly once across the shards.
  dse::SweepShard merged;
  merged.indices = indices;
  merged.cycles.assign(indices.size(), 0.0);
  std::vector<std::uint8_t> seen(indices.size(), 0);
  for (dse::SweepShard& shard : gathered.shards) {
    DSML_REQUIRE(shard.indices.size() == shard.cycles.size(),
                 "fleet: malformed shard");
    for (std::size_t i = 0; i < shard.indices.size(); ++i) {
      const auto it = std::lower_bound(indices.begin(), indices.end(),
                                       shard.indices[i]);
      DSML_REQUIRE(it != indices.end() && *it == shard.indices[i],
                   "fleet: shard answered an index outside the request");
      const std::size_t pos =
          static_cast<std::size_t>(it - indices.begin());
      DSML_REQUIRE(!seen[pos], "fleet: shard answered an index twice");
      seen[pos] = 1;
      merged.cycles[pos] = shard.cycles[i];
    }
    merged.simpoint_count += shard.simpoint_count;
    merged.simulated_instructions += shard.simulated_instructions;
  }
  DSML_REQUIRE(std::all_of(seen.begin(), seen.end(),
                           [](std::uint8_t s) { return s != 0; }),
               "fleet: gather left requested indices unanswered");
  return merged;
}

std::vector<FailureRecord> FleetEvaluator::drain_failures() {
  return std::exchange(pending_, {});
}

}  // namespace dsml::fleet
