#include "fleet/supervisor.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/metrics.hpp"

namespace dsml::fleet {

namespace {

struct SupervisorMetrics {
  metrics::Counter& spawns = metrics::counter("fleet.supervisor.spawns");
  metrics::Counter& respawns = metrics::counter("fleet.supervisor.respawns");
};

SupervisorMetrics& supervisor_metrics() {
  static SupervisorMetrics m;
  return m;
}

std::string describe_exit(int status) {
  if (WIFEXITED(status)) {
    return "status " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return "signal " + std::to_string(WTERMSIG(status));
  }
  return "status " + std::to_string(status);
}

}  // namespace

Supervisor::Supervisor(SupervisorOptions options)
    : options_(std::move(options)) {
  DSML_REQUIRE(options_.workers > 0, "fleet: supervisor needs >= 1 worker");
  DSML_REQUIRE(!options_.exe.empty(), "fleet: supervisor needs a worker binary");
  DSML_REQUIRE(options_.backoff_initial_ms > 0,
               "fleet: backoff_initial_ms must be positive");
  slots_.resize(options_.workers);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    const std::uint16_t want =
        options_.port_base == 0
            ? 0
            : static_cast<std::uint16_t>(options_.port_base + i);
    slots_[i].listen =
        net::listen_tcp(options_.bind_address, want, options_.backlog);
    slots_[i].port = net::local_port(slots_[i].listen);
    slots_[i].backoff_ms = options_.backoff_initial_ms;
  }
}

Supervisor::~Supervisor() { stop(); }

std::vector<Endpoint> Supervisor::endpoints() const {
  std::vector<Endpoint> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    out.push_back(Endpoint{options_.bind_address, slot.port});
  }
  return out;
}

void Supervisor::start() {
  if (started_) {
    throw StateError("fleet: supervisor already started");
  }
  started_ = true;
  for (std::size_t i = 0; i < slots_.size(); ++i) spawn(i);
}

void Supervisor::spawn(std::size_t index) {
  Slot& slot = slots_[index];
  std::vector<std::string> args;
  args.reserve(options_.worker_args.size() + 3);
  args.push_back(options_.exe);
  for (const std::string& a : options_.worker_args) args.push_back(a);
  args.push_back("--listen-fd");
  args.push_back(std::to_string(slot.listen.get()));
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw IoError(std::string("fleet: fork(): ") + std::strerror(errno));
  }
  if (pid == 0) {
    // Child. Drop the *other* slots' listeners so a worker never pins a
    // sibling's port after the supervisor dies; its own descriptor is the
    // one inherited resource it needs.
    for (std::size_t j = 0; j < slots_.size(); ++j) {
      if (j != index && slots_[j].listen.valid()) {
        ::close(slots_[j].listen.get());
      }
    }
    ::execv(options_.exe.c_str(), argv.data());
    _exit(127);  // exec failed; the parent sees the exit status
  }
  slot.pid = pid;
  slot.waiting = false;
  supervisor_metrics().spawns.add();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++summary_.spawns;
  }
  push_event("spawned worker " + std::to_string(index) + " pid " +
             std::to_string(pid) + " on " + options_.bind_address + ":" +
             std::to_string(slot.port));
}

std::size_t Supervisor::tick() {
  if (!started_ || stopped_) return 0;
  std::size_t live = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = slots_[i];
    if (slot.evicted) continue;
    if (slot.pid > 0) {
      int status = 0;
      const pid_t reaped = ::waitpid(slot.pid, &status, WNOHANG);
      if (reaped == 0) {
        ++live;
        continue;
      }
      push_event("worker " + std::to_string(i) + " pid " +
                 std::to_string(slot.pid) + " exited (" +
                 (reaped == slot.pid ? describe_exit(status)
                                     : std::string("waitpid failed")) +
                 ")");
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++summary_.exits;
      }
      slot.pid = -1;
      slot.waiting = true;
      slot.since_exit.restart();
    }
    if (!slot.waiting) continue;
    if (slot.respawns >= options_.max_respawns) {
      // Terminal: the slot keeps crashing, so stop feeding it work. The
      // socket closes too — coordinators get connection-refused (fast)
      // instead of a backlog that nobody will ever drain.
      slot.evicted = true;
      slot.waiting = false;
      slot.listen.reset();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++summary_.evictions;
      }
      push_event("evicted worker " + std::to_string(i) + " after " +
                 std::to_string(slot.respawns) + " respawns");
      continue;
    }
    if (slot.since_exit.seconds() * 1000.0 >=
        static_cast<double>(slot.backoff_ms)) {
      ++slot.respawns;
      supervisor_metrics().respawns.add();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++summary_.respawns;
      }
      push_event("respawning worker " + std::to_string(i) + " (attempt " +
                 std::to_string(slot.respawns) + ", next backoff " +
                 std::to_string(slot.backoff_ms * 2) + " ms)");
      slot.backoff_ms =
          std::min(slot.backoff_ms * 2, options_.backoff_max_ms);
      spawn(i);
      ++live;
    }
  }
  return live;
}

std::vector<std::size_t> Supervisor::evicted() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].evicted) out.push_back(i);
  }
  return out;
}

SupervisorSummary Supervisor::summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return summary_;
}

std::vector<std::string> Supervisor::drain_events() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.swap(events_);
  return out;
}

void Supervisor::push_event(std::string event) {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

void Supervisor::stop(std::uint32_t grace_ms) {
  if (stopped_) return;
  stopped_ = true;
  for (Slot& slot : slots_) {
    if (slot.pid > 0) ::kill(slot.pid, SIGTERM);
  }
  trace::Stopwatch grace;
  for (;;) {
    std::size_t live = 0;
    for (Slot& slot : slots_) {
      if (slot.pid <= 0) continue;
      int status = 0;
      if (::waitpid(slot.pid, &status, WNOHANG) == slot.pid) {
        slot.pid = -1;
      } else {
        ++live;
      }
    }
    if (live == 0) return;
    if (grace.seconds() * 1000.0 >= static_cast<double>(grace_ms)) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // Grace expired: SIGKILL cannot be ignored, so the blocking reap below
  // terminates.
  for (Slot& slot : slots_) {
    if (slot.pid > 0) {
      ::kill(slot.pid, SIGKILL);
      int status = 0;
      ::waitpid(slot.pid, &status, 0);
      slot.pid = -1;
    }
  }
}

}  // namespace dsml::fleet
