#include "fleet/coordinator.hpp"

#include <map>
#include <memory>
#include <set>
#include <utility>

#include "common/failpoint.hpp"
#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/strings.hpp"
#include "common/trace.hpp"
#include "fleet/hash_ring.hpp"
#include "fleet/protocol.hpp"
#include "net/client.hpp"
#include "sim/core.hpp"

namespace dsml::fleet {

namespace {

struct CoordinatorMetrics {
  metrics::Counter& shards = metrics::counter("fleet.coordinator.shards");
  metrics::Counter& retries = metrics::counter("fleet.coordinator.retries");
  metrics::Counter& evictions =
      metrics::counter("fleet.coordinator.evictions");
};

CoordinatorMetrics& coordinator_metrics() {
  static CoordinatorMetrics m;
  return m;
}

/// One scattered request whose response is still owed.
struct InFlight {
  std::string label;
  std::vector<std::size_t> indices;
  std::unique_ptr<net::LineClient> client;
};

}  // namespace

std::string Endpoint::label() const {
  return host + ":" + std::to_string(port);
}

Endpoint parse_endpoint(const std::string& spec) {
  const std::size_t colon = spec.rfind(':');
  DSML_REQUIRE(colon != std::string::npos && colon > 0 &&
                   colon + 1 < spec.size(),
               "fleet: endpoint '" + spec + "' is not host:port");
  Endpoint ep;
  ep.host = spec.substr(0, colon);
  std::uint64_t port = 0;
  try {
    port = strings::parse_u64(spec.substr(colon + 1));
  } catch (const IoError& e) {
    throw InvalidArgument("fleet: endpoint '" + spec + "': " + e.what());
  }
  DSML_REQUIRE(port > 0 && port <= 65535,
               "fleet: endpoint '" + spec + "' port out of range");
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

GatherResult coordinator_gather(const std::string& app,
                                const std::vector<Endpoint>& workers,
                                const CoordinatorOptions& options,
                                const std::vector<std::size_t>& indices) {
  DSML_REQUIRE(!workers.empty(), "fleet: no workers given");
  DSML_REQUIRE(options.max_rounds > 0, "fleet: max_rounds must be positive");
  DSML_REQUIRE(!indices.empty(), "fleet: empty index set");
  for (std::size_t i = 0; i < indices.size(); ++i) {
    DSML_REQUIRE(indices[i] < sim::kDesignSpaceSize,
                 "fleet: index outside the design space");
    DSML_REQUIRE(i == 0 || indices[i - 1] < indices[i],
                 "fleet: indices must be strictly ascending");
  }

  GatherResult result;
  std::set<std::string> evicted_set;
  std::set<std::string> contributed;
  const auto record_failure = [&](const std::string& label,
                                  const std::exception& e) {
    result.failures.push_back(FailureRecord{label, error_kind(e), e.what()});
    if (evicted_set.insert(label).second) {
      result.evicted.push_back(label);
      coordinator_metrics().evictions.add();
    }
  };

  // `done` spans the whole design space so the hash-ring owner of a
  // configuration is independent of which subset a campaign asks for — the
  // same index always lands on the same worker.
  std::vector<std::uint8_t> done(sim::kDesignSpaceSize, 1);
  for (const std::size_t idx : indices) done[idx] = 0;
  std::size_t missing = indices.size();

  for (std::size_t round = 1; round <= options.max_rounds && missing > 0;
       ++round) {
    result.rounds = round;
    if (round > 1) coordinator_metrics().retries.add();

    // Health phase: every endpoint is re-pinged every round, so a worker
    // the supervisor respawned since the last round rejoins the ring, and
    // one that stayed dead costs one bounded connect/recv timeout.
    std::vector<const Endpoint*> healthy;
    for (const Endpoint& ep : workers) {
      try {
        net::LineClient ping(ep.host, ep.port,
                             net::ClientOptions{options.connect_timeout_ms,
                                                options.ping_timeout_ms});
        parse_response(ping.request(encode_ping()), "pong");
        healthy.push_back(&ep);
      } catch (const std::exception& e) {
        record_failure(ep.label(), e);
      }
    }
    if (healthy.empty()) continue;  // maybe a respawn lands before next round

    HashRing ring(options.ring_replicas);
    for (const Endpoint* ep : healthy) ring.add(ep->label());

    // Assign only the configurations still missing: consistent hashing
    // means survivors of an eviction keep the shards they already returned.
    std::map<std::string, std::vector<std::size_t>> assignment;
    for (const std::size_t idx : indices) {
      if (!done[idx]) assignment[ring.owner(idx)].push_back(idx);
    }

    // Scatter: send every request before reading any response, so workers
    // simulate their shards concurrently while we wait on one socket.
    std::vector<InFlight> inflight;
    for (const Endpoint* ep : healthy) {
      auto it = assignment.find(ep->label());
      if (it == assignment.end()) continue;
      try {
        DSML_FAIL("fleet.coordinator.scatter");
        auto client = std::make_unique<net::LineClient>(
            ep->host, ep->port,
            net::ClientOptions{options.connect_timeout_ms,
                               options.request_timeout_ms});
        client->send_line(encode_sweep_request(
            SweepRequest{app, options.sweep, it->second}));
        inflight.push_back(
            InFlight{ep->label(), it->second, std::move(client)});
      } catch (const std::exception& e) {
        record_failure(ep->label(), e);
      }
    }

    // Gather: a worker that died mid-shard surfaces here as EOF (kill -9),
    // a timeout (wedged), or an ok:false response; its indices simply stay
    // unassigned for the next round.
    for (InFlight& flight : inflight) {
      try {
        DSML_FAIL("fleet.coordinator.gather");
        const json::Value response =
            parse_response(flight.client->recv_line(), "shard");
        ShardResponse shard = parse_shard_response(response);
        if (shard.cycles.size() != flight.indices.size()) {
          throw IoError("fleet: shard answered " +
                        std::to_string(shard.cycles.size()) +
                        " cycles for " +
                        std::to_string(flight.indices.size()) + " indices");
        }
        for (const std::size_t idx : flight.indices) done[idx] = 1;
        missing -= flight.indices.size();
        result.shards.push_back(dse::SweepShard{
            std::move(flight.indices), std::move(shard.cycles),
            shard.simpoint_count, shard.simulated_instructions});
        coordinator_metrics().shards.add();
        contributed.insert(flight.label);
      } catch (const std::exception& e) {
        record_failure(flight.label, e);
      }
    }
  }

  if (missing > 0) {
    throw StateError(
        "fleet: " + std::to_string(missing) + " of " +
        std::to_string(indices.size()) +
        " configurations unassigned after " + std::to_string(result.rounds) +
        " round(s) across " + std::to_string(workers.size()) +
        " worker(s); " + std::to_string(result.failures.size()) +
        " failure(s) recorded");
  }

  result.workers_used = contributed.size();
  return result;
}

FleetSweepResult coordinator_sweep(const std::string& app,
                                   const std::vector<Endpoint>& workers,
                                   const CoordinatorOptions& options) {
  trace::Span sweep_span([&] { return "fleet.sweep " + app; }, "fleet");
  trace::Stopwatch timer;

  std::vector<std::size_t> all(sim::kDesignSpaceSize);
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
  GatherResult gathered = coordinator_gather(app, workers, options, all);

  FleetSweepResult result;
  result.failures = std::move(gathered.failures);
  result.evicted = std::move(gathered.evicted);
  result.rounds = gathered.rounds;
  result.workers_used = gathered.workers_used;
  result.sweep = dse::merge_sweep_shards(app, gathered.shards);
  result.sweep.seconds = timer.seconds();
  return result;
}

PushResult push_model_snapshot(const std::string& name,
                               const std::string& snapshot,
                               const std::vector<Endpoint>& workers,
                               const CoordinatorOptions& options) {
  DSML_REQUIRE(!workers.empty(), "fleet: no workers given");
  DSML_REQUIRE(!snapshot.empty(), "fleet: empty model snapshot");
  PushResult result;
  for (const Endpoint& ep : workers) {
    try {
      net::LineClient client(ep.host, ep.port,
                             net::ClientOptions{options.connect_timeout_ms,
                                                options.request_timeout_ms});
      const json::Value response = parse_response(
          client.request(encode_load_model(name, snapshot)), "model_loaded");
      result.outcomes.push_back(PushOutcome{
          ep.label(),
          static_cast<std::uint64_t>(response.at("version").as_number())});
    } catch (const std::exception& e) {
      result.failures.push_back(
          FailureRecord{ep.label(), error_kind(e), e.what()});
    }
  }
  return result;
}

}  // namespace dsml::fleet
