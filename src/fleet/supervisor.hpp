// Fleet supervisor: owns worker processes and keeps their ports alive.
//
// The supervisor binds every worker's listen socket *itself* and passes the
// descriptor across fork/exec (`dsml worker --listen-fd N`, adopted via
// ServerOptions::adopted_fd). That inversion is the crash-tolerance trick:
// when a worker dies — including kill -9 — the parent still holds the
// listening socket, so the endpoint keeps accepting and clients queue in
// the kernel backlog while the replacement process starts, instead of
// seeing connection-refused. Endpoints are therefore stable for the
// supervisor's lifetime, across any number of respawns.
//
// Respawn state machine, driven by tick() (waitpid WNOHANG, never blocks):
//
//   running ──exit/signal──▶ backoff ──deadline reached──▶ running
//                               │  (exponential: initial·2^n, capped)
//                               └──respawn budget exhausted──▶ evicted
//
// Eviction is terminal: a slot that crashed `max_respawns + 1` times is
// assumed poisoned (bad model file, OOM loop) and its socket is closed so
// coordinators fail fast on it instead of queueing forever. Events (spawn,
// exit, respawn, evict) are queued for the CLI to drain and print — the
// library never writes to a stream itself.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include <sys/types.h>

#include "common/trace.hpp"
#include "fleet/coordinator.hpp"
#include "net/socket.hpp"

namespace dsml::fleet {

struct SupervisorOptions {
  std::string exe;                       ///< worker binary (e.g. /proc/self/exe resolved)
  std::vector<std::string> worker_args;  ///< argv after the binary, before --listen-fd
  std::string bind_address = "127.0.0.1";
  std::uint16_t port_base = 0;           ///< 0 = ephemeral per slot; else base+slot
  std::size_t workers = 3;
  int backlog = 128;
  std::uint32_t backoff_initial_ms = 100;
  std::uint32_t backoff_max_ms = 2000;
  std::size_t max_respawns = 5;          ///< respawn budget per slot
};

struct SupervisorSummary {
  std::uint64_t spawns = 0;    ///< processes started (initial + respawns)
  std::uint64_t respawns = 0;  ///< restarts after a death
  std::uint64_t exits = 0;     ///< worker deaths observed
  std::uint64_t evictions = 0; ///< slots retired for good
};

class Supervisor {
 public:
  /// Binds all listen sockets (so endpoints() is final before any worker
  /// runs). Throws InvalidArgument on a bad option, IoError on bind failure.
  explicit Supervisor(SupervisorOptions options);

  /// Stops any workers still running (SIGTERM, then SIGKILL).
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// One endpoint per slot, stable across respawns. Evicted slots keep
  /// their entry (callers see the connection error and route around it).
  std::vector<Endpoint> endpoints() const;

  /// Spawns every worker. Throws StateError if called twice.
  void start();

  /// Reaps dead workers and respawns those whose backoff expired; never
  /// blocks. Returns the number of slots currently running a live process.
  std::size_t tick();

  /// Slots retired after exhausting their respawn budget.
  std::vector<std::size_t> evicted() const;

  SupervisorSummary summary() const;

  /// Human-readable lifecycle events accumulated since the last drain,
  /// oldest first ("spawned worker 2 pid 1234 on 127.0.0.1:9002", ...).
  std::vector<std::string> drain_events();

  /// SIGTERM every live worker, wait up to `grace_ms`, SIGKILL stragglers,
  /// reap everything. Idempotent.
  void stop(std::uint32_t grace_ms = 2000);

 private:
  struct Slot {
    net::Fd listen;
    std::uint16_t port = 0;
    pid_t pid = -1;
    bool waiting = false;          ///< dead, respawn pending
    bool evicted = false;
    std::size_t respawns = 0;
    std::uint32_t backoff_ms = 0;
    trace::Stopwatch since_exit;
  };

  void spawn(std::size_t index);
  void push_event(std::string event);

  SupervisorOptions options_;
  std::vector<Slot> slots_;
  bool started_ = false;
  bool stopped_ = false;

  mutable std::mutex mutex_;  ///< guards summary_ and events_
  SupervisorSummary summary_;
  std::vector<std::string> events_;
};

}  // namespace dsml::fleet
