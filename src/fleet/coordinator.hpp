// Fleet coordinator: fault-tolerant scatter/gather over the worker fleet.
//
// coordinator_sweep partitions the design space across the workers that
// answer a health ping (consistent hash, hash_ring.hpp), scatters one sweep
// request per worker, and gathers the shard responses. Every network step
// runs under a deadline (connect timeout + kernel-enforced I/O timeout), so
// a dead, wedged, or stalled worker costs one bounded wait, never a hang.
//
// Failure model — the invariant is "complete table or loud error, never a
// silent partial result":
//   - a worker that fails ping, dies mid-request (EOF), times out, or
//     answers ok:false is *evicted for the round*: its failure is recorded
//     as a FailureRecord (taxonomy type via error_kind) and its indices
//     return to the unassigned pool;
//   - the next round re-pings every endpoint (a supervisor-respawned worker
//     rejoins; a permanently dead one stays out), rebuilds the ring from
//     the survivors, and reassigns only the missing indices — consistent
//     hashing keeps completed shards where they are;
//   - after max_rounds, any still-missing indices raise StateError naming
//     the count. A merged result is checked by dse::merge_sweep_shards for
//     exact coverage, so the table the caller gets is byte-identical to a
//     single-process sweep.
//
// Failpoints `fleet.coordinator.scatter` / `fleet.coordinator.gather`
// inject coordinator-side connection failures; the round loop must contain
// them exactly like real worker deaths.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "dse/sweep.hpp"

namespace dsml::fleet {

struct Endpoint {
  std::string host;
  std::uint16_t port = 0;

  /// "host:port" — the node name used on the hash ring and in records.
  std::string label() const;
};

/// Parses "host:port". Throws InvalidArgument on a malformed spec.
Endpoint parse_endpoint(const std::string& spec);

struct CoordinatorOptions {
  std::uint32_t connect_timeout_ms = 2000;   ///< per connection attempt
  std::uint32_t ping_timeout_ms = 2000;      ///< health-check I/O deadline
  std::uint32_t request_timeout_ms = 120000; ///< shard I/O deadline
  std::size_t max_rounds = 3;                ///< assignment attempts
  std::size_t ring_replicas = 64;            ///< hash-ring virtual nodes
  dse::SweepOptions sweep;
};

struct FleetSweepResult {
  dse::SweepResult sweep;                ///< complete merged table
  std::vector<FailureRecord> failures;   ///< every tolerated worker failure
  std::vector<std::string> evicted;      ///< endpoints evicted in some round
  std::size_t rounds = 0;                ///< assignment rounds used
  std::size_t workers_used = 0;          ///< workers that returned a shard
};

struct GatherResult {
  std::vector<dse::SweepShard> shards;   ///< exact coverage of the request
  std::vector<FailureRecord> failures;   ///< every tolerated worker failure
  std::vector<std::string> evicted;      ///< endpoints evicted in some round
  std::size_t rounds = 0;                ///< assignment rounds used
  std::size_t workers_used = 0;          ///< workers that returned a shard
};

/// The fault-tolerant scatter/gather round loop over an arbitrary index set
/// (strictly ascending, in-range): re-ping every endpoint each round,
/// partition the still-missing indices over the survivors by consistent
/// hash, scatter, gather, evict failures. coordinator_sweep and the
/// campaign-facing FleetEvaluator are both thin wrappers over this. Throws
/// InvalidArgument on an empty worker list or malformed index set,
/// StateError when coverage cannot be completed within max_rounds.
GatherResult coordinator_gather(const std::string& app,
                                const std::vector<Endpoint>& workers,
                                const CoordinatorOptions& options,
                                const std::vector<std::size_t>& indices);

/// Runs the full design-space sweep for `app` across `workers`. Throws
/// InvalidArgument on an empty worker list, StateError when coverage cannot
/// be completed within max_rounds (e.g. every worker dead).
FleetSweepResult coordinator_sweep(const std::string& app,
                                   const std::vector<Endpoint>& workers,
                                   const CoordinatorOptions& options);

/// One worker's outcome of a model push.
struct PushOutcome {
  std::string endpoint;
  std::uint64_t version = 0;  ///< 0 when the push failed
};

struct PushResult {
  std::vector<PushOutcome> outcomes;
  std::vector<FailureRecord> failures;
};

/// Ships a registry snapshot (ModelRegistry::serialize_entry) to every
/// worker; each applies it via the atomic registry swap. Per-worker
/// failures are recorded, not fatal — the caller decides whether a partial
/// rollout is acceptable.
PushResult push_model_snapshot(const std::string& name,
                               const std::string& snapshot,
                               const std::vector<Endpoint>& workers,
                               const CoordinatorOptions& options);

}  // namespace dsml::fleet
