#include "fleet/worker.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "fleet/protocol.hpp"

namespace dsml::fleet {

namespace {

struct WorkerMetrics {
  metrics::Counter& pings = metrics::counter("fleet.worker.pings");
  metrics::Counter& shards = metrics::counter("fleet.worker.shards");
  metrics::Counter& model_loads =
      metrics::counter("fleet.worker.model_loads");
  metrics::Counter& errors = metrics::counter("fleet.worker.errors");
};

WorkerMetrics& worker_metrics() {
  static WorkerMetrics m;
  return m;
}

}  // namespace

Worker::Worker(engine::ModelRegistry& registry, WorkerOptions options)
    : registry_(registry),
      serve_handler_(registry, options.serve),
      options_(std::move(options)),
      server_(options_.server,
              [this](std::string_view line) { return handle(line); }) {}

void Worker::run() { server_.run(); }

void Worker::request_stop() noexcept { server_.request_stop(); }

WorkerSummary Worker::summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  WorkerSummary out = summary_;
  out.server = server_.summary();
  out.serve = serve_handler_.summary();
  return out;
}

std::string Worker::handle(std::string_view line) {
  if (!is_fleet_request(line)) return serve_handler_.handle(line);
  return handle_fleet(line);
}

std::string Worker::handle_fleet(std::string_view line) {
  json::Writer w(true);
  try {
    const json::Value request = json::Value::parse(line);
    const std::string op = fleet_op(request);
    if (op == "ping") {
      worker_metrics().pings.add();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++summary_.pings;
      }
      w.begin_object().field("ok", true).field("fleet", "pong");
      w.key("models").begin_array();
      for (const std::string& name : registry_.names()) w.value(name);
      w.end_array().end_object();
    } else if (op == "sweep") {
      DSML_FAIL("fleet.worker.sweep");
      if (DSML_FAIL_POISON("fleet.worker.stall")) {
        // Hold the shard in flight: CI kills this process during the stall
        // so the coordinator deterministically sees a mid-sweep death.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(options_.stall_ms));
      }
      const SweepRequest sweep = parse_sweep_request(request);
      trace::Span span([&] { return "fleet.shard " + sweep.app; }, "fleet");
      const dse::SweepShard shard =
          dse::run_sweep_shard(sweep.app, sweep.options, sweep.indices);
      worker_metrics().shards.add();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++summary_.shards;
      }
      w.begin_object().field("ok", true).field("fleet", "shard");
      w.key("cycles").begin_array();
      for (const double c : shard.cycles) w.value(c);
      w.end_array();
      w.field("simpoints", static_cast<std::uint64_t>(shard.simpoint_count));
      w.field("instructions",
              static_cast<std::uint64_t>(shard.simulated_instructions));
      w.end_object();
    } else if (op == "load_model") {
      const std::string name = request.at("name").as_string();
      const std::uint64_t version = registry_.register_snapshot(
          name, decode_hex(request.at("blob").as_string()), "fleet");
      worker_metrics().model_loads.add();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        ++summary_.model_loads;
      }
      w.begin_object().field("ok", true).field("fleet", "model_loaded");
      w.field("name", name).field("version", version).end_object();
    } else if (op == "shutdown") {
      server_.request_stop();
      w.begin_object().field("ok", true).field("fleet", "bye").end_object();
    } else {
      throw InvalidArgument("fleet: unknown operation '" + op + "'");
    }
  } catch (const std::exception& e) {
    worker_metrics().errors.add();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ++summary_.errors;
    }
    json::Writer err(true);
    err.begin_object().field("ok", false).field("fleet", "error");
    err.field("error_type", error_kind(e)).field("error", e.what());
    err.end_object();
    return err.str();  // Writer::str() is already newline-terminated
  }
  return w.str();
}

}  // namespace dsml::fleet
