// Consistent hashing for shard placement.
//
// The coordinator partitions the 4608-configuration design space across
// workers by hashing each configuration index onto a ring of virtual nodes
// (`replicas` points per worker, FNV-1a). The property that matters for
// fault tolerance: when a worker is evicted, only the keys it owned move —
// every surviving worker keeps its shard, so a retry round re-simulates just
// the dead worker's slice instead of restarting the sweep. Placement is a
// pure function of the node names and replica count, so coordinator and
// tests agree on who owns what without any negotiation.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace dsml::fleet {

class HashRing {
 public:
  /// `replicas` virtual nodes per real node; more replicas → smoother
  /// balance, linearly more ring memory. Throws InvalidArgument on 0.
  explicit HashRing(std::size_t replicas = 64);

  /// Adds a node (idempotent).
  void add(const std::string& node);

  /// Removes a node (idempotent). Keys owned by other nodes do not move.
  void erase(const std::string& node);

  bool empty() const noexcept { return nodes_.empty(); }
  std::size_t size() const noexcept { return nodes_.size(); }

  /// Member nodes, sorted.
  std::vector<std::string> nodes() const;

  /// The node owning `key` (first ring point clockwise from hash(key)).
  /// Throws StateError on an empty ring.
  const std::string& owner(std::uint64_t key) const;

  /// Partitions keys [0, n) across the current nodes: one entry per node
  /// that owns at least one key, indices sorted ascending. Throws StateError
  /// on an empty ring.
  std::map<std::string, std::vector<std::size_t>> partition(
      std::size_t n) const;

 private:
  std::size_t replicas_;
  std::map<std::uint64_t, std::string> ring_;  ///< ring point → node
  std::set<std::string> nodes_;
};

}  // namespace dsml::fleet
