#include "fleet/protocol.hpp"

#include "common/error.hpp"

namespace dsml::fleet {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

std::size_t number_as_size(const json::Value& v, const char* what) {
  const double d = v.as_number();
  if (d < 0 || d != static_cast<double>(static_cast<std::uint64_t>(d))) {
    throw IoError(std::string("fleet: field '") + what +
                  "' is not a non-negative integer");
  }
  return static_cast<std::size_t>(d);
}

/// Re-raises a remote failure as the taxonomy type it was on the worker, so
/// coordinator-side handling (error_kind, FailureRecords, retry policy) is
/// identical for local and remote errors.
[[noreturn]] void throw_taxonomy(const std::string& type,
                                 const std::string& message) {
  if (type == "InvalidArgument") throw InvalidArgument(message);
  if (type == "StateError") throw StateError(message);
  if (type == "NumericalError") throw NumericalError(message);
  if (type == "TrainingError") throw TrainingError("", "", message);
  throw IoError(message);
}

}  // namespace

bool is_fleet_request(std::string_view line) {
  // Transport-level sniff, deliberately cheap: every fleet encoder puts
  // "fleet" first, and the serve protocol has no "fleet" key at all, so a
  // substring test cannot misroute well-formed traffic either way.
  return line.find("\"fleet\"") != std::string_view::npos;
}

/// Writer::str() newline-terminates; requests travel through
/// LineClient::send_line, which frames the line itself.
std::string as_request_line(const json::Writer& w) {
  std::string line = w.str();
  line.pop_back();
  return line;
}

std::string encode_ping() {
  json::Writer w(true);
  w.begin_object().field("fleet", "ping").end_object();
  return as_request_line(w);
}

std::string encode_sweep_request(const SweepRequest& request) {
  json::Writer w(true);
  w.begin_object();
  w.field("fleet", "sweep");
  w.field("app", request.app);
  w.key("options").begin_object();
  w.field("full_trace_instructions",
          static_cast<std::uint64_t>(request.options.full_trace_instructions));
  w.field("interval_instructions",
          static_cast<std::uint64_t>(request.options.interval_instructions));
  w.field("max_clusters",
          static_cast<std::uint64_t>(request.options.max_clusters));
  w.field("trace_seed", request.options.trace_seed);
  // cache_dir is deliberately not shipped: it names a path on the
  // *coordinator's* filesystem. Workers resolve their own cache directory.
  w.field("use_cache", request.options.use_cache);
  w.end_object();
  w.key("indices").begin_array();
  for (const std::size_t idx : request.indices) {
    w.value(static_cast<std::uint64_t>(idx));
  }
  w.end_array();
  w.end_object();
  return as_request_line(w);
}

std::string encode_load_model(const std::string& name,
                              std::string_view snapshot) {
  json::Writer w(true);
  w.begin_object();
  w.field("fleet", "load_model");
  w.field("name", name);
  w.field("blob", encode_hex(snapshot));
  w.end_object();
  return as_request_line(w);
}

std::string encode_shutdown() {
  json::Writer w(true);
  w.begin_object().field("fleet", "shutdown").end_object();
  return as_request_line(w);
}

std::string fleet_op(const json::Value& request) {
  if (!request.contains("fleet")) return "";
  return request.at("fleet").as_string();
}

SweepRequest parse_sweep_request(const json::Value& request) {
  SweepRequest out;
  out.app = request.at("app").as_string();
  const json::Value& options = request.at("options");
  out.options.full_trace_instructions = number_as_size(
      options.at("full_trace_instructions"), "full_trace_instructions");
  out.options.interval_instructions = number_as_size(
      options.at("interval_instructions"), "interval_instructions");
  out.options.max_clusters =
      number_as_size(options.at("max_clusters"), "max_clusters");
  out.options.trace_seed = number_as_size(options.at("trace_seed"),
                                          "trace_seed");
  out.options.use_cache = options.at("use_cache").as_bool();
  const std::vector<json::Value>& indices = request.at("indices").items();
  out.indices.reserve(indices.size());
  for (const json::Value& v : indices) {
    out.indices.push_back(number_as_size(v, "indices"));
  }
  return out;
}

json::Value parse_response(std::string_view line, std::string_view expect_op) {
  const json::Value response = json::Value::parse(line);
  if (!response.at("ok").as_bool()) {
    const std::string type = response.contains("error_type")
                                 ? response.at("error_type").as_string()
                                 : "IoError";
    const std::string message = response.contains("error")
                                    ? response.at("error").as_string()
                                    : "unspecified remote error";
    throw_taxonomy(type, message);
  }
  const std::string op = fleet_op(response);
  if (op != expect_op) {
    throw IoError("fleet: expected a '" + std::string(expect_op) +
                  "' response, got '" + op + "'");
  }
  return response;
}

ShardResponse parse_shard_response(const json::Value& response) {
  ShardResponse out;
  const std::vector<json::Value>& cycles = response.at("cycles").items();
  out.cycles.reserve(cycles.size());
  for (const json::Value& v : cycles) out.cycles.push_back(v.as_number());
  out.simpoint_count =
      number_as_size(response.at("simpoints"), "simpoints");
  out.simulated_instructions =
      number_as_size(response.at("instructions"), "instructions");
  return out;
}

std::string encode_hex(std::string_view bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const char c : bytes) {
    const auto b = static_cast<std::uint8_t>(c);
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

std::string decode_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw IoError("fleet: hex payload has odd length " +
                  std::to_string(hex.size()));
  }
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::string out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = nibble(hex[i]);
    const int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw IoError("fleet: non-hex digit in payload at offset " +
                    std::to_string(i));
    }
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

}  // namespace dsml::fleet
