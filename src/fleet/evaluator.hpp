// The fleet-backed campaign Evaluator: dse::Campaign asks for an index set,
// FleetEvaluator answers it via coordinator_gather — the same fault-tolerant
// scatter/gather round loop the full fleet sweep uses, with the same
// eviction, re-ping, and bounded-retry semantics. Lives in the fleet layer
// (which sits above dse) so the campaign engine itself never takes a
// dependency on networking; tools/cli.cpp wires the two together.
#pragma once

#include <string>
#include <vector>

#include "dse/campaign.hpp"
#include "fleet/coordinator.hpp"

namespace dsml::fleet {

class FleetEvaluator final : public dse::Evaluator {
 public:
  FleetEvaluator(std::string app, std::vector<Endpoint> workers,
                 CoordinatorOptions options);

  std::string name() const override { return "fleet"; }

  /// Scatters `indices` across the healthy workers and merges the gathered
  /// shards into one response aligned to the request. Worker failures are
  /// tolerated (evicted + reassigned) up to max_rounds; an incomplete gather
  /// throws StateError, which the campaign records and retries once.
  dse::SweepShard evaluate(const std::vector<std::size_t>& indices) override;

  /// Worker failures tolerated since the last drain (evictions, timeouts).
  std::vector<FailureRecord> drain_failures() override;

  /// Endpoints evicted in some round, across the whole campaign, dedup'd.
  const std::vector<std::string>& evicted() const { return evicted_; }

 private:
  std::string app_;
  std::vector<Endpoint> workers_;
  CoordinatorOptions options_;
  std::vector<FailureRecord> pending_;
  std::vector<std::string> evicted_;
};

}  // namespace dsml::fleet
