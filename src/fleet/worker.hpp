// Fleet worker: one process's serving + shard-simulation endpoint.
//
// A Worker wraps a net::Server whose handler multiplexes two protocols on
// one port: lines carrying a "fleet" key (protocol.hpp) are answered here —
// health pings, sweep shard assignments, model-snapshot loads, shutdown —
// and every other line is delegated verbatim to the engine's ServeHandler,
// so a worker answers ordinary predict traffic with byte-identical
// responses to `dsml serve --listen`. Model updates arrive as serialized
// registry snapshots and are applied through ModelRegistry::register_snapshot,
// i.e. the same atomic swap local reloads use: in-flight requests finish
// against the version they resolved.
//
// Failure containment mirrors the serve loop: a fleet request that throws is
// answered with {"ok":false,...,"error_type":<taxonomy>} and the loop
// survives — the only way a worker stops is request_stop(), a shutdown
// request, or the process dying (which the coordinator observes as EOF and
// the supervisor as a waitpid).
//
// Failpoints: `fleet.worker.sweep` fails a shard request (the coordinator
// must retry elsewhere); `fleet.worker.stall` delays a shard answer by
// `stall_ms` — CI uses it to hold a shard in flight so a kill -9 lands
// mid-sweep deterministically.
#pragma once

#include <cstdint>
#include <mutex>

#include "engine/registry.hpp"
#include "engine/serve.hpp"
#include "net/server.hpp"

namespace dsml::fleet {

struct WorkerOptions {
  net::ServerOptions server;     ///< bind/port/adopted_fd/idle timeout/...
  engine::ServeOptions serve;    ///< delegated serve-protocol tuning

  /// How long `fleet.worker.stall` delays a shard answer when it fires
  /// (default one poll-loop-friendly 100ms; CI raises it to seconds).
  std::uint32_t stall_ms = 100;
};

struct WorkerSummary {
  std::uint64_t pings = 0;        ///< health checks answered
  std::uint64_t shards = 0;       ///< sweep shards simulated
  std::uint64_t model_loads = 0;  ///< snapshots applied
  std::uint64_t errors = 0;       ///< fleet requests answered ok:false
  net::ServerSummary server;
  engine::ServeSummary serve;
};

class Worker {
 public:
  /// Binds (or adopts) the listen socket immediately; port() is valid
  /// before run(). `registry` must outlive the worker.
  Worker(engine::ModelRegistry& registry, WorkerOptions options);

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  std::uint16_t port() const { return server_.port(); }

  /// Runs the event loop until request_stop() or a shutdown request.
  void run();

  /// Stops run() from any thread or signal handler.
  void request_stop() noexcept;

  WorkerSummary summary() const;

 private:
  std::string handle(std::string_view line);
  std::string handle_fleet(std::string_view line);

  engine::ModelRegistry& registry_;
  engine::ServeHandler serve_handler_;
  WorkerOptions options_;
  net::Server server_;

  mutable std::mutex mutex_;
  WorkerSummary summary_;
};

}  // namespace dsml::fleet
