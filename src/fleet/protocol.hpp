// Fleet wire protocol: the coordinator↔worker request/response vocabulary.
//
// Fleet messages ride the same newline-delimited JSON transport as the
// serve protocol — one compact JSON document per line — and are
// distinguished by a "fleet" key naming the operation, so a worker can
// multiplex fleet control traffic and ordinary serve requests on one port:
//
//   → {"fleet":"ping"}
//   ← {"ok":true,"fleet":"pong","models":["gcc"]}
//
//   → {"fleet":"sweep","app":"gcc","indices":[0,5,...],"options":{...}}
//   ← {"ok":true,"fleet":"shard","cycles":[...],"simpoints":4,
//      "instructions":32768}
//
//   → {"fleet":"load_model","name":"gcc","blob":"<hex>"}
//   ← {"ok":true,"fleet":"model_loaded","name":"gcc","version":2}
//
//   → {"fleet":"shutdown"}
//   ← {"ok":true,"fleet":"bye"}
//
// Failures answer {"ok":false,"fleet":"error","error_type":<taxonomy>,
// "error":<message>} so the coordinator can fold them straight into
// FailureRecords. Registry snapshots are hex-encoded: the serial text format
// contains newlines, which would split a JSON-lines frame.
//
// Encode/parse for *both* directions lives here so the coordinator, the
// worker, and the tests speak from one definition; a field renamed in only
// one place becomes a unit-test failure, not a hung fleet.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "dse/sweep.hpp"

namespace dsml::fleet {

/// A sweep shard assignment: which app, under which options, which indices.
struct SweepRequest {
  std::string app;
  dse::SweepOptions options;
  std::vector<std::size_t> indices;
};

/// A worker's answer to a sweep request; cycles align with the request's
/// index order.
struct ShardResponse {
  std::vector<double> cycles;
  std::size_t simpoint_count = 0;
  std::size_t simulated_instructions = 0;
};

/// Cheap transport-level test: does this line carry a fleet operation?
/// (Non-fleet lines are delegated to the serve handler unparsed.)
bool is_fleet_request(std::string_view line);

std::string encode_ping();
std::string encode_sweep_request(const SweepRequest& request);
std::string encode_load_model(const std::string& name,
                              std::string_view snapshot);
std::string encode_shutdown();

/// The "fleet" operation name of a parsed request ("" when absent).
std::string fleet_op(const json::Value& request);

/// Decodes a {"fleet":"sweep",...} document. Throws IoError on missing or
/// ill-typed fields.
SweepRequest parse_sweep_request(const json::Value& request);

/// Decodes a worker response line. ok:false responses throw the error back
/// as the taxonomy type named by "error_type" — the coordinator handles a
/// remote failure exactly like a local one. Requires the response's "fleet"
/// field to equal `expect_op`.
json::Value parse_response(std::string_view line, std::string_view expect_op);

/// Decodes the payload of an already-validated {"fleet":"shard"} response.
ShardResponse parse_shard_response(const json::Value& response);

/// Lower-case hex codec for binary-unsafe payloads (registry snapshots).
/// decode throws IoError on odd length or non-hex digits.
std::string encode_hex(std::string_view bytes);
std::string decode_hex(std::string_view hex);

}  // namespace dsml::fleet
