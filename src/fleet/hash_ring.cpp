#include "fleet/hash_ring.hpp"

#include <string_view>

#include "common/error.hpp"

namespace dsml::fleet {

namespace {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t fnv1a_u64(std::uint64_t v) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t shift = 0; shift < 64; shift += 8) {
    h ^= (v >> shift) & 0xFF;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

HashRing::HashRing(std::size_t replicas) : replicas_(replicas) {
  DSML_REQUIRE(replicas_ > 0, "HashRing: replicas must be positive");
}

void HashRing::add(const std::string& node) {
  DSML_REQUIRE(!node.empty(), "HashRing: empty node name");
  if (!nodes_.insert(node).second) return;
  for (std::size_t r = 0; r < replicas_; ++r) {
    const std::uint64_t point = fnv1a(node + "#" + std::to_string(r));
    // Two virtual nodes can collide on a ring point; resolve by smaller
    // name so ownership is a function of the member set, not of the order
    // nodes were added in.
    auto [it, inserted] = ring_.emplace(point, node);
    if (!inserted && node < it->second) it->second = node;
  }
}

void HashRing::erase(const std::string& node) {
  if (nodes_.erase(node) == 0) return;
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == node) {
      // Re-derive the point's owner among remaining nodes in case this
      // point was a collision we won earlier.
      const std::uint64_t point = it->first;
      it = ring_.erase(it);
      for (const std::string& other : nodes_) {
        for (std::size_t r = 0; r < replicas_; ++r) {
          if (fnv1a(other + "#" + std::to_string(r)) == point) {
            auto [rit, inserted] = ring_.emplace(point, other);
            if (!inserted && other < rit->second) rit->second = other;
          }
        }
      }
    } else {
      ++it;
    }
  }
}

std::vector<std::string> HashRing::nodes() const {
  return std::vector<std::string>(nodes_.begin(), nodes_.end());
}

const std::string& HashRing::owner(std::uint64_t key) const {
  if (ring_.empty()) {
    throw StateError("HashRing: no nodes to own key " + std::to_string(key));
  }
  auto it = ring_.lower_bound(fnv1a_u64(key));
  if (it == ring_.end()) it = ring_.begin();  // wrap around
  return it->second;
}

std::map<std::string, std::vector<std::size_t>> HashRing::partition(
    std::size_t n) const {
  std::map<std::string, std::vector<std::size_t>> shards;
  for (std::size_t i = 0; i < n; ++i) {
    shards[owner(i)].push_back(i);
  }
  return shards;
}

}  // namespace dsml::fleet
