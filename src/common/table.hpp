// ASCII table formatting for benchmark/experiment reports.
//
// The benches print the same rows and series the paper's tables and figures
// report; TablePrinter keeps that output aligned and copy-pasteable.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dsml {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds a row; width must match the header.
  void add_row(std::vector<std::string> row);

  /// Convenience: format doubles to a fixed number of decimals.
  void add_row_numeric(const std::string& label,
                       const std::vector<double>& values, int digits = 2);

  std::string str() const;
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dsml
