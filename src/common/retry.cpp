#include "common/retry.hpp"

#include "common/metrics.hpp"

namespace dsml::retry_detail {

void count_attempt() noexcept {
  static metrics::Counter& c = metrics::counter("retry.attempts");
  c.add();
}

void count_recovered() noexcept {
  static metrics::Counter& c = metrics::counter("retry.recovered");
  c.add();
}

void count_exhausted() noexcept {
  static metrics::Counter& c = metrics::counter("retry.exhausted");
  c.add();
}

}  // namespace dsml::retry_detail
