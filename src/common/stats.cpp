#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "common/error.hpp"

namespace dsml::stats {

double mean(std::span<const double> xs) {
  DSML_REQUIRE(!xs.empty(), "mean: empty range");
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  DSML_REQUIRE(xs.size() >= 2, "variance: need at least two elements");
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return ss / static_cast<double>(xs.size() - 1);
}

double population_variance(std::span<const double> xs) {
  DSML_REQUIRE(!xs.empty(), "population_variance: empty range");
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return ss / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double geometric_mean(std::span<const double> xs) {
  DSML_REQUIRE(!xs.empty(), "geometric_mean: empty range");
  double log_sum = 0.0;
  for (double x : xs) {
    DSML_REQUIRE(x > 0.0, "geometric_mean: non-positive element");
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double min(std::span<const double> xs) {
  DSML_REQUIRE(!xs.empty(), "min: empty range");
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  DSML_REQUIRE(!xs.empty(), "max: empty range");
  return *std::max_element(xs.begin(), xs.end());
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  DSML_REQUIRE(!xs.empty(), "percentile: empty range");
  DSML_REQUIRE(p >= 0.0 && p <= 100.0, "percentile: p outside [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  DSML_REQUIRE(xs.size() == ys.size() && xs.size() >= 2,
               "pearson: ranges must be equal length >= 2");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double variation(std::span<const double> xs) {
  const double m = mean(xs);
  DSML_REQUIRE(m != 0.0, "variation: zero mean");
  return stddev(xs) / std::abs(m);
}

double range_ratio(std::span<const double> xs) {
  const double lo = min(xs);
  DSML_REQUIRE(lo > 0.0, "range_ratio: non-positive minimum");
  return max(xs) / lo;
}

// ---------------------------------------------------------------------------
// Special functions
// ---------------------------------------------------------------------------

double log_gamma(double x) {
#if defined(__GLIBC__) || defined(__APPLE__)
  // std::lgamma writes the global `signgam`, which is a data race when CDFs
  // run on pool workers concurrently. lgamma_r computes the same value but
  // reports the sign through the out-parameter instead.
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

namespace {

// Continued fraction for the incomplete beta function (Lentz's algorithm).
double beta_cf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3.0e-14;
  constexpr double kFpMin = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < kEps) return h;
  }
  throw NumericalError("incomplete_beta: continued fraction did not converge");
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  DSML_REQUIRE(a > 0.0 && b > 0.0, "incomplete_beta: a,b must be positive");
  DSML_REQUIRE(x >= 0.0 && x <= 1.0, "incomplete_beta: x outside [0,1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

double incomplete_gamma_p(double a, double x) {
  DSML_REQUIRE(a > 0.0, "incomplete_gamma_p: a must be positive");
  DSML_REQUIRE(x >= 0.0, "incomplete_gamma_p: x must be non-negative");
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) {
    // Series representation.
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int n = 0; n < 500; ++n) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::abs(del) < std::abs(sum) * 3.0e-14) {
        return sum * std::exp(-x + a * std::log(x) - log_gamma(a));
      }
    }
    throw NumericalError("incomplete_gamma_p: series did not converge");
  }
  // Continued fraction for Q(a,x), then P = 1 - Q.
  constexpr double kFpMin = 1.0e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < 3.0e-14) {
      const double q = std::exp(-x + a * std::log(x) - log_gamma(a)) * h;
      return 1.0 - q;
    }
  }
  throw NumericalError("incomplete_gamma_p: continued fraction diverged");
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double normal_quantile(double p) {
  DSML_REQUIRE(p > 0.0 && p < 1.0, "normal_quantile: p outside (0,1)");
  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step using the true CDF.
  const double e = normal_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * std::numbers::pi) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double student_t_cdf(double t, double nu) {
  DSML_REQUIRE(nu > 0.0, "student_t_cdf: nu must be positive");
  const double x = nu / (nu + t * t);
  const double tail = 0.5 * incomplete_beta(nu / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

double t_test_p_value(double t, double nu) {
  const double x = nu / (nu + t * t);
  return incomplete_beta(nu / 2.0, 0.5, x);
}

double f_cdf(double f, double d1, double d2) {
  DSML_REQUIRE(d1 > 0.0 && d2 > 0.0, "f_cdf: dof must be positive");
  if (f <= 0.0) return 0.0;
  const double x = d1 * f / (d1 * f + d2);
  return incomplete_beta(d1 / 2.0, d2 / 2.0, x);
}

double f_test_p_value(double f, double d1, double d2) {
  return 1.0 - f_cdf(f, d1, d2);
}

double chi_squared_cdf(double x, double k) {
  DSML_REQUIRE(k > 0.0, "chi_squared_cdf: k must be positive");
  if (x <= 0.0) return 0.0;
  return incomplete_gamma_p(k / 2.0, x / 2.0);
}

// ---------------------------------------------------------------------------
// RunningStats
// ---------------------------------------------------------------------------

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_);
  const auto m = static_cast<double>(other.n_);
  mean_ += delta * m / (n + m);
  m2_ += other.m2_ + delta * delta * n * m / (n + m);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace dsml::stats
