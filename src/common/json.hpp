// Minimal JSON support: a streaming writer and a small recursive-descent
// parser.
//
// The perf-bench harness (`dsml bench --json`) emits machine-readable
// BENCH_ML.json artifacts and re-reads committed ones to gate on error
// drift, so we need both directions but only for plain data: objects,
// arrays, numbers, strings, booleans, null. No external dependency is worth
// that little surface.
//
// Writer output is deterministic (insertion order, fixed indentation,
// round-trippable '%.17g' numbers). JSON has no NaN/Inf literal, so
// non-finite doubles are emitted as the string sentinels "NaN", "Infinity",
// and "-Infinity", which the Parser maps back to number values — a
// non-finite bench entry round-trips as a (non-finite) number instead of
// silently becoming null. Those three strings are therefore reserved as
// values; writing them via value(std::string_view) round-trips as numbers.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace dsml::json {

/// A parsed JSON document node. Objects preserve key order.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }

  /// Typed accessors; throw IoError when the node has a different type.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Value>& items() const;

  /// Object field lookup. `contains` is type-safe on non-objects (false);
  /// `at` throws IoError when the key (or object-ness) is missing.
  bool contains(const std::string& key) const noexcept;
  const Value& at(const std::string& key) const;
  const std::vector<std::pair<std::string, Value>>& fields() const;

  /// Parses a complete document; trailing non-whitespace is an error.
  /// Throws IoError with position context on malformed input.
  static Value parse(std::string_view text);

  /// Reads and parses a file; throws IoError if unreadable.
  static Value parse_file(const std::string& path);

 private:
  friend class Parser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::vector<std::pair<std::string, Value>> object_;
};

/// Streaming JSON writer with automatic comma placement and two-space
/// indentation. Usage errors (value without key inside an object, unbalanced
/// end_*) throw StateError.
class Writer {
 public:
  /// Pretty (indented) output by default; `Writer(true)` emits the document
  /// on a single line — what JSON-lines protocols (`dsml serve`) need, since
  /// a newline inside a response would split it into two protocol lines.
  Writer() = default;
  explicit Writer(bool compact) : compact_(compact) {}

  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();
  Writer& key(std::string_view k);
  Writer& value(double v);
  Writer& value(std::int64_t v);
  Writer& value(std::uint64_t v);
  Writer& value(int v) { return value(static_cast<std::int64_t>(v)); }
  Writer& value(bool v);
  Writer& value(std::string_view v);
  Writer& value(const char* v) { return value(std::string_view(v)); }
  Writer& null();

  /// Shorthand for key(k) followed by value(v).
  template <typename T>
  Writer& field(std::string_view k, T v) {
    key(k);
    return value(v);
  }

  /// The finished document; throws StateError if containers are still open.
  std::string str() const;

 private:
  enum class Frame { kObject, kArray };

  void before_value();
  void indent();

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;
  bool compact_ = false;
  bool key_pending_ = false;
  bool done_ = false;
};

/// Round-trippable formatting for a JSON number: '%.17g' for finite values,
/// the quoted string sentinels "NaN"/"Infinity"/"-Infinity" otherwise (the
/// Parser maps these back to numbers). Exposed for tests.
std::string format_number(double v);

}  // namespace dsml::json
