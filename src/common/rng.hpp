// Deterministic, fast pseudo-random number generation.
//
// Every stochastic component in the library (samplers, weight initialisation,
// synthetic workload/dataset generation) draws from dsml::Rng so experiments
// are reproducible bit-for-bit from a seed. We implement xoshiro256++
// (Blackman & Vigna) seeded via splitmix64; it is much faster than
// std::mt19937_64, has a 2^256-1 period, and passes BigCrush.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>
#include <vector>

#include "common/error.hpp"

namespace dsml {

/// splitmix64 step — used to expand a single 64-bit seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator. Satisfies UniformRandomBitGenerator so it can be
/// used with <random> distributions, though the member helpers below are the
/// preferred interface.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
    has_cached_gaussian_ = false;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result =
        rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Uses Lemire's unbiased bounded rejection.
  std::uint64_t below(std::uint64_t n) noexcept {
    DSML_ASSERT(n > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    DSML_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli draw.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box–Muller with caching of the second deviate.
  double gaussian() noexcept {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1 = uniform();
    // Avoid log(0).
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_gaussian_ = r * std::sin(theta);
    has_cached_gaussian_ = true;
    return r * std::cos(theta);
  }

  /// Normal with given mean and standard deviation.
  double gaussian(double mean, double stddev) noexcept {
    return mean + stddev * gaussian();
  }

  /// Log-normal draw parameterised by the underlying normal.
  double lognormal(double mu, double sigma) noexcept {
    return std::exp(gaussian(mu, sigma));
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n) (Fisher–Yates over an index pool).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k) {
    DSML_REQUIRE(k <= n, "sample_without_replacement: k > n");
    std::vector<std::size_t> pool(n);
    for (std::size_t i = 0; i < n; ++i) pool[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t j =
          i + static_cast<std::size_t>(below(n - i));
      using std::swap;
      swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
  }

  /// Draw an index according to non-negative weights (linear scan; fine for
  /// the small categorical alphabets used in workload synthesis).
  std::size_t weighted(const std::vector<double>& weights) noexcept {
    double total = 0.0;
    for (double w : weights) total += w;
    DSML_ASSERT(total > 0.0);
    double x = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
      x -= weights[i];
      if (x <= 0.0) return i;
    }
    return weights.size() - 1;
  }

  /// Derive an independent child stream (for per-task determinism under
  /// parallel execution).
  Rng split(std::uint64_t stream_id) noexcept {
    std::uint64_t s = (*this)() ^ (0x9e3779b97f4a7c15ULL * (stream_id + 1));
    return Rng(s);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace dsml
