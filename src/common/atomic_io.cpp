#include "common/atomic_io.hpp"

#include <fstream>
#include <string>
#include <system_error>

#include "common/error.hpp"
#include "common/failpoint.hpp"

namespace dsml::io {

void write_file_atomic(const std::filesystem::path& path,
                       std::string_view content) {
  namespace fs = std::filesystem;
  const fs::path parent = path.parent_path();
  if (!parent.empty()) fs::create_directories(parent);

  // Unique per destination, not per process: concurrent writers of the same
  // artifact are already a logic error, and a stable name means a crashed
  // run's leftover temp is overwritten by the next successful one.
  fs::path tmp = path;
  tmp += ".tmp";

  try {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw IoError("cannot open temp file for writing: " + tmp.string());
    }
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    DSML_FAIL("atomic_io.write");
    out.flush();
    if (!out) throw IoError("failed writing temp file: " + tmp.string());
  } catch (...) {
    std::error_code ignored;
    fs::remove(tmp, ignored);
    throw;
  }

  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    std::error_code ignored;
    fs::remove(tmp, ignored);
    throw IoError("failed renaming " + tmp.string() + " -> " + path.string() +
                  ": " + ec.message());
  }
}

}  // namespace dsml::io
