// Crash-safe artifact writes.
//
// Model files and benchmark baselines are consumed by later runs; a process
// killed mid-write must never leave a truncated artifact that parses as
// garbage. write_file_atomic stages the content in a temp file *in the
// destination directory* (rename() is only atomic within a filesystem) and
// renames it over the target, so readers observe either the old file or the
// complete new one.
#pragma once

#include <filesystem>
#include <string_view>

namespace dsml::io {

/// Writes `content` to `path` atomically: temp file + flush + rename.
/// Creates parent directories as needed. Throws IoError on any failure,
/// removing the temp file first.
void write_file_atomic(const std::filesystem::path& path,
                       std::string_view content);

}  // namespace dsml::io
