// Deterministic fault injection: named failpoints that library code declares
// with DSML_FAIL("name") and that tests/operators arm with a spec string via
// the global `--failpoints <spec>` CLI flag or the DSML_FAILPOINTS env var.
//
// Spec grammar (comma-separated `name=trigger` entries):
//
//   estimate_error.fold=nth:2          fire on exactly the 2nd hit
//   linreg.solve=prob:0.1@42           fire each hit with p=0.1, derived
//                                      deterministically from seed 42 and the
//                                      hit index (no global RNG is consumed)
//   serialize.save=err:IoError         fire on every hit, throwing the named
//                                      taxonomy type (NumericalError, IoError,
//                                      InvalidArgument, StateError,
//                                      TrainingError)
//
// nth/prob triggers throw NumericalError by default. A firing failpoint
// throws out of DSML_FAIL; the boolean form DSML_FAIL_POISON only *reports*
// the fire so the caller can corrupt its own state (e.g. poison an epoch loss
// to NaN) and exercise a recovery path that is not exception-shaped.
//
// Overhead contract (same discipline as common/trace.hpp, pinned by
// tests/test_fault_injection.cpp): with no spec configured every DSML_FAIL is
// one relaxed atomic load and a branch — no lock, no lookup, no string.
// Model outputs are bit-identical with the layer compiled in, armed-but-not-
// matching, or absent, because hits never consume library RNG streams.
//
// Concurrency: hits may come from any pool worker (the TSan suite fires
// failpoints from concurrent cross-validation folds). Hit accounting is a
// single mutex-guarded registry — firing sites are coarse (folds, candidates,
// solves), so contention is irrelevant and the enabled path is trivially
// TSan-clean. Every hit/fire is mirrored to the metrics registry as
// `failpoint.<name>.hits` / `failpoint.<name>.fires`.
#pragma once

#include <atomic>
#include <string>
#include <vector>

namespace dsml::failpoint {

namespace internal {

/// The one branch the disabled path pays. Relaxed is sufficient: a stale
/// read merely arms/disarms one hit late, never tears data.
extern std::atomic<bool> g_enabled;

/// Records a hit on `name`; throws the configured error if the trigger
/// fires. Unarmed names count a hit and return.
void hit(const char* name);

/// Boolean form: true if the trigger fires (never throws).
bool hit_poison(const char* name);

}  // namespace internal

/// True while at least one failpoint is armed.
inline bool enabled() noexcept {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Replaces the armed set with `spec` (see grammar above); "" disarms
/// everything. Throws InvalidArgument on a malformed spec, leaving the
/// previous configuration in place. Hit counters reset.
void configure(const std::string& spec);

/// Disarms every failpoint.
void clear();

/// Names currently armed, in spec order (diagnostics/tests).
std::vector<std::string> armed();

/// Hits recorded against `name` since it was configured (0 if unarmed).
std::uint64_t hits(const std::string& name);

/// RAII arming: configures on construction, restores the previous spec on
/// destruction. The CLI flag and fault tests use this so configuration never
/// leaks across commands or test cases.
class ScopedFailpoints {
 public:
  explicit ScopedFailpoints(const std::string& spec);
  ~ScopedFailpoints();

  ScopedFailpoints(const ScopedFailpoints&) = delete;
  ScopedFailpoints& operator=(const ScopedFailpoints&) = delete;

 private:
  std::string previous_;
};

}  // namespace dsml::failpoint

/// Declares a failpoint. Disabled cost: one relaxed load + branch.
#define DSML_FAIL(name)                                   \
  do {                                                    \
    if (::dsml::failpoint::enabled()) {                   \
      ::dsml::failpoint::internal::hit(name);             \
    }                                                     \
  } while (false)

/// Boolean failpoint for corrupting state instead of throwing: evaluates to
/// true when the named trigger fires.
#define DSML_FAIL_POISON(name)         \
  (::dsml::failpoint::enabled() &&     \
   ::dsml::failpoint::internal::hit_poison(name))
