#include "common/csv.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "common/metrics.hpp"

namespace dsml::csv {

namespace {

bool needs_quoting(const std::string& s) {
  // '\r' must be quoted too: outside quotes the parser treats it as CRLF
  // line-ending noise, so an unquoted '\r' would not round-trip.
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

std::string quote(const std::string& s) {
  if (!needs_quoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::size_t Table::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw IoError("csv: no column named '" + name + "'");
}

Table parse(const std::string& text) {
  // One pass over the raw text rather than per-line getline: a record ends
  // at a newline *outside quotes*, so fields written by to_string with
  // embedded '\n' (and '\r') round-trip instead of tearing the row apart.
  Table table;
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  bool record_started = false;  // any field content / ',' / '"' seen
  bool first = true;

  const auto end_field = [&] {
    fields.push_back(std::move(field));
    field.clear();
  };
  const auto end_record = [&] {
    end_field();
    if (first) {
      table.header = std::move(fields);
      first = false;
    } else {
      if (fields.size() != table.header.size()) {
        throw IoError("csv: row width " + std::to_string(fields.size()) +
                      " != header width " +
                      std::to_string(table.header.size()));
      }
      table.rows.push_back(std::move(fields));
    }
    fields.clear();
    record_started = false;
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;  // embedded commas, newlines, and '\r' kept verbatim
      }
    } else if (c == '"') {
      in_quotes = true;
      record_started = true;
    } else if (c == ',') {
      end_field();
      record_started = true;
    } else if (c == '\n') {
      if (record_started) end_record();
      // else: blank line (or bare CRLF), skipped as before
    } else if (c == '\r') {
      // CRLF (or stray '\r') outside quotes: line-ending noise, dropped
    } else {
      field += c;
      record_started = true;
    }
  }
  if (in_quotes) throw IoError("csv: unterminated quoted field");
  if (record_started) end_record();  // final record without trailing newline
  if (first) throw IoError("csv: empty input");

  static metrics::Counter& rows_ingested = metrics::counter("io.csv_rows");
  rows_ingested.add(table.rows.size());
  return table;
}

Table read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("csv: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

std::string to_string(const Table& table) {
  std::ostringstream out;
  for (std::size_t i = 0; i < table.header.size(); ++i) {
    if (i > 0) out << ',';
    out << quote(table.header[i]);
  }
  out << '\n';
  for (const auto& row : table.rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << quote(row[i]);
    }
    out << '\n';
  }
  return out.str();
}

void write_file(const std::string& path, const Table& table) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path);
  if (!out) throw IoError("csv: cannot write '" + path + "'");
  out << to_string(table);
}

}  // namespace dsml::csv
