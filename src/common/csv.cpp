#include "common/csv.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace dsml::csv {

namespace {

std::vector<std::string> parse_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\r') {
      // tolerate CRLF
    } else {
      field += c;
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

bool needs_quoting(const std::string& s) {
  return s.find_first_of(",\"\n") != std::string::npos;
}

std::string quote(const std::string& s) {
  if (!needs_quoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::size_t Table::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw IoError("csv: no column named '" + name + "'");
}

Table parse(const std::string& text) {
  Table table;
  std::istringstream in(text);
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto fields = parse_line(line);
    if (first) {
      table.header = std::move(fields);
      first = false;
    } else {
      if (fields.size() != table.header.size()) {
        throw IoError("csv: row width " + std::to_string(fields.size()) +
                      " != header width " +
                      std::to_string(table.header.size()));
      }
      table.rows.push_back(std::move(fields));
    }
  }
  if (first) throw IoError("csv: empty input");
  return table;
}

Table read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw IoError("csv: cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

std::string to_string(const Table& table) {
  std::ostringstream out;
  for (std::size_t i = 0; i < table.header.size(); ++i) {
    if (i > 0) out << ',';
    out << quote(table.header[i]);
  }
  out << '\n';
  for (const auto& row : table.rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out << ',';
      out << quote(row[i]);
    }
    out << '\n';
  }
  return out.str();
}

void write_file(const std::string& path, const Table& table) {
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path);
  if (!out) throw IoError("csv: cannot write '" + path + "'");
  out << to_string(table);
}

}  // namespace dsml::csv
