#include "common/trace.hpp"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"

namespace dsml::trace {

namespace internal {

std::atomic<bool> g_enabled{false};

namespace {

struct Event {
  std::string name;
  const char* category = "";
  char phase = 'X';  // 'X' complete span | 'C' counter
  double ts_us = 0.0;
  double dur_us = 0.0;   // spans only
  double value = 0.0;    // counters only
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;  // spans only
};

/// Small dense per-thread ids (Chrome's tid field) handed out in first-use
/// order; 0 is whichever thread traced first, usually main.
std::atomic<std::uint32_t> g_next_tid{0};

std::uint32_t this_thread_id() noexcept {
  thread_local const std::uint32_t id =
      g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return id;
}

thread_local std::uint32_t tls_depth = 0;

/// Central collector. Guarded by one mutex: spans are coarse (epochs, folds,
/// candidates, subcommands), so contention is negligible, and a single lock
/// keeps the enabled path trivially TSan-clean.
class Tracer {
 public:
  static Tracer& instance() {
    // Leaked on purpose (never destroyed): worker threads may still observe
    // trace::enabled() during static destruction, and a live-but-disabled
    // tracer is safe where a destroyed one is not. The DSML_TRACE flush is
    // handled by the EnvFlush guard below, not a Tracer destructor.
    static Tracer* tracer = new Tracer;  // dsml-lint: allow(naked-new)
    return *tracer;
  }

  void start(std::string path) {
    std::lock_guard lock(mutex_);
    events_.clear();
    path_ = std::move(path);
    origin_ = std::chrono::steady_clock::now();
    g_enabled.store(true, std::memory_order_relaxed);
  }

  std::string stop() {
    std::lock_guard lock(mutex_);
    if (!g_enabled.load(std::memory_order_relaxed)) return "";
    g_enabled.store(false, std::memory_order_relaxed);
    const std::string text = serialize();
    if (!path_.empty()) {
      const std::filesystem::path p(path_);
      if (p.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(p.parent_path(), ec);
      }
      std::ofstream out(path_, std::ios::binary);
      if (!out) throw IoError("trace: cannot write '" + path_ + "'");
      out << text;
    }
    events_.clear();
    path_.clear();
    return text;
  }

  double now_us() const noexcept {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - origin_)
        .count();
  }

  void record(Event&& e) {
    std::lock_guard lock(mutex_);
    // Dropped if stop() won the race: the document is already serialized.
    if (!g_enabled.load(std::memory_order_relaxed)) return;
    events_.push_back(std::move(e));
  }

 private:
  Tracer() : origin_(std::chrono::steady_clock::now()) {}

  /// Chrome trace-event JSON (the "JSON object format" with a traceEvents
  /// array), built with the repo's own writer so tests can re-parse it.
  std::string serialize() const {
    json::Writer w;
    w.begin_object();
    w.field("displayTimeUnit", "ms");
    w.key("traceEvents").begin_array();
    for (const Event& e : events_) {
      w.begin_object();
      w.field("name", e.name);
      w.field("cat", e.category);
      w.field("ph", std::string_view(&e.phase, 1));
      w.field("ts", e.ts_us);
      if (e.phase == 'X') w.field("dur", e.dur_us);
      w.field("pid", 1);
      w.field("tid", static_cast<std::int64_t>(e.tid));
      w.key("args").begin_object();
      if (e.phase == 'X') {
        w.field("depth", static_cast<std::int64_t>(e.depth));
      } else {
        w.field("value", e.value);
      }
      w.end_object();
      w.end_object();
    }
    w.end_array();
    w.end_object();
    return w.str();
  }

  mutable std::mutex mutex_;
  std::vector<Event> events_;
  std::string path_;
  std::chrono::steady_clock::time_point origin_;
};

/// DSML_TRACE=<file> starts collection before main() and flushes the file
/// when the process exits normally.
struct EnvFlush {
  ~EnvFlush() {
    if (armed && enabled()) {
      try {
        Tracer::instance().stop();
      } catch (...) {  // dsml-lint: allow(catch-all-swallow)
        // Exit-path flush: an unwritable path must not terminate the
        // process; the trace is simply lost.
      }
    }
  }
  bool armed = false;
};

EnvFlush g_env_flush = [] {
  EnvFlush flush;
  if (const char* path = std::getenv("DSML_TRACE"); path && *path) {
    Tracer::instance().start(path);
    flush.armed = true;
  }
  return flush;
}();

}  // namespace

double now_us() noexcept { return Tracer::instance().now_us(); }

void record_span(std::string name, const char* category, double start_us,
                 double dur_us, std::uint32_t depth) {
  Event e;
  e.name = std::move(name);
  e.category = category;
  e.phase = 'X';
  e.ts_us = start_us;
  e.dur_us = dur_us;
  e.tid = this_thread_id();
  e.depth = depth;
  Tracer::instance().record(std::move(e));
}

void record_counter(const char* name, double value) {
  Event e;
  e.name = name;
  e.category = "metrics";
  e.phase = 'C';
  e.ts_us = Tracer::instance().now_us();
  e.value = value;
  e.tid = this_thread_id();
  Tracer::instance().record(std::move(e));
}

std::uint32_t current_depth() noexcept { return tls_depth; }
void enter_depth() noexcept { ++tls_depth; }
void leave_depth() noexcept { --tls_depth; }

}  // namespace internal

void start(std::string path) {
  internal::Tracer::instance().start(std::move(path));
}

std::string stop() { return internal::Tracer::instance().stop(); }

}  // namespace dsml::trace
