// Process-wide execution tracing: RAII spans exported as Chrome
// chrome://tracing JSON (load the file via the "Load" button at
// chrome://tracing or at https://ui.perfetto.dev).
//
// The pipeline hot paths (training epochs, cross-validation folds, model
// selection candidates, design-space sweeps, CLI subcommands) open spans so a
// single trace answers "where does the wall-clock go" across threads; the
// thread pool and kernels feed the companion metrics registry
// (common/metrics.hpp) for the aggregate view.
//
// Overhead contract (pinned by tests/test_trace.cpp and the bench drift
// gate): when tracing is disabled — the default — every hook is one relaxed
// atomic load and a branch; no clock is read, no string is built, no lock is
// taken. Model outputs are bit-identical with tracing on or off, because the
// layer only *observes* (spans never branch the computation).
//
// Enabling:
//  - environment: DSML_TRACE=<file> traces the whole process and writes the
//    file at exit (or at an explicit stop()).
//  - programmatic: trace::start(path) ... trace::stop(). The CLI wires this
//    to a global `--trace <file>` flag on every subcommand.
//
// Concurrency: spans may open and close on any thread (the TSan suite traces
// concurrent cross-validation folds). Events carry a small per-thread id and
// the span's nesting depth on its thread.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>

namespace dsml::trace {

namespace internal {

/// The one branch the disabled path pays. Relaxed is sufficient: a stale
/// read merely starts/stops collection one event late, never tears data.
extern std::atomic<bool> g_enabled;

/// Microseconds since the tracer's origin timestamp.
double now_us() noexcept;

/// Records a completed span ('X' event). Takes the collection lock.
void record_span(std::string name, const char* category, double start_us,
                 double dur_us, std::uint32_t depth);

/// Records a counter sample ('C' event). Takes the collection lock.
void record_counter(const char* name, double value);

/// Per-thread state used by Span; exposed for tests.
std::uint32_t current_depth() noexcept;

void enter_depth() noexcept;
void leave_depth() noexcept;

}  // namespace internal

/// True while a trace is being collected.
inline bool enabled() noexcept {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Starts collecting a new trace, discarding any previous events. `path` is
/// where stop() (or process exit) writes the Chrome JSON; pass "" to collect
/// in memory only (tests use this and read the JSON from stop()).
void start(std::string path);

/// Stops collecting, serializes the events to Chrome trace JSON, writes the
/// file configured by start()/DSML_TRACE (if any), and returns the JSON.
/// No-op returning "" when tracing was not started.
std::string stop();

/// RAII span: measures construction→destruction and records a Chrome 'X'
/// (complete) event on the constructing thread. When tracing is disabled the
/// constructor is a relaxed load + branch; the string_view is not copied and
/// no clock is read.
class Span {
 public:
  explicit Span(std::string_view name, const char* category = "dsml") {
    if (!enabled()) return;
    begin(name, category);
  }

  /// Lazy-name overload for dynamic labels: the callable (returning
  /// std::string) runs only when tracing is enabled, so the disabled path
  /// never pays for string building.
  template <typename F, typename = std::enable_if_t<
                            std::is_invocable_r_v<std::string, F>>>
  explicit Span(F&& name_fn, const char* category = "dsml") {
    if (!enabled()) return;
    begin(std::forward<F>(name_fn)(), category);
  }

  ~Span() {
    if (!active_) return;
    internal::leave_depth();
    internal::record_span(std::move(name_), category_, start_us_,
                          internal::now_us() - start_us_, depth_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  void begin(std::string_view name, const char* category) {
    active_ = true;
    name_.assign(name);
    category_ = category;
    depth_ = internal::current_depth();
    internal::enter_depth();
    start_us_ = internal::now_us();
  }

  bool active_ = false;
  std::string name_;
  const char* category_ = "";
  double start_us_ = 0.0;
  std::uint32_t depth_ = 0;
};

/// Records a counter sample (Chrome 'C' event), e.g. per-epoch training
/// loss. One relaxed load + branch when disabled.
inline void counter(const char* name, double value) {
  if (!enabled()) return;
  internal::record_counter(name, value);
}

/// Wall-clock stopwatch for library code that needs elapsed seconds as data
/// (e.g. dse fit_seconds results). Centralising the clock here keeps direct
/// std::chrono timing out of src/ (enforced by dsml-lint's raw-clock-in-lib
/// rule) so all timing flows through one audited site.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(std::chrono::steady_clock::now()) {}

  double seconds() const noexcept {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  void restart() noexcept { start_ = std::chrono::steady_clock::now(); }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dsml::trace
