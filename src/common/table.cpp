#include "common/table.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace dsml {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  DSML_REQUIRE(!header_.empty(), "TablePrinter: empty header");
}

void TablePrinter::add_row(std::vector<std::string> row) {
  DSML_REQUIRE(row.size() == header_.size(),
               "TablePrinter: row width mismatch");
  rows_.push_back(std::move(row));
}

void TablePrinter::add_row_numeric(const std::string& label,
                                   const std::vector<double>& values,
                                   int digits) {
  std::vector<std::string> row;
  row.reserve(values.size() + 1);
  row.push_back(label);
  for (double v : values) row.push_back(strings::format_double(v, digits));
  add_row(std::move(row));
}

std::string TablePrinter::str() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) {
    widths[i] = header_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << (i == 0 ? "| " : " | ");
      out << row[i];
      out << std::string(widths[i] - row[i].size(), ' ');
    }
    out << " |\n";
  };
  auto emit_rule = [&] {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      out << (i == 0 ? "|-" : "-|-");
      out << std::string(widths[i], '-');
    }
    out << "-|\n";
  };
  emit_row(header_);
  emit_rule();
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::print(std::ostream& os) const { os << str(); }

}  // namespace dsml
