// Tiny CSV reader/writer.
//
// Used by the experiment cache (simulation sweeps are minutes of CPU; their
// outputs are persisted as CSV) and by users who want to export datasets.
// Supports quoted fields with embedded commas/quotes per RFC 4180; does not
// support embedded newlines (none of our data needs them).
#pragma once

#include <string>
#include <vector>

namespace dsml::csv {

struct Table {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  std::size_t column_index(const std::string& name) const;  ///< throws IoError if missing
};

/// Parse a CSV string. First line is the header.
Table parse(const std::string& text);

/// Read and parse a CSV file.
Table read_file(const std::string& path);

/// Serialize (quoting fields that need it).
std::string to_string(const Table& table);

/// Write to a file, creating parent directories if needed.
void write_file(const std::string& path, const Table& table);

}  // namespace dsml::csv
