// Tiny CSV reader/writer.
//
// Used by the experiment cache (simulation sweeps are minutes of CPU; their
// outputs are persisted as CSV) and by users who want to export datasets.
// Supports quoted fields with embedded commas, quotes, and newlines per
// RFC 4180: the parser scans the whole text with a quote-aware state machine
// (not line-by-line), so anything to_string writes — including fields
// containing '\n' or '\r' — parses back verbatim. Bare CR/CRLF line endings
// outside quotes are tolerated; '\r' inside quotes is data and preserved.
#pragma once

#include <string>
#include <vector>

namespace dsml::csv {

struct Table {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  std::size_t column_index(const std::string& name) const;  ///< throws IoError if missing
};

/// Parse a CSV string. First line is the header.
Table parse(const std::string& text);

/// Read and parse a CSV file.
Table read_file(const std::string& path);

/// Serialize (quoting fields that need it).
std::string to_string(const Table& table);

/// Write to a file, creating parent directories if needed.
void write_file(const std::string& path, const Table& table);

}  // namespace dsml::csv
