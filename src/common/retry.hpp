// Bounded deterministic retry for recoverable training/solve failures.
//
// The policy is intentionally tiny: `retry(n, reseed, op)` runs `op(attempt)`
// for attempt 0..n-1. Attempt 0 must be the historical code path untouched —
// bit-identity of the no-failure case is part of the library's contract — so
// `reseed(attempt)` is only invoked before attempts >= 1, where the caller
// derives a fresh deterministic RNG seed (and typically damps the step size,
// e.g. NN training halves the learning rate per attempt; LR solves escalate a
// ridge penalty). Only NumericalError and TrainingError are considered
// recoverable; anything else (bad input, I/O) propagates immediately, and the
// last recoverable error is rethrown once attempts are exhausted.
//
// Attempt accounting lands in the metrics registry (`retry.attempts`,
// `retry.recovered`, `retry.exhausted`) via the out-of-line hooks below, so
// fault tests can assert that a retry actually happened.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>

#include "common/error.hpp"

namespace dsml {

namespace retry_detail {
void count_attempt() noexcept;    ///< bumps retry.attempts
void count_recovered() noexcept;  ///< bumps retry.recovered
void count_exhausted() noexcept;  ///< bumps retry.exhausted
}  // namespace retry_detail

/// Runs `op(attempt)` up to `attempts` times (attempt is 0-based), calling
/// `reseed(attempt)` before each retry. Returns op's result. See the policy
/// comment above for what counts as recoverable.
template <typename Reseed, typename Op>
auto retry(std::size_t attempts, Reseed&& reseed, Op&& op) {
  DSML_REQUIRE(attempts >= 1, "retry: need at least one attempt");
  for (std::size_t attempt = 0;; ++attempt) {
    try {
      if (attempt > 0) {
        retry_detail::count_attempt();
        reseed(attempt);
      }
      if constexpr (std::is_void_v<std::invoke_result_t<Op&, std::size_t>>) {
        op(attempt);
        if (attempt > 0) retry_detail::count_recovered();
        return;
      } else {
        auto result = op(attempt);
        if (attempt > 0) retry_detail::count_recovered();
        return result;
      }
    } catch (const std::exception& e) {
      const bool recoverable =
          dynamic_cast<const NumericalError*>(&e) != nullptr ||
          dynamic_cast<const TrainingError*>(&e) != nullptr;
      if (!recoverable) throw;
      if (attempt + 1 >= attempts) {
        retry_detail::count_exhausted();
        throw;
      }
    }
  }
}

}  // namespace dsml
