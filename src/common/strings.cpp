#include "common/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>

#include "common/error.hpp"

namespace dsml::strings {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool is_number(std::string_view s) {
  s = trim(s);
  if (s.empty()) return false;
  double value = 0.0;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  return ec == std::errc() && ptr == end;
}

double parse_double(std::string_view s) {
  const std::string_view t = trim(s);
  double value = 0.0;
  auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), value);
  if (ec != std::errc() || ptr != t.data() + t.size()) {
    throw IoError("parse_double: cannot parse '" + std::string(s) + "'");
  }
  return value;
}

std::uint64_t parse_u64(std::string_view s) {
  const std::string_view t = trim(s);
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), value);
  if (ec != std::errc() || ptr != t.data() + t.size()) {
    throw IoError("parse_u64: cannot parse '" + std::string(s) +
                  "' as a non-negative integer");
  }
  return value;
}

std::string format_double(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

}  // namespace dsml::strings
