// Small string utilities used by CSV parsing and report formatting.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dsml::strings {

/// Split on a delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Strip leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Lower-case ASCII copy.
std::string to_lower(std::string_view s);

/// True if `s` parses fully as a floating-point number.
bool is_number(std::string_view s);

/// Parse a double; throws dsml::IoError with context on failure.
double parse_double(std::string_view s);

/// Parse a non-negative decimal integer; throws dsml::IoError with context
/// on failure (sign, stray characters, overflow). CLI flags route through
/// this instead of bare std::stoull so malformed input surfaces as a
/// taxonomy error, not a raw std::invalid_argument.
std::uint64_t parse_u64(std::string_view s);

/// printf-style float formatting helper (fixed, `digits` decimals).
std::string format_double(double v, int digits);

}  // namespace dsml::strings
