#include "common/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>

#include "common/json.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace dsml::metrics {

namespace {

std::size_t bucket_index(double v) noexcept {
  if (!(v >= 1.0)) return 0;  // negatives and NaN clamp to the first bucket
  const auto n = static_cast<std::uint64_t>(std::min(v, 9.2e18));
  return std::min<std::size_t>(std::bit_width(n), Histogram::kBuckets - 1);
}

void atomic_add(std::atomic<double>& a, double v) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v,
                                  std::memory_order_relaxed)) {
  }
}

/// Name → instrument maps. unique_ptr values keep instrument addresses
/// stable across rehash-free std::map growth (and make the atomics
/// non-movable members a non-issue).
struct Registry {
  std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms;
};

Registry& registry() {
  // Leaked on purpose: pool workers may update instruments during static
  // destruction (e.g. queued tasks draining at exit), and a leaked registry
  // cannot dangle. dsml-lint: allow(naked-new)
  static Registry* r = new Registry;  // dsml-lint: allow(naked-new)
  return *r;
}

template <typename T>
T& find_or_create(std::map<std::string, std::unique_ptr<T>, std::less<>>& map,
                  std::string_view name) {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  auto it = map.find(name);
  if (it == map.end()) {
    it = map.emplace(std::string(name), std::make_unique<T>()).first;
  }
  return *it->second;
}

}  // namespace

void Histogram::observe(double v) noexcept {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, std::isfinite(v) ? v : 0.0);
}

double Histogram::quantile_upper_bound(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(std::clamp(q, 0.0, 1.0) * static_cast<double>(n)));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += bucket(b);
    if (seen >= rank) {
      return b == 0 ? 1.0 : std::ldexp(1.0, static_cast<int>(b));
    }
  }
  return std::ldexp(1.0, static_cast<int>(kBuckets));
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

Counter& counter(std::string_view name) {
  return find_or_create(registry().counters, name);
}

Gauge& gauge(std::string_view name) {
  return find_or_create(registry().gauges, name);
}

Histogram& histogram(std::string_view name) {
  return find_or_create(registry().histograms, name);
}

Snapshot snapshot() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  Snapshot snap;
  for (const auto& [name, c] : reg.counters) {
    snap.counters.push_back({name, c->value()});
  }
  for (const auto& [name, g] : reg.gauges) {
    snap.gauges.push_back({name, g->value()});
  }
  for (const auto& [name, h] : reg.histograms) {
    snap.histograms.push_back({name, h->count(), h->mean(),
                               h->quantile_upper_bound(0.50),
                               h->quantile_upper_bound(0.95)});
  }
  return snap;
}

void reset_all() {
  Registry& reg = registry();
  std::lock_guard lock(reg.mutex);
  for (const auto& [name, c] : reg.counters) c->reset();
  for (const auto& [name, g] : reg.gauges) g->reset();
  for (const auto& [name, h] : reg.histograms) h->reset();
}

void print(std::ostream& out) {
  const Snapshot snap = snapshot();
  out << "metrics registry\n";
  if (snap.empty()) {
    out << "  (no metrics recorded)\n";
    return;
  }
  TablePrinter table({"metric", "type", "value", "detail"});
  for (const auto& c : snap.counters) {
    table.add_row({c.name, "counter", std::to_string(c.value), ""});
  }
  for (const auto& g : snap.gauges) {
    table.add_row({g.name, "gauge", strings::format_double(g.value, 6), ""});
  }
  for (const auto& h : snap.histograms) {
    table.add_row({h.name, "histogram", std::to_string(h.count),
                   "mean " + strings::format_double(h.mean, 2) + ", p50<=" +
                       strings::format_double(h.p50, 0) + ", p95<=" +
                       strings::format_double(h.p95, 0)});
  }
  table.print(out);
}

void write_json(json::Writer& w) {
  const Snapshot snap = snapshot();
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& c : snap.counters) w.field(c.name, c.value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& g : snap.gauges) w.field(g.name, g.value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& h : snap.histograms) {
    w.key(h.name).begin_object();
    w.field("count", h.count);
    w.field("mean", h.mean);
    w.field("p50_upper", h.p50);
    w.field("p95_upper", h.p95);
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace dsml::metrics
