// Descriptive statistics and the statistical distributions needed by the
// regression-inference machinery (partial-F tests for stepwise selection,
// t-statistics for coefficient significance).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace dsml::stats {

/// Arithmetic mean. Requires a non-empty range.
double mean(std::span<const double> xs);

/// Sample variance (divides by n-1). Requires at least two elements.
double variance(std::span<const double> xs);

/// Population variance (divides by n). Requires a non-empty range.
double population_variance(std::span<const double> xs);

/// Sample standard deviation.
double stddev(std::span<const double> xs);

/// Geometric mean; all inputs must be strictly positive. This is the SPEC
/// rating aggregation function.
double geometric_mean(std::span<const double> xs);

/// Minimum / maximum of a non-empty range.
double min(std::span<const double> xs);
double max(std::span<const double> xs);

/// Median (interpolated for even sizes). Copies the input.
double median(std::span<const double> xs);

/// p-th percentile in [0,100] with linear interpolation. Copies the input.
double percentile(std::span<const double> xs, double p);

/// Pearson correlation coefficient of two equal-length ranges.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Coefficient of variation-like "variation" statistic the paper reports for
/// its datasets: stddev / mean.
double variation(std::span<const double> xs);

/// Range ratio the paper reports: max / min (the best configuration is
/// `range_ratio` times better than the worst). All values must be positive.
double range_ratio(std::span<const double> xs);

// ---------------------------------------------------------------------------
// Special functions & distributions
// ---------------------------------------------------------------------------

/// Natural log of the gamma function (wraps std::lgamma; kept here so callers
/// depend on one stats facade).
double log_gamma(double x);

/// Regularized incomplete beta function I_x(a, b), continued-fraction
/// evaluation (Numerical-Recipes-style). Domain: a,b > 0, x in [0,1].
double incomplete_beta(double a, double b, double x);

/// Regularized lower incomplete gamma P(a, x).
double incomplete_gamma_p(double a, double x);

/// Standard normal CDF.
double normal_cdf(double z);

/// Standard normal inverse CDF (Acklam's rational approximation, refined by
/// one Halley step). Domain: p in (0,1).
double normal_quantile(double p);

/// Student-t CDF with nu degrees of freedom.
double student_t_cdf(double t, double nu);

/// Two-sided p-value for a t statistic with nu degrees of freedom.
double t_test_p_value(double t, double nu);

/// F-distribution CDF with (d1, d2) degrees of freedom.
double f_cdf(double f, double d1, double d2);

/// Upper-tail p-value for an F statistic (used by partial-F entry/removal
/// tests in stepwise regression).
double f_test_p_value(double f, double d1, double d2);

/// Chi-squared CDF with k degrees of freedom.
double chi_squared_cdf(double x, double k);

// ---------------------------------------------------------------------------
// Streaming accumulator
// ---------------------------------------------------------------------------

/// Welford single-pass accumulator for mean/variance/min/max — used by the
/// simulator's statistics counters and by the experiment harness.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  double variance() const noexcept;  ///< sample variance (n-1)
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace dsml::stats
