#include "common/failpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"

namespace dsml::failpoint {

namespace internal {

std::atomic<bool> g_enabled{false};

namespace {

enum class Trigger { kNth, kProb, kAlways };

enum class ErrorType {
  kNumerical,
  kIo,
  kInvalidArgument,
  kState,
  kTraining,
};

struct Point {
  Trigger trigger = Trigger::kAlways;
  ErrorType error = ErrorType::kNumerical;
  std::uint64_t nth = 1;        // kNth: 1-based hit index that fires
  double probability = 0.0;     // kProb
  std::uint64_t seed = 0;       // kProb
  std::uint64_t hit_count = 0;
  metrics::Counter* hits = nullptr;
  metrics::Counter* fires = nullptr;
};

/// Armed points plus the spec that produced them (for ScopedFailpoints
/// save/restore). One mutex: firing sites are coarse, contention is nil, and
/// a single lock keeps concurrent hits trivially TSan-clean.
struct Registry {
  std::mutex mutex;
  std::unordered_map<std::string, Point> points;
  std::vector<std::string> order;  ///< names in spec order, for armed()
  std::string spec;
};

Registry& registry() {
  // Leaked on purpose (never destroyed), like the tracer: pool workers may
  // still evaluate failpoint::enabled() during static destruction.
  static Registry* r = new Registry;  // dsml-lint: allow(naked-new)
  return *r;
}

ErrorType parse_error_type(const std::string& name, const std::string& spec) {
  if (name == "NumericalError") return ErrorType::kNumerical;
  if (name == "IoError") return ErrorType::kIo;
  if (name == "InvalidArgument") return ErrorType::kInvalidArgument;
  if (name == "StateError") return ErrorType::kState;
  if (name == "TrainingError") return ErrorType::kTraining;
  throw InvalidArgument(
      "failpoints: unknown error type '" + name + "' in '" + spec +
      "' (NumericalError|IoError|InvalidArgument|StateError|TrainingError)");
}

std::uint64_t parse_u64(const std::string& text, const std::string& spec) {
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(text.c_str(), &end, 10);
  if (text.empty() || end == nullptr || *end != '\0') {
    throw InvalidArgument("failpoints: bad integer '" + text + "' in '" +
                          spec + "'");
  }
  return v;
}

double parse_probability(const std::string& text, const std::string& spec) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (text.empty() || end == nullptr || *end != '\0' ||
      !(v >= 0.0 && v <= 1.0)) {
    throw InvalidArgument("failpoints: probability must be in [0,1], got '" +
                          text + "' in '" + spec + "'");
  }
  return v;
}

Point parse_trigger(const std::string& trigger, const std::string& entry) {
  Point p;
  if (trigger.rfind("nth:", 0) == 0) {
    p.trigger = Trigger::kNth;
    p.nth = parse_u64(trigger.substr(4), entry);
    if (p.nth == 0) {
      throw InvalidArgument("failpoints: nth index must be >= 1 in '" +
                            entry + "'");
    }
    return p;
  }
  if (trigger.rfind("prob:", 0) == 0) {
    const std::string rest = trigger.substr(5);
    const auto at = rest.find('@');
    if (at == std::string::npos) {
      throw InvalidArgument(
          "failpoints: prob trigger needs a seed (prob:P@SEED) in '" + entry +
          "'");
    }
    p.trigger = Trigger::kProb;
    p.probability = parse_probability(rest.substr(0, at), entry);
    p.seed = parse_u64(rest.substr(at + 1), entry);
    return p;
  }
  if (trigger.rfind("err:", 0) == 0) {
    p.trigger = Trigger::kAlways;
    p.error = parse_error_type(trigger.substr(4), entry);
    return p;
  }
  throw InvalidArgument("failpoints: unknown trigger '" + trigger + "' in '" +
                        entry + "' (nth:N|prob:P@SEED|err:Type)");
}

struct ParsedSpec {
  std::unordered_map<std::string, Point> points;
  std::vector<std::string> order;
};

ParsedSpec parse_spec(const std::string& spec) {
  ParsedSpec parsed;
  for (const auto& part : strings::split(spec, ',')) {
    const std::string entry(strings::trim(part));
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw InvalidArgument("failpoints: expected name=trigger, got '" +
                            entry + "'");
    }
    const std::string name(strings::trim(entry.substr(0, eq)));
    Point p = parse_trigger(std::string(strings::trim(entry.substr(eq + 1))),
                            entry);
    p.hits = &metrics::counter("failpoint." + name + ".hits");
    p.fires = &metrics::counter("failpoint." + name + ".fires");
    if (parsed.points.emplace(name, std::move(p)).second) {
      parsed.order.push_back(name);
    } else {
      throw InvalidArgument("failpoints: duplicate name '" + name + "'");
    }
  }
  return parsed;
}

/// Whether this hit (1-based index) of `p` fires. Deterministic: the prob
/// trigger hashes (seed, hit index) instead of consuming any RNG stream, so
/// arming a failpoint never perturbs library results until it actually fires.
bool trigger_fires(const Point& p, std::uint64_t hit_index) {
  switch (p.trigger) {
    case Trigger::kNth:
      return hit_index == p.nth;
    case Trigger::kProb: {
      std::uint64_t state = p.seed ^ (hit_index * 0x9e3779b97f4a7c15ULL);
      const double u =
          static_cast<double>(splitmix64(state) >> 11) * 0x1.0p-53;
      return u < p.probability;
    }
    case Trigger::kAlways:
      return true;
  }
  return false;
}

[[noreturn]] void throw_configured(const Point& p, const char* name) {
  const std::string message =
      std::string("failpoint '") + name + "' fired";
  switch (p.error) {
    case ErrorType::kNumerical: throw NumericalError(message);
    case ErrorType::kIo: throw IoError(message);
    case ErrorType::kInvalidArgument: throw InvalidArgument(message);
    case ErrorType::kState: throw StateError(message);
    case ErrorType::kTraining: throw TrainingError("failpoint", name, "fired");
  }
  throw NumericalError(message);
}

/// Shared hit path; returns whether the trigger fired.
bool record_hit(const char* name) {
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  const auto it = r.points.find(name);
  if (it == r.points.end()) return false;
  Point& p = it->second;
  p.hits->add();
  const bool fired = trigger_fires(p, ++p.hit_count);
  if (fired) p.fires->add();
  return fired;
}

}  // namespace

void hit(const char* name) {
  if (!record_hit(name)) return;
  Registry& r = registry();
  std::lock_guard lock(r.mutex);
  throw_configured(r.points.at(name), name);
}

bool hit_poison(const char* name) { return record_hit(name); }

namespace {

/// DSML_FAILPOINTS arms the process before main(). A malformed spec must not
/// terminate pre-main, so it is reported on stderr (via cstdio: library code
/// may not touch std::cerr) and the layer stays disarmed.
const bool g_env_armed = [] {
  if (const char* spec = std::getenv("DSML_FAILPOINTS"); spec && *spec) {
    try {
      configure(spec);
      return true;
    } catch (const std::exception& e) {
      std::fputs(e.what(), stderr);
      std::fputs("\n", stderr);
    }
  }
  return false;
}();

}  // namespace

}  // namespace internal

void configure(const std::string& spec) {
  auto parsed = internal::parse_spec(spec);  // throws before any state change
  internal::Registry& r = internal::registry();
  std::lock_guard lock(r.mutex);
  r.points = std::move(parsed.points);
  r.order = std::move(parsed.order);
  r.spec = spec;
  internal::g_enabled.store(!r.points.empty(), std::memory_order_relaxed);
}

void clear() { configure(""); }

std::vector<std::string> armed() {
  internal::Registry& r = internal::registry();
  std::lock_guard lock(r.mutex);
  return r.order;
}

std::uint64_t hits(const std::string& name) {
  internal::Registry& r = internal::registry();
  std::lock_guard lock(r.mutex);
  const auto it = r.points.find(name);
  return it == r.points.end() ? 0 : it->second.hit_count;
}

ScopedFailpoints::ScopedFailpoints(const std::string& spec) {
  {
    internal::Registry& r = internal::registry();
    std::lock_guard lock(r.mutex);
    previous_ = r.spec;
  }
  configure(spec);
}

ScopedFailpoints::~ScopedFailpoints() {
  try {
    configure(previous_);
  } catch (const std::exception&) {
    // The previous spec parsed once, so this cannot throw in practice; a
    // destructor must not propagate regardless.
    clear();
  }
}

}  // namespace dsml::failpoint
