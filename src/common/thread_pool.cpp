#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <string>

#include "common/metrics.hpp"

namespace dsml {

namespace {

/// Set for the lifetime of every worker thread (any pool). Nested
/// parallel_for consults it to avoid submitting to a pool whose workers may
/// all be blocked waiting on the nested loop's futures.
thread_local bool tls_in_worker = false;

std::size_t default_thread_count() {
  if (const char* env = std::getenv("DSML_THREADS"); env && *env) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0) {
      return static_cast<std::size_t>(parsed);
    }
  }
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = default_thread_count();
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] {
      tls_in_worker = true;
      worker_loop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

bool ThreadPool::in_worker_thread() noexcept { return tls_in_worker; }

void ThreadPool::note_task_submitted() noexcept {
  static metrics::Counter& tasks = metrics::counter("pool.tasks");
  tasks.add();
}

void ThreadPool::note_queue_wait(
    std::chrono::steady_clock::time_point enqueued) noexcept {
  static metrics::Histogram& wait = metrics::histogram("pool.queue_wait_us");
  const auto waited = std::chrono::steady_clock::now() - enqueued;
  wait.observe(static_cast<double>(
      std::chrono::duration_cast<std::chrono::microseconds>(waited).count()));
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t workers = pool.size();
  if (workers <= 1 || n == 1 || ThreadPool::in_worker_thread()) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }
  if (grain == 0) {
    grain = std::max<std::size_t>(1, n / (workers * 4));
  }
  std::atomic<std::size_t> next{begin};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::future<void>> futures;
  const std::size_t tasks = std::min(workers, (n + grain - 1) / grain);
  futures.reserve(tasks);
  for (std::size_t t = 0; t < tasks; ++t) {
    futures.push_back(pool.submit([&] {
      for (;;) {
        const std::size_t chunk_begin =
            next.fetch_add(grain, std::memory_order_relaxed);
        if (chunk_begin >= end) return;
        const std::size_t chunk_end = std::min(chunk_begin + grain, end);
        try {
          for (std::size_t i = chunk_begin; i < chunk_end; ++i) fn(i);
        } catch (...) {
          std::lock_guard lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
          return;
        }
      }
    }));
  }
  // future::wait() on each task's shared state gives the release/acquire
  // edge that makes the workers' writes (fn side effects and first_error)
  // visible here.
  for (auto& f : futures) f.wait();
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain) {
  parallel_for(ThreadPool::global(), begin, end, fn, grain);
}

void parallel_for_chunks(
    ThreadPool& pool, std::size_t begin, std::size_t end, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  DSML_REQUIRE(chunk > 0, "parallel_for_chunks: chunk must be > 0");
  const std::size_t n_chunks = (end - begin + chunk - 1) / chunk;
  parallel_for(
      pool, 0, n_chunks,
      [&](std::size_t c) {
        const std::size_t chunk_begin = begin + c * chunk;
        const std::size_t chunk_end = std::min(chunk_begin + chunk, end);
        fn(chunk_begin, chunk_end);
      },
      /*grain=*/1);
}

void parallel_for_chunks(
    std::size_t begin, std::size_t end, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  parallel_for_chunks(ThreadPool::global(), begin, end, chunk, fn);
}

}  // namespace dsml
