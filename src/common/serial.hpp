// Tiny text serialization layer used to persist trained models.
//
// Format: whitespace-separated tokens. Doubles are written as hexfloats so
// values round-trip exactly; strings are length-prefixed so arbitrary
// content (spaces, commas) survives. Every logical section starts with a
// named tag, which doubles as a format check when loading.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace dsml::serial {

class Writer {
 public:
  explicit Writer(std::ostream& out) : out_(out) {}

  void tag(const std::string& name);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void boolean(bool v);
  void str(const std::string& s);

  void f64_vector(const std::vector<double>& v);
  void u64_vector(const std::vector<std::uint64_t>& v);

 private:
  std::ostream& out_;
};

class Reader {
 public:
  explicit Reader(std::istream& in) : in_(in) {}

  /// Reads a tag and requires it to equal `expected` (throws IoError).
  void expect_tag(const std::string& expected);
  /// Reads a tag and returns it.
  std::string tag();

  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  bool boolean();
  std::string str();

  std::vector<double> f64_vector();
  std::vector<std::uint64_t> u64_vector();

  /// Requires that only whitespace remains; throws IoError naming the byte
  /// offset of the first trailing token otherwise. Call after the last field
  /// so a concatenated/corrupted artifact cannot pass as a clean load.
  void expect_end();

  /// Current byte offset in the stream (best effort: -1 if the stream does
  /// not support tellg). Reported in every truncation/garbage IoError so a
  /// corrupt artifact can be inspected with `xxd -s <offset>`.
  std::int64_t offset() const;

 private:
  std::string token();
  [[noreturn]] void fail_truncated() const;

  std::istream& in_;
};

}  // namespace dsml::serial
