// Minimal work-stealing-free thread pool with a parallel_for helper.
//
// The experiment harness sweeps thousands of simulator configurations and
// trains many candidate networks; those tasks are embarrassingly parallel,
// so a fixed pool with a shared queue is sufficient and keeps the code simple
// (C++ Core Guidelines CP: prefer higher-level concurrency constructs over
// raw thread management scattered through the code).
//
// Concurrency contract (audited under ThreadSanitizer; see
// docs/STATIC_ANALYSIS.md):
//  - All queue/stop state is guarded by one mutex; completion is observed
//    through the futures returned by submit(), whose shared state provides
//    the necessary release/acquire ordering.
//  - parallel_for called from inside a worker thread (of any pool) runs the
//    loop inline rather than re-submitting, so nested parallelism cannot
//    deadlock a fully busy pool.
//  - The global pool size honours the DSML_THREADS environment variable,
//    which CI uses to force real concurrency on single-core runners.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace dsml {

class ThreadPool {
 public:
  /// Creates a pool with `threads` workers; 0 means the DSML_THREADS
  /// environment variable if set, else hardware_concurrency (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; returns a future for its completion. Throws StateError
  /// if the pool is already shutting down.
  template <typename F>
  std::future<void> submit(F&& fn) {
    auto task = std::make_shared<std::packaged_task<void()>>(
        std::forward<F>(fn));
    std::future<void> fut = task->get_future();
    // Observability: tasks are counted and their enqueue→dequeue latency
    // feeds the pool.queue_wait_us histogram (see common/metrics.hpp). Both
    // hooks are relaxed atomics; submissions are coarse (one task per worker
    // per parallel_for), so the extra clock read is noise.
    note_task_submitted();
    const auto enqueued = std::chrono::steady_clock::now();
    {
      std::lock_guard lock(mutex_);
      if (stopping_) {
        throw StateError("ThreadPool::submit: pool is shutting down");
      }
      queue_.emplace([task, enqueued]() mutable {
        note_queue_wait(enqueued);
        (*task)();
      });
    }
    cv_.notify_one();
    return fut;
  }

  /// True when the calling thread is a worker of any ThreadPool. Used by
  /// parallel_for to degrade to an inline loop instead of deadlocking on a
  /// pool whose workers are all blocked waiting for the nested loop.
  static bool in_worker_thread() noexcept;

  /// Shared process-wide pool (lazily created; sized per the constructor's
  /// `threads == 0` rule).
  static ThreadPool& global();

 private:
  void worker_loop();

  /// Metrics hooks (defined in the .cpp so the header stays light).
  static void note_task_submitted() noexcept;
  static void note_queue_wait(
      std::chrono::steady_clock::time_point enqueued) noexcept;

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs fn(i) for i in [begin, end) across `pool`, blocking until all
/// iterations complete. Iterations are chunked to amortise dispatch.
/// Exceptions thrown by fn propagate to the caller (first one wins).
/// Runs inline when the pool has a single worker, the range is trivial, or
/// the caller is itself a pool worker (nested parallelism).
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 0);

/// parallel_for over the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 0);

/// Runs fn(chunk_begin, chunk_end) over [begin, end) split into chunks of at
/// most `chunk` elements. The batched prediction paths use this so each call
/// amortises per-chunk setup (workspace acquisition, layer scratch) over many
/// rows instead of paying it per element. Same inline/nested semantics as
/// parallel_for.
void parallel_for_chunks(
    ThreadPool& pool, std::size_t begin, std::size_t end, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& fn);

/// parallel_for_chunks over the global pool.
void parallel_for_chunks(
    std::size_t begin, std::size_t end, std::size_t chunk,
    const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace dsml
