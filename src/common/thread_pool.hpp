// Minimal work-stealing-free thread pool with a parallel_for helper.
//
// The experiment harness sweeps thousands of simulator configurations and
// trains many candidate networks; those tasks are embarrassingly parallel,
// so a fixed pool with a shared queue is sufficient and keeps the code simple
// (C++ Core Guidelines CP: prefer higher-level concurrency constructs over
// raw thread management scattered through the code).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dsml {

class ThreadPool {
 public:
  /// Creates a pool with `threads` workers; 0 means hardware_concurrency
  /// (minimum 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueue a task; returns a future for its completion.
  template <typename F>
  std::future<void> submit(F&& fn) {
    auto task = std::make_shared<std::packaged_task<void()>>(
        std::forward<F>(fn));
    std::future<void> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace([task]() mutable { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Shared process-wide pool (lazily created).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Runs fn(i) for i in [begin, end) across the global pool, blocking until
/// all iterations complete. Iterations are chunked to amortise dispatch.
/// Exceptions thrown by fn propagate to the caller (first one wins).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn,
                  std::size_t grain = 0);

}  // namespace dsml
