// Error handling primitives shared by every dsml module.
//
// We use exceptions for contract violations at API boundaries (the library is
// a modelling toolkit, not a hot inner loop), and DSML_ASSERT for internal
// invariants that indicate a bug rather than bad input.
#pragma once

#include <stdexcept>
#include <string>

namespace dsml {

/// Thrown when a caller violates a documented precondition of a public API.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an operation cannot proceed because of the object's state
/// (e.g. predicting with an unfitted model).
class StateError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a numerical routine fails to converge or encounters a
/// singular/ill-conditioned system it cannot recover from.
class NumericalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown on I/O failures (file missing, malformed CSV, ...).
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  throw std::logic_error(std::string("dsml internal assertion failed: ") +
                         expr + " at " + file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace dsml

/// Internal invariant check. Always on: the cost is negligible for this
/// library and silent corruption of experiment results is far worse.
#define DSML_ASSERT(expr)                                      \
  do {                                                         \
    if (!(expr)) {                                             \
      ::dsml::detail::assert_fail(#expr, __FILE__, __LINE__);  \
    }                                                          \
  } while (false)

/// Precondition check at a public API boundary.
#define DSML_REQUIRE(expr, msg)              \
  do {                                       \
    if (!(expr)) {                           \
      throw ::dsml::InvalidArgument(msg);    \
    }                                        \
  } while (false)
