// Error handling primitives shared by every dsml module.
//
// We use exceptions for contract violations at API boundaries (the library is
// a modelling toolkit, not a hot inner loop), and DSML_ASSERT for internal
// invariants that indicate a bug rather than bad input.
#pragma once

#include <stdexcept>
#include <string>

namespace dsml {

/// Thrown when a caller violates a documented precondition of a public API.
class InvalidArgument : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Thrown when an operation cannot proceed because of the object's state
/// (e.g. predicting with an unfitted model).
class StateError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a numerical routine fails to converge or encounters a
/// singular/ill-conditioned system it cannot recover from.
class NumericalError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown on I/O failures (file missing, malformed CSV, ...).
class IoError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when model training fails in a way the caller may want to degrade
/// around (a diverged fold, a candidate whose every retry exhausted, ...).
/// Carries the model name and a free-form context ("fold 3", "final fit") so
/// failure summaries can say *where* training died, not just that it did.
class TrainingError : public std::runtime_error {
 public:
  TrainingError(std::string model, std::string context,
                const std::string& message)
      : std::runtime_error(compose(model, context, message)),
        model_(std::move(model)),
        context_(std::move(context)) {}

  const std::string& model() const noexcept { return model_; }
  const std::string& context() const noexcept { return context_; }

 private:
  static std::string compose(const std::string& model,
                             const std::string& context,
                             const std::string& message) {
    std::string out = "training failed";
    if (!model.empty()) out += " [" + model + "]";
    if (!context.empty()) out += " (" + context + ")";
    return out + ": " + message;
  }

  std::string model_;
  std::string context_;
};

/// One tolerated failure, as recorded by the graceful-degradation paths
/// (SelectModel::fit, the dse drivers): what failed, which taxonomy type it
/// raised, and its message. Printed in the CLI failure summaries.
struct FailureRecord {
  std::string name;        ///< e.g. "NN-E", "NN-Q fold 2", "LR-B@1%"
  std::string error_type;  ///< taxonomy name from error_kind()
  std::string message;
};

/// Taxonomy name of an exception for failure records ("NumericalError",
/// "IoError", ...); "std::exception" for anything outside the taxonomy.
inline const char* error_kind(const std::exception& e) noexcept {
  if (dynamic_cast<const TrainingError*>(&e) != nullptr) {
    return "TrainingError";
  }
  if (dynamic_cast<const NumericalError*>(&e) != nullptr) {
    return "NumericalError";
  }
  if (dynamic_cast<const IoError*>(&e) != nullptr) return "IoError";
  if (dynamic_cast<const InvalidArgument*>(&e) != nullptr) {
    return "InvalidArgument";
  }
  if (dynamic_cast<const StateError*>(&e) != nullptr) return "StateError";
  return "std::exception";
}

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  throw std::logic_error(std::string("dsml internal assertion failed: ") +
                         expr + " at " + file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace dsml

/// Internal invariant check. Always on: the cost is negligible for this
/// library and silent corruption of experiment results is far worse.
#define DSML_ASSERT(expr)                                      \
  do {                                                         \
    if (!(expr)) {                                             \
      ::dsml::detail::assert_fail(#expr, __FILE__, __LINE__);  \
    }                                                          \
  } while (false)

/// Precondition check at a public API boundary.
#define DSML_REQUIRE(expr, msg)              \
  do {                                       \
    if (!(expr)) {                           \
      throw ::dsml::InvalidArgument(msg);    \
    }                                        \
  } while (false)
