#include "common/serial.hpp"

#include <cstdio>
#include <cstdlib>

namespace dsml::serial {

void Writer::tag(const std::string& name) { out_ << name << '\n'; }

void Writer::u64(std::uint64_t v) { out_ << v << ' '; }

void Writer::i64(std::int64_t v) { out_ << v << ' '; }

void Writer::f64(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  out_ << buf << ' ';
}

void Writer::boolean(bool v) { out_ << (v ? 1 : 0) << ' '; }

void Writer::str(const std::string& s) {
  out_ << s.size() << ':' << s << ' ';
}

void Writer::f64_vector(const std::vector<double>& v) {
  u64(v.size());
  for (double x : v) f64(x);
}

void Writer::u64_vector(const std::vector<std::uint64_t>& v) {
  u64(v.size());
  for (std::uint64_t x : v) u64(x);
}

std::int64_t Reader::offset() const {
  // Query the buffer directly: tellg() reports -1 once the stream has hit
  // eof/fail, which is exactly when truncation errors need the position.
  if (in_.rdbuf() == nullptr) return -1;
  const auto pos =
      in_.rdbuf()->pubseekoff(0, std::ios_base::cur, std::ios_base::in);
  return static_cast<std::int64_t>(pos);
}

void Reader::fail_truncated() const {
  throw IoError("serial: unexpected end of input at byte " +
                std::to_string(offset()));
}

std::string Reader::token() {
  std::string t;
  if (!(in_ >> t)) fail_truncated();
  return t;
}

void Reader::expect_end() {
  std::string t;
  if (in_ >> t) {
    const std::int64_t end = offset();
    const std::int64_t start =
        end < 0 ? -1 : end - static_cast<std::int64_t>(t.size());
    throw IoError("serial: trailing garbage at byte " + std::to_string(start) +
                  " starting with '" + t + "'");
  }
}

void Reader::expect_tag(const std::string& expected) {
  const std::string got = token();
  if (got != expected) {
    throw IoError("serial: expected tag '" + expected + "', got '" + got +
                  "'");
  }
}

std::string Reader::tag() { return token(); }

std::uint64_t Reader::u64() {
  const std::string t = token();
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(t.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    throw IoError("serial: bad u64 '" + t + "' before byte " +
                  std::to_string(offset()));
  }
  return v;
}

std::int64_t Reader::i64() {
  const std::string t = token();
  char* end = nullptr;
  const std::int64_t v = std::strtoll(t.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    throw IoError("serial: bad i64 '" + t + "' before byte " +
                  std::to_string(offset()));
  }
  return v;
}

double Reader::f64() {
  const std::string t = token();
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    throw IoError("serial: bad double '" + t + "' before byte " +
                  std::to_string(offset()));
  }
  return v;
}

bool Reader::boolean() { return u64() != 0; }

std::string Reader::str() {
  // Skip whitespace, read "<len>:<bytes>".
  std::size_t len = 0;
  char c;
  if (!(in_ >> c)) fail_truncated();
  std::string digits;
  while (c != ':') {
    if (c < '0' || c > '9') {
      throw IoError("serial: bad string length before byte " +
                    std::to_string(offset()));
    }
    digits += c;
    if (!in_.get(c)) fail_truncated();
  }
  len = std::strtoull(digits.c_str(), nullptr, 10);
  std::string s(len, '\0');
  if (len > 0 && !in_.read(s.data(), static_cast<std::streamsize>(len))) {
    throw IoError("serial: truncated string (wanted " + std::to_string(len) +
                  " bytes) at byte " + std::to_string(offset()));
  }
  return s;
}

std::vector<double> Reader::f64_vector() {
  const std::uint64_t n = u64();
  std::vector<double> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(f64());
  return v;
}

std::vector<std::uint64_t> Reader::u64_vector() {
  const std::uint64_t n = u64();
  std::vector<std::uint64_t> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(u64());
  return v;
}

}  // namespace dsml::serial
