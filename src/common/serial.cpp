#include "common/serial.hpp"

#include <cstdio>
#include <cstdlib>

namespace dsml::serial {

void Writer::tag(const std::string& name) { out_ << name << '\n'; }

void Writer::u64(std::uint64_t v) { out_ << v << ' '; }

void Writer::i64(std::int64_t v) { out_ << v << ' '; }

void Writer::f64(double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%a", v);
  out_ << buf << ' ';
}

void Writer::boolean(bool v) { out_ << (v ? 1 : 0) << ' '; }

void Writer::str(const std::string& s) {
  out_ << s.size() << ':' << s << ' ';
}

void Writer::f64_vector(const std::vector<double>& v) {
  u64(v.size());
  for (double x : v) f64(x);
}

void Writer::u64_vector(const std::vector<std::uint64_t>& v) {
  u64(v.size());
  for (std::uint64_t x : v) u64(x);
}

std::string Reader::token() {
  std::string t;
  if (!(in_ >> t)) throw IoError("serial: unexpected end of input");
  return t;
}

void Reader::expect_tag(const std::string& expected) {
  const std::string got = token();
  if (got != expected) {
    throw IoError("serial: expected tag '" + expected + "', got '" + got +
                  "'");
  }
}

std::string Reader::tag() { return token(); }

std::uint64_t Reader::u64() {
  const std::string t = token();
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(t.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    throw IoError("serial: bad u64 '" + t + "'");
  }
  return v;
}

std::int64_t Reader::i64() {
  const std::string t = token();
  char* end = nullptr;
  const std::int64_t v = std::strtoll(t.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    throw IoError("serial: bad i64 '" + t + "'");
  }
  return v;
}

double Reader::f64() {
  const std::string t = token();
  char* end = nullptr;
  const double v = std::strtod(t.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    throw IoError("serial: bad double '" + t + "'");
  }
  return v;
}

bool Reader::boolean() { return u64() != 0; }

std::string Reader::str() {
  // Skip whitespace, read "<len>:<bytes>".
  std::size_t len = 0;
  char c;
  if (!(in_ >> c)) throw IoError("serial: unexpected end of input");
  std::string digits;
  while (c != ':') {
    if (c < '0' || c > '9') throw IoError("serial: bad string length");
    digits += c;
    if (!in_.get(c)) throw IoError("serial: unexpected end of input");
  }
  len = std::strtoull(digits.c_str(), nullptr, 10);
  std::string s(len, '\0');
  if (len > 0 && !in_.read(s.data(), static_cast<std::streamsize>(len))) {
    throw IoError("serial: truncated string");
  }
  return s;
}

std::vector<double> Reader::f64_vector() {
  const std::uint64_t n = u64();
  std::vector<double> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(f64());
  return v;
}

std::vector<std::uint64_t> Reader::u64_vector() {
  const std::uint64_t n = u64();
  std::vector<std::uint64_t> v;
  v.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(u64());
  return v;
}

}  // namespace dsml::serial
