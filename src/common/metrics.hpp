// Process-wide metrics registry: named counters, gauges, and histograms.
//
// The hot pipeline reports aggregate facts here — rows ingested, training
// epochs run, cross-validation folds, GEMM calls, workspace high-water
// bytes, thread-pool task counts and queue wait — so `dsml stats` (and the
// JSON dump) can answer "how much work did this process do" without a
// profiler. Spans and timelines live in the companion tracing layer
// (common/trace.hpp).
//
// Cost model: every instrument is a relaxed atomic op (counters/gauges) or a
// couple of them (histograms); there is no lock on the update path, so
// instruments are safe to hit from pool workers (the TSan suite does).
// Registration (name → instrument lookup) takes a mutex, so hot code caches
// the reference once:
//
//   static metrics::Counter& calls = metrics::counter("linalg.gemm_calls");
//   calls.add();
//
// Instrument addresses are stable for the life of the process.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace dsml::json {
class Writer;
}  // namespace dsml::json

namespace dsml::metrics {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (e.g. current training loss) with an optional
/// monotonic-max mode for high-water marks.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }

  /// Raises the gauge to `v` if `v` is larger (high-water semantics).
  void set_max(double v) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur && !value_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Power-of-two bucketed distribution of non-negative samples (queue waits
/// in microseconds, block sizes, ...). Bucket b holds samples in
/// [2^(b-1), 2^b); bucket 0 holds [0, 1). Lock-free: buckets, count, and sum
/// are relaxed atomics, so concurrent observes never serialize.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(double v) noexcept;

  std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }
  double mean() const noexcept {
    const std::uint64_t n = count();
    return n > 0 ? sum() / static_cast<double>(n) : 0.0;
  }
  std::uint64_t bucket(std::size_t b) const noexcept {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Upper bound of the bucket containing the q-quantile (0 <= q <= 1), an
  /// order-of-magnitude answer by design. 0 when empty.
  double quantile_upper_bound(double q) const noexcept;

  void reset() noexcept;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Lazily registers (or finds) an instrument by name. Returned references
/// stay valid for the process lifetime.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);

/// Point-in-time copy of every registered instrument, sorted by name.
struct Snapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value;
  };
  struct GaugeValue {
    std::string name;
    double value;
  };
  struct HistogramValue {
    std::string name;
    std::uint64_t count;
    double mean;
    double p50;
    double p95;
  };
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

Snapshot snapshot();

/// Zeroes every registered instrument (tests; instruments stay registered).
void reset_all();

/// Human-readable dump (the `dsml stats` table).
void print(std::ostream& out);

/// Appends the registry as an object value; the caller owns the enclosing
/// document (call under a pending key or at the document root).
void write_json(json::Writer& w);

}  // namespace dsml::metrics
