#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace dsml::json {

// ---------------------------------------------------------------- Value ----

bool Value::as_bool() const {
  if (type_ != Type::kBool) throw IoError("json: value is not a boolean");
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::kNumber) throw IoError("json: value is not a number");
  return number_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::kString) throw IoError("json: value is not a string");
  return string_;
}

const std::vector<Value>& Value::items() const {
  if (type_ != Type::kArray) throw IoError("json: value is not an array");
  return array_;
}

const std::vector<std::pair<std::string, Value>>& Value::fields() const {
  if (type_ != Type::kObject) throw IoError("json: value is not an object");
  return object_;
}

bool Value::contains(const std::string& key) const noexcept {
  if (type_ != Type::kObject) return false;
  for (const auto& [k, v] : object_) {
    if (k == key) return true;
  }
  return false;
}

const Value& Value::at(const std::string& key) const {
  for (const auto& [k, v] : fields()) {
    if (k == key) return v;
  }
  throw IoError("json: missing key '" + key + "'");
}

// --------------------------------------------------------------- Parser ----

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw IoError("json parse error at offset " + std::to_string(pos_) +
                  ": " + what);
  }

  void skip_whitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        Value v;
        v.string_ = parse_string();
        // Map the Writer's non-finite sentinels back to numbers so a value
        // round-trips with its type (see format_number). These strings are
        // reserved as *values*; object keys are unaffected.
        if (v.string_ == "NaN") {
          v.type_ = Value::Type::kNumber;
          v.number_ = std::numeric_limits<double>::quiet_NaN();
          v.string_.clear();
        } else if (v.string_ == "Infinity") {
          v.type_ = Value::Type::kNumber;
          v.number_ = std::numeric_limits<double>::infinity();
          v.string_.clear();
        } else if (v.string_ == "-Infinity") {
          v.type_ = Value::Type::kNumber;
          v.number_ = -std::numeric_limits<double>::infinity();
          v.string_.clear();
        } else {
          v.type_ = Value::Type::kString;
        }
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        {
          Value v;
          v.type_ = Value::Type::kBool;
          v.bool_ = true;
          return v;
        }
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        {
          Value v;
          v.type_ = Value::Type::kBool;
          v.bool_ = false;
          return v;
        }
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Value{};
      default: return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    Value v;
    v.type_ = Value::Type::kObject;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      v.object_.emplace_back(std::move(key), parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    expect('[');
    Value v;
    v.type_ = Value::Type::kArray;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array_.push_back(parse_value());
      skip_whitespace();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4U;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // the bench artifacts are ASCII).
          if (code < 0x80U) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800U) {
            out.push_back(static_cast<char>(0xC0U | (code >> 6U)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          } else {
            out.push_back(static_cast<char>(0xE0U | (code >> 12U)));
            out.push_back(static_cast<char>(0x80U | ((code >> 6U) & 0x3FU)));
            out.push_back(static_cast<char>(0x80U | (code & 0x3FU)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    if (token.empty() || token == "-") fail("expected a value");
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    Value v;
    v.type_ = Value::Type::kNumber;
    v.number_ = parsed;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Value Value::parse(std::string_view text) {
  return Parser(text).parse_document();
}

Value Value::parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw IoError("json: cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse(buffer.str());
}

// --------------------------------------------------------------- Writer ----

std::string format_number(double v) {
  // JSON has no literal for non-finite doubles. Emitting null (the old
  // behavior) silently changed the *type* on round-trip, so a NaN model
  // error could slip past numeric comparisons; the string sentinels below
  // keep the value representable and the Parser maps them back to numbers.
  if (std::isnan(v)) return "\"NaN\"";
  if (std::isinf(v)) return v > 0.0 ? "\"Infinity\"" : "\"-Infinity\"";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

namespace {

void append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20U) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

}  // namespace

void Writer::indent() {
  if (compact_) return;
  out_.push_back('\n');
  out_.append(stack_.size() * 2, ' ');
}

void Writer::before_value() {
  if (done_) throw StateError("json::Writer: document already complete");
  if (stack_.empty()) return;
  if (stack_.back() == Frame::kObject && !key_pending_) {
    throw StateError("json::Writer: value inside an object needs a key");
  }
  if (stack_.back() == Frame::kArray) {
    if (has_items_.back()) out_.push_back(',');
    indent();
  }
  has_items_.back() = true;
  key_pending_ = false;
}

Writer& Writer::key(std::string_view k) {
  if (done_ || stack_.empty() || stack_.back() != Frame::kObject) {
    throw StateError("json::Writer: key() outside an object");
  }
  if (key_pending_) throw StateError("json::Writer: key already pending");
  if (has_items_.back()) out_.push_back(',');
  indent();
  append_escaped(out_, k);
  out_ += compact_ ? ":" : ": ";
  key_pending_ = true;
  return *this;
}

Writer& Writer::begin_object() {
  before_value();
  out_.push_back('{');
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
  return *this;
}

Writer& Writer::end_object() {
  if (stack_.empty() || stack_.back() != Frame::kObject || key_pending_) {
    throw StateError("json::Writer: unbalanced end_object");
  }
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) indent();
  out_.push_back('}');
  if (stack_.empty()) done_ = true;
  return *this;
}

Writer& Writer::begin_array() {
  before_value();
  out_.push_back('[');
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
  return *this;
}

Writer& Writer::end_array() {
  if (stack_.empty() || stack_.back() != Frame::kArray) {
    throw StateError("json::Writer: unbalanced end_array");
  }
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) indent();
  out_.push_back(']');
  if (stack_.empty()) done_ = true;
  return *this;
}

Writer& Writer::value(double v) {
  before_value();
  out_ += format_number(v);
  return *this;
}

Writer& Writer::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

Writer& Writer::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

Writer& Writer::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

Writer& Writer::value(std::string_view v) {
  before_value();
  append_escaped(out_, v);
  return *this;
}

Writer& Writer::null() {
  before_value();
  out_ += "null";
  return *this;
}

std::string Writer::str() const {
  if (!done_) throw StateError("json::Writer: document not finished");
  return out_ + "\n";
}

}  // namespace dsml::json
