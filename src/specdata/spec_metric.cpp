#include "specdata/spec_metric.hpp"

#include "common/error.hpp"
#include "common/stats.hpp"

namespace dsml::specdata {

const std::vector<SpecApp>& specint2000_apps() {
  static const std::vector<SpecApp> apps = {
      {"164.gzip", 1400}, {"175.vpr", 1400},     {"176.gcc", 1100},
      {"181.mcf", 1800},  {"186.crafty", 1000},  {"197.parser", 1800},
      {"252.eon", 1300},  {"253.perlbmk", 1800}, {"254.gap", 1100},
      {"255.vortex", 1900}, {"256.bzip2", 1500}, {"300.twolf", 3000},
  };
  return apps;
}

const std::vector<SpecApp>& specfp2000_apps() {
  static const std::vector<SpecApp> apps = {
      {"168.wupwise", 1600}, {"171.swim", 3100},   {"172.mgrid", 1800},
      {"173.applu", 2100},   {"177.mesa", 1400},   {"178.galgel", 2900},
      {"179.art", 2600},     {"183.equake", 1300}, {"187.facerec", 1900},
      {"188.ammp", 2200},    {"189.lucas", 2000},  {"191.fma3d", 2100},
      {"200.sixtrack", 1100}, {"301.apsi", 2600},
  };
  return apps;
}

double spec_ratio(double reference_seconds, double measured_seconds) {
  DSML_REQUIRE(reference_seconds > 0.0 && measured_seconds > 0.0,
               "spec_ratio: times must be positive");
  return 100.0 * reference_seconds / measured_seconds;
}

double spec_rating(std::span<const SpecApp> apps,
                   std::span<const double> measured_seconds) {
  DSML_REQUIRE(apps.size() == measured_seconds.size() && !apps.empty(),
               "spec_rating: apps/time size mismatch");
  std::vector<double> ratios;
  ratios.reserve(apps.size());
  for (std::size_t i = 0; i < apps.size(); ++i) {
    ratios.push_back(spec_ratio(apps[i].reference_seconds,
                                measured_seconds[i]));
  }
  return stats::geometric_mean(ratios);
}

double spec_rate_rating(std::span<const SpecApp> apps,
                        std::span<const double> elapsed_seconds, int copies) {
  DSML_REQUIRE(copies >= 1, "spec_rate_rating: copies must be >= 1");
  DSML_REQUIRE(apps.size() == elapsed_seconds.size() && !apps.empty(),
               "spec_rate_rating: apps/time size mismatch");
  std::vector<double> ratios;
  ratios.reserve(apps.size());
  for (std::size_t i = 0; i < apps.size(); ++i) {
    DSML_REQUIRE(elapsed_seconds[i] > 0.0,
                 "spec_rate_rating: times must be positive");
    // SPEC rate formula (scaled): copies * reference / elapsed * 1.16 is the
    // historical constant-free form; we use the modern normalised variant.
    ratios.push_back(static_cast<double>(copies) *
                     apps[i].reference_seconds / elapsed_seconds[i]);
  }
  return stats::geometric_mean(ratios);
}

}  // namespace dsml::specdata
