// Synthetic SPEC announcement database (substitute for spec.org's results).
//
// The real database cannot be redistributed or fetched offline, so we model
// the *market*: per processor family, a menu of processor models (speed, L2,
// cores, SMT) with introduction years, platform menus (memory frequency and
// size, bus, disks, vendors), and a hidden family-specific performance
// function that turns a configuration into per-application runtimes — the
// published rating is then computed with the real SPEC geometric-mean
// metric. Records are split across announcement years 2005 and 2006 with
// technology drift (newer models and faster memory appear in 2006), which is
// what makes chronological prediction a genuine extrapolation task.
//
// Generators are calibrated against the statistics the paper publishes for
// each family (records / range / variation, §4.1): Opteron 138/1.40/0.08,
// Opteron-2 152/1.58/0.11, Opteron-4 158/1.70/0.12, Opteron-8 58/1.68/0.13,
// Pentium D 71/1.45/0.10, Pentium 4 66/3.72/0.34, Xeon 216/1.34/0.09.
#pragma once

#include "common/rng.hpp"
#include "specdata/announcement.hpp"

namespace dsml::specdata {

/// Published calibration targets for one family (from §4.1).
struct FamilyStats {
  std::size_t records = 0;
  double range = 1.0;      ///< best rating / worst rating
  double variation = 0.0;  ///< stddev / mean
};

/// The paper's Table-of-§4.1 statistics for a family.
FamilyStats paper_family_stats(Family family);

struct GeneratorOptions {
  std::uint64_t seed = 20060101;
  /// Scale the number of generated records (1.0 = the paper's counts).
  double record_scale = 1.0;
};

/// Generate the announcement records for one family across years 2005–2006.
std::vector<Announcement> generate_family(Family family,
                                          const GeneratorOptions& options = {});

/// Generate every family (paper's full working set).
std::vector<Announcement> generate_all(const GeneratorOptions& options = {});

/// The hidden ground-truth performance function (exposed for tests and
/// ablations; the predictive models never see it). Returns the expected
/// rating before measurement noise.
double ground_truth_rating(const Announcement& record);

}  // namespace dsml::specdata
