#include "specdata/generator.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "specdata/spec_metric.hpp"

namespace dsml::specdata {

namespace {

/// One processor SKU on the market.
struct ProcessorSku {
  const char* model;
  double speed_mhz;
  double l2_kb;
  double l3_kb;
  int year_intro;      // first year the SKU can be announced
  bool smt;
  int cores_per_chip;
  double bus_mhz;
};

/// Family market description + hidden performance-function coefficients.
struct FamilyMarket {
  std::vector<ProcessorSku> skus;
  double base_rating;      // rating of the reference SKU configuration
  double ref_speed_mhz;
  double alpha_speed;      // perf ~ (speed/ref)^alpha
  double beta_l2;          // per log2(l2/l2_ref)
  double l2_ref_kb;
  double beta_memfreq;     // per log2(memfreq/400)
  double beta_memsize;     // per log2(mem_gb/4)
  double beta_bus;         // per log2(bus/800)
  double beta_smt;         // multiplicative bonus when SMT on
  double chips_exponent;   // rate ~ chips^gamma (SMP families)
  double cores_exponent;   // rate ~ cores_per_chip^gamma
  double noise_sigma;      // lognormal measurement/platform noise
  std::vector<double> memfreq_2005;
  std::vector<double> memfreq_2006;
};

FamilyMarket market_for(Family family) {
  FamilyMarket m;
  switch (family) {
    case Family::kXeon:
      m.skus = {
          {"Xeon 2.80", 2800, 1024, 0, 2005, true, 1, 800},
          {"Xeon 3.00", 3000, 2048, 0, 2005, true, 1, 800},
          {"Xeon 3.20", 3200, 1024, 0, 2005, true, 1, 800},
          {"Xeon 3.40", 3400, 2048, 0, 2005, true, 1, 800},
          {"Xeon 3.60", 3600, 2048, 0, 2005, true, 1, 800},
          {"Xeon 3.80", 3800, 2048, 0, 2006, true, 1, 800},
          {"Xeon 5060", 3200, 2048, 0, 2006, true, 2, 1066},
          {"Xeon 5080", 3730, 2048, 0, 2006, true, 2, 1066},
      };
      m.base_rating = 1400;
      m.ref_speed_mhz = 3000;
      m.alpha_speed = 0.80;
      m.beta_l2 = 0.035;
      m.l2_ref_kb = 1024;
      m.beta_memfreq = 0.030;
      m.beta_memsize = 0.006;
      m.beta_bus = 0.020;
      m.beta_smt = 0.010;
      m.chips_exponent = 0.0;
      m.cores_exponent = 0.04;  // single-thread rating barely moves
      m.noise_sigma = 0.020;
      m.memfreq_2005 = {266, 333, 400};
      m.memfreq_2006 = {400, 533, 667};
      break;
    case Family::kPentium4:
      // The P4 result set spans Willamette-era 1.4 GHz parts through 3.8 GHz
      // Prescott — the widest spread in the paper (range 3.72).
      m.skus = {
          {"Pentium 4 1.4", 1400, 256, 0, 2005, false, 1, 400},
          {"Pentium 4 1.8", 1800, 256, 0, 2005, false, 1, 400},
          {"Pentium 4 2.4", 2400, 512, 0, 2005, false, 1, 533},
          {"Pentium 4 2.8", 2800, 512, 0, 2005, true, 1, 533},
          {"Pentium 4 3.0", 3000, 1024, 0, 2005, true, 1, 800},
          {"Pentium 4 3.2", 3200, 1024, 0, 2005, true, 1, 800},
          {"Pentium 4 3.4", 3400, 1024, 0, 2005, true, 1, 800},
          {"Pentium 4 3.6", 3600, 2048, 0, 2005, true, 1, 800},
          {"Pentium 4 3.8", 3800, 2048, 0, 2006, true, 1, 800},
          {"Pentium 4 661", 3600, 2048, 0, 2006, true, 1, 800},
      };
      m.base_rating = 1100;
      m.ref_speed_mhz = 2800;
      m.alpha_speed = 1.00;
      m.beta_l2 = 0.050;
      m.l2_ref_kb = 256;
      m.beta_memfreq = 0.030;
      m.beta_memsize = 0.004;
      m.beta_bus = 0.030;
      m.beta_smt = 0.012;
      m.chips_exponent = 0.0;
      m.cores_exponent = 0.0;
      m.noise_sigma = 0.018;
      m.memfreq_2005 = {266, 333, 400};
      m.memfreq_2006 = {333, 400, 533};
      break;
    case Family::kPentiumD:
      // Pentium D shipped mid-2005; barely two model years of similar parts
      // (the paper notes all models predict it about equally well).
      m.skus = {
          {"Pentium D 820", 2800, 2048, 0, 2005, false, 2, 800},
          {"Pentium D 830", 3000, 2048, 0, 2005, false, 2, 800},
          {"Pentium D 840", 3200, 2048, 0, 2005, false, 2, 800},
          {"Pentium D 940", 3200, 4096, 0, 2005, false, 2, 800},
          {"Pentium D 950", 3400, 4096, 0, 2006, false, 2, 800},
          {"Pentium D 960", 3600, 4096, 0, 2006, false, 2, 800},
      };
      m.base_rating = 1250;
      m.ref_speed_mhz = 3000;
      m.alpha_speed = 0.85;
      m.beta_l2 = 0.040;
      m.l2_ref_kb = 2048;
      m.beta_memfreq = 0.030;
      m.beta_memsize = 0.005;
      m.beta_bus = 0.0;
      m.beta_smt = 0.0;
      m.chips_exponent = 0.0;
      m.cores_exponent = 0.03;
      m.noise_sigma = 0.016;
      m.memfreq_2005 = {400, 533};
      m.memfreq_2006 = {400, 533, 667};
      break;
    case Family::kOpteron:
    case Family::kOpteron2:
    case Family::kOpteron4:
    case Family::kOpteron8:
      m.skus = {
          {"Opteron 146", 2000, 1024, 0, 2005, false, 1, 800},
          {"Opteron 148", 2200, 1024, 0, 2005, false, 1, 800},
          {"Opteron 150", 2400, 1024, 0, 2005, false, 1, 800},
          {"Opteron 152", 2600, 1024, 0, 2005, false, 1, 1000},
          {"Opteron 154", 2800, 1024, 0, 2006, false, 1, 1000},
          {"Opteron 175", 2200, 1024, 0, 2005, false, 2, 1000},
          {"Opteron 180", 2400, 1024, 0, 2006, false, 2, 1000},
          {"Opteron 185", 2600, 1024, 0, 2006, false, 2, 1000},
      };
      m.base_rating = 1300;
      m.ref_speed_mhz = 2200;
      m.alpha_speed = 0.75;
      m.beta_l2 = 0.030;
      m.l2_ref_kb = 1024;
      m.beta_memfreq = 0.040;
      m.beta_memsize = 0.008;
      m.beta_bus = 0.015;
      m.beta_smt = 0.0;
      m.chips_exponent = 0.0;   // rating per family is per fixed chip count
      m.cores_exponent = 0.05;
      m.noise_sigma = 0.020;
      m.memfreq_2005 = {333, 400};
      m.memfreq_2006 = {400, 533, 667};
      // SMP families: more platform diversity, noisier integration.
      if (family == Family::kOpteron2) {
        m.noise_sigma = 0.024;
        m.beta_memfreq = 0.055;
        m.cores_exponent = 0.10;
      } else if (family == Family::kOpteron4) {
        m.noise_sigma = 0.026;
        m.beta_memfreq = 0.060;
        m.beta_memsize = 0.012;
        m.cores_exponent = 0.12;
      } else if (family == Family::kOpteron8) {
        m.noise_sigma = 0.030;
        m.beta_memfreq = 0.060;
        m.beta_memsize = 0.014;
        m.cores_exponent = 0.12;
      }
      break;
  }
  return m;
}

const std::vector<const char*>& vendors() {
  static const std::vector<const char*> v = {
      "Dell", "HP", "IBM", "Fujitsu-Siemens", "Sun", "Supermicro", "ASUS"};
  return v;
}

// Floating-point performance relative to integer: fp codes stream more data,
// so they lean harder on memory frequency and L2; the Opteron's on-die
// memory controller gives it a relative fp edge over the NetBurst parts.
double fp_relative_factor(Family family, const Announcement& r) {
  double factor = 1.0;
  switch (family) {
    case Family::kXeon: factor = 0.95; break;
    case Family::kPentium4: factor = 0.85; break;
    case Family::kPentiumD: factor = 0.90; break;
    default: factor = 1.10; break;  // Opteron families
  }
  factor *= 1.0 + 0.035 * std::log2(r.memory_frequency_mhz / 400.0);
  factor *= 1.0 + 0.015 * std::log2(std::max(r.l2_size_kb, 1.0) / 1024.0);
  return factor;
}

double expected_rating(const FamilyMarket& m, const Announcement& r) {
  double perf = m.base_rating;
  perf *= std::pow(r.processor_speed_mhz / m.ref_speed_mhz, m.alpha_speed);
  perf *= 1.0 + m.beta_l2 * std::log2(std::max(r.l2_size_kb, 1.0) / m.l2_ref_kb);
  perf *= 1.0 + m.beta_memfreq * std::log2(r.memory_frequency_mhz / 400.0);
  perf *= 1.0 + m.beta_memsize * std::log2(std::max(r.memory_size_gb, 0.5) / 4.0);
  if (m.beta_bus != 0.0) {
    perf *= 1.0 + m.beta_bus * std::log2(r.bus_frequency_mhz / 800.0);
  }
  if (r.smt) perf *= 1.0 + m.beta_smt;
  if (r.l3_size_kb > 0) perf *= 1.02;
  if (m.chips_exponent > 0.0 && r.total_chips > 1) {
    perf *= std::pow(static_cast<double>(r.total_chips), m.chips_exponent);
  }
  if (r.cores_per_chip > 1) {
    perf *= std::pow(static_cast<double>(r.cores_per_chip), m.cores_exponent);
  }
  return perf;
}

}  // namespace

FamilyStats paper_family_stats(Family family) {
  switch (family) {
    case Family::kXeon: return {216, 1.34, 0.09};
    case Family::kPentium4: return {66, 3.72, 0.34};
    case Family::kPentiumD: return {71, 1.45, 0.10};
    case Family::kOpteron: return {138, 1.40, 0.08};
    case Family::kOpteron2: return {152, 1.58, 0.11};
    case Family::kOpteron4: return {158, 1.70, 0.12};
    case Family::kOpteron8: return {58, 1.68, 0.13};
  }
  return {};
}

double ground_truth_rating(const Announcement& record) {
  return expected_rating(market_for(record.family), record);
}

std::vector<Announcement> generate_family(Family family,
                                          const GeneratorOptions& options) {
  DSML_REQUIRE(options.record_scale > 0.0,
               "generate_family: record_scale must be positive");
  const FamilyMarket market = market_for(family);
  const FamilyStats stats = paper_family_stats(family);
  const auto n = std::max<std::size_t>(
      12, static_cast<std::size_t>(std::lround(
              static_cast<double>(stats.records) * options.record_scale)));
  Rng rng(options.seed ^ (0x1234ULL + static_cast<std::uint64_t>(family) * 77));

  const int chips = family_chip_count(family);
  std::vector<Announcement> records;
  records.reserve(n);
  const auto& apps = specint2000_apps();

  for (std::size_t i = 0; i < n; ++i) {
    Announcement r;
    r.family = family;
    // ~55% of announcements in the training year.
    r.year = rng.chance(0.55) ? 2005 : 2006;

    // Pick a SKU on the market that year; vendors keep announcing
    // previous-year parts, so 2006 admits the full menu.
    std::vector<const ProcessorSku*> available;
    for (const auto& sku : market.skus) {
      if (sku.year_intro <= r.year) available.push_back(&sku);
    }
    DSML_ASSERT(!available.empty());
    // Later announcements skew toward newer/faster SKUs.
    const ProcessorSku& sku = *available[static_cast<std::size_t>(
        rng.below(available.size()))];

    r.company = vendors()[static_cast<std::size_t>(rng.below(vendors().size()))];
    r.system_name =
        r.company + std::string(" server ") +
        std::to_string(1000 + static_cast<int>(rng.below(8)) * 100 + chips);
    r.processor_model = sku.model;
    r.bus_frequency_mhz = sku.bus_mhz;
    r.processor_speed_mhz = sku.speed_mhz;
    r.fpu_integrated = true;
    r.total_chips = chips;
    r.cores_per_chip = sku.cores_per_chip;
    r.total_cores = chips * sku.cores_per_chip;
    r.smt = sku.smt;
    r.parallel = chips > 1 || r.total_cores > 1;

    const bool intel = family == Family::kXeon || family == Family::kPentium4 ||
                       family == Family::kPentiumD;
    r.l1i_size_kb = intel ? 12 : 64;  // trace cache (uops) vs K8 64KB
    r.l1d_size_kb = intel ? 16 : 64;
    r.l1_per_core = true;
    r.l1_shared = false;
    r.l2_size_kb = sku.l2_kb;
    r.l2_on_chip = true;
    r.l2_shared = sku.cores_per_chip > 1 && intel;
    r.l2_unified = true;
    r.l3_size_kb = sku.l3_kb;
    r.l3_on_chip = sku.l3_kb > 0;
    r.l3_shared = sku.l3_kb > 0;
    r.l3_unified = sku.l3_kb > 0;

    // Platform configuration menus with year drift.
    const auto& freqs =
        r.year == 2005 ? market.memfreq_2005 : market.memfreq_2006;
    r.memory_frequency_mhz =
        freqs[static_cast<std::size_t>(rng.below(freqs.size()))];
    const double mem_steps[] = {1, 2, 4, 8, 16, 32};
    // SMPs ship with more memory.
    const std::size_t mem_lo = chips >= 4 ? 2 : 0;
    r.memory_size_gb = mem_steps[mem_lo + static_cast<std::size_t>(rng.below(
                                              6 - mem_lo))];
    const double hdd_sizes[] = {36, 73, 146, 300};
    r.hdd_size_gb =
        hdd_sizes[static_cast<std::size_t>(rng.below(4))];
    r.hdd_rpm = rng.chance(0.5) ? 10000 : 15000;
    r.hdd_type = rng.chance(0.6) ? "SCSI" : (rng.chance(0.5) ? "SAS" : "SATA");
    r.extra_components = rng.chance(0.8) ? "none" : "raid-controller";

    // Published ratings: hidden function -> per-app runtimes -> SPEC metric.
    const double perf = expected_rating(market, r) *
                        rng.lognormal(0.0, market.noise_sigma);
    r.int_app_runtimes.reserve(apps.size());
    for (const auto& app : apps) {
      // Per-app spread around the system's mean performance.
      const double app_perf = perf * rng.lognormal(0.0, 0.01);
      r.int_app_runtimes.push_back(100.0 * app.reference_seconds / app_perf);
    }
    r.spec_rating = spec_rating(apps, r.int_app_runtimes);

    const auto& fp_apps = specfp2000_apps();
    const double fp_perf = perf * fp_relative_factor(family, r) *
                           rng.lognormal(0.0, market.noise_sigma * 0.5);
    r.fp_app_runtimes.reserve(fp_apps.size());
    for (const auto& app : fp_apps) {
      const double app_perf = fp_perf * rng.lognormal(0.0, 0.012);
      r.fp_app_runtimes.push_back(100.0 * app.reference_seconds / app_perf);
    }
    r.spec_fp_rating = spec_rating(fp_apps, r.fp_app_runtimes);
    records.push_back(std::move(r));
  }
  return records;
}

std::vector<Announcement> generate_all(const GeneratorOptions& options) {
  std::vector<Announcement> all;
  for (Family family : all_families()) {
    auto part = generate_family(family, options);
    all.insert(all.end(), part.begin(), part.end());
  }
  return all;
}

}  // namespace dsml::specdata
