// The SPEC CPU2000 rating metric (paper §4).
//
// SPECint2000 contains 12 integer applications (SPECfp2000 has 14). A vendor
// runs each application, computes the ratio of SPEC's reference time to the
// measured time (x100), and the rating is the geometric mean of the ratios.
// The chronological experiments predict this rating, so we implement the
// metric faithfully: reference times below are the published CPU2000
// reference machine numbers (seconds on the Sun Ultra 5_10, 300 MHz).
#pragma once

#include <span>
#include <string>
#include <vector>

namespace dsml::specdata {

struct SpecApp {
  std::string name;
  double reference_seconds;
};

/// The 12 SPECint2000 applications with reference runtimes.
const std::vector<SpecApp>& specint2000_apps();

/// The 14 SPECfp2000 applications with reference runtimes.
const std::vector<SpecApp>& specfp2000_apps();

/// Ratio for one application: 100 * reference / measured.
double spec_ratio(double reference_seconds, double measured_seconds);

/// A SPEC rating: geometric mean of per-application ratios.
/// `measured_seconds` must align with `apps` and be positive.
double spec_rating(std::span<const SpecApp> apps,
                   std::span<const double> measured_seconds);

/// SPECrate variant: throughput rating when `copies` concurrent copies of
/// each application run; rating uses the rate reference formula
/// (copies * reference / elapsed), geometric-mean aggregated.
double spec_rate_rating(std::span<const SpecApp> apps,
                        std::span<const double> elapsed_seconds, int copies);

}  // namespace dsml::specdata
