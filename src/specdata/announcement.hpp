// SPEC announcement records: the 32 system parameters each published result
// reports (paper §4.1), plus the announcement year and the published rating.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace dsml::specdata {

/// Processor families the paper analyses.
enum class Family : std::uint8_t {
  kXeon,
  kPentium4,
  kPentiumD,
  kOpteron,    // single processor
  kOpteron2,   // 2-way SMP
  kOpteron4,   // 4-way SMP
  kOpteron8,   // 8-way SMP
};

const char* to_string(Family family) noexcept;
std::vector<Family> all_families();

/// Number of processors (chips) in systems of a family.
int family_chip_count(Family family) noexcept;

/// One published SPEC result. Field names follow the paper's §4.1 inventory
/// of "32 system parameters".
struct Announcement {
  int year = 2005;
  Family family = Family::kXeon;

  // identity
  std::string company;
  std::string system_name;
  std::string processor_model;

  // processor & platform
  double bus_frequency_mhz = 800;
  double processor_speed_mhz = 3000;
  bool fpu_integrated = true;
  int total_cores = 1;
  int total_chips = 1;
  int cores_per_chip = 1;
  bool smt = false;
  bool parallel = false;

  // cache hierarchy
  double l1i_size_kb = 12;
  double l1d_size_kb = 16;
  bool l1_per_core = true;
  bool l1_shared = false;
  double l2_size_kb = 1024;
  bool l2_on_chip = true;
  bool l2_shared = false;
  bool l2_unified = true;
  double l3_size_kb = 0;
  bool l3_on_chip = false;
  bool l3_per_core = false;
  bool l3_shared = false;
  bool l3_unified = false;
  double l4_size_kb = 0;
  int l4_shared_count = 0;
  bool l4_on_chip = false;

  // memory & storage
  double memory_size_gb = 2;
  double memory_frequency_mhz = 400;
  double hdd_size_gb = 73;
  double hdd_rpm = 10000;
  std::string hdd_type = "SCSI";
  std::string extra_components = "none";

  // published results: SPECint2000 rating (the paper's target), the
  // SPECfp2000 rating, and the per-application runtimes both are computed
  // from (the announcements publish these too — §4.1).
  double spec_rating = 0.0;
  double spec_fp_rating = 0.0;
  std::vector<double> int_app_runtimes;  ///< seconds, aligned with specint2000_apps()
  std::vector<double> fp_app_runtimes;   ///< seconds, aligned with specfp2000_apps()
};

/// What a chronological model predicts. The paper presents SPECint2000 rate
/// results and notes that individual applications "can also be accurately
/// estimated" (omitted for space); both are supported here.
struct RatingTarget {
  enum class Kind { kIntRate, kFpRate, kIntApp, kFpApp };
  Kind kind = Kind::kIntRate;
  std::size_t app_index = 0;  ///< for kIntApp / kFpApp

  static RatingTarget int_rate() { return {}; }
  static RatingTarget fp_rate() { return {Kind::kFpRate, 0}; }
  static RatingTarget int_app(std::size_t index) {
    return {Kind::kIntApp, index};
  }
  static RatingTarget fp_app(std::size_t index) {
    return {Kind::kFpApp, index};
  }

  /// Human-readable target name ("specint_rate", "ratio:181.mcf", ...).
  std::string name() const;
  /// The target value for one record (app targets are SPEC ratios).
  double value(const Announcement& record) const;
};

/// Build the modelling dataset: 32 feature columns (typed as in §3.4 —
/// numerics, flags, categoricals) plus the requested target (SPECint rate by
/// default).
data::Dataset to_dataset(const std::vector<Announcement>& records,
                         const RatingTarget& target = RatingTarget::int_rate());

/// Split records by announcement year: (train = records with year <=
/// `train_until`, test = the rest). The returned datasets share level
/// dictionaries so encoders transfer.
std::pair<data::Dataset, data::Dataset> chronological_split(
    const std::vector<Announcement>& records, int train_until = 2005,
    const RatingTarget& target = RatingTarget::int_rate());

}  // namespace dsml::specdata
