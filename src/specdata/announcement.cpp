#include "specdata/announcement.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "specdata/spec_metric.hpp"

namespace dsml::specdata {

std::string RatingTarget::name() const {
  switch (kind) {
    case Kind::kIntRate: return "specint_rate";
    case Kind::kFpRate: return "specfp_rate";
    case Kind::kIntApp: return "ratio:" + specint2000_apps().at(app_index).name;
    case Kind::kFpApp: return "ratio:" + specfp2000_apps().at(app_index).name;
  }
  return "?";
}

double RatingTarget::value(const Announcement& record) const {
  switch (kind) {
    case Kind::kIntRate:
      return record.spec_rating;
    case Kind::kFpRate:
      return record.spec_fp_rating;
    case Kind::kIntApp: {
      DSML_REQUIRE(app_index < record.int_app_runtimes.size(),
                   "RatingTarget: int app index out of range");
      return spec_ratio(specint2000_apps()[app_index].reference_seconds,
                        record.int_app_runtimes[app_index]);
    }
    case Kind::kFpApp: {
      DSML_REQUIRE(app_index < record.fp_app_runtimes.size(),
                   "RatingTarget: fp app index out of range");
      return spec_ratio(specfp2000_apps()[app_index].reference_seconds,
                        record.fp_app_runtimes[app_index]);
    }
  }
  DSML_ASSERT(false);
}

const char* to_string(Family family) noexcept {
  switch (family) {
    case Family::kXeon: return "Xeon";
    case Family::kPentium4: return "Pentium 4";
    case Family::kPentiumD: return "Pentium D";
    case Family::kOpteron: return "Opteron";
    case Family::kOpteron2: return "Opteron 2";
    case Family::kOpteron4: return "Opteron 4";
    case Family::kOpteron8: return "Opteron 8";
  }
  return "?";
}

std::vector<Family> all_families() {
  return {Family::kXeon,     Family::kPentium4, Family::kPentiumD,
          Family::kOpteron,  Family::kOpteron2, Family::kOpteron4,
          Family::kOpteron8};
}

int family_chip_count(Family family) noexcept {
  switch (family) {
    case Family::kOpteron2: return 2;
    case Family::kOpteron4: return 4;
    case Family::kOpteron8: return 8;
    default: return 1;
  }
}

data::Dataset to_dataset(const std::vector<Announcement>& records,
                         const RatingTarget& target) {
  DSML_REQUIRE(!records.empty(), "to_dataset: no records");
  const std::size_t n = records.size();

  auto numeric = [&](const char* name, auto getter) {
    std::vector<double> v;
    v.reserve(n);
    for (const auto& r : records) v.push_back(static_cast<double>(getter(r)));
    return data::Column::numeric(name, std::move(v));
  };
  auto flag = [&](const char* name, auto getter) {
    std::vector<bool> v;
    v.reserve(n);
    for (const auto& r : records) v.push_back(getter(r));
    return data::Column::flag(name, std::move(v));
  };
  auto categorical = [&](const char* name, auto getter) {
    std::vector<std::string> v;
    v.reserve(n);
    for (const auto& r : records) v.push_back(getter(r));
    return data::Column::categorical(name, std::move(v));
  };

  data::Dataset ds;
  ds.add_feature(categorical("company", [](auto& r) { return r.company; }));
  ds.add_feature(
      categorical("system_name", [](auto& r) { return r.system_name; }));
  ds.add_feature(categorical("processor_model",
                             [](auto& r) { return r.processor_model; }));
  ds.add_feature(numeric("bus_frequency_mhz",
                         [](auto& r) { return r.bus_frequency_mhz; }));
  ds.add_feature(numeric("processor_speed_mhz",
                         [](auto& r) { return r.processor_speed_mhz; }));
  ds.add_feature(flag("fpu_integrated", [](auto& r) { return r.fpu_integrated; }));
  ds.add_feature(numeric("total_cores", [](auto& r) { return r.total_cores; }));
  ds.add_feature(numeric("total_chips", [](auto& r) { return r.total_chips; }));
  ds.add_feature(
      numeric("cores_per_chip", [](auto& r) { return r.cores_per_chip; }));
  ds.add_feature(flag("smt", [](auto& r) { return r.smt; }));
  ds.add_feature(flag("parallel", [](auto& r) { return r.parallel; }));
  ds.add_feature(numeric("l1i_size_kb", [](auto& r) { return r.l1i_size_kb; }));
  ds.add_feature(numeric("l1d_size_kb", [](auto& r) { return r.l1d_size_kb; }));
  ds.add_feature(flag("l1_per_core", [](auto& r) { return r.l1_per_core; }));
  ds.add_feature(flag("l1_shared", [](auto& r) { return r.l1_shared; }));
  ds.add_feature(numeric("l2_size_kb", [](auto& r) { return r.l2_size_kb; }));
  ds.add_feature(flag("l2_on_chip", [](auto& r) { return r.l2_on_chip; }));
  ds.add_feature(flag("l2_shared", [](auto& r) { return r.l2_shared; }));
  ds.add_feature(flag("l2_unified", [](auto& r) { return r.l2_unified; }));
  ds.add_feature(numeric("l3_size_kb", [](auto& r) { return r.l3_size_kb; }));
  ds.add_feature(flag("l3_on_chip", [](auto& r) { return r.l3_on_chip; }));
  ds.add_feature(flag("l3_per_core", [](auto& r) { return r.l3_per_core; }));
  ds.add_feature(flag("l3_shared", [](auto& r) { return r.l3_shared; }));
  ds.add_feature(flag("l3_unified", [](auto& r) { return r.l3_unified; }));
  ds.add_feature(numeric("l4_size_kb", [](auto& r) { return r.l4_size_kb; }));
  ds.add_feature(
      numeric("l4_shared_count", [](auto& r) { return r.l4_shared_count; }));
  ds.add_feature(flag("l4_on_chip", [](auto& r) { return r.l4_on_chip; }));
  ds.add_feature(
      numeric("memory_size_gb", [](auto& r) { return r.memory_size_gb; }));
  ds.add_feature(numeric("memory_frequency_mhz",
                         [](auto& r) { return r.memory_frequency_mhz; }));
  ds.add_feature(numeric("hdd_size_gb", [](auto& r) { return r.hdd_size_gb; }));
  ds.add_feature(numeric("hdd_rpm", [](auto& r) { return r.hdd_rpm; }));
  ds.add_feature(categorical("hdd_type", [](auto& r) { return r.hdd_type; }));
  ds.add_feature(categorical("extra_components",
                             [](auto& r) { return r.extra_components; }));

  std::vector<double> target_values;
  target_values.reserve(n);
  for (const auto& r : records) target_values.push_back(target.value(r));
  ds.set_target(target.name(), std::move(target_values));
  return ds;
}

std::pair<data::Dataset, data::Dataset> chronological_split(
    const std::vector<Announcement>& records, int train_until,
    const RatingTarget& target) {
  const data::Dataset all = to_dataset(records, target);
  std::vector<std::size_t> train_rows;
  std::vector<std::size_t> test_rows;
  for (std::size_t i = 0; i < records.size(); ++i) {
    (records[i].year <= train_until ? train_rows : test_rows).push_back(i);
  }
  DSML_REQUIRE(!train_rows.empty() && !test_rows.empty(),
               "chronological_split: a split side is empty");
  return {all.select_rows(train_rows), all.select_rows(test_rows)};
}

}  // namespace dsml::specdata
