#include "dse/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <span>
#include <utility>

#include "common/failpoint.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "ml/ensemble.hpp"
#include "ml/fit_score.hpp"
#include "ml/metrics.hpp"
#include "sim/core.hpp"

namespace dsml::dse {

// ---------------------------------------------------------------------------
// Evaluators

DatasetEvaluator::DatasetEvaluator(const data::Dataset& truth)
    : truth_(&truth) {
  DSML_REQUIRE(truth.has_target(), "DatasetEvaluator: dataset lacks target");
}

SweepShard DatasetEvaluator::evaluate(const std::vector<std::size_t>& indices) {
  SweepShard shard;
  shard.indices = indices;
  shard.cycles.reserve(indices.size());
  for (const std::size_t idx : indices) {
    DSML_REQUIRE(idx < truth_->n_rows(),
                 "DatasetEvaluator: index outside the dataset");
    shard.cycles.push_back(truth_->target_at(idx));
  }
  return shard;
}

LocalSweepEvaluator::LocalSweepEvaluator(std::string app, SweepOptions options)
    : app_(std::move(app)), options_(std::move(options)) {}

SweepShard LocalSweepEvaluator::evaluate(
    const std::vector<std::size_t>& indices) {
  return run_sweep_shard(app_, options_, indices);
}

// ---------------------------------------------------------------------------
// Scorers

double Scorer::true_error(const std::vector<double>& predictions,
                          const data::Dataset& score) const {
  if (!score.has_target()) return 0.0;
  return ml::mape(predictions, score.target());
}

void Scorer::finalize(const std::vector<double>&, CampaignResult&) const {}

double synthesized_energy(const sim::ProcessorConfig& c) {
  // Static (leakage ~ SRAM size) + dynamic (logic width, queue CAMs, FU
  // pools, predictor tables) contributions, each scaled so no single
  // parameter dominates the Table-1 menus. Arbitrary units.
  double e = 10.0;
  e += 0.35 * static_cast<double>(c.width) * static_cast<double>(c.width);
  e += 0.004 * static_cast<double>(c.ruu_size);
  e += 0.006 * static_cast<double>(c.lsq_size);
  e += 0.020 * static_cast<double>(c.l1d_size_kb + c.l1i_size_kb);
  e += 0.30 * static_cast<double>(c.l1d_assoc + c.l1i_assoc);
  e += 0.004 * static_cast<double>(c.l2_size_kb);
  e += 0.10 * static_cast<double>(c.l2_assoc);
  e += 1.50 * static_cast<double>(c.l3_size_mb);
  e += 0.15 * static_cast<double>(c.l3_assoc);
  e += 0.002 * static_cast<double>(c.itlb_size_kb + c.dtlb_size_kb);
  e += 0.40 * static_cast<double>(c.fu.ialu + c.fu.fpalu);
  e += 0.60 * static_cast<double>(c.fu.imult + c.fu.fpmult);
  e += 0.50 * static_cast<double>(c.fu.memport);
  switch (c.branch_predictor) {
    case sim::BranchPredictorKind::kPerfect: e += 0.0; break;
    case sim::BranchPredictorKind::kBimodal: e += 0.8; break;
    case sim::BranchPredictorKind::kTwoLevel: e += 1.6; break;
    case sim::BranchPredictorKind::kCombination: e += 2.4; break;
  }
  if (c.issue_wrong) e += 0.5;  // wrong-path issue burns fetch/issue energy
  return e;
}

ParetoScorer::ParetoScorer() {
  const std::vector<sim::ProcessorConfig> space = sim::enumerate_design_space();
  energy_.reserve(space.size());
  for (const auto& c : space) energy_.push_back(synthesized_energy(c));
}

void ParetoScorer::finalize(const std::vector<double>& best_predictions,
                            CampaignResult& result) const {
  DSML_REQUIRE(best_predictions.size() == energy_.size(),
               "ParetoScorer: predictions do not cover the design space");
  // Non-dominated set of (predicted cycles, energy): walk configurations in
  // ascending predicted-cycle order (index breaks ties, so the frontier is
  // deterministic) and keep every strict improvement in energy.
  std::vector<std::size_t> order(best_predictions.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (best_predictions[a] != best_predictions[b]) {
      return best_predictions[a] < best_predictions[b];
    }
    return a < b;
  });
  double best_energy = std::numeric_limits<double>::infinity();
  for (const std::size_t idx : order) {
    if (energy_[idx] < best_energy) {
      best_energy = energy_[idx];
      result.pareto.push_back(
          ParetoPoint{idx, best_predictions[idx], energy_[idx]});
    }
  }
}

// ---------------------------------------------------------------------------
// Campaign

const CampaignRound* CampaignResult::final_round() const {
  for (auto it = rounds.rbegin(); it != rounds.rend(); ++it) {
    if (it->has_select) return &*it;
  }
  return nullptr;
}

Campaign::Campaign(const CampaignConfig& config) : config_(config) {
  DSML_REQUIRE(config.space != nullptr, "Campaign: no candidate space");
  DSML_REQUIRE(config.sampler != nullptr, "Campaign: no sampler");
  DSML_REQUIRE(config.evaluator != nullptr, "Campaign: no evaluator");
  DSML_REQUIRE(!config.rounds.empty() && !config.model_names.empty(),
               "Campaign: empty round plan or model menu");
}

CampaignResult Campaign::run() {
  trace::Span campaign_span([&] { return "dse.campaign " + config_.app; },
                            "dse");
  static metrics::Counter& evals = metrics::counter("dse.model_evals");
  static metrics::Counter& rounds_run = metrics::counter("dse.campaign.rounds");
  static metrics::Counter& points = metrics::counter("dse.campaign.points");

  const data::Dataset& space = *config_.space;
  const data::Dataset& score = config_.score ? *config_.score : space;
  static const CyclesScorer default_scorer;
  const Scorer& scorer = config_.scorer ? *config_.scorer : default_scorer;

  CampaignResult result;
  result.app = config_.app;
  result.sampler = config_.sampler->name();
  result.evaluator = config_.evaluator->name();
  result.objective = scorer.name();

  std::vector<std::uint8_t> done(space.n_rows(), 0);
  std::vector<double> known(space.n_rows(), 0.0);
  std::vector<std::size_t> evaluated;
  std::vector<double> disagreement;
  const bool cumulative = config_.sampler->cumulative();

  for (std::size_t r = 0; r < config_.rounds.size(); ++r) {
    const SamplerRound& spec = config_.rounds[r];
    rounds_run.add();

    // --- select ---
    SamplerContext ctx;
    ctx.space_rows = space.n_rows();
    ctx.evaluated = &done;
    ctx.evaluated_count = evaluated.size();
    ctx.disagreement = &disagreement;
    ctx.space = &space;
    const std::vector<std::size_t> picks = config_.sampler->select(spec, ctx);
    DSML_REQUIRE(!picks.empty(), "Campaign: sampler selected no points");

    // --- evaluate, with one bounded retry: a transient evaluator failure
    // (a fleet round that lost every worker, an injected fault) costs a
    // failure record and a second attempt, never the table ---
    SweepShard shard;
    bool have_shard = false;
    for (std::size_t attempt = 0; attempt < 2 && !have_shard; ++attempt) {
      try {
        DSML_FAIL("dse.campaign.round");
        shard = config_.evaluator->evaluate(picks);
        have_shard = true;
      } catch (const std::exception& e) {
        result.failures.push_back(
            FailureRecord{"campaign round " + spec.label +
                              (attempt == 0 ? "" : " retry"),
                          error_kind(e), e.what()});
      }
      for (FailureRecord& f : config_.evaluator->drain_failures()) {
        result.failures.push_back(std::move(f));
      }
    }
    if (!have_shard) continue;  // the round is lost; later rounds still run
    DSML_REQUIRE(shard.indices.size() == shard.cycles.size() &&
                     shard.indices.size() == picks.size(),
                 "Campaign: evaluator answered a different index set");

    for (std::size_t i = 0; i < shard.indices.size(); ++i) {
      const std::size_t idx = shard.indices[i];
      DSML_REQUIRE(idx < space.n_rows(), "Campaign: index outside the space");
      if (!done[idx]) {
        done[idx] = 1;
        evaluated.push_back(idx);
      }
      known[idx] = shard.cycles[i];
    }
    std::sort(evaluated.begin(), evaluated.end());
    points.add(picks.size());

    // --- training set: everything simulated so far (cumulative samplers)
    // or just this round's fresh sample ---
    const std::vector<std::size_t>& train_idx = cumulative ? evaluated : picks;
    data::Dataset train = space.select_rows(train_idx);
    {
      std::vector<double> targets;
      targets.reserve(train_idx.size());
      for (const std::size_t idx : train_idx) targets.push_back(known[idx]);
      train.set_target(space.has_target() ? space.target_name() : "cycles",
                       std::move(targets));
    }

    // --- retrain: the model menu fans out across the pool; each cell owns
    // its models and seeds and writes only slots[i]. The reduction below
    // stays serial so Select tie-breaking matches the menu order exactly ---
    struct EvalSlot {
      std::optional<CampaignCell> cell;
      std::vector<ml::FoldFailure> fold_failures;
      std::optional<FailureRecord> failure;
    };
    const std::string suffix = config_.label_cells ? "@" + spec.label : "";
    std::vector<EvalSlot> slots(config_.model_names.size());
    const auto evaluate_cell = [&](std::size_t i) {
      const std::string& model_name = config_.model_names[i];
      trace::Span eval_span([&] { return "evaluate " + model_name; }, "dse");
      evals.add();
      engine::FitScoreRequest request;
      try {
        request.model = ml::make_model(model_name, config_.zoo);
      } catch (const std::exception& e) {
        slots[i].failure =
            FailureRecord{model_name + suffix, error_kind(e), e.what()};
        return;
      }
      request.train = &train;
      request.estimate = config_.estimate;
      request.validation.repeats = config_.cv_repeats;
      request.validation.seed = config_.sample_seed * 977 + spec.seed_salt;
      request.score = &score;
      request.failpoint = config_.eval_failpoint;
      engine::FitScoreResult cell = engine::fit_and_score(request);
      if (!cell.ok()) {
        slots[i].failure = FailureRecord{model_name + suffix,
                                         cell.failure->error_type,
                                         cell.failure->message};
        return;
      }
      slots[i].fold_failures = std::move(cell.estimate.failed);

      CampaignCell c;
      c.model = model_name;
      c.estimated_error_max = cell.estimate.maximum;
      c.estimated_error_avg = cell.estimate.average;
      c.true_error = scorer.true_error(cell.predictions, score);
      c.fit_seconds = cell.fit_seconds;
      c.predictions = std::move(cell.predictions);
      c.fitted = std::move(cell.model);
      slots[i].cell = std::move(c);
    };
    if (config_.parallel_cells) {
      parallel_for(0, config_.model_names.size(), evaluate_cell);
    } else {
      for (std::size_t i = 0; i < config_.model_names.size(); ++i) {
        evaluate_cell(i);
      }
    }

    // --- score / reduce ---
    CampaignRound round;
    round.label = spec.label;
    round.rate = spec.rate > 0.0
                     ? spec.rate
                     : static_cast<double>(train.n_rows()) /
                           static_cast<double>(space.n_rows());
    round.new_points = picks.size();
    round.train_rows = train.n_rows();
    double best_estimate = std::numeric_limits<double>::infinity();
    round.select.rate = round.rate;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      EvalSlot& slot = slots[i];
      if (slot.failure.has_value()) {
        result.failures.push_back(std::move(*slot.failure));
        continue;
      }
      for (const ml::FoldFailure& f : slot.fold_failures) {
        result.failures.push_back(FailureRecord{
            config_.model_names[i] + suffix + " fold " +
                std::to_string(f.fold),
            f.error_type, f.message});
      }
      CampaignCell& cell = *slot.cell;
      round.has_select = true;
      if (cell.estimated_error_max < best_estimate) {
        best_estimate = cell.estimated_error_max;
        round.select.chosen_model = cell.model;
        round.select.estimated_error = cell.estimated_error_max;
        round.select.true_error = cell.true_error;
      }
      round.cells.push_back(std::move(cell));
    }

    // --- committee disagreement for the next adaptive round ---
    disagreement.clear();
    if (cumulative && r + 1 < config_.rounds.size() && round.cells.size() > 1) {
      std::vector<std::span<const double>> members;
      members.reserve(round.cells.size());
      for (const CampaignCell& c : round.cells) {
        members.emplace_back(c.predictions.data(), c.predictions.size());
      }
      disagreement = ml::ensemble_disagreement(members);
    }
    result.rounds.push_back(std::move(round));
  }

  result.evaluated = std::move(evaluated);
  if (const CampaignRound* final = result.final_round()) {
    for (const CampaignCell& c : final->cells) {
      if (c.model == final->select.chosen_model) {
        scorer.finalize(c.predictions, result);
        break;
      }
    }
  }
  return result;
}

std::vector<SamplerRound> budget_rounds(std::size_t budget,
                                        std::size_t rounds) {
  DSML_REQUIRE(rounds > 0, "budget_rounds: need at least one round");
  DSML_REQUIRE(budget >= rounds, "budget_rounds: budget smaller than rounds");
  std::vector<SamplerRound> plan(rounds);
  const std::size_t base = budget / rounds;
  const std::size_t extra = budget % rounds;
  for (std::size_t r = 0; r < rounds; ++r) {
    plan[r].count = base + (r < extra ? 1 : 0);
    plan[r].label = "r" + std::to_string(r + 1);
    plan[r].seed_salt = r + 1;
  }
  return plan;
}

std::string format_failure_summary(
    const std::vector<FailureRecord>& failures) {
  if (failures.empty()) return {};
  std::string out =
      std::to_string(failures.size()) + " failure(s) tolerated:\n";
  for (const auto& f : failures) {
    out += "  " + f.name + " [" + f.error_type + "] " + f.message + "\n";
  }
  return out;
}

}  // namespace dsml::dse
