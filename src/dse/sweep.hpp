// Full design-space sweep: simulate all 4608 Table-1 configurations for one
// application and return the cycle counts — the ground truth the sampled-DSE
// experiments model.
//
// The pipeline mirrors the paper's §4.1 methodology: generate the
// application's full instruction stream, run SimPoint (BBV + k-means) to
// pick representative intervals, and simulate only the reduced trace for
// every configuration.
//
// A sweep is minutes of single-core CPU, so results are cached as CSV under
// the cache directory (DSML_CACHE_DIR env var, else ".dsml_cache" in the
// working directory), keyed by every input that affects the output.
#pragma once

#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "workload/simpoint.hpp"

namespace dsml::dse {

struct SweepOptions {
  std::size_t full_trace_instructions = 1'000'000;
  std::size_t interval_instructions = 8192;
  std::size_t max_clusters = 5;
  std::uint64_t trace_seed = 0;   ///< 0 = the app profile's seed
  bool use_cache = true;
  std::string cache_dir;          ///< empty = env/default resolution
};

struct SweepResult {
  std::string app;
  std::vector<double> cycles;     ///< one per design-space configuration
  std::size_t simpoint_count = 0; ///< intervals SimPoint selected
  std::size_t simulated_instructions = 0;  ///< per configuration
  bool from_cache = false;
  double seconds = 0.0;           ///< wall time of the sweep (0 if cached)
};

/// One worker's slice of a sharded sweep: the configuration indices it
/// simulated and their cycle counts, index-aligned. simpoint_count and
/// simulated_instructions are whole-sweep properties (they depend only on
/// the app and options, not the shard), repeated here so merge can verify
/// every shard was computed under identical conditions.
struct SweepShard {
  std::vector<std::size_t> indices;
  std::vector<double> cycles;
  std::size_t simpoint_count = 0;
  std::size_t simulated_instructions = 0;
};

/// Resolve the cache directory (explicit option > DSML_CACHE_DIR > default).
std::string resolve_cache_dir(const std::string& explicit_dir);

/// Run (or load) the sweep for one application profile name.
SweepResult run_design_space_sweep(const std::string& app,
                                   const SweepOptions& options = {});

/// Simulate only the given configuration indices (the distributed-DSE
/// worker's unit of work). Trace generation and SimPoint selection are
/// deterministic in (app, options), so a shard's cycles are bit-identical
/// to the same indices of a full local sweep — that is what makes the
/// coordinator's merged table byte-identical to the single-process run.
/// With use_cache, a complete cached sweep is sliced instead of
/// re-simulated; shards never *write* the cache (they are partial).
/// Throws InvalidArgument on an empty, duplicate, or out-of-range index set.
SweepShard run_sweep_shard(const std::string& app, const SweepOptions& options,
                           const std::vector<std::size_t>& indices);

/// Reassemble a full SweepResult from shards. Requires exact coverage —
/// every configuration present exactly once — and identical
/// simpoints/instructions across shards; throws StateError otherwise, so a
/// lost shard can never produce a silently partial table.
SweepResult merge_sweep_shards(const std::string& app,
                               const std::vector<SweepShard>& shards);

/// The modelling dataset for a sweep: 24 feature columns (Table 1) plus the
/// cycle-count target.
data::Dataset sweep_dataset(const SweepResult& sweep);

}  // namespace dsml::dse
