#include "dse/sampler.hpp"

#include <algorithm>
#include <functional>
#include <limits>

#include "common/error.hpp"
#include "data/split.hpp"

namespace dsml::dse {

namespace {

/// The not-yet-evaluated rows, ascending.
std::vector<std::size_t> unevaluated_pool(const SamplerContext& ctx) {
  std::vector<std::size_t> pool;
  pool.reserve(ctx.space_rows - ctx.evaluated_count);
  for (std::size_t i = 0; i < ctx.space_rows; ++i) {
    if (!ctx.evaluated || !(*ctx.evaluated)[i]) pool.push_back(i);
  }
  return pool;
}

/// `count` uniform picks from `pool` without replacement, sorted ascending.
std::vector<std::size_t> uniform_from_pool(const std::vector<std::size_t>& pool,
                                           std::size_t count, Rng& rng) {
  DSML_REQUIRE(count <= pool.size(),
               "sampler: budget exceeds the unevaluated pool");
  std::vector<std::size_t> picks =
      rng.sample_without_replacement(pool.size(), count);
  for (auto& p : picks) p = pool[p];
  std::sort(picks.begin(), picks.end());
  return picks;
}

/// Row-major min-max-normalized feature matrix of the candidate space
/// (categoricals enter as level codes). Constant columns map to 0, so they
/// never contribute to a distance.
std::vector<double> normalized_features(const data::Dataset& space) {
  const std::size_t rows = space.n_rows();
  const std::size_t cols = space.n_features();
  std::vector<double> matrix(rows * cols);
  for (std::size_t c = 0; c < cols; ++c) {
    const data::Column& column = space.feature(c);
    double lo = column.numeric_at(0);
    double hi = lo;
    for (std::size_t r = 1; r < rows; ++r) {
      lo = std::min(lo, column.numeric_at(r));
      hi = std::max(hi, column.numeric_at(r));
    }
    const double span = hi - lo;
    for (std::size_t r = 0; r < rows; ++r) {
      matrix[r * cols + c] =
          span > 0.0 ? (column.numeric_at(r) - lo) / span : 0.0;
    }
  }
  return matrix;
}

double squared_distance(const double* a, const double* b, std::size_t cols) {
  double sum = 0.0;
  for (std::size_t c = 0; c < cols; ++c) {
    const double diff = a[c] - b[c];
    sum += diff * diff;
  }
  return sum;
}

/// Greedy farthest-point batch: repeatedly take the candidate farthest (in
/// min-distance terms) from everything already referenced, ties on ascending
/// index. With no reference rows the sweep starts at the candidate nearest
/// the space centroid — deterministic, and central beats a corner as the
/// first probe of an unexplored grid. Returns `count` indices, ascending.
std::vector<std::size_t> farthest_point_batch(
    const std::vector<double>& features, std::size_t cols,
    const std::vector<std::size_t>& candidates,
    const std::vector<std::size_t>& reference, std::size_t count) {
  std::vector<double> min_d(candidates.size(),
                            std::numeric_limits<double>::infinity());
  for (const std::size_t ref : reference) {
    const double* ref_row = features.data() + ref * cols;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      min_d[i] = std::min(min_d[i],
                          squared_distance(
                              features.data() + candidates[i] * cols, ref_row,
                              cols));
    }
  }

  std::vector<std::size_t> picks;
  picks.reserve(count);
  if (reference.empty() && count > 0) {
    std::vector<double> centroid(cols, 0.0);
    for (const std::size_t row : candidates) {
      for (std::size_t c = 0; c < cols; ++c) {
        centroid[c] += features[row * cols + c];
      }
    }
    for (double& v : centroid) v /= static_cast<double>(candidates.size());
    std::size_t best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const double dist = squared_distance(
          features.data() + candidates[i] * cols, centroid.data(), cols);
      if (dist < best_d) {
        best_d = dist;
        best = i;
      }
    }
    picks.push_back(candidates[best]);
    min_d[best] = -1.0;  // consumed
    const double* first = features.data() + candidates[best] * cols;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (min_d[i] < 0.0) continue;
      min_d[i] = std::min(min_d[i], squared_distance(
          features.data() + candidates[i] * cols, first, cols));
    }
  }

  while (picks.size() < count) {
    std::size_t best = candidates.size();
    double best_d = -1.0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (min_d[i] >= 0.0 && min_d[i] > best_d) {
        best_d = min_d[i];
        best = i;
      }
    }
    DSML_REQUIRE(best < candidates.size(),
                 "sampler: batch exceeds the candidate set");
    picks.push_back(candidates[best]);
    min_d[best] = -1.0;
    const double* chosen = features.data() + candidates[best] * cols;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (min_d[i] < 0.0) continue;
      min_d[i] = std::min(min_d[i], squared_distance(
          features.data() + candidates[i] * cols, chosen, cols));
    }
  }
  std::sort(picks.begin(), picks.end());
  return picks;
}

}  // namespace

std::vector<std::size_t> RandomSampler::select(const SamplerRound& round,
                                               const SamplerContext& ctx) {
  if (round.rate > 0.0) {
    // The paper's protocol, bit-for-bit: one fresh fraction-sized sample per
    // round from the shared stream, at least 10 rows (§4.2).
    return data::sample_fraction(ctx.space_rows, round.rate, rng_,
                                 /*min_rows=*/10);
  }
  return uniform_from_pool(unevaluated_pool(ctx), round.count, rng_);
}

std::vector<std::size_t> AdaptiveSampler::select(const SamplerRound& round,
                                                 const SamplerContext& ctx) {
  DSML_REQUIRE(round.count > 0, "AdaptiveSampler: count-driven rounds only");
  std::vector<std::size_t> pool = unevaluated_pool(ctx);
  const std::size_t count = std::min(round.count, pool.size());
  const bool have_committee =
      ctx.disagreement && !ctx.disagreement->empty();
  if (have_committee) {
    DSML_REQUIRE(ctx.disagreement->size() == ctx.space_rows,
                 "AdaptiveSampler: disagreement size mismatch");
  }

  // Feature-free fallbacks (unit harnesses, spaces without geometry):
  // uniform seeding, then a pure top-of-the-disagreement-ranking batch.
  if (!ctx.space) {
    if (!have_committee) return uniform_from_pool(pool, count, rng_);
    const std::vector<double>& d = *ctx.disagreement;
    std::partial_sort(pool.begin(),
                      pool.begin() + static_cast<std::ptrdiff_t>(count),
                      pool.end(), [&](std::size_t a, std::size_t b) {
                        if (d[a] != d[b]) return d[a] > d[b];
                        return a < b;
                      });
    std::vector<std::size_t> picks(pool.begin(),
                                   pool.begin() +
                                       static_cast<std::ptrdiff_t>(count));
    std::sort(picks.begin(), picks.end());
    return picks;
  }

  DSML_REQUIRE(ctx.space->n_rows() == ctx.space_rows,
               "AdaptiveSampler: space size mismatch");
  const std::vector<double> features = normalized_features(*ctx.space);
  const std::size_t cols = ctx.space->n_features();
  std::vector<std::size_t> done;
  done.reserve(ctx.evaluated_count);
  if (ctx.evaluated) {
    for (std::size_t i = 0; i < ctx.evaluated->size(); ++i) {
      if ((*ctx.evaluated)[i]) done.push_back(i);
    }
  }

  // With a committee, shortlist the most-contested quarter of the pool (at
  // least 4x the batch) before spreading out; a pure top-k batch clusters in
  // the single most uncertain corner of the space, and a cluster of
  // near-duplicate training rows is mostly wasted simulation budget.
  std::vector<std::size_t> candidates = pool;
  if (have_committee && pool.size() > 4 * count) {
    const std::vector<double>& d = *ctx.disagreement;
    const std::size_t shortlist = std::max(4 * count, pool.size() / 4);
    if (shortlist < pool.size()) {
      std::partial_sort(candidates.begin(),
                        candidates.begin() +
                            static_cast<std::ptrdiff_t>(shortlist),
                        candidates.end(), [&](std::size_t a, std::size_t b) {
                          if (d[a] != d[b]) return d[a] > d[b];
                          return a < b;
                        });
      candidates.resize(shortlist);
      std::sort(candidates.begin(), candidates.end());
    }
  }
  return farthest_point_batch(features, cols, candidates, done, count);
}

std::vector<std::size_t> FullSampler::select(const SamplerRound&,
                                             const SamplerContext& ctx) {
  return unevaluated_pool(ctx);
}

std::unique_ptr<Sampler> make_sampler(const std::string& name,
                                      std::uint64_t seed,
                                      const std::string& app) {
  const std::uint64_t stream = seed ^ std::hash<std::string>{}(app);
  if (name == "random") return std::make_unique<RandomSampler>(stream);
  if (name == "adaptive") return std::make_unique<AdaptiveSampler>(stream);
  throw InvalidArgument("unknown sampler '" + name + "' (random|adaptive)");
}

}  // namespace dsml::dse
