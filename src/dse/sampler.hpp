// Sampler seam of the DSE campaign engine (campaign.hpp): the policy that
// decides which design-space configurations the next campaign round spends
// its simulation budget on.
//
// Three policies ship:
//   - RandomSampler: the paper's uniform random protocol. Rate-driven rounds
//     draw a fresh `data::sample_fraction` sample per round from one shared
//     RNG stream — byte-identical to the pre-campaign `run_sampled_dse`
//     tables. Count-driven rounds draw uniformly from the not-yet-simulated
//     pool (the equal-budget baseline for the adaptive comparison).
//   - AdaptiveSampler: diversity-aware active learning. The first round is a
//     greedy farthest-point sweep over the normalized feature space (centroid
//     out), so a tiny seed batch already spans the whole design grid; every
//     later round shortlists the unsimulated pool by the LR-vs-NN ensemble
//     disagreement the campaign computed after its last retrain
//     (ml::ensemble_disagreement) and farthest-point-picks within the
//     shortlist, away from everything already simulated. Without feature
//     geometry (ctx.space == nullptr) it degrades to uniform seeding and a
//     pure top-of-the-ranking batch.
//   - FullSampler: every candidate row at once — the chronological
//     experiment's "train on everything from 2005" configuration.
//
// Determinism contract: select() must be a pure function of (round, context,
// internal RNG state). Disagreement rankings and farthest-point sweeps break
// ties by ascending index, so selections are bit-identical across
// DSML_THREADS values and across local-vs-fleet evaluators.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "data/dataset.hpp"

namespace dsml::dse {

/// One campaign round's sampling order.
struct SamplerRound {
  /// Target sampling fraction; > 0 selects the rate-driven path
  /// (data::sample_fraction semantics, fresh sample per round).
  double rate = 0.0;
  /// Number of new points to add; used when rate == 0.
  std::size_t count = 0;
  /// Short name used in cell labels and failure records ("1%", "r2").
  std::string label;
  /// Mixed into the round's cross-validation seed
  /// (sample_seed * 977 + seed_salt).
  std::uint64_t seed_salt = 0;
};

/// What the campaign knows when it asks for the next points.
struct SamplerContext {
  std::size_t space_rows = 0;
  /// Per-row flag: already simulated in an earlier round.
  const std::vector<std::uint8_t>* evaluated = nullptr;
  std::size_t evaluated_count = 0;
  /// Per-row ensemble disagreement from the previous retrain; empty before
  /// the first retrain (and on non-cumulative campaigns).
  const std::vector<double>* disagreement = nullptr;
  /// Candidate feature rows (borrowed; a target column, if present, is
  /// ignored). Lets geometry-aware samplers measure distances between
  /// configurations; null degrades AdaptiveSampler to its feature-free
  /// fallbacks.
  const data::Dataset* space = nullptr;
};

class Sampler {
 public:
  virtual ~Sampler() = default;
  virtual std::string name() const = 0;
  /// Cumulative samplers grow one training set across rounds; a
  /// non-cumulative round's selection stands alone (the classic
  /// independent-rates protocol).
  virtual bool cumulative() const = 0;
  /// Pick the round's new configuration indices, sorted ascending.
  virtual std::vector<std::size_t> select(const SamplerRound& round,
                                          const SamplerContext& ctx) = 0;
};

class RandomSampler final : public Sampler {
 public:
  /// `seed` is the final stream seed; the drivers pass
  /// sample_seed ^ std::hash<std::string>{}(app) so per-app streams differ,
  /// exactly as run_sampled_dse always has.
  explicit RandomSampler(std::uint64_t seed) : rng_(seed) {}
  std::string name() const override { return "random"; }
  bool cumulative() const override { return false; }
  std::vector<std::size_t> select(const SamplerRound& round,
                                  const SamplerContext& ctx) override;

 private:
  Rng rng_;
};

class AdaptiveSampler final : public Sampler {
 public:
  explicit AdaptiveSampler(std::uint64_t seed) : rng_(seed) {}
  std::string name() const override { return "adaptive"; }
  bool cumulative() const override { return true; }
  std::vector<std::size_t> select(const SamplerRound& round,
                                  const SamplerContext& ctx) override;

 private:
  Rng rng_;
};

/// Selects every not-yet-evaluated row (the chronological configuration).
class FullSampler final : public Sampler {
 public:
  std::string name() const override { return "full"; }
  bool cumulative() const override { return false; }
  std::vector<std::size_t> select(const SamplerRound& round,
                                  const SamplerContext& ctx) override;
};

/// Factory for the CLI: "random" or "adaptive", seeded with
/// seed ^ hash(app). Throws InvalidArgument on an unknown name.
std::unique_ptr<Sampler> make_sampler(const std::string& name,
                                      std::uint64_t seed,
                                      const std::string& app);

}  // namespace dsml::dse
