#include "dse/chronological.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "ml/fit_score.hpp"

namespace dsml::dse {

const ChronoModelResult& ChronologicalResult::best() const {
  DSML_REQUIRE(!models.empty(), "ChronologicalResult::best: no models");
  const ChronoModelResult* best = &models.front();
  for (const auto& m : models) {
    if (m.error.mean < best->error.mean) best = &m;
  }
  return *best;
}

std::vector<std::string> ChronologicalResult::best_names(
    double tolerance) const {
  const double floor = best().error.mean;
  std::vector<std::string> names;
  for (const auto& m : models) {
    if (m.error.mean <= floor + tolerance) names.push_back(m.model);
  }
  return names;
}

ChronologicalResult run_chronological(specdata::Family family,
                                      const ChronologicalOptions& options) {
  trace::Span sweep_span(
      [&] {
        return std::string("run_chronological ") + specdata::to_string(family);
      },
      "dse");
  static metrics::Counter& evals = metrics::counter("dse.model_evals");
  ChronologicalResult result;
  result.family = family;

  const std::vector<specdata::Announcement> records =
      specdata::generate_family(family, options.generator);
  auto [train, test] =
      specdata::chronological_split(records, 2005, options.target);
  result.train_rows = train.n_rows();
  result.test_rows = test.n_rows();

  std::vector<std::string> names = options.model_names;
  if (names.empty()) {
    names = {"LR-E", "LR-S", "LR-B", "LR-F", "NN-Q",
             "NN-D", "NN-M", "NN-P", "NN-E"};
  }

  double best_nn = std::numeric_limits<double>::infinity();
  double best_lr = std::numeric_limits<double>::infinity();
  for (const std::string& name : names) {
    trace::Span eval_span([&] { return "evaluate " + name; }, "dse");
    evals.add();
    // One flaky family (NN-P/NN-E prune aggressively; LR stepwise can hit
    // singular systems on collinear announcements) must not kill the Table 2
    // row for the eight others: fit_and_score captures the cell failure and
    // the loop records it and moves on.
    engine::FitScoreRequest request;
    try {
      request.model = ml::make_model(name, options.zoo);
    } catch (const std::exception& e) {
      result.failures.push_back(FailureRecord{name, error_kind(e), e.what()});
      continue;
    }
    request.train = &train;
    request.score = &test;
    request.failpoint = "dse.chrono.eval";
    engine::FitScoreResult cell = engine::fit_and_score(request);
    if (!cell.ok()) {
      result.failures.push_back(std::move(*cell.failure));
      continue;
    }
    ChronoModelResult mr;
    mr.model = name;
    mr.fit_seconds = cell.fit_seconds;
    mr.error = ml::summarize_errors(cell.predictions, test.target());
    result.models.push_back(mr);

    const bool is_nn = name.rfind("NN", 0) == 0;
    if (is_nn && mr.error.mean < best_nn) {
      best_nn = mr.error.mean;
      result.nn_importance = cell.model->importance();
    }
    if (!is_nn && mr.error.mean < best_lr) {
      best_lr = mr.error.mean;
      result.lr_importance = cell.model->importance();
    }
  }
  if (result.models.empty()) {
    throw TrainingError("run_chronological", specdata::to_string(family),
                        "every model failed; first: " +
                            result.failures.front().message);
  }
  return result;
}

}  // namespace dsml::dse
