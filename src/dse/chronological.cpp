#include "dse/chronological.hpp"

#include <limits>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/trace.hpp"
#include "dse/campaign.hpp"

namespace dsml::dse {

const ChronoModelResult& ChronologicalResult::best() const {
  DSML_REQUIRE(!models.empty(), "ChronologicalResult::best: no models");
  const ChronoModelResult* best = &models.front();
  for (const auto& m : models) {
    if (m.error.mean < best->error.mean) best = &m;
  }
  return *best;
}

std::vector<std::string> ChronologicalResult::best_names(
    double tolerance) const {
  const double floor = best().error.mean;
  std::vector<std::string> names;
  for (const auto& m : models) {
    if (m.error.mean <= floor + tolerance) names.push_back(m.model);
  }
  return names;
}

// A thin Campaign configuration: one round whose "sample" is every 2005
// announcement (FullSampler), scored against the 2006 test year, no
// cross-validation estimate. One flaky family (NN-P/NN-E prune aggressively;
// LR stepwise can hit singular systems on collinear announcements) must not
// kill the Table 2 row for the eight others — the campaign's cell-failure
// capture preserves exactly that. Output is byte-identical to the
// pre-campaign driver (pinned by tests/data/dse/chrono_golden.txt).
ChronologicalResult run_chronological(specdata::Family family,
                                      const ChronologicalOptions& options) {
  trace::Span sweep_span(
      [&] {
        return std::string("run_chronological ") + specdata::to_string(family);
      },
      "dse");
  ChronologicalResult result;
  result.family = family;

  const std::vector<specdata::Announcement> records =
      specdata::generate_family(family, options.generator);
  auto [train, test] =
      specdata::chronological_split(records, 2005, options.target);
  result.train_rows = train.n_rows();
  result.test_rows = test.n_rows();

  std::vector<std::string> names = options.model_names;
  if (names.empty()) {
    names = {"LR-E", "LR-S", "LR-B", "LR-F", "NN-Q",
             "NN-D", "NN-M", "NN-P", "NN-E"};
  }

  FullSampler sampler;
  DatasetEvaluator evaluator(train);
  CampaignConfig config;
  config.app = specdata::to_string(family);
  config.space = &train;
  config.score = &test;
  config.sampler = &sampler;
  config.evaluator = &evaluator;
  config.rounds = {SamplerRound{0.0, 0, "2005", 0}};
  config.model_names = names;
  config.zoo = options.zoo;
  config.estimate = false;
  config.eval_failpoint = "dse.chrono.eval";
  config.label_cells = false;  // Table 2 failure records use bare model names
  config.parallel_cells = false;  // keep `nth:` failpoints deterministic

  CampaignResult campaign = Campaign(config).run();
  result.failures = std::move(campaign.failures);

  double best_nn = std::numeric_limits<double>::infinity();
  double best_lr = std::numeric_limits<double>::infinity();
  for (CampaignRound& round : campaign.rounds) {
    for (CampaignCell& cell : round.cells) {
      ChronoModelResult mr;
      mr.model = cell.model;
      mr.fit_seconds = cell.fit_seconds;
      mr.error = ml::summarize_errors(cell.predictions, test.target());
      result.models.push_back(mr);

      const bool is_nn = cell.model.rfind("NN", 0) == 0;
      if (is_nn && mr.error.mean < best_nn) {
        best_nn = mr.error.mean;
        result.nn_importance = cell.fitted->importance();
      }
      if (!is_nn && mr.error.mean < best_lr) {
        best_lr = mr.error.mean;
        result.lr_importance = cell.fitted->importance();
      }
    }
  }
  if (result.models.empty()) {
    throw TrainingError("run_chronological", specdata::to_string(family),
                        "every model failed; first: " +
                            result.failures.front().message);
  }
  return result;
}

}  // namespace dsml::dse
