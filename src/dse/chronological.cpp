#include "dse/chronological.hpp"

#include <algorithm>
#include <limits>
#include <string>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"

namespace dsml::dse {

const ChronoModelResult& ChronologicalResult::best() const {
  DSML_REQUIRE(!models.empty(), "ChronologicalResult::best: no models");
  const ChronoModelResult* best = &models.front();
  for (const auto& m : models) {
    if (m.error.mean < best->error.mean) best = &m;
  }
  return *best;
}

std::vector<std::string> ChronologicalResult::best_names(
    double tolerance) const {
  const double floor = best().error.mean;
  std::vector<std::string> names;
  for (const auto& m : models) {
    if (m.error.mean <= floor + tolerance) names.push_back(m.model);
  }
  return names;
}

ChronologicalResult run_chronological(specdata::Family family,
                                      const ChronologicalOptions& options) {
  trace::Span sweep_span(
      [&] {
        return std::string("run_chronological ") + specdata::to_string(family);
      },
      "dse");
  static metrics::Counter& evals = metrics::counter("dse.model_evals");
  ChronologicalResult result;
  result.family = family;

  const std::vector<specdata::Announcement> records =
      specdata::generate_family(family, options.generator);
  auto [train, test] =
      specdata::chronological_split(records, 2005, options.target);
  result.train_rows = train.n_rows();
  result.test_rows = test.n_rows();

  std::vector<std::string> names = options.model_names;
  if (names.empty()) {
    names = {"LR-E", "LR-S", "LR-B", "LR-F", "NN-Q",
             "NN-D", "NN-M", "NN-P", "NN-E"};
  }

  double best_nn = std::numeric_limits<double>::infinity();
  double best_lr = std::numeric_limits<double>::infinity();
  for (const std::string& name : names) {
    trace::Span eval_span([&] { return "evaluate " + name; }, "dse");
    evals.add();
    // One flaky family (NN-P/NN-E prune aggressively; LR stepwise can hit
    // singular systems on collinear announcements) must not kill the Table 2
    // row for the eight others: record the failure and move on.
    try {
      DSML_FAIL("dse.chrono.eval");
      const ml::NamedModel nm = ml::make_model(name, options.zoo);
      trace::Stopwatch fit_timer;
      auto model = nm.make();
      model->fit(train);
      ChronoModelResult mr;
      mr.model = name;
      mr.fit_seconds = fit_timer.seconds();
      const std::vector<double> predicted = model->predict(test);
      mr.error = ml::summarize_errors(predicted, test.target());
      result.models.push_back(mr);

      const bool is_nn = name.rfind("NN", 0) == 0;
      if (is_nn && mr.error.mean < best_nn) {
        best_nn = mr.error.mean;
        result.nn_importance = model->importance();
      }
      if (!is_nn && mr.error.mean < best_lr) {
        best_lr = mr.error.mean;
        result.lr_importance = model->importance();
      }
    } catch (const std::exception& e) {
      result.failures.push_back(FailureRecord{name, error_kind(e), e.what()});
    }
  }
  if (result.models.empty()) {
    throw TrainingError("run_chronological", specdata::to_string(family),
                        "every model failed; first: " +
                            result.failures.front().message);
  }
  return result;
}

}  // namespace dsml::dse
