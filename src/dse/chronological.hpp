// Chronological predictive modelling experiment (paper §4.3, Figures 7–8 and
// Table 2): train the nine models on a family's 2005 announcements, predict
// the ratings of its 2006 announcements, and report the mean and standard
// deviation of the percentage error per model.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "ml/metrics.hpp"
#include "ml/model_zoo.hpp"
#include "specdata/generator.hpp"

namespace dsml::dse {

struct ChronologicalOptions {
  specdata::GeneratorOptions generator;
  ml::ZooOptions zoo;
  /// Model menu; defaults to the paper's nine (LR-E/S/B/F, NN-Q/D/M/P/E).
  std::vector<std::string> model_names;
  /// What to predict: the SPECint rate (paper default), the SPECfp rate, or
  /// an individual application's ratio.
  specdata::RatingTarget target = specdata::RatingTarget::int_rate();
};

struct ChronoModelResult {
  std::string model;
  ml::ErrorSummary error;  ///< over the 2006 test records
  double fit_seconds = 0.0;
};

struct ChronologicalResult {
  specdata::Family family = specdata::Family::kXeon;
  std::size_t train_rows = 0;
  std::size_t test_rows = 0;
  std::vector<ChronoModelResult> models;

  /// Best (lowest mean error) model — the Table 2 cell.
  const ChronoModelResult& best() const;
  /// All models whose mean error ties the best within `tolerance` (Table 2
  /// reports ties like "LR-B/LR-S").
  std::vector<std::string> best_names(double tolerance = 0.1) const;

  /// Predictor importance of the best-performing NN model (§4.4 discussion).
  std::vector<ml::PredictorImportance> nn_importance;
  /// Standardized betas of the best-performing LR model.
  std::vector<ml::PredictorImportance> lr_importance;

  /// Models whose fit/predict threw and were dropped from `models`.
  std::vector<FailureRecord> failures;
};

/// Run the chronological experiment for one processor family. A model that
/// throws is recorded in `ChronologicalResult::failures` and skipped;
/// TrainingError is thrown only if every model in the menu fails.
ChronologicalResult run_chronological(specdata::Family family,
                                      const ChronologicalOptions& options = {});

}  // namespace dsml::dse
