#include "dse/sweep.hpp"

#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "common/csv.hpp"
#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "common/metrics.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "sim/core.hpp"
#include "workload/generator.hpp"
#include "workload/profiles.hpp"

namespace dsml::dse {

std::string resolve_cache_dir(const std::string& explicit_dir) {
  if (!explicit_dir.empty()) return explicit_dir;
  if (const char* env = std::getenv("DSML_CACHE_DIR"); env && *env) {
    return env;
  }
  return ".dsml_cache";
}

namespace {

std::string cache_path(const std::string& app, const SweepOptions& options) {
  std::ostringstream os;
  os << resolve_cache_dir(options.cache_dir) << "/sweep_" << app << "_n"
     << options.full_trace_instructions << "_iv"
     << options.interval_instructions << "_k" << options.max_clusters << "_s"
     << options.trace_seed << "_cfg" << sim::kDesignSpaceSize << "_v2.csv";
  return os.str();
}

bool load_cached(const std::string& path, SweepResult& result) {
  if (!std::filesystem::exists(path)) return false;
  // A corrupt cache (torn write from a killed run, hand-edited file) is
  // treated exactly like a missing one: fall through to re-simulation rather
  // than failing the sweep over a discardable artifact.
  try {
    DSML_FAIL("dse.sweep.cache_load");
    const csv::Table table = csv::read_file(path);
    const std::size_t cyc = table.column_index("cycles");
    const std::size_t pts = table.column_index("simpoints");
    const std::size_t ins = table.column_index("instructions");
    if (table.rows.size() != sim::kDesignSpaceSize) return false;
    result.cycles.clear();
    result.cycles.reserve(table.rows.size());
    for (const auto& row : table.rows) {
      result.cycles.push_back(strings::parse_double(row[cyc]));
    }
    result.simpoint_count =
        static_cast<std::size_t>(strings::parse_double(table.rows[0][pts]));
    result.simulated_instructions =
        static_cast<std::size_t>(strings::parse_double(table.rows[0][ins]));
    result.from_cache = true;
    return true;
  } catch (const std::exception&) {
    static metrics::Counter& bad_cache =
        metrics::counter("dse.cache_load_failures");
    bad_cache.add();
    result.cycles.clear();
    result.simpoint_count = 0;
    result.simulated_instructions = 0;
    result.from_cache = false;
    return false;
  }
}

void store_cache(const std::string& path, const SweepResult& result) {
  csv::Table table;
  table.header = {"config", "cycles", "simpoints", "instructions"};
  table.rows.reserve(result.cycles.size());
  for (std::size_t i = 0; i < result.cycles.size(); ++i) {
    table.rows.push_back({std::to_string(i),
                          strings::format_double(result.cycles[i], 0),
                          std::to_string(result.simpoint_count),
                          std::to_string(result.simulated_instructions)});
  }
  csv::write_file(path, table);
}

/// The deterministic front half of a sweep: generate the app's full
/// instruction stream, pick SimPoints, extract the reduced trace. Depends
/// only on (app, options), so every process that runs it — one sweeping
/// locally, or each worker of a sharded fleet — simulates the identical
/// reduced trace.
struct ReducedTrace {
  sim::Trace trace;
  std::size_t simpoint_count = 0;
};

ReducedTrace build_reduced_trace(const std::string& app,
                                 const SweepOptions& options) {
  const workload::AppProfile profile = workload::spec_profile(app);
  const sim::Trace full = workload::generate_trace(
      profile, options.full_trace_instructions, options.trace_seed);
  const workload::SimPoints points = workload::choose_simpoints(
      full, options.interval_instructions, options.max_clusters);
  ReducedTrace out;
  out.trace = workload::extract_intervals(full, points);
  out.simpoint_count = points.points.size();
  return out;
}

}  // namespace

SweepResult run_design_space_sweep(const std::string& app,
                                   const SweepOptions& options) {
  DSML_REQUIRE(options.full_trace_instructions >=
                   options.interval_instructions * 2,
               "run_design_space_sweep: trace shorter than two intervals");
  trace::Span sweep_span(
      [&] { return "run_design_space_sweep " + app; }, "dse");
  SweepResult result;
  result.app = app;

  const std::string path = cache_path(app, options);
  if (options.use_cache && load_cached(path, result)) {
    return result;
  }

  trace::Stopwatch sweep_timer;

  const ReducedTrace reduced_trace = build_reduced_trace(app, options);
  const sim::Trace& reduced = reduced_trace.trace;

  const std::vector<sim::ProcessorConfig> space =
      sim::enumerate_design_space();
  result.cycles.assign(space.size(), 0.0);
  static metrics::Counter& simulated = metrics::counter("dse.configs_simulated");
  parallel_for(0, space.size(), [&](std::size_t i) {
    const sim::SimResult r = sim::simulate(space[i], reduced);
    simulated.add();
    result.cycles[i] = static_cast<double>(r.cycles);
  });

  result.simpoint_count = reduced_trace.simpoint_count;
  result.simulated_instructions = reduced.size();
  result.seconds = sweep_timer.seconds();
  if (options.use_cache) {
    // The cache is an optimisation; failing to persist it (read-only dir,
    // full disk) must not fail a sweep that already computed its results.
    try {
      store_cache(path, result);
    } catch (const std::exception&) {
      static metrics::Counter& bad_store =
          metrics::counter("dse.cache_store_failures");
      bad_store.add();
    }
  }
  return result;
}

SweepShard run_sweep_shard(const std::string& app, const SweepOptions& options,
                           const std::vector<std::size_t>& indices) {
  DSML_REQUIRE(!indices.empty(), "run_sweep_shard: empty index set");
  DSML_REQUIRE(options.full_trace_instructions >=
                   options.interval_instructions * 2,
               "run_sweep_shard: trace shorter than two intervals");
  {
    std::vector<std::uint8_t> seen(sim::kDesignSpaceSize, 0);
    for (const std::size_t idx : indices) {
      if (idx >= sim::kDesignSpaceSize) {
        throw InvalidArgument("run_sweep_shard: index " + std::to_string(idx) +
                              " outside design space of " +
                              std::to_string(sim::kDesignSpaceSize));
      }
      if (seen[idx]++) {
        throw InvalidArgument("run_sweep_shard: duplicate index " +
                              std::to_string(idx));
      }
    }
  }
  trace::Span shard_span([&] { return "run_sweep_shard " + app; }, "dse");

  SweepShard shard;
  shard.indices = indices;
  shard.cycles.assign(indices.size(), 0.0);

  if (options.use_cache) {
    // A complete cached sweep already holds this shard's answers; slice it.
    // Shards never *write* the cache — a partial table stored under the
    // full-sweep key would poison every later load.
    SweepResult cached;
    cached.app = app;
    if (load_cached(cache_path(app, options), cached)) {
      for (std::size_t i = 0; i < indices.size(); ++i) {
        shard.cycles[i] = cached.cycles[indices[i]];
      }
      shard.simpoint_count = cached.simpoint_count;
      shard.simulated_instructions = cached.simulated_instructions;
      return shard;
    }
  }

  const ReducedTrace reduced_trace = build_reduced_trace(app, options);
  const std::vector<sim::ProcessorConfig> space =
      sim::enumerate_design_space();
  static metrics::Counter& simulated = metrics::counter("dse.configs_simulated");
  parallel_for(0, indices.size(), [&](std::size_t i) {
    const sim::SimResult r =
        sim::simulate(space[indices[i]], reduced_trace.trace);
    simulated.add();
    shard.cycles[i] = static_cast<double>(r.cycles);
  });
  shard.simpoint_count = reduced_trace.simpoint_count;
  shard.simulated_instructions = reduced_trace.trace.size();
  return shard;
}

SweepResult merge_sweep_shards(const std::string& app,
                               const std::vector<SweepShard>& shards) {
  if (shards.empty()) {
    throw StateError("merge_sweep_shards: no shards to merge");
  }
  SweepResult result;
  result.app = app;
  result.cycles.assign(sim::kDesignSpaceSize, 0.0);

  std::vector<std::uint8_t> count(sim::kDesignSpaceSize, 0);
  bool first = true;
  for (const SweepShard& shard : shards) {
    if (shard.indices.size() != shard.cycles.size()) {
      throw StateError("merge_sweep_shards: shard has " +
                       std::to_string(shard.indices.size()) +
                       " indices but " + std::to_string(shard.cycles.size()) +
                       " cycle counts");
    }
    if (first) {
      result.simpoint_count = shard.simpoint_count;
      result.simulated_instructions = shard.simulated_instructions;
      first = false;
    } else if (shard.simpoint_count != result.simpoint_count ||
               shard.simulated_instructions != result.simulated_instructions) {
      throw StateError(
          "merge_sweep_shards: shards disagree on sweep conditions "
          "(simpoints " +
          std::to_string(shard.simpoint_count) + " vs " +
          std::to_string(result.simpoint_count) + ", instructions " +
          std::to_string(shard.simulated_instructions) + " vs " +
          std::to_string(result.simulated_instructions) + ")");
    }
    for (std::size_t i = 0; i < shard.indices.size(); ++i) {
      const std::size_t idx = shard.indices[i];
      if (idx >= sim::kDesignSpaceSize) {
        throw StateError("merge_sweep_shards: index " + std::to_string(idx) +
                         " outside design space of " +
                         std::to_string(sim::kDesignSpaceSize));
      }
      if (count[idx]++ == 0) {
        result.cycles[idx] = shard.cycles[i];
      }
    }
  }

  std::size_t missing = 0;
  std::size_t duplicated = 0;
  for (const std::uint8_t c : count) {
    if (c == 0) ++missing;
    if (c > 1) ++duplicated;
  }
  if (missing != 0 || duplicated != 0) {
    // Exact coverage is the whole point: a lost shard must surface as an
    // error here, never as a silently partial table.
    throw StateError("merge_sweep_shards: incomplete coverage (" +
                     std::to_string(missing) + " configurations missing, " +
                     std::to_string(duplicated) + " duplicated of " +
                     std::to_string(sim::kDesignSpaceSize) + ")");
  }
  return result;
}

data::Dataset sweep_dataset(const SweepResult& sweep) {
  DSML_REQUIRE(sweep.cycles.size() == sim::kDesignSpaceSize,
               "sweep_dataset: unexpected cycle vector size");
  return sim::make_config_dataset(sim::enumerate_design_space(),
                                  sweep.cycles);
}

}  // namespace dsml::dse
