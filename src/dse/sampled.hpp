// Sampled design-space exploration experiment (paper §4.2, Figures 2–6 and
// Table 3).
//
// Protocol: randomly sample 1%–5% of the full design space, train each model
// on the sample, estimate its predictive error with the §3.3 five-repeat
// 50% cross-validation (reporting the maximum fold error, the paper's
// preferred estimate), and measure the true error by predicting the entire
// design space. The Select meta-row commits to whichever model estimated
// best — reproducing Table 3's "Select" row.
#pragma once

#include <string>
#include <vector>

#include "common/error.hpp"
#include "data/dataset.hpp"
#include "ml/model_zoo.hpp"
#include "ml/validation.hpp"

namespace dsml::dse {

struct SampledDseOptions {
  std::vector<double> sampling_rates = {0.01, 0.02, 0.03, 0.04, 0.05};
  std::vector<std::string> model_names = {"LR-B", "NN-E", "NN-S"};
  ml::ZooOptions zoo;
  std::size_t cv_repeats = 5;
  std::uint64_t sample_seed = 7;
};

/// One (model, sampling-rate) cell of a Figure-2..6 panel.
struct SampledRun {
  std::string model;
  double rate = 0.0;
  double estimated_error_max = 0.0;  ///< §3.3 estimate (max of folds)
  double estimated_error_avg = 0.0;  ///< mean of folds
  double true_error = 0.0;           ///< MAPE over the full design space
  double fit_seconds = 0.0;
};

/// The Select meta-method outcome at one sampling rate.
struct SelectRun {
  double rate = 0.0;
  std::string chosen_model;
  double estimated_error = 0.0;
  double true_error = 0.0;
};

struct SampledDseResult {
  std::string app;
  std::vector<SampledRun> runs;      ///< model-major, rate-minor
  std::vector<SelectRun> select;     ///< one per sampling rate
  /// Model evaluations that threw and were tolerated ("<model>@<rate%>"),
  /// plus fold-level failures from evaluations that survived. The run as a
  /// whole only fails if every evaluation fails.
  std::vector<FailureRecord> failures;

  const SampledRun& run(const std::string& model, double rate) const;
};

/// Run the experiment on a full-design-space dataset (4608 rows with cycle
/// targets, from dse::sweep_dataset). Per-model failures are degraded into
/// `SampledDseResult::failures` (the failed cell is dropped, its rate's
/// Select row considers only survivors); TrainingError is thrown only when
/// no evaluation at all succeeds.
SampledDseResult run_sampled_dse(const data::Dataset& full_space,
                                 const std::string& app,
                                 const SampledDseOptions& options = {});

}  // namespace dsml::dse
