#include "dse/sampled.hpp"

#include <cmath>
#include <limits>
#include <optional>
#include <string>

#include "common/error.hpp"
#include "common/metrics.hpp"
#include "common/thread_pool.hpp"
#include "common/trace.hpp"
#include "data/split.hpp"
#include "ml/fit_score.hpp"
#include "ml/metrics.hpp"

namespace dsml::dse {

const SampledRun& SampledDseResult::run(const std::string& model,
                                        double rate) const {
  for (const auto& r : runs) {
    if (r.model == model && std::abs(r.rate - rate) < 1e-12) return r;
  }
  throw InvalidArgument("SampledDseResult::run: no run for model '" + model +
                        "'");
}

SampledDseResult run_sampled_dse(const data::Dataset& full_space,
                                 const std::string& app,
                                 const SampledDseOptions& options) {
  DSML_REQUIRE(full_space.has_target(), "run_sampled_dse: dataset lacks target");
  DSML_REQUIRE(!options.sampling_rates.empty() && !options.model_names.empty(),
               "run_sampled_dse: empty rate or model menu");
  trace::Span sweep_span(
      [&] { return "run_sampled_dse " + app; }, "dse");
  static metrics::Counter& evals = metrics::counter("dse.model_evals");
  SampledDseResult result;
  result.app = app;

  Rng sample_rng(options.sample_seed ^
                 std::hash<std::string>{}(app));

  for (double rate : options.sampling_rates) {
    // One training sample per rate, shared by every model (as in the paper:
    // the sample is the set of configurations actually simulated).
    const std::vector<std::size_t> sample_idx = data::sample_fraction(
        full_space.n_rows(), rate, sample_rng, /*min_rows=*/10);
    const data::Dataset train = full_space.select_rows(sample_idx);

    // Every model's evaluation (cross-validation estimate, fit on the
    // sample, full-space prediction) is independent given the shared
    // training sample, so the model loop fans out across the pool. Each
    // iteration owns its models and seeds and writes only rate_runs[i];
    // the Select reduction below stays serial so tie-breaking matches the
    // historical menu order exactly.
    // A cell whose evaluation throws is dropped (recorded as a failure)
    // instead of killing the whole panel; tolerated fold failures from
    // surviving cells are carried along for the summary.
    struct EvalSlot {
      std::optional<SampledRun> run;
      std::vector<ml::FoldFailure> fold_failures;
      std::optional<FailureRecord> failure;
    };
    const std::string rate_label =
        std::to_string(static_cast<int>(rate * 100.0 + 0.5)) + "%";
    std::vector<EvalSlot> slots(options.model_names.size());
    parallel_for(0, options.model_names.size(), [&](std::size_t i) {
      const std::string& model_name = options.model_names[i];
      trace::Span eval_span([&] { return "evaluate " + model_name; }, "dse");
      evals.add();
      engine::FitScoreRequest request;
      try {
        request.model = ml::make_model(model_name, options.zoo);
      } catch (const std::exception& e) {
        slots[i].failure = FailureRecord{model_name + "@" + rate_label,
                                         error_kind(e), e.what()};
        return;
      }
      request.train = &train;
      request.estimate = true;
      request.validation.repeats = options.cv_repeats;
      request.validation.seed =
          options.sample_seed * 977 +
          static_cast<std::uint64_t>(rate * 1000.0);
      request.score = &full_space;
      request.failpoint = "dse.sampled.eval";
      engine::FitScoreResult cell = engine::fit_and_score(request);
      if (!cell.ok()) {
        slots[i].failure = FailureRecord{model_name + "@" + rate_label,
                                         cell.failure->error_type,
                                         cell.failure->message};
        return;
      }
      slots[i].fold_failures = std::move(cell.estimate.failed);

      SampledRun run;
      run.model = model_name;
      run.rate = rate;
      run.estimated_error_max = cell.estimate.maximum;
      run.estimated_error_avg = cell.estimate.average;
      run.true_error = ml::mape(cell.predictions, full_space.target());
      run.fit_seconds = cell.fit_seconds;
      slots[i].run = std::move(run);
    });

    double best_estimate = std::numeric_limits<double>::infinity();
    SelectRun select_row;
    select_row.rate = rate;
    bool any_survivor = false;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      EvalSlot& slot = slots[i];
      if (slot.failure.has_value()) {
        result.failures.push_back(std::move(*slot.failure));
        continue;
      }
      for (const ml::FoldFailure& f : slot.fold_failures) {
        result.failures.push_back(FailureRecord{
            options.model_names[i] + "@" + rate_label + " fold " +
                std::to_string(f.fold),
            f.error_type, f.message});
      }
      const SampledRun& run = *slot.run;
      any_survivor = true;
      if (run.estimated_error_max < best_estimate) {
        best_estimate = run.estimated_error_max;
        select_row.chosen_model = run.model;
        select_row.estimated_error = run.estimated_error_max;
        select_row.true_error = run.true_error;
      }
      result.runs.push_back(run);
    }
    // The Select meta-row only exists where at least one model survived.
    if (any_survivor) result.select.push_back(select_row);
  }
  if (result.runs.empty()) {
    throw TrainingError("run_sampled_dse", app,
                        "every model evaluation failed; first: " +
                            result.failures.front().message);
  }
  return result;
}

}  // namespace dsml::dse
