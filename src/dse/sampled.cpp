#include "dse/sampled.hpp"

#include <cmath>
#include <functional>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/trace.hpp"
#include "dse/campaign.hpp"

namespace dsml::dse {

const SampledRun& SampledDseResult::run(const std::string& model,
                                        double rate) const {
  for (const auto& r : runs) {
    if (r.model == model && std::abs(r.rate - rate) < 1e-12) return r;
  }
  throw InvalidArgument("SampledDseResult::run: no run for model '" + model +
                        "'");
}

// A thin Campaign configuration: one rate-driven round per sampling rate
// (fresh sample each, drawn from the shared per-app RNG stream), ground
// truth sliced straight out of the full-space dataset, every cell estimated
// by the §3.3 cross-validation and scored over the whole space. Tables,
// failure records, and CLI output are byte-identical to the pre-campaign
// driver (pinned by tests/data/dse/sampled_golden*.txt).
SampledDseResult run_sampled_dse(const data::Dataset& full_space,
                                 const std::string& app,
                                 const SampledDseOptions& options) {
  DSML_REQUIRE(full_space.has_target(), "run_sampled_dse: dataset lacks target");
  DSML_REQUIRE(!options.sampling_rates.empty() && !options.model_names.empty(),
               "run_sampled_dse: empty rate or model menu");
  trace::Span sweep_span(
      [&] { return "run_sampled_dse " + app; }, "dse");

  RandomSampler sampler(options.sample_seed ^ std::hash<std::string>{}(app));
  DatasetEvaluator evaluator(full_space);

  CampaignConfig config;
  config.app = app;
  config.space = &full_space;
  config.sampler = &sampler;
  config.evaluator = &evaluator;
  config.model_names = options.model_names;
  config.zoo = options.zoo;
  config.cv_repeats = options.cv_repeats;
  config.sample_seed = options.sample_seed;
  config.eval_failpoint = "dse.sampled.eval";
  for (const double rate : options.sampling_rates) {
    SamplerRound round;
    round.rate = rate;
    round.label = std::to_string(static_cast<int>(rate * 100.0 + 0.5)) + "%";
    round.seed_salt = static_cast<std::uint64_t>(rate * 1000.0);
    config.rounds.push_back(std::move(round));
  }

  CampaignResult campaign = Campaign(config).run();

  SampledDseResult result;
  result.app = app;
  for (CampaignRound& round : campaign.rounds) {
    for (CampaignCell& cell : round.cells) {
      SampledRun run;
      run.model = cell.model;
      run.rate = round.rate;
      run.estimated_error_max = cell.estimated_error_max;
      run.estimated_error_avg = cell.estimated_error_avg;
      run.true_error = cell.true_error;
      run.fit_seconds = cell.fit_seconds;
      result.runs.push_back(std::move(run));
    }
    if (round.has_select) {
      result.select.push_back(SelectRun{round.select.rate,
                                        round.select.chosen_model,
                                        round.select.estimated_error,
                                        round.select.true_error});
    }
  }
  result.failures = std::move(campaign.failures);
  if (result.runs.empty()) {
    throw TrainingError("run_sampled_dse", app,
                        "every model evaluation failed; first: " +
                            result.failures.front().message);
  }
  return result;
}

}  // namespace dsml::dse
