#include "dse/sampled.hpp"

#include <chrono>
#include <cmath>
#include <limits>

#include "common/error.hpp"
#include "data/split.hpp"
#include "ml/metrics.hpp"

namespace dsml::dse {

const SampledRun& SampledDseResult::run(const std::string& model,
                                        double rate) const {
  for (const auto& r : runs) {
    if (r.model == model && std::abs(r.rate - rate) < 1e-12) return r;
  }
  throw InvalidArgument("SampledDseResult::run: no run for model '" + model +
                        "'");
}

SampledDseResult run_sampled_dse(const data::Dataset& full_space,
                                 const std::string& app,
                                 const SampledDseOptions& options) {
  DSML_REQUIRE(full_space.has_target(), "run_sampled_dse: dataset lacks target");
  DSML_REQUIRE(!options.sampling_rates.empty() && !options.model_names.empty(),
               "run_sampled_dse: empty rate or model menu");
  SampledDseResult result;
  result.app = app;

  Rng sample_rng(options.sample_seed ^
                 std::hash<std::string>{}(app));

  for (double rate : options.sampling_rates) {
    // One training sample per rate, shared by every model (as in the paper:
    // the sample is the set of configurations actually simulated).
    const std::vector<std::size_t> sample_idx = data::sample_fraction(
        full_space.n_rows(), rate, sample_rng, /*min_rows=*/10);
    const data::Dataset train = full_space.select_rows(sample_idx);

    double best_estimate = std::numeric_limits<double>::infinity();
    SelectRun select_row;
    select_row.rate = rate;

    for (const std::string& model_name : options.model_names) {
      const ml::NamedModel nm = ml::make_model(model_name, options.zoo);

      ml::ValidationOptions vopt;
      vopt.repeats = options.cv_repeats;
      vopt.seed = options.sample_seed * 977 + static_cast<std::uint64_t>(
                      rate * 1000.0);
      const ml::ErrorEstimate estimate =
          ml::estimate_error(nm.make, train, vopt);

      const auto t0 = std::chrono::steady_clock::now();
      auto model = nm.make();
      model->fit(train);
      const double fit_seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();

      const std::vector<double> predicted = model->predict(full_space);
      const double true_error = ml::mape(predicted, full_space.target());

      SampledRun run;
      run.model = model_name;
      run.rate = rate;
      run.estimated_error_max = estimate.maximum;
      run.estimated_error_avg = estimate.average;
      run.true_error = true_error;
      run.fit_seconds = fit_seconds;
      result.runs.push_back(run);

      if (estimate.maximum < best_estimate) {
        best_estimate = estimate.maximum;
        select_row.chosen_model = model_name;
        select_row.estimated_error = estimate.maximum;
        select_row.true_error = true_error;
      }
    }
    result.select.push_back(select_row);
  }
  return result;
}

}  // namespace dsml::dse
