// The DSE campaign engine: one driver owning the loop every design-space
// experiment shares — select points, evaluate them, retrain the model menu,
// score — with three pluggable seams:
//
//   Sampler    (sampler.hpp)  which configurations next: uniform random
//                             (the paper's protocol), active-learning by
//                             ensemble disagreement, or everything at once.
//   Evaluator  (below)        where ground truth comes from: an in-memory
//                             dataset, a local sweep shard
//                             (dse::run_sweep_shard), or — wired from the
//                             fleet layer, which sits above this one — the
//                             scatter/gather coordinator with its eviction
//                             and retry semantics (fleet::FleetEvaluator).
//   Scorer     (below)        what "good" means: single-target cycle error,
//                             or the multi-objective cycles + synthesized
//                             energy mode that emits a Pareto frontier.
//
// run_sampled_dse and run_chronological are thin configurations of this
// engine; their tables, failure records, and CLI output are byte-identical
// to the pre-campaign drivers (pinned by goldens under tests/data/dse/).
//
// Observability: each round fires the `dse.campaign.round` failpoint (one
// bounded retry, so an injected transient costs a failure record, not the
// table), bumps `dse.campaign.rounds` / `dse.campaign.points`, and runs
// under a "dse.campaign <app>" trace span.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "data/dataset.hpp"
#include "dse/sampler.hpp"
#include "dse/sweep.hpp"
#include "ml/model.hpp"
#include "ml/model_zoo.hpp"
#include "sim/config.hpp"

namespace dsml::dse {

/// Ground-truth seam: answer cycle counts for a set of design-space row
/// indices. Implementations may throw (dead workers, failed simulation);
/// the campaign records the failure and retries the round once.
class Evaluator {
 public:
  virtual ~Evaluator() = default;
  virtual std::string name() const = 0;
  /// Cycle counts for `indices` (ascending, no duplicates), index-aligned.
  virtual SweepShard evaluate(const std::vector<std::size_t>& indices) = 0;
  /// Failures tolerated inside the last evaluate() (e.g. fleet evictions);
  /// drained into the campaign's failure list after every round.
  virtual std::vector<FailureRecord> drain_failures() { return {}; }
};

/// Slices targets out of a dataset that already has them — the sampled-DSE
/// reproduction path (the full sweep is the ground truth) and unit tests.
class DatasetEvaluator final : public Evaluator {
 public:
  explicit DatasetEvaluator(const data::Dataset& truth);
  std::string name() const override { return "dataset"; }
  SweepShard evaluate(const std::vector<std::size_t>& indices) override;

 private:
  const data::Dataset* truth_;
};

/// Simulates shards in-process via run_sweep_shard (cache-sliced when a
/// complete cached sweep exists; bit-identical to the full sweep either way).
class LocalSweepEvaluator final : public Evaluator {
 public:
  LocalSweepEvaluator(std::string app, SweepOptions options);
  std::string name() const override { return "local"; }
  SweepShard evaluate(const std::vector<std::size_t>& indices) override;

 private:
  std::string app_;
  SweepOptions options_;
};

/// One point of a multi-objective frontier.
struct ParetoPoint {
  std::size_t index = 0;     ///< design-space configuration index
  double cycles = 0.0;       ///< predicted cycle count
  double energy = 0.0;       ///< synthesized energy proxy
};

struct CampaignResult;

/// Objective seam: how a cell's predictions are scored, and what the
/// campaign's final model is asked to produce.
class Scorer {
 public:
  virtual ~Scorer() = default;
  virtual std::string name() const = 0;
  /// True error of predictions against the score set (0 when it carries no
  /// target — campaigns without ground truth still run, they just cannot
  /// report true error).
  virtual double true_error(const std::vector<double>& predictions,
                            const data::Dataset& score) const;
  /// Called once after the last round with the Select winner's predictions
  /// over the score set.
  virtual void finalize(const std::vector<double>& best_predictions,
                        CampaignResult& result) const;
};

/// Single-target cycles (the default): MAPE against the score target.
class CyclesScorer final : public Scorer {
 public:
  std::string name() const override { return "cycles"; }
};

/// Multi-objective cycles + synthesized energy: same cell scoring, plus the
/// Pareto frontier of (predicted cycles, energy) over the design space.
class ParetoScorer final : public Scorer {
 public:
  ParetoScorer();
  std::string name() const override { return "pareto"; }
  void finalize(const std::vector<double>& best_predictions,
                CampaignResult& result) const override;

 private:
  std::vector<double> energy_;  ///< per design-space configuration
};

/// Deterministic energy proxy for one configuration (no energy numbers exist
/// in the paper or the simulator; this synthesizes a plausible static+dynamic
/// model from the Table-1 parameters so multi-objective exploration has a
/// second axis). Units are arbitrary "energy points".
double synthesized_energy(const sim::ProcessorConfig& config);

/// One surviving (model, round) evaluation.
struct CampaignCell {
  std::string model;
  double estimated_error_max = 0.0;  ///< §3.3 CV estimate (max of folds)
  double estimated_error_avg = 0.0;  ///< mean of folds
  double true_error = 0.0;           ///< Scorer::true_error over the score set
  double fit_seconds = 0.0;
  std::vector<double> predictions;   ///< over the score set
  std::unique_ptr<ml::Regressor> fitted;
};

/// The Select meta-model outcome of one round (lowest estimated error wins;
/// ties keep the earlier menu entry).
struct CampaignSelect {
  double rate = 0.0;
  std::string chosen_model;
  double estimated_error = 0.0;
  double true_error = 0.0;
};

struct CampaignRound {
  std::string label;
  double rate = 0.0;            ///< effective sampling fraction of the round
  std::size_t new_points = 0;   ///< configurations evaluated this round
  std::size_t train_rows = 0;
  std::vector<CampaignCell> cells;  ///< survivors, menu order
  CampaignSelect select;
  bool has_select = false;      ///< false when every cell failed
};

struct CampaignResult {
  std::string app;
  std::string sampler;
  std::string evaluator;
  std::string objective;
  std::vector<CampaignRound> rounds;
  /// Tolerated failures, in occurrence order: evaluator/round failures, cell
  /// failures ("<model>@<label>"), fold failures ("... fold N").
  std::vector<FailureRecord> failures;
  std::vector<std::size_t> evaluated;  ///< all indices simulated, ascending
  std::vector<ParetoPoint> pareto;     ///< objective "pareto" only

  /// The last round that produced a Select row (the campaign's answer).
  const CampaignRound* final_round() const;
};

struct CampaignConfig {
  std::string app;  ///< label for traces and failure records
  /// Candidate rows (features; an optional target is the ground truth the
  /// DatasetEvaluator slices). Borrowed; must outlive run().
  const data::Dataset* space = nullptr;
  /// Held-out scoring set; null scores against `space` (the sampled-DSE
  /// protocol: predict the whole space).
  const data::Dataset* score = nullptr;
  Sampler* sampler = nullptr;
  Evaluator* evaluator = nullptr;
  const Scorer* scorer = nullptr;  ///< null = CyclesScorer
  std::vector<SamplerRound> rounds;
  std::vector<std::string> model_names = {"LR-B", "NN-E", "NN-S"};
  ml::ZooOptions zoo;
  bool estimate = true;  ///< run the §3.3 cross-validation estimate per cell
  std::size_t cv_repeats = 5;
  std::uint64_t sample_seed = 7;
  /// Failpoint fired at the top of every cell, so the historical names
  /// ("dse.sampled.eval", "dse.chrono.eval") survive the refactor.
  const char* eval_failpoint = "dse.campaign.eval";
  /// Cell/failure labels: "<model>@<round label>" when true, bare model
  /// names when false (the chronological convention).
  bool label_cells = true;
  /// Fan the model menu out across the thread pool. Cell values are
  /// bit-identical either way (every cell owns its models and seeds);
  /// serial keeps `nth:` failpoint triggers landing on a deterministic
  /// cell, which the chronological fault suite relies on.
  bool parallel_cells = true;
};

/// The campaign engine. Owns nothing but the loop; every seam is borrowed
/// from the config. Throws InvalidArgument on a malformed config; tolerated
/// evaluation failures degrade into CampaignResult::failures (a campaign
/// where *every* cell of every round fails returns rounds without cells —
/// callers decide whether that is fatal).
class Campaign {
 public:
  explicit Campaign(const CampaignConfig& config);
  CampaignResult run();

 private:
  const CampaignConfig& config_;
};

/// Splits `budget` simulations over `rounds` campaign rounds (earlier rounds
/// take the remainder), labelled "r1".."rK" with seed salts 1..K.
std::vector<SamplerRound> budget_rounds(std::size_t budget,
                                        std::size_t rounds);

/// The "N failure(s) tolerated:" banner shared by every dsml dse CLI path
/// (sweep, sampled, chrono, fleet, campaign). Empty failures = empty string.
std::string format_failure_summary(const std::vector<FailureRecord>& failures);

}  // namespace dsml::dse
