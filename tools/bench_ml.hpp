// The `dsml bench` perf harness: measures the ML hot paths (blocked GEMM,
// batched MLP / LR prediction, parallel cross-validation, Select-model fit)
// against in-process naive references, verifies the optimized paths are
// numerically identical, and emits a machine-readable BENCH_ML.json so the
// perf trajectory is tracked PR over PR. With --check it also gates on
// model-error drift against a committed baseline (the CI perf-smoke job).
#pragma once

#include <iosfwd>
#include <string>

namespace dsml::bench_ml {

struct BenchOptions {
  /// Write the JSON report here ("" = stdout summary only).
  std::string json_path;
  /// Compare model errors against this committed baseline; >5% relative
  /// drift (or any equivalence failure) exits non-zero.
  std::string check_path;
  /// Smaller problem sizes / epoch budgets for quick smoke runs.
  bool fast = false;
};

/// Runs every bench section. Returns 0 on success, 1 when an equivalence
/// assertion or the --check drift gate fails.
int run(const BenchOptions& options, std::ostream& out, std::ostream& err);

}  // namespace dsml::bench_ml
