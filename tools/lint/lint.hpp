// dsml-lint — repo-specific static checker for the dsml tree.
//
// Generic linters cannot enforce the invariants this codebase depends on for
// reproducible experiments (single RNG source, double-precision accumulation,
// no stray output from library code, no swallowed exceptions, uniform header
// guards, no manual memory management, string-named observability that
// actually fires). dsml-lint runs in two phases:
//
//   phase 1  every file is parsed into a FileModel: its quoted #include
//            edges, every string-literal failpoint/metric/trace-span name it
//            defines, its inline allow() directives, a content hash, and the
//            findings of the per-file rules (rand-source, float-accum,
//            iostream-in-lib, catch-all-swallow, header-guard, naked-new,
//            matrix-elem-in-loop, raw-clock-in-lib, raw-std-throw,
//            direct-model-load-in-tools);
//
//   phase 2  cross-translation-unit rules run over the whole project model:
//            layer-violation (the #include graph must respect the layer DAG
//            declared in tools/lint/layers.def — back-edges and include
//            cycles are findings), unregistered-failpoint and
//            unregistered-metric (every string-literal DSML_FAIL*/metrics::*
//            name and trace::Span literal under src/ and tools/ must appear
//            in the committed manifests docs/registries/{failpoints,metrics,
//            spans}.txt, regenerable with --update-registries), and
//            missing-tsan-label (test files that include
//            common/thread_pool.hpp or engine/session.hpp must carry the
//            `tsan` ctest label in tests/CMakeLists.txt).
//
// Phase-1 models are cached by content hash under .dsml_cache/ so repeated
// tree scans stay fast; phase 2 always re-runs over the models. Findings
// print as `file:line: [rule-id] message` and can additionally be exported
// as SARIF 2.1.0 (`--sarif <file>`) for CI code-scanning annotations. The
// include graph itself is dumpable with `--graph dot|json`.
//
// Any line can opt out with an inline suppression comment; run with
// --help or see docs/STATIC_ANALYSIS.md for the exact directive syntax
// (it is not spelled out here so the linter does not parse this header's
// own documentation as a directive).
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace dsml::lint {

/// One finding: file, 1-based line, rule id, human-readable message.
struct Diagnostic {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Static description of a rule, for --list-rules and the docs.
struct RuleInfo {
  std::string id;
  std::string summary;
};

/// One quoted `#include "target"` directive.
struct IncludeRef {
  std::size_t line = 0;  ///< 1-based line of the directive
  std::string target;    ///< the quoted path, verbatim
};

/// One string-literal observability-name definition site.
struct NameUse {
  enum class Kind { kFailpoint, kMetric, kSpan };
  std::size_t line = 0;
  Kind kind = Kind::kFailpoint;
  std::string name;
};

/// Phase-1 output for one translation unit: everything phase 2 needs, plus
/// the per-file findings. Cacheable by `content_hash`.
struct FileModel {
  std::string path;  ///< as given to the linter (diagnostics use this)
  std::vector<IncludeRef> includes;
  std::vector<NameUse> names;
  std::vector<Diagnostic> diagnostics;  ///< per-file rules, post-suppression
  /// Inline allow() directives as (1-based line, rule id) pairs — phase 2
  /// consults these so cross-TU findings honour the same suppressions.
  std::vector<std::pair<std::size_t, std::string>> allows;
  std::uint64_t content_hash = 0;  ///< FNV-1a over the file bytes
};

/// Options for a project analysis (phase 1 + phase 2).
struct AnalyzeOptions {
  /// Project root: where tools/lint/layers.def, docs/registries/, and
  /// tests/CMakeLists.txt are looked up. Empty disables the cross-TU rules
  /// (single files outside any project still get the per-file rules).
  std::filesystem::path root;
  bool use_cache = true;
  std::filesystem::path cache_dir = ".dsml_cache";
};

/// The full rule catalogue — per-file rules, cross-TU rules, and the
/// unknown-allow meta rule — in diagnostic order. Assembled from the same
/// tables the two rule engines execute, so --list-rules cannot drift.
const std::vector<RuleInfo>& rule_catalogue();

/// True if `id` names a known rule.
bool is_known_rule(const std::string& id);

/// Phase 1 for one translation unit given as text. `path` determines which
/// path-scoped rules apply (e.g. iostream-in-lib only fires under src/), so
/// tests can pass synthetic paths like "src/fake.cpp".
FileModel build_file_model(const std::string& path,
                           const std::string& content);

/// Per-file findings for one translation unit given as text (phase 1 only).
std::vector<Diagnostic> lint_source(const std::string& path,
                                    const std::string& content);

/// Reads and lints one file on disk (phase 1 only). Throws dsml::IoError if
/// the file cannot be read.
std::vector<Diagnostic> lint_file(const std::filesystem::path& file);

/// Walks files and directories (recursively), linting every .cpp/.hpp file:
/// phase 1 per file, then the cross-TU rules when `options.root` names a
/// project. Directories named `lint_fixtures`, `build`, `.git`,
/// `third_party`, or `.dsml_cache` are skipped so deliberate rule-violation
/// fixtures do not fail the tree scan. Explicitly listed files are always
/// linted, even fixture files. Unreadable files and walk failures throw
/// dsml::IoError (the CLI maps that to exit 2).
std::vector<Diagnostic> analyze_paths(
    const std::vector<std::filesystem::path>& paths,
    const AnalyzeOptions& options);

/// Backwards-compatible wrapper: analyze_paths with cross-TU rules and the
/// cache disabled.
std::vector<Diagnostic> lint_paths(
    const std::vector<std::filesystem::path>& paths);

/// Walks upward from `start` looking for a directory containing
/// tools/lint/layers.def; returns the empty path when none is found.
std::filesystem::path find_project_root(const std::filesystem::path& start);

/// Prints diagnostics in `file:line: [rule] message` form.
void print_diagnostics(const std::vector<Diagnostic>& diagnostics,
                       std::ostream& out);

/// CLI entry point shared by the standalone dsml-lint binary and the
/// `dsml lint` subcommand. Returns 0 when clean, 1 when findings exist,
/// 2 on usage or I/O errors.
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

}  // namespace dsml::lint
