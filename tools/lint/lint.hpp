// dsml-lint — repo-specific static checker for the dsml tree.
//
// Generic linters cannot enforce the invariants this codebase depends on for
// reproducible experiments (single RNG source, double-precision accumulation,
// no stray output from library code, no swallowed exceptions, uniform header
// guards, no manual memory management). dsml-lint walks the source tree and
// enforces exactly those, emitting `file:line: [rule-id] message` diagnostics
// and a nonzero exit code for CI.
//
// Rules (see docs/STATIC_ANALYSIS.md for the full catalogue):
//   rand-source        non-dsml randomness (std::rand, srand, std::mt19937,
//                      std::random_device) outside common/rng.hpp
//   float-accum        `float` in linalg/ml sources, where accumulation must
//                      stay double precision
//   iostream-in-lib    std::cout/std::cerr/printf in library code under src/
//                      (error.hpp and table.hpp excepted)
//   catch-all-swallow  `catch (...)` whose handler neither rethrows nor
//                      captures std::current_exception
//   header-guard       headers must contain `#pragma once` (no #ifndef-style
//                      guards as the primary mechanism)
//   naked-new          raw `new`/`delete` expressions (use containers or
//                      make_unique/make_shared)
//
// Any line can opt out with an inline suppression comment; run with
// --help or see docs/STATIC_ANALYSIS.md for the exact directive syntax
// (it is not spelled out here so the linter does not parse this header's
// own documentation as a directive).
#pragma once

#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

namespace dsml::lint {

/// One finding: file, 1-based line, rule id, human-readable message.
struct Diagnostic {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

/// Static description of a rule, for --list-rules and the docs.
struct RuleInfo {
  std::string id;
  std::string summary;
};

/// The full rule catalogue, in diagnostic order.
const std::vector<RuleInfo>& rule_catalogue();

/// True if `id` names a known rule.
bool is_known_rule(const std::string& id);

/// Lints a single translation unit given as text. `path` determines which
/// path-scoped rules apply (e.g. iostream-in-lib only fires under src/), so
/// tests can pass synthetic paths like "src/fake.cpp".
std::vector<Diagnostic> lint_source(const std::string& path,
                                    const std::string& content);

/// Reads and lints one file on disk. Throws dsml::IoError if unreadable.
std::vector<Diagnostic> lint_file(const std::filesystem::path& file);

/// Walks files and directories (recursively), linting every .cpp/.hpp file.
/// Directories named `lint_fixtures`, `build`, `.git`, or `third_party` are
/// skipped so deliberate rule-violation fixtures do not fail the tree scan.
/// Explicitly listed files are always linted, even fixture files.
std::vector<Diagnostic> lint_paths(
    const std::vector<std::filesystem::path>& paths);

/// Prints diagnostics in `file:line: [rule] message` form.
void print_diagnostics(const std::vector<Diagnostic>& diagnostics,
                       std::ostream& out);

/// CLI entry point shared by the standalone dsml-lint binary and the
/// `dsml lint` subcommand. Returns 0 when clean, 1 when findings exist,
/// 2 on usage or I/O errors.
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

}  // namespace dsml::lint
