// Standalone entry point for dsml-lint (also reachable as `dsml lint`).
#include <iostream>
#include <string>
#include <vector>

#include "lint/lint.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return dsml::lint::run(args, std::cout, std::cerr);
}
