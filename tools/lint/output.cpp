// Output back-ends for dsml-lint: the classic `file:line: [rule] message`
// stream, SARIF 2.1.0 export for CI code-scanning annotations, and the
// include-graph dumps (`--graph dot|json`) behind the layer-DAG rule.
#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <tuple>

#include "common/error.hpp"
#include "common/json.hpp"
#include "lint/internal.hpp"

namespace dsml::lint {

void print_diagnostics(const std::vector<Diagnostic>& diagnostics,
                       std::ostream& out) {
  for (const auto& d : diagnostics) {
    out << d.file << ":" << d.line << ": [" << d.rule << "] " << d.message
        << "\n";
  }
}

namespace internal {

namespace {

namespace fs = std::filesystem;

/// Root-relative forward-slash URI for SARIF locations; files outside the
/// root fall back to their normalized own spelling.
std::string artifact_uri(const fs::path& root, const std::string& file) {
  const fs::path abs = fs::absolute(file).lexically_normal();
  std::string uri = abs.generic_string();
  if (!root.empty()) {
    const std::string prefix =
        fs::absolute(root).lexically_normal().generic_string() + "/";
    if (uri.rfind(prefix, 0) == 0) return uri.substr(prefix.size());
  }
  return fs::path(file).lexically_normal().generic_string();
}

}  // namespace

void write_sarif(const fs::path& file, const fs::path& root,
                 const std::vector<Diagnostic>& diagnostics) {
  json::Writer writer;
  writer.begin_object();
  writer.field("version", "2.1.0");
  writer.field("$schema",
               "https://json.schemastore.org/sarif-2.1.0.json");
  writer.key("runs").begin_array().begin_object();
  writer.key("tool").begin_object().key("driver").begin_object();
  writer.field("name", "dsml-lint");
  writer.field("informationUri",
               "https://github.com/dsml/dsml/blob/main/docs/"
               "STATIC_ANALYSIS.md");
  writer.key("rules").begin_array();
  for (const RuleInfo& rule : rule_catalogue()) {
    writer.begin_object();
    writer.field("id", rule.id);
    writer.key("shortDescription").begin_object();
    writer.field("text", rule.summary);
    writer.end_object();
    writer.end_object();
  }
  writer.end_array();       // rules
  writer.end_object();      // driver
  writer.end_object();      // tool
  writer.key("results").begin_array();
  for (const Diagnostic& d : diagnostics) {
    writer.begin_object();
    writer.field("ruleId", d.rule);
    writer.field("level", "error");
    writer.key("message").begin_object().field("text", d.message);
    writer.end_object();
    writer.key("locations").begin_array().begin_object();
    writer.key("physicalLocation").begin_object();
    writer.key("artifactLocation").begin_object();
    writer.field("uri", artifact_uri(root, d.file));
    writer.end_object();  // artifactLocation
    writer.key("region").begin_object();
    writer.field("startLine", static_cast<std::uint64_t>(
                                  d.line == 0 ? 1 : d.line));
    writer.end_object();  // region
    writer.end_object();  // physicalLocation
    writer.end_object();  // location
    writer.end_array();   // locations
    writer.end_object();  // result
  }
  writer.end_array();   // results
  writer.end_object();  // run
  writer.end_array();   // runs
  writer.end_object();

  std::ofstream out(file, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw IoError("dsml-lint: cannot write SARIF to '" + file.string() +
                  "'");
  }
  out << writer.str() << "\n";
  if (!out) {
    throw IoError("dsml-lint: write failed for '" + file.string() + "'");
  }
}

void write_graph_dot(const ProjectModel& project, std::ostream& out) {
  // Layer-level view: one node per layer that owns a scanned file, one
  // aggregated edge per observed cross-layer include (count labelled).
  std::set<std::string> nodes;
  std::map<std::pair<std::string, std::string>, std::size_t> counts;
  for (std::size_t i = 0; i < project.files.size(); ++i) {
    const auto* layer = project.layers.layer_of(project.rel[i]);
    if (layer != nullptr) nodes.insert(layer->name);
  }
  for (const ProjectModel::Edge& edge : project.edges) {
    const auto* from = project.layers.layer_of(project.rel[edge.file_index]);
    const auto* to = project.layers.layer_of(edge.target_rel);
    if (from == nullptr || to == nullptr || from == to) continue;
    nodes.insert(from->name);
    nodes.insert(to->name);
    ++counts[{from->name, to->name}];
  }
  out << "digraph dsml_layers {\n"
      << "  rankdir=BT;\n"
      << "  node [shape=box, fontname=\"Helvetica\"];\n";
  for (const std::string& node : nodes) {
    out << "  \"" << node << "\";\n";
  }
  for (const auto& [edge, count] : counts) {
    out << "  \"" << edge.first << "\" -> \"" << edge.second
        << "\" [label=\"" << count << "\"];\n";
  }
  out << "}\n";
}

void write_graph_json(const ProjectModel& project, std::ostream& out) {
  json::Writer writer;
  writer.begin_object();
  writer.key("layers").begin_array();
  std::set<std::string> present;
  for (const std::string& rel : project.rel) {
    const auto* layer = project.layers.layer_of(rel);
    if (layer != nullptr) present.insert(layer->name);
  }
  for (const auto& layer : project.layers.layers) {
    if (present.count(layer.name) == 0) continue;
    writer.begin_object();
    writer.field("name", layer.name);
    writer.key("dirs").begin_array();
    for (const std::string& dir : layer.dirs) writer.value(dir);
    writer.end_array();
    writer.key("deps").begin_array();
    for (const std::string& dep : layer.deps) writer.value(dep);
    writer.end_array();
    writer.end_object();
  }
  writer.end_array();  // layers

  writer.key("nodes").begin_array();
  for (std::size_t i = 0; i < project.files.size(); ++i) {
    const auto* layer = project.layers.layer_of(project.rel[i]);
    writer.begin_object();
    writer.field("path", project.rel[i]);
    writer.field("layer", layer == nullptr ? "" : layer->name);
    writer.end_object();
  }
  writer.end_array();  // nodes

  std::set<std::pair<std::string, std::string>> edges;
  for (const ProjectModel::Edge& edge : project.edges) {
    edges.insert({project.rel[edge.file_index], edge.target_rel});
  }
  writer.key("edges").begin_array();
  for (const auto& [from, to] : edges) {
    writer.begin_object();
    writer.field("from", from);
    writer.field("to", to);
    writer.end_object();
  }
  writer.end_array();  // edges
  writer.end_object();
  out << writer.str() << "\n";
}

}  // namespace internal
}  // namespace dsml::lint
