// dsml-lint driver: the hardened tree walk, the two-phase analyze pipeline
// (phase-1 FileModels with the content-hash cache, then the cross-TU rules),
// registry regeneration, and the CLI entry point shared by the standalone
// dsml-lint binary and `dsml lint`.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <tuple>

#include "common/error.hpp"
#include "lint/internal.hpp"
#include "lint/lint.hpp"

namespace dsml::lint {

namespace {

namespace fs = std::filesystem;
using internal::ModelCache;
using internal::ProjectModel;

bool lintable_extension(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

bool skipped_directory(const std::string& name) {
  return name == "lint_fixtures" || name == "build" || name == ".git" ||
         name == "third_party" || name == ".dsml_cache";
}

/// Expands files and directories into the sorted list of lintable files.
/// Every filesystem probe goes through the error_code overloads and turns
/// failures into IoError, so a permission-denied directory or a file that
/// vanishes mid-walk reports cleanly (exit 2) instead of escaping as an
/// unhandled std::filesystem::filesystem_error.
std::vector<fs::path> collect_files(const std::vector<fs::path>& paths) {
  const auto walk_error = [](const fs::path& where,
                             const std::error_code& ec) -> IoError {
    return IoError("dsml-lint: cannot walk '" + where.string() +
                   "': " + ec.message());
  };
  std::vector<fs::path> files;
  for (const auto& path : paths) {
    std::error_code ec;
    const bool is_dir = fs::is_directory(path, ec);
    if (ec) throw walk_error(path, ec);
    if (is_dir) {
      fs::recursive_directory_iterator it(
          path, fs::directory_options::none, ec);
      if (ec) throw walk_error(path, ec);
      const auto end = fs::end(it);
      while (it != end) {
        const fs::path entry = it->path();
        const bool entry_is_dir = it->is_directory(ec);
        if (ec) throw walk_error(entry, ec);
        if (entry_is_dir && skipped_directory(entry.filename().string())) {
          it.disable_recursion_pending();
        } else {
          const bool regular = it->is_regular_file(ec);
          if (ec) throw walk_error(entry, ec);
          if (regular && lintable_extension(entry)) files.push_back(entry);
        }
        it.increment(ec);
        if (ec) throw walk_error(path, ec);
      }
    } else {
      const bool exists = fs::exists(path, ec);
      if (ec) throw walk_error(path, ec);
      if (!exists) {
        throw IoError("dsml-lint: no such file or directory '" +
                      path.string() + "'");
      }
      files.push_back(path);
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string read_file(const fs::path& file) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    throw IoError("dsml-lint: cannot read '" + file.string() + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    throw IoError("dsml-lint: read failed for '" + file.string() + "'");
  }
  return buffer.str();
}

std::string cache_key(const fs::path& file) {
  return fs::absolute(file).lexically_normal().generic_string();
}

/// Phase 1 over a file list: build (or reuse from cache) one FileModel per
/// file.
std::vector<FileModel> build_models(const std::vector<fs::path>& files,
                                    const AnalyzeOptions& options) {
  ModelCache cache;
  if (options.use_cache) {
    cache = internal::load_model_cache(options.cache_dir);
  }
  std::vector<FileModel> models;
  models.reserve(files.size());
  for (const fs::path& file : files) {
    const std::string content = read_file(file);
    const std::uint64_t hash = internal::fnv1a(content);
    const std::string key = cache_key(file);
    const auto hit = cache.entries.find(key);
    FileModel model;
    if (hit != cache.entries.end() && hit->second.content_hash == hash) {
      model = hit->second;
      // The cache stores the key spelling; diagnostics must carry the path
      // exactly as this invocation named it.
      model.path = file.generic_string();
      for (Diagnostic& d : model.diagnostics) d.file = model.path;
    } else {
      model = build_file_model(file.generic_string(), content);
      if (options.use_cache) {
        cache.entries[key] = model;
        cache.dirty = true;
      }
    }
    models.push_back(std::move(model));
  }
  if (options.use_cache && cache.dirty) {
    internal::store_model_cache(options.cache_dir, cache);
  }
  return models;
}

void sort_diagnostics(std::vector<Diagnostic>* diagnostics) {
  std::sort(diagnostics->begin(), diagnostics->end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
}

/// Regenerates docs/registries/{failpoints,metrics,spans}.txt from the
/// string-literal definition sites under <root>/src and <root>/tools.
int update_registries(const fs::path& root, const AnalyzeOptions& options,
                      std::ostream& out) {
  std::vector<fs::path> dirs;
  for (const char* dir : {"src", "tools"}) {
    std::error_code ec;
    if (fs::is_directory(root / dir, ec) && !ec) dirs.push_back(root / dir);
  }
  const std::vector<FileModel> models = build_models(collect_files(dirs),
                                                     options);
  std::set<std::string> names[3];
  for (const FileModel& model : models) {
    for (const NameUse& use : model.names) {
      names[static_cast<int>(use.kind)].insert(use.name);
    }
  }
  const struct {
    NameUse::Kind kind;
    const char* file;
    const char* what;
    const char* rule;
  } kManifests[] = {
      {NameUse::Kind::kFailpoint, "failpoints.txt", "failpoint",
       "unregistered-failpoint"},
      {NameUse::Kind::kMetric, "metrics.txt", "metric",
       "unregistered-metric"},
      {NameUse::Kind::kSpan, "spans.txt", "trace span",
       "unregistered-metric"},
  };
  const fs::path registry_dir = root / "docs" / "registries";
  std::error_code ec;
  fs::create_directories(registry_dir, ec);
  if (ec) {
    throw IoError("dsml-lint: cannot create '" + registry_dir.string() +
                  "': " + ec.message());
  }
  for (const auto& manifest : kManifests) {
    const fs::path file = registry_dir / manifest.file;
    std::ofstream stream(file, std::ios::binary | std::ios::trunc);
    if (!stream) {
      throw IoError("dsml-lint: cannot write '" + file.string() + "'");
    }
    stream << "# Canonical " << manifest.what
           << " names — generated by `dsml lint --update-registries`.\n"
           << "# Every string-literal " << manifest.what
           << " site under src/ and tools/ must appear here;\n"
           << "# dsml-lint's " << manifest.rule
           << " rule fails CI otherwise. Review additions:\n"
           << "# a name that appears here by accident is a typo about to "
              "ship.\n";
    const auto& list = names[static_cast<int>(manifest.kind)];
    for (const std::string& name : list) stream << name << "\n";
    if (!stream) {
      throw IoError("dsml-lint: write failed for '" + file.string() + "'");
    }
    out << "updated " << fs::path("docs/registries/" + std::string(
                                      manifest.file)).generic_string()
        << " (" << list.size() << " " << manifest.what << " name"
        << (list.size() == 1 ? "" : "s") << ")\n";
  }
  return 0;
}

}  // namespace

std::vector<Diagnostic> analyze_paths(const std::vector<fs::path>& paths,
                                      const AnalyzeOptions& options) {
  std::vector<FileModel> models = build_models(collect_files(paths), options);
  std::vector<Diagnostic> diagnostics;
  for (const FileModel& model : models) {
    diagnostics.insert(diagnostics.end(), model.diagnostics.begin(),
                       model.diagnostics.end());
  }
  if (!options.root.empty()) {
    const ProjectModel project =
        internal::build_project_model(options.root, std::move(models));
    std::vector<Diagnostic> cross = internal::run_project_rules(project);
    diagnostics.insert(diagnostics.end(),
                       std::make_move_iterator(cross.begin()),
                       std::make_move_iterator(cross.end()));
  }
  sort_diagnostics(&diagnostics);
  return diagnostics;
}

std::vector<Diagnostic> lint_paths(const std::vector<fs::path>& paths) {
  AnalyzeOptions options;
  options.use_cache = false;  // root stays empty: per-file rules only
  return analyze_paths(paths, options);
}

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  std::vector<fs::path> paths;
  std::string graph_mode;
  fs::path sarif_file;
  fs::path explicit_root;
  bool update_registries_mode = false;
  bool no_cache = false;
  fs::path cache_dir = ".dsml_cache";

  const auto value_of = [&](const std::vector<std::string>& all,
                            std::size_t& i,
                            const char* flag) -> std::string {
    if (i + 1 >= all.size()) {
      throw InvalidArgument(std::string("dsml-lint: missing value for ") +
                            flag);
    }
    return all[++i];
  };
  try {
    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::string& arg = args[i];
      if (arg == "--list-rules") {
        for (const auto& rule : rule_catalogue()) {
          out << rule.id << " — " << rule.summary << "\n";
        }
        return 0;
      }
      if (arg == "--help" || arg == "-h") {
        out << "usage: dsml-lint [options] [path...]\n"
               "lints .cpp/.hpp files; with no paths, scans src tools bench "
               "tests examples\n"
               "options:\n"
               "  --list-rules          print `id — description` for every "
               "rule\n"
               "  --graph dot|json      dump the include graph instead of "
               "linting\n"
               "  --sarif FILE          also write findings as SARIF 2.1.0\n"
               "  --update-registries   regenerate docs/registries/*.txt "
               "from the tree\n"
               "  --root DIR            project root (default: nearest "
               "ancestor with tools/lint/layers.def)\n"
               "  --no-cache            disable the .dsml_cache/ phase-1 "
               "cache\n"
               "  --cache-dir DIR       cache location (default "
               ".dsml_cache)\n"
               "suppress a finding with: // dsml-lint: allow(<rule-id>)\n";
        return 0;
      }
      if (arg == "--graph") {
        graph_mode = value_of(args, i, "--graph");
        if (graph_mode != "dot" && graph_mode != "json") {
          throw InvalidArgument("dsml-lint: --graph expects dot or json, "
                                "got '" + graph_mode + "'");
        }
        continue;
      }
      if (arg == "--sarif") {
        sarif_file = value_of(args, i, "--sarif");
        continue;
      }
      if (arg == "--root") {
        explicit_root = value_of(args, i, "--root");
        continue;
      }
      if (arg == "--cache-dir") {
        cache_dir = value_of(args, i, "--cache-dir");
        continue;
      }
      if (arg == "--update-registries") {
        update_registries_mode = true;
        continue;
      }
      if (arg == "--no-cache") {
        no_cache = true;
        continue;
      }
      if (arg.rfind("--", 0) == 0) {
        err << "dsml-lint: unknown option '" << arg << "'\n";
        return 2;
      }
      paths.emplace_back(arg);
    }
  } catch (const InvalidArgument& e) {
    err << e.what() << "\n";
    return 2;
  }

  if (paths.empty() && !update_registries_mode) {
    for (const char* dir : {"src", "tools", "bench", "tests", "examples"}) {
      std::error_code ec;
      if (fs::is_directory(dir, ec) && !ec) paths.emplace_back(dir);
    }
    if (paths.empty()) {
      err << "dsml-lint: no default source directories found; pass paths\n";
      return 2;
    }
  }

  try {
    AnalyzeOptions options;
    options.use_cache = !no_cache;
    options.cache_dir = cache_dir;
    options.root = explicit_root;
    if (options.root.empty()) {
      options.root = find_project_root(fs::current_path());
    }
    if (options.root.empty() && !paths.empty()) {
      std::error_code ec;
      const fs::path first = fs::absolute(paths.front(), ec);
      if (!ec) options.root = find_project_root(first);
    }

    if (update_registries_mode) {
      if (options.root.empty()) {
        err << "dsml-lint: --update-registries needs a project root "
               "(tools/lint/layers.def not found; pass --root)\n";
        return 2;
      }
      return update_registries(options.root, options, out);
    }

    if (!graph_mode.empty()) {
      std::vector<FileModel> models =
          build_models(collect_files(paths), options);
      const ProjectModel project =
          internal::build_project_model(options.root, std::move(models));
      if (graph_mode == "dot") {
        internal::write_graph_dot(project, out);
      } else {
        internal::write_graph_json(project, out);
      }
      return 0;
    }

    const std::vector<Diagnostic> diagnostics =
        analyze_paths(paths, options);
    print_diagnostics(diagnostics, out);
    if (!sarif_file.empty()) {
      internal::write_sarif(sarif_file, options.root, diagnostics);
    }
    if (!diagnostics.empty()) {
      err << "dsml-lint: " << diagnostics.size() << " finding(s)\n";
      return 1;
    }
    return 0;
  } catch (const IoError& e) {
    err << e.what() << "\n";
    return 2;
  } catch (const fs::filesystem_error& e) {
    // Belt and braces: anything the hardened walk missed still honours the
    // documented exit-2 contract instead of aborting mid-scan.
    err << "dsml-lint: filesystem error: " << e.what() << "\n";
    return 2;
  }
}

}  // namespace dsml::lint
