// Phase 1 of dsml-lint: the per-file rule engine and the FileModel builder.
// Cross-TU analysis (phase 2) lives in project.cpp; the CLI in driver.cpp.
#include "lint/lint.hpp"

#include <algorithm>
#include <fstream>
#include <regex>
#include <sstream>
#include <tuple>
#include <unordered_set>

#include "common/error.hpp"
#include "lint/internal.hpp"

namespace dsml::lint {

namespace internal {
namespace {

// ---------------------------------------------------------------------------
// Path scoping
// ---------------------------------------------------------------------------

std::string normalize(const std::string& path) {
  std::string out = path;
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

bool path_has_dir(const std::string& normalized, const std::string& dir) {
  return normalized.rfind(dir + "/", 0) == 0 ||
         normalized.find("/" + dir + "/") != std::string::npos;
}

bool path_ends_with(const std::string& normalized, const std::string& tail) {
  return normalized.size() >= tail.size() &&
         normalized.compare(normalized.size() - tail.size(), tail.size(),
                            tail) == 0;
}

bool is_header(const std::string& normalized) {
  return path_ends_with(normalized, ".hpp") ||
         path_ends_with(normalized, ".h");
}

// ---------------------------------------------------------------------------
// Individual per-file rules. Each takes the code view and appends
// diagnostics; suppression happens centrally in build_file_model.
// ---------------------------------------------------------------------------

void scan_lines(const std::string& file, const SourceModel& model,
                const std::regex& pattern, const std::string& rule,
                const std::string& message, std::vector<Diagnostic>* out) {
  for (std::size_t i = 0; i < model.code.size(); ++i) {
    if (std::regex_search(model.code[i], pattern)) {
      out->push_back({file, i + 1, rule, message});
    }
  }
}

void rule_rand_source(const std::string& file, const std::string& normalized,
                      const SourceModel& model,
                      std::vector<Diagnostic>* out) {
  if (path_ends_with(normalized, "common/rng.hpp")) return;
  static const std::regex kPattern(
      R"(\bstd::rand\b|\bsrand\s*\(|\brand\s*\(|\bmt19937(_64)?\b|\brandom_device\b)");
  scan_lines(file, model, kPattern, "rand-source",
             "non-deterministic or non-dsml randomness; use dsml::Rng "
             "(common/rng.hpp)",
             out);
}

void rule_float_accum(const std::string& file, const std::string& normalized,
                      const SourceModel& model,
                      std::vector<Diagnostic>* out) {
  if (!path_has_dir(normalized, "linalg") && !path_has_dir(normalized, "ml")) {
    return;
  }
  if (!path_has_dir(normalized, "src")) return;
  // The float32 serving path is float *by contract* (opt-in, error-budgeted;
  // see docs/PERFORMANCE.md): the SIMD kernel TUs and the f32-named sources
  // are exempt. Everything else in linalg/ml stays double.
  if (path_has_dir(normalized, "linalg/simd")) return;
  const auto slash = normalized.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? normalized : normalized.substr(slash + 1);
  if (base.find("f32") != std::string::npos) return;
  static const std::regex kPattern(R"(\bfloat\b)");
  scan_lines(file, model, kPattern, "float-accum",
             "float in linalg/ml code; numeric accumulation must stay double",
             out);
}

/// Flags x86 vector-intrinsic usage (immintrin/emmintrin-family includes or
/// `_mm*` calls) under src/ or tools/ outside src/linalg/simd/. Intrinsics
/// are platform-gated, compiled with per-TU flags (-mavx2 -mfma
/// -ffp-contract=off), and carry the bit-identity contract documented in
/// src/linalg/simd/simd_kernels.hpp — scattering them elsewhere bypasses all
/// three. Code with a genuine reason (e.g. a prefetch hint in a hot loop)
/// opts out with `// dsml-lint: allow(intrinsics-outside-simd)`.
void rule_intrinsics_outside_simd(const std::string& file,
                                  const std::string& normalized,
                                  const SourceModel& model,
                                  std::vector<Diagnostic>* out) {
  if (!path_has_dir(normalized, "src") && !path_has_dir(normalized, "tools")) {
    return;
  }
  if (path_has_dir(normalized, "linalg/simd")) return;
  static const std::regex kPattern(
      R"(^\s*#\s*include\s*<(?:imm|emm|xmm|pmm|smm|tmm|wmm|nmm|x86)intrin\.h>|\b_mm(?:256|512)?_\w+\s*\()");
  scan_lines(file, model, kPattern, "intrinsics-outside-simd",
             "x86 vector intrinsics outside src/linalg/simd/; put SIMD "
             "kernels behind the dispatch layer (linalg/backend.hpp) so "
             "per-TU flags and the bit-identity contract apply",
             out);
}

void rule_iostream_in_lib(const std::string& file,
                          const std::string& normalized,
                          const SourceModel& model,
                          std::vector<Diagnostic>* out) {
  if (!path_has_dir(normalized, "src")) return;
  if (path_ends_with(normalized, "error.hpp") ||
      path_ends_with(normalized, "table.hpp")) {
    return;
  }
  static const std::regex kPattern(
      R"(\bstd::cout\b|\bstd::cerr\b|\bprintf\s*\(|\bfprintf\s*\(|\bputs\s*\()");
  scan_lines(file, model, kPattern, "iostream-in-lib",
             "direct console output in library code; take an std::ostream& "
             "or report via exceptions",
             out);
}

void rule_catch_all_swallow(const std::string& file,
                            const std::string& /*normalized*/,
                            const SourceModel& model,
                            std::vector<Diagnostic>* out) {
  // Flatten the code view so `catch (...)` and its handler can span lines.
  std::string flat;
  std::vector<std::size_t> line_of;  // flat offset -> 0-based line
  for (std::size_t i = 0; i < model.code.size(); ++i) {
    for (char c : model.code[i]) {
      flat.push_back(c);
      line_of.push_back(i);
    }
    flat.push_back('\n');
    line_of.push_back(i);
  }
  static const std::regex kCatchAll(R"(\bcatch\s*\(\s*\.\.\.\s*\))");
  for (auto it = std::sregex_iterator(flat.begin(), flat.end(), kCatchAll);
       it != std::sregex_iterator(); ++it) {
    const std::size_t catch_pos = static_cast<std::size_t>(it->position());
    const std::size_t open = flat.find('{', catch_pos);
    if (open == std::string::npos) continue;
    int depth = 0;
    std::size_t close = open;
    for (; close < flat.size(); ++close) {
      if (flat[close] == '{') ++depth;
      if (flat[close] == '}' && --depth == 0) break;
    }
    const std::string body = flat.substr(open, close - open + 1);
    static const std::regex kHandles(R"(\bthrow\b|\bcurrent_exception\b)");
    if (!std::regex_search(body, kHandles)) {
      out->push_back({file, line_of[catch_pos] + 1, "catch-all-swallow",
                      "catch (...) neither rethrows nor captures "
                      "std::current_exception"});
    }
  }
}

void rule_header_guard(const std::string& file, const std::string& normalized,
                       const SourceModel& model,
                       std::vector<Diagnostic>* out) {
  if (!is_header(normalized)) return;
  for (const std::string& line : model.code) {
    if (line.find("#pragma once") != std::string::npos) return;
  }
  out->push_back({file, 1, "header-guard",
                  "header lacks #pragma once (the repo's guard convention)"});
}

void rule_naked_new(const std::string& file, const std::string& /*normalized*/,
                    const SourceModel& model, std::vector<Diagnostic>* out) {
  static const std::regex kExempt(
      R"(=\s*delete\b|\boperator\s+new\b|\boperator\s+delete\b)");
  static const std::regex kNaked(R"(\bnew\b|\bdelete\b)");
  for (std::size_t i = 0; i < model.code.size(); ++i) {
    const std::string scrubbed =
        std::regex_replace(model.code[i], kExempt, "");
    if (std::regex_search(scrubbed, kNaked)) {
      out->push_back({file, i + 1, "naked-new",
                      "raw new/delete; use containers, make_unique or "
                      "make_shared"});
    }
  }
}

/// Flags two-argument `m(i, j)` call expressions inside for-loops in src/ml
/// where an argument is a loop induction variable: per-element
/// Matrix::operator() walks in ML hot loops defeat the blocked kernels in
/// linalg/kernels.hpp (row spans and batched GEMM/GEMV are the fast paths).
/// Heuristic, line-oriented: loop variables are harvested from `for (Type v =`
/// headers and expire when their brace scope closes; namespace-qualified
/// callees (std::min, kernels::gemv, ...) and calls whose arguments are not
/// plain identifiers are skipped. Genuinely cold code (model surgery,
/// serialization) opts out with `// dsml-lint: allow(matrix-elem-in-loop)`.
void rule_matrix_elem_in_loop(const std::string& file,
                              const std::string& normalized,
                              const SourceModel& model,
                              std::vector<Diagnostic>* out) {
  if (!path_has_dir(normalized, "src") || !path_has_dir(normalized, "ml")) {
    return;
  }
  static const std::regex kForVar(
      R"(\bfor\s*\(\s*(?:const\s+)?[A-Za-z_][\w:]*\s+([A-Za-z_]\w*)\s*=)");
  static const std::regex kCall(
      R"(([A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*)\s*\(\s*([A-Za-z_]\w*|[0-9]+)\s*,\s*([A-Za-z_]\w*|[0-9]+)\s*\))");
  static const std::unordered_set<std::string> kNotAccessors = {
      "for", "if", "while", "switch", "catch", "return", "sizeof"};

  std::vector<std::pair<std::string, int>> loop_vars;  // name, header depth
  int depth = 0;
  for (std::size_t i = 0; i < model.code.size(); ++i) {
    const std::string& line = model.code[i];
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kForVar);
         it != std::sregex_iterator(); ++it) {
      loop_vars.emplace_back((*it)[1].str(), depth);
    }
    if (!loop_vars.empty()) {
      const auto is_loop_var = [&](const std::string& name) {
        return std::any_of(
            loop_vars.begin(), loop_vars.end(),
            [&](const auto& v) { return v.first == name; });
      };
      for (auto it = std::sregex_iterator(line.begin(), line.end(), kCall);
           it != std::sregex_iterator(); ++it) {
        const std::smatch& m = *it;
        const auto pos = static_cast<std::size_t>(m.position());
        // A ':' immediately before the callee means it is namespace-qualified
        // (free functions, casts), not a matrix object.
        if (pos > 0 && line[pos - 1] == ':') continue;
        const std::string callee = m[1].str();
        const std::size_t seg = callee.find_last_of(".>");
        const std::string last =
            seg == std::string::npos ? callee : callee.substr(seg + 1);
        if (kNotAccessors.count(last)) continue;
        if (is_loop_var(m[2].str()) || is_loop_var(m[3].str())) {
          out->push_back(
              {file, i + 1, "matrix-elem-in-loop",
               "per-element operator() access in an src/ml loop; use row "
               "spans or the batched kernels (linalg/kernels.hpp), or mark "
               "cold code with an allow directive"});
          break;  // one diagnostic per line is enough
        }
      }
    }
    for (char c : line) {
      if (c == '{') ++depth;
      if (c == '}') {
        --depth;
        while (!loop_vars.empty() && loop_vars.back().second >= depth) {
          loop_vars.pop_back();
        }
      }
    }
  }
}

/// Flags raw std::chrono clock reads in library code under src/. All timing
/// there is supposed to flow through trace::Stopwatch / the tracing layer
/// (common/trace.hpp), so profiling stays centralised and the
/// tracing-disabled path provably reads no clock. The tracing layer itself
/// and the thread pool's queue-wait probe are the sanctioned call sites.
void rule_raw_clock_in_lib(const std::string& file,
                           const std::string& normalized,
                           const SourceModel& model,
                           std::vector<Diagnostic>* out) {
  if (!path_has_dir(normalized, "src")) return;
  if (path_ends_with(normalized, "common/trace.hpp") ||
      path_ends_with(normalized, "common/trace.cpp") ||
      path_ends_with(normalized, "common/thread_pool.hpp") ||
      path_ends_with(normalized, "common/thread_pool.cpp")) {
    return;
  }
  static const std::regex kPattern(
      R"((?:\bstd::chrono::)?\b(?:steady_clock|high_resolution_clock|system_clock)::now\s*\()");
  scan_lines(file, model, kPattern, "raw-clock-in-lib",
             "raw std::chrono clock read in library code; time through "
             "trace::Stopwatch or a trace::Span (common/trace.hpp)",
             out);
}

/// Flags `throw std::runtime_error(...)` / `throw std::logic_error(...)`
/// under src/: library code must throw the dsml taxonomy (InvalidArgument,
/// StateError, NumericalError, IoError, TrainingError from common/error.hpp)
/// so callers can catch by kind and failure summaries can classify via
/// error_kind(). common/error.hpp itself is exempt — DSML_ASSERT's
/// assert_fail deliberately raises a bare std::logic_error to mark internal
/// bugs as outside the recoverable taxonomy.
void rule_raw_std_throw(const std::string& file,
                        const std::string& normalized,
                        const SourceModel& model,
                        std::vector<Diagnostic>* out) {
  if (!path_has_dir(normalized, "src")) return;
  if (path_ends_with(normalized, "common/error.hpp")) return;
  static const std::regex kPattern(
      R"(\bthrow\s+(?:::)?std::(?:runtime_error|logic_error)\b)");
  scan_lines(file, model, kPattern, "raw-std-throw",
             "bare std::runtime_error/std::logic_error throw in library "
             "code; use the dsml error taxonomy (common/error.hpp)",
             out);
}

/// Flags direct `ml::load_model(...)` calls under tools/: the CLI must
/// resolve artifacts through engine::ModelRegistry (load_file /
/// register_model), which validates the model against its schema at
/// registration, versions reloads, and shares the loaded snapshot across
/// sessions. A direct load bypasses all three and reintroduces the
/// load-per-invocation cold start the engine layer exists to remove. The
/// engine itself (src/engine/registry.cpp) is the one sanctioned wrapper.
void rule_direct_model_load_in_tools(const std::string& file,
                                     const std::string& normalized,
                                     const SourceModel& model,
                                     std::vector<Diagnostic>* out) {
  if (!path_has_dir(normalized, "tools")) return;
  static const std::regex kPattern(R"(\b(?:ml\s*::\s*)?load_model\s*\()");
  scan_lines(file, model, kPattern, "direct-model-load-in-tools",
             "direct model artifact load in tools/; resolve models through "
             "engine::ModelRegistry (load_file/register_model) so schema "
             "validation and versioning apply",
             out);
}

// ---------------------------------------------------------------------------
// Suppression directives
// ---------------------------------------------------------------------------

/// Rules suppressed on each line, plus diagnostics for unknown rule names in
/// allow() lists (a typo would otherwise disable a check silently).
struct Suppressions {
  std::vector<std::pair<std::size_t, std::string>> allowed;  // line, rule
  std::vector<Diagnostic> unknown;
};

Suppressions parse_suppressions(const std::string& file,
                                const SourceModel& model) {
  static const std::regex kAllow(R"(dsml-lint:\s*allow\(([^)]*)\))");
  Suppressions sup;
  for (std::size_t i = 0; i < model.comment.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(model.comment[i], m, kAllow)) continue;
    std::istringstream list(m[1].str());
    std::string id;
    while (std::getline(list, id, ',')) {
      const auto begin = id.find_first_not_of(" \t");
      if (begin == std::string::npos) continue;
      const auto end = id.find_last_not_of(" \t");
      id = id.substr(begin, end - begin + 1);
      if (is_known_rule(id)) {
        sup.allowed.emplace_back(i + 1, id);
      } else {
        sup.unknown.push_back({file, i + 1, "unknown-allow",
                               "allow() names unknown rule '" + id + "'"});
      }
    }
  }
  return sup;
}

// ---------------------------------------------------------------------------
// Include and observability-name extraction (phase-2 inputs). These scan the
// raw view — the interesting part IS the string literal — but anchor on the
// code view so commented-out calls do not register.
// ---------------------------------------------------------------------------

void extract_includes(const SourceModel& model, FileModel* out) {
  static const std::regex kInclude(R"re(^\s*#\s*include\s*"([^"]+)")re");
  for (std::size_t i = 0; i < model.raw.size(); ++i) {
    std::smatch m;
    if (std::regex_search(model.raw[i], m, kInclude)) {
      // The '#' must survive in the code view (i.e. not be comment text).
      const auto hash = model.code[i].find('#');
      if (hash == std::string::npos) continue;
      out->includes.push_back({i + 1, m[1].str()});
    }
  }
}

void extract_names(const SourceModel& model, FileModel* out) {
  // Flatten raw and code views in lockstep so a call whose string literal
  // sits on the next line (clang-format splits long registrations) still
  // extracts. Only *pure literal* arguments register: a concatenated name
  // like `metrics::counter("failpoint." + name)` is dynamic and is skipped.
  std::string raw;
  std::string code;
  std::vector<std::size_t> line_of;
  for (std::size_t i = 0; i < model.raw.size(); ++i) {
    for (char c : model.raw[i]) {
      raw.push_back(c);
      line_of.push_back(i);
    }
    raw.push_back('\n');
    line_of.push_back(i);
    code.append(model.code[i]);
    code.push_back('\n');
  }

  struct Extractor {
    std::regex pattern;
    NameUse::Kind kind;
    int name_group;
  };
  static const std::vector<Extractor> kExtractors = {
      {std::regex(
           R"re(\bDSML_FAIL(?:_POISON)?\s*\(\s*"([^"]*)"\s*\))re"),
       NameUse::Kind::kFailpoint, 1},
      {std::regex(
           R"re(\bmetrics\s*::\s*(?:counter|gauge|histogram)\s*\(\s*"([^"]*)"\s*\))re"),
       NameUse::Kind::kMetric, 1},
      {std::regex(
           R"re(\btrace\s*::\s*Span\s+[A-Za-z_]\w*\s*\(\s*"([^"]*)"\s*[,)])re"),
       NameUse::Kind::kSpan, 1},
  };
  for (const Extractor& ex : kExtractors) {
    for (auto it = std::sregex_iterator(raw.begin(), raw.end(), ex.pattern);
         it != std::sregex_iterator(); ++it) {
      const auto pos = static_cast<std::size_t>(it->position());
      // Anchor check: the call prefix must be live code, not comment text.
      // Comparing the first few characters is enough — the code view blanks
      // only literal contents and comments.
      const std::size_t probe = std::min<std::size_t>(5, it->length());
      if (code.compare(pos, probe, raw, pos, probe) != 0) continue;
      out->names.push_back(
          {line_of[pos] + 1, ex.kind,
           (*it)[static_cast<std::size_t>(ex.name_group)].str()});
    }
  }
  std::sort(out->names.begin(), out->names.end(),
            [](const NameUse& a, const NameUse& b) {
              return std::tie(a.line, a.name) < std::tie(b.line, b.name);
            });
}

}  // namespace

const std::vector<PerFileRule>& per_file_rules() {
  static const std::vector<PerFileRule> kRules = {
      {"rand-source",
       "randomness outside common/rng.hpp (std::rand, srand, mt19937, "
       "random_device)",
       rule_rand_source},
      {"float-accum",
       "float in src/linalg or src/ml numeric code (the f32 serving path "
       "and src/linalg/simd are exempt)",
       rule_float_accum},
      {"intrinsics-outside-simd",
       "x86 vector intrinsics under src/ or tools/ outside src/linalg/simd/",
       rule_intrinsics_outside_simd},
      {"iostream-in-lib",
       "std::cout/std::cerr/printf in library code under src/",
       rule_iostream_in_lib},
      {"catch-all-swallow",
       "catch (...) that neither rethrows nor captures the exception",
       rule_catch_all_swallow},
      {"header-guard", "header without #pragma once", rule_header_guard},
      {"naked-new", "raw new/delete expression", rule_naked_new},
      {"matrix-elem-in-loop",
       "per-element Matrix operator() access inside src/ml loops",
       rule_matrix_elem_in_loop},
      {"raw-clock-in-lib",
       "raw std::chrono clock read under src/ outside the tracing layer",
       rule_raw_clock_in_lib},
      {"raw-std-throw",
       "bare std::runtime_error/logic_error throw under src/ outside "
       "common/error.hpp",
       rule_raw_std_throw},
      {"direct-model-load-in-tools",
       "direct ml model artifact load under tools/ bypassing "
       "engine::ModelRegistry",
       rule_direct_model_load_in_tools},
  };
  return kRules;
}

}  // namespace internal

const std::vector<RuleInfo>& rule_catalogue() {
  static const std::vector<RuleInfo> kRules = [] {
    std::vector<RuleInfo> rules;
    for (const auto& r : internal::per_file_rules()) {
      rules.push_back({r.id, r.summary});
    }
    for (const auto& r : internal::project_rules()) {
      rules.push_back({r.id, r.summary});
    }
    rules.push_back(
        {"unknown-allow", "allow() directive naming an unknown rule"});
    return rules;
  }();
  return kRules;
}

bool is_known_rule(const std::string& id) {
  const auto& rules = rule_catalogue();
  return std::any_of(rules.begin(), rules.end(),
                     [&](const RuleInfo& r) { return r.id == id; });
}

FileModel build_file_model(const std::string& path,
                           const std::string& content) {
  const std::string normalized = internal::normalize(path);
  const internal::SourceModel model = internal::build_source_model(content);
  const internal::Suppressions sup =
      internal::parse_suppressions(path, model);

  FileModel file;
  file.path = path;
  file.content_hash = internal::fnv1a(content);
  file.allows = sup.allowed;

  std::vector<Diagnostic> found;
  for (const auto& rule : internal::per_file_rules()) {
    rule.check(path, normalized, model, &found);
  }
  const auto suppressed = [&](const Diagnostic& d) {
    return std::any_of(sup.allowed.begin(), sup.allowed.end(),
                       [&](const auto& a) {
                         return a.first == d.line && a.second == d.rule;
                       });
  };
  for (auto& d : found) {
    if (!suppressed(d)) file.diagnostics.push_back(std::move(d));
  }
  file.diagnostics.insert(file.diagnostics.end(), sup.unknown.begin(),
                          sup.unknown.end());
  std::sort(file.diagnostics.begin(), file.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });

  internal::extract_includes(model, &file);
  internal::extract_names(model, &file);
  return file;
}

std::vector<Diagnostic> lint_source(const std::string& path,
                                    const std::string& content) {
  return build_file_model(path, content).diagnostics;
}

std::vector<Diagnostic> lint_file(const std::filesystem::path& file) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    throw IoError("dsml-lint: cannot read '" + file.string() + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    throw IoError("dsml-lint: read failed for '" + file.string() + "'");
  }
  return lint_source(file.generic_string(), buffer.str());
}

}  // namespace dsml::lint
