#include "lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <ostream>
#include <regex>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "common/error.hpp"

namespace dsml::lint {

namespace {

// ---------------------------------------------------------------------------
// Source model: the file split into lines, with a parallel "code view" in
// which comments and string/character-literal contents are blanked out, plus
// the per-line set of rules suppressed via inline allow directives.
// ---------------------------------------------------------------------------

struct SourceModel {
  std::vector<std::string> code;     // comments/strings blanked
  std::vector<std::string> comment;  // comment text only (for directives)
};

std::vector<std::string> split_lines(const std::string& content) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  lines.push_back(current);
  return lines;
}

/// Strips comments and literal contents. A hand-rolled scanner (rather than
/// a regex) because block comments, raw strings, and escapes all span
/// arbitrary spans of text and interact.
SourceModel build_model(const std::string& content) {
  enum class State { kCode, kBlockComment, kString, kChar, kRawString };
  SourceModel model;
  State state = State::kCode;
  std::string raw_delim;  // for kRawString: the `)delim"` terminator

  for (const std::string& line : split_lines(content)) {
    std::string code(line.size(), ' ');
    std::string comment;
    std::size_t i = 0;
    while (i < line.size()) {
      const char c = line[i];
      switch (state) {
        case State::kCode: {
          if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
            comment.append(line.substr(i + 2));
            i = line.size();
            continue;
          }
          if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
            state = State::kBlockComment;
            i += 2;
            continue;
          }
          if (c == 'R' && i + 1 < line.size() && line[i + 1] == '"' &&
              (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                              line[i - 1])) &&
                          line[i - 1] != '_'))) {
            const std::size_t open = line.find('(', i + 2);
            if (open != std::string::npos) {
              // Built with append() rather than operator+ to dodge a GCC 12
              // -Wrestrict false positive on substr concatenation.
              raw_delim.assign(1, ')');
              raw_delim.append(line, i + 2, open - i - 2);
              raw_delim.push_back('"');
              code[i] = 'R';
              code[i + 1] = '"';
              state = State::kRawString;
              i = open + 1;
              continue;
            }
          }
          if (c == '"') {
            code[i] = '"';
            state = State::kString;
            ++i;
            continue;
          }
          if (c == '\'') {
            code[i] = '\'';
            state = State::kChar;
            ++i;
            continue;
          }
          code[i] = c;
          ++i;
          break;
        }
        case State::kBlockComment: {
          if (c == '*' && i + 1 < line.size() && line[i + 1] == '/') {
            state = State::kCode;
            i += 2;
          } else {
            comment.push_back(c);
            ++i;
          }
          break;
        }
        case State::kString:
        case State::kChar: {
          if (c == '\\') {
            i += 2;  // skip the escaped character
          } else if ((state == State::kString && c == '"') ||
                     (state == State::kChar && c == '\'')) {
            code[i] = c;
            state = State::kCode;
            ++i;
          } else {
            ++i;
          }
          break;
        }
        case State::kRawString: {
          const std::size_t close = line.find(raw_delim, i);
          if (close == std::string::npos) {
            i = line.size();
          } else {
            code[close + raw_delim.size() - 1] = '"';
            state = State::kCode;
            i = close + raw_delim.size();
          }
          break;
        }
      }
    }
    // A // comment or an unterminated string ends with the line.
    if (state == State::kString || state == State::kChar) state = State::kCode;
    model.code.push_back(std::move(code));
    model.comment.push_back(std::move(comment));
  }
  return model;
}

// ---------------------------------------------------------------------------
// Path scoping
// ---------------------------------------------------------------------------

std::string normalize(const std::string& path) {
  std::string out = path;
  std::replace(out.begin(), out.end(), '\\', '/');
  return out;
}

bool path_has_dir(const std::string& normalized, const std::string& dir) {
  return normalized.rfind(dir + "/", 0) == 0 ||
         normalized.find("/" + dir + "/") != std::string::npos;
}

bool path_ends_with(const std::string& normalized, const std::string& tail) {
  return normalized.size() >= tail.size() &&
         normalized.compare(normalized.size() - tail.size(), tail.size(),
                            tail) == 0;
}

bool is_header(const std::string& normalized) {
  return path_ends_with(normalized, ".hpp") ||
         path_ends_with(normalized, ".h");
}

// ---------------------------------------------------------------------------
// Suppression directives
// ---------------------------------------------------------------------------

/// Rules suppressed on each line, plus diagnostics for unknown rule names in
/// allow() lists (a typo would otherwise disable a check silently).
struct Suppressions {
  std::vector<std::unordered_set<std::string>> allowed;  // per line
  std::vector<Diagnostic> unknown;
};

Suppressions parse_suppressions(const std::string& file,
                                const SourceModel& model) {
  static const std::regex kAllow(R"(dsml-lint:\s*allow\(([^)]*)\))");
  Suppressions sup;
  sup.allowed.resize(model.comment.size());
  for (std::size_t i = 0; i < model.comment.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(model.comment[i], m, kAllow)) continue;
    std::istringstream list(m[1].str());
    std::string id;
    while (std::getline(list, id, ',')) {
      const auto begin = id.find_first_not_of(" \t");
      if (begin == std::string::npos) continue;
      const auto end = id.find_last_not_of(" \t");
      id = id.substr(begin, end - begin + 1);
      if (is_known_rule(id)) {
        sup.allowed[i].insert(id);
      } else {
        sup.unknown.push_back({file, i + 1, "unknown-allow",
                               "allow() names unknown rule '" + id + "'"});
      }
    }
  }
  return sup;
}

// ---------------------------------------------------------------------------
// Individual rules. Each takes the code view and appends diagnostics.
// ---------------------------------------------------------------------------

void scan_lines(const std::string& file, const SourceModel& model,
                const std::regex& pattern, const std::string& rule,
                const std::string& message, std::vector<Diagnostic>* out) {
  for (std::size_t i = 0; i < model.code.size(); ++i) {
    if (std::regex_search(model.code[i], pattern)) {
      out->push_back({file, i + 1, rule, message});
    }
  }
}

void rule_rand_source(const std::string& file, const std::string& normalized,
                      const SourceModel& model,
                      std::vector<Diagnostic>* out) {
  if (path_ends_with(normalized, "common/rng.hpp")) return;
  static const std::regex kPattern(
      R"(\bstd::rand\b|\bsrand\s*\(|\brand\s*\(|\bmt19937(_64)?\b|\brandom_device\b)");
  scan_lines(file, model, kPattern, "rand-source",
             "non-deterministic or non-dsml randomness; use dsml::Rng "
             "(common/rng.hpp)",
             out);
}

void rule_float_accum(const std::string& file, const std::string& normalized,
                      const SourceModel& model,
                      std::vector<Diagnostic>* out) {
  if (!path_has_dir(normalized, "linalg") && !path_has_dir(normalized, "ml")) {
    return;
  }
  if (!path_has_dir(normalized, "src")) return;
  static const std::regex kPattern(R"(\bfloat\b)");
  scan_lines(file, model, kPattern, "float-accum",
             "float in linalg/ml code; numeric accumulation must stay double",
             out);
}

void rule_iostream_in_lib(const std::string& file,
                          const std::string& normalized,
                          const SourceModel& model,
                          std::vector<Diagnostic>* out) {
  if (!path_has_dir(normalized, "src")) return;
  if (path_ends_with(normalized, "error.hpp") ||
      path_ends_with(normalized, "table.hpp")) {
    return;
  }
  static const std::regex kPattern(
      R"(\bstd::cout\b|\bstd::cerr\b|\bprintf\s*\(|\bfprintf\s*\(|\bputs\s*\()");
  scan_lines(file, model, kPattern, "iostream-in-lib",
             "direct console output in library code; take an std::ostream& "
             "or report via exceptions",
             out);
}

void rule_catch_all_swallow(const std::string& file, const SourceModel& model,
                            std::vector<Diagnostic>* out) {
  // Flatten the code view so `catch (...)` and its handler can span lines.
  std::string flat;
  std::vector<std::size_t> line_of;  // flat offset -> 0-based line
  for (std::size_t i = 0; i < model.code.size(); ++i) {
    for (char c : model.code[i]) {
      flat.push_back(c);
      line_of.push_back(i);
    }
    flat.push_back('\n');
    line_of.push_back(i);
  }
  static const std::regex kCatchAll(R"(\bcatch\s*\(\s*\.\.\.\s*\))");
  for (auto it = std::sregex_iterator(flat.begin(), flat.end(), kCatchAll);
       it != std::sregex_iterator(); ++it) {
    const std::size_t catch_pos = static_cast<std::size_t>(it->position());
    const std::size_t open = flat.find('{', catch_pos);
    if (open == std::string::npos) continue;
    int depth = 0;
    std::size_t close = open;
    for (; close < flat.size(); ++close) {
      if (flat[close] == '{') ++depth;
      if (flat[close] == '}' && --depth == 0) break;
    }
    const std::string body = flat.substr(open, close - open + 1);
    static const std::regex kHandles(R"(\bthrow\b|\bcurrent_exception\b)");
    if (!std::regex_search(body, kHandles)) {
      out->push_back({file, line_of[catch_pos] + 1, "catch-all-swallow",
                      "catch (...) neither rethrows nor captures "
                      "std::current_exception"});
    }
  }
}

void rule_header_guard(const std::string& file, const std::string& normalized,
                       const SourceModel& model,
                       std::vector<Diagnostic>* out) {
  if (!is_header(normalized)) return;
  for (const std::string& line : model.code) {
    if (line.find("#pragma once") != std::string::npos) return;
  }
  out->push_back({file, 1, "header-guard",
                  "header lacks #pragma once (the repo's guard convention)"});
}

void rule_naked_new(const std::string& file, const SourceModel& model,
                    std::vector<Diagnostic>* out) {
  static const std::regex kExempt(
      R"(=\s*delete\b|\boperator\s+new\b|\boperator\s+delete\b)");
  static const std::regex kNaked(R"(\bnew\b|\bdelete\b)");
  for (std::size_t i = 0; i < model.code.size(); ++i) {
    const std::string scrubbed =
        std::regex_replace(model.code[i], kExempt, "");
    if (std::regex_search(scrubbed, kNaked)) {
      out->push_back({file, i + 1, "naked-new",
                      "raw new/delete; use containers, make_unique or "
                      "make_shared"});
    }
  }
}

/// Flags two-argument `m(i, j)` call expressions inside for-loops in src/ml
/// where an argument is a loop induction variable: per-element
/// Matrix::operator() walks in ML hot loops defeat the blocked kernels in
/// linalg/kernels.hpp (row spans and batched GEMM/GEMV are the fast paths).
/// Heuristic, line-oriented: loop variables are harvested from `for (Type v =`
/// headers and expire when their brace scope closes; namespace-qualified
/// callees (std::min, kernels::gemv, ...) and calls whose arguments are not
/// plain identifiers are skipped. Genuinely cold code (model surgery,
/// serialization) opts out with `// dsml-lint: allow(matrix-elem-in-loop)`.
void rule_matrix_elem_in_loop(const std::string& file,
                              const std::string& normalized,
                              const SourceModel& model,
                              std::vector<Diagnostic>* out) {
  if (!path_has_dir(normalized, "src") || !path_has_dir(normalized, "ml")) {
    return;
  }
  static const std::regex kForVar(
      R"(\bfor\s*\(\s*(?:const\s+)?[A-Za-z_][\w:]*\s+([A-Za-z_]\w*)\s*=)");
  static const std::regex kCall(
      R"(([A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*)\s*\(\s*([A-Za-z_]\w*|[0-9]+)\s*,\s*([A-Za-z_]\w*|[0-9]+)\s*\))");
  static const std::unordered_set<std::string> kNotAccessors = {
      "for", "if", "while", "switch", "catch", "return", "sizeof"};

  std::vector<std::pair<std::string, int>> loop_vars;  // name, header depth
  int depth = 0;
  for (std::size_t i = 0; i < model.code.size(); ++i) {
    const std::string& line = model.code[i];
    for (auto it = std::sregex_iterator(line.begin(), line.end(), kForVar);
         it != std::sregex_iterator(); ++it) {
      loop_vars.emplace_back((*it)[1].str(), depth);
    }
    if (!loop_vars.empty()) {
      const auto is_loop_var = [&](const std::string& name) {
        return std::any_of(
            loop_vars.begin(), loop_vars.end(),
            [&](const auto& v) { return v.first == name; });
      };
      for (auto it = std::sregex_iterator(line.begin(), line.end(), kCall);
           it != std::sregex_iterator(); ++it) {
        const std::smatch& m = *it;
        const auto pos = static_cast<std::size_t>(m.position());
        // A ':' immediately before the callee means it is namespace-qualified
        // (free functions, casts), not a matrix object.
        if (pos > 0 && line[pos - 1] == ':') continue;
        const std::string callee = m[1].str();
        const std::size_t seg = callee.find_last_of(".>");
        const std::string last =
            seg == std::string::npos ? callee : callee.substr(seg + 1);
        if (kNotAccessors.count(last)) continue;
        if (is_loop_var(m[2].str()) || is_loop_var(m[3].str())) {
          out->push_back(
              {file, i + 1, "matrix-elem-in-loop",
               "per-element operator() access in an src/ml loop; use row "
               "spans or the batched kernels (linalg/kernels.hpp), or mark "
               "cold code with an allow directive"});
          break;  // one diagnostic per line is enough
        }
      }
    }
    for (char c : line) {
      if (c == '{') ++depth;
      if (c == '}') {
        --depth;
        while (!loop_vars.empty() && loop_vars.back().second >= depth) {
          loop_vars.pop_back();
        }
      }
    }
  }
}

/// Flags raw std::chrono clock reads in library code under src/. All timing
/// there is supposed to flow through trace::Stopwatch / the tracing layer
/// (common/trace.hpp), so profiling stays centralised and the
/// tracing-disabled path provably reads no clock. The tracing layer itself
/// and the thread pool's queue-wait probe are the sanctioned call sites.
void rule_raw_clock_in_lib(const std::string& file,
                           const std::string& normalized,
                           const SourceModel& model,
                           std::vector<Diagnostic>* out) {
  if (!path_has_dir(normalized, "src")) return;
  if (path_ends_with(normalized, "common/trace.hpp") ||
      path_ends_with(normalized, "common/trace.cpp") ||
      path_ends_with(normalized, "common/thread_pool.hpp") ||
      path_ends_with(normalized, "common/thread_pool.cpp")) {
    return;
  }
  static const std::regex kPattern(
      R"((?:\bstd::chrono::)?\b(?:steady_clock|high_resolution_clock|system_clock)::now\s*\()");
  scan_lines(file, model, kPattern, "raw-clock-in-lib",
             "raw std::chrono clock read in library code; time through "
             "trace::Stopwatch or a trace::Span (common/trace.hpp)",
             out);
}

/// Flags `throw std::runtime_error(...)` / `throw std::logic_error(...)`
/// under src/: library code must throw the dsml taxonomy (InvalidArgument,
/// StateError, NumericalError, IoError, TrainingError from common/error.hpp)
/// so callers can catch by kind and failure summaries can classify via
/// error_kind(). common/error.hpp itself is exempt — DSML_ASSERT's
/// assert_fail deliberately raises a bare std::logic_error to mark internal
/// bugs as outside the recoverable taxonomy.
void rule_raw_std_throw(const std::string& file,
                        const std::string& normalized,
                        const SourceModel& model,
                        std::vector<Diagnostic>* out) {
  if (!path_has_dir(normalized, "src")) return;
  if (path_ends_with(normalized, "common/error.hpp")) return;
  static const std::regex kPattern(
      R"(\bthrow\s+(?:::)?std::(?:runtime_error|logic_error)\b)");
  scan_lines(file, model, kPattern, "raw-std-throw",
             "bare std::runtime_error/std::logic_error throw in library "
             "code; use the dsml error taxonomy (common/error.hpp)",
             out);
}

/// Flags direct `ml::load_model(...)` calls under tools/: the CLI must
/// resolve artifacts through engine::ModelRegistry (load_file /
/// register_model), which validates the model against its schema at
/// registration, versions reloads, and shares the loaded snapshot across
/// sessions. A direct load bypasses all three and reintroduces the
/// load-per-invocation cold start the engine layer exists to remove. The
/// engine itself (src/engine/registry.cpp) is the one sanctioned wrapper.
void rule_direct_model_load_in_tools(const std::string& file,
                                     const std::string& normalized,
                                     const SourceModel& model,
                                     std::vector<Diagnostic>* out) {
  if (!path_has_dir(normalized, "tools")) return;
  static const std::regex kPattern(R"(\b(?:ml\s*::\s*)?load_model\s*\()");
  scan_lines(file, model, kPattern, "direct-model-load-in-tools",
             "direct model artifact load in tools/; resolve models through "
             "engine::ModelRegistry (load_file/register_model) so schema "
             "validation and versioning apply",
             out);
}

bool lintable_extension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

bool skipped_directory(const std::string& name) {
  return name == "lint_fixtures" || name == "build" || name == ".git" ||
         name == "third_party" || name == ".dsml_cache";
}

}  // namespace

const std::vector<RuleInfo>& rule_catalogue() {
  static const std::vector<RuleInfo> kRules = {
      {"rand-source",
       "randomness outside common/rng.hpp (std::rand, srand, mt19937, "
       "random_device)"},
      {"float-accum", "float in src/linalg or src/ml numeric code"},
      {"iostream-in-lib",
       "std::cout/std::cerr/printf in library code under src/"},
      {"catch-all-swallow",
       "catch (...) that neither rethrows nor captures the exception"},
      {"header-guard", "header without #pragma once"},
      {"naked-new", "raw new/delete expression"},
      {"matrix-elem-in-loop",
       "per-element Matrix operator() access inside src/ml loops"},
      {"raw-clock-in-lib",
       "raw std::chrono clock read under src/ outside the tracing layer"},
      {"raw-std-throw",
       "bare std::runtime_error/logic_error throw under src/ outside "
       "common/error.hpp"},
      {"direct-model-load-in-tools",
       "direct ml model artifact load under tools/ bypassing "
       "engine::ModelRegistry"},
      {"unknown-allow", "allow() directive naming an unknown rule"},
  };
  return kRules;
}

bool is_known_rule(const std::string& id) {
  const auto& rules = rule_catalogue();
  return std::any_of(rules.begin(), rules.end(),
                     [&](const RuleInfo& r) { return r.id == id; });
}

std::vector<Diagnostic> lint_source(const std::string& path,
                                    const std::string& content) {
  const std::string normalized = normalize(path);
  const SourceModel model = build_model(content);
  const Suppressions sup = parse_suppressions(path, model);

  std::vector<Diagnostic> found;
  rule_rand_source(path, normalized, model, &found);
  rule_float_accum(path, normalized, model, &found);
  rule_iostream_in_lib(path, normalized, model, &found);
  rule_catch_all_swallow(path, model, &found);
  rule_header_guard(path, normalized, model, &found);
  rule_naked_new(path, model, &found);
  rule_matrix_elem_in_loop(path, normalized, model, &found);
  rule_raw_clock_in_lib(path, normalized, model, &found);
  rule_raw_std_throw(path, normalized, model, &found);
  rule_direct_model_load_in_tools(path, normalized, model, &found);

  std::vector<Diagnostic> kept;
  for (auto& d : found) {
    const std::size_t idx = d.line - 1;
    if (idx < sup.allowed.size() && sup.allowed[idx].count(d.rule)) continue;
    kept.push_back(std::move(d));
  }
  kept.insert(kept.end(), sup.unknown.begin(), sup.unknown.end());
  std::sort(kept.begin(), kept.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return kept;
}

std::vector<Diagnostic> lint_file(const std::filesystem::path& file) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    throw IoError("dsml-lint: cannot read '" + file.string() + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return lint_source(file.generic_string(), buffer.str());
}

std::vector<Diagnostic> lint_paths(
    const std::vector<std::filesystem::path>& paths) {
  std::vector<std::filesystem::path> files;
  for (const auto& path : paths) {
    if (std::filesystem::is_directory(path)) {
      auto it = std::filesystem::recursive_directory_iterator(path);
      for (auto end = std::filesystem::end(it); it != end; ++it) {
        if (it->is_directory() &&
            skipped_directory(it->path().filename().string())) {
          it.disable_recursion_pending();
          continue;
        }
        if (it->is_regular_file() && lintable_extension(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (std::filesystem::exists(path)) {
      files.push_back(path);
    } else {
      throw IoError("dsml-lint: no such file or directory '" + path.string() +
                    "'");
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Diagnostic> all;
  for (const auto& file : files) {
    auto found = lint_file(file);
    all.insert(all.end(), std::make_move_iterator(found.begin()),
               std::make_move_iterator(found.end()));
  }
  return all;
}

void print_diagnostics(const std::vector<Diagnostic>& diagnostics,
                       std::ostream& out) {
  for (const auto& d : diagnostics) {
    out << d.file << ":" << d.line << ": [" << d.rule << "] " << d.message
        << "\n";
  }
}

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  std::vector<std::filesystem::path> paths;
  for (const auto& arg : args) {
    if (arg == "--list-rules") {
      for (const auto& rule : rule_catalogue()) {
        out << rule.id << "  " << rule.summary << "\n";
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      out << "usage: dsml-lint [--list-rules] [path...]\n"
             "lints .cpp/.hpp files; with no paths, scans src tools bench "
             "tests examples\n"
             "suppress a finding with: // dsml-lint: allow(<rule-id>)\n";
      return 0;
    }
    if (arg.rfind("--", 0) == 0) {
      err << "dsml-lint: unknown option '" << arg << "'\n";
      return 2;
    }
    paths.emplace_back(arg);
  }
  if (paths.empty()) {
    for (const char* dir : {"src", "tools", "bench", "tests", "examples"}) {
      if (std::filesystem::is_directory(dir)) paths.emplace_back(dir);
    }
    if (paths.empty()) {
      err << "dsml-lint: no default source directories found; pass paths\n";
      return 2;
    }
  }
  try {
    const std::vector<Diagnostic> diagnostics = lint_paths(paths);
    print_diagnostics(diagnostics, out);
    if (!diagnostics.empty()) {
      err << "dsml-lint: " << diagnostics.size() << " finding(s)\n";
      return 1;
    }
    return 0;
  } catch (const IoError& e) {
    err << e.what() << "\n";
    return 2;
  }
}

}  // namespace dsml::lint
