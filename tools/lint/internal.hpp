// Internal interfaces shared by the dsml-lint translation units. Nothing in
// here is part of the public lint.hpp surface; tests exercise these paths
// through lint_source/analyze_paths/run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/lint.hpp"

namespace dsml::lint::internal {

// ---------------------------------------------------------------------------
// Source model (source_model.cpp): the file split into lines, with a
// parallel "code view" in which comments and string/character-literal
// contents are blanked out. Per-file rules scan the code view (so comments
// and string contents cannot trigger them); the include/name extractors scan
// the raw view but validate against the code view.
// ---------------------------------------------------------------------------

struct SourceModel {
  std::vector<std::string> raw;      // the line as written
  std::vector<std::string> code;     // comments/strings blanked
  std::vector<std::string> comment;  // comment text only (for directives)
};

SourceModel build_source_model(const std::string& content);

/// FNV-1a 64-bit over the raw bytes — keys the phase-1 cache.
std::uint64_t fnv1a(const std::string& bytes);

// ---------------------------------------------------------------------------
// Rule tables. Each engine executes its own table; rule_catalogue() is
// assembled from both plus the unknown-allow meta rule, so --list-rules and
// the SARIF rule metadata can never drift from what actually runs.
// ---------------------------------------------------------------------------

struct PerFileRule {
  const char* id;
  const char* summary;
  void (*check)(const std::string& file, const std::string& normalized,
                const SourceModel& model, std::vector<Diagnostic>* out);
};

const std::vector<PerFileRule>& per_file_rules();

// ---------------------------------------------------------------------------
// Project model (project.cpp): phase-2 state.
// ---------------------------------------------------------------------------

/// The layer DAG declared in tools/lint/layers.def. `deps` holds the
/// transitive closure of each layer's declared dependencies.
struct LayerConfig {
  struct Layer {
    std::string name;
    std::vector<std::string> dirs;  // root-relative directory prefixes
    std::vector<std::string> deps;  // transitive closure, sorted
  };
  std::vector<Layer> layers;  // declaration order
  bool loaded = false;

  /// Longest-prefix directory match; empty when no layer owns the path.
  const Layer* layer_of(const std::string& rel_path) const;
  const Layer* find(const std::string& name) const;
};

/// Parses layers.def. Throws dsml::IoError on syntax errors, unknown
/// dependency names, or a cyclic declaration.
LayerConfig parse_layer_config(const std::filesystem::path& file);

/// One committed observability-name manifest (docs/registries/<kind>.txt):
/// `#` comments and blank lines skipped, one name per line.
struct Registry {
  bool present = false;  // absent file disables the corresponding check
  std::set<std::string> names;
};

Registry load_registry(const std::filesystem::path& file);

/// tsan ctest labels harvested from tests/CMakeLists.txt `dsml_test(...)`
/// calls: maps root-relative test source path -> has-tsan-label.
struct TestLabels {
  bool present = false;
  std::map<std::string, bool> tsan_labelled;  // "tests/test_x.cpp" -> bool
};

TestLabels parse_test_labels(const std::filesystem::path& cmake_lists);

struct ProjectModel {
  /// One resolved include edge of the scanned set.
  struct Edge {
    std::size_t file_index = 0;  // index into `files`/`rel`
    std::size_t line = 0;        // 1-based line of the #include
    std::string target_rel;      // resolved root-relative target path
  };

  std::filesystem::path root;  // empty -> cross-TU rules disabled
  LayerConfig layers;
  Registry failpoints;
  Registry metrics;  // also consulted for trace spans via `spans`
  Registry spans;
  TestLabels test_labels;
  std::vector<FileModel> files;  // sorted by rel path
  std::vector<std::string> rel;  // files[i]'s root-relative path
  std::vector<Edge> edges;       // resolved quoted includes, sorted
};

/// Loads layers.def/registries/test labels for `root` (each optional) and
/// computes root-relative paths for the files.
ProjectModel build_project_model(const std::filesystem::path& root,
                                 std::vector<FileModel> files);

struct ProjectRule {
  const char* id;
  const char* summary;
  void (*check)(const ProjectModel& project, std::vector<Diagnostic>* out);
};

const std::vector<ProjectRule>& project_rules();

/// Runs every project rule and filters the results through each file's
/// inline allow() directives.
std::vector<Diagnostic> run_project_rules(const ProjectModel& project);

/// Resolves a quoted include target against the include roots (the
/// includer's directory, then <root>/src, <root>/tools, <root>): returns the
/// root-relative path of an existing file, or "" when nothing resolves.
std::string resolve_include(const std::filesystem::path& root,
                            const std::string& includer_rel,
                            const std::string& target);

// ---------------------------------------------------------------------------
// Phase-1 cache (cache.cpp): content-hash keyed FileModels under
// .dsml_cache/. The cache header carries a fingerprint of the rule
// catalogue, so editing any rule invalidates every entry.
// ---------------------------------------------------------------------------

struct ModelCache {
  std::map<std::string, FileModel> entries;  // key: lexically-normal abs path
  bool dirty = false;
};

ModelCache load_model_cache(const std::filesystem::path& cache_dir);
void store_model_cache(const std::filesystem::path& cache_dir,
                       const ModelCache& cache);

// ---------------------------------------------------------------------------
// Output (output.cpp).
// ---------------------------------------------------------------------------

/// Writes findings as a SARIF 2.1.0 document (one run, rule metadata from
/// rule_catalogue(), root-relative artifact URIs where possible).
void write_sarif(const std::filesystem::path& file,
                 const std::filesystem::path& root,
                 const std::vector<Diagnostic>& diagnostics);

/// Dumps the include graph of the scanned files. `dot` renders the
/// layer-level DAG (aggregated edges, include counts); `json` lists every
/// file node with its layer plus the resolved file-level edges.
void write_graph_dot(const ProjectModel& project, std::ostream& out);
void write_graph_json(const ProjectModel& project, std::ostream& out);

}  // namespace dsml::lint::internal
