#include "lint/internal.hpp"

#include <cctype>

namespace dsml::lint::internal {

namespace {

std::vector<std::string> split_lines(const std::string& content) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  lines.push_back(current);
  return lines;
}

}  // namespace

std::uint64_t fnv1a(const std::string& bytes) {
  std::uint64_t hash = 1469598103934665603ull;
  for (unsigned char c : bytes) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

/// Strips comments and literal contents. A hand-rolled scanner (rather than
/// a regex) because block comments, raw strings, and escapes all span
/// arbitrary spans of text and interact.
SourceModel build_source_model(const std::string& content) {
  enum class State { kCode, kBlockComment, kString, kChar, kRawString };
  SourceModel model;
  State state = State::kCode;
  std::string raw_delim;  // for kRawString: the `)delim"` terminator

  for (std::string& line : split_lines(content)) {
    std::string code(line.size(), ' ');
    std::string comment;
    std::size_t i = 0;
    while (i < line.size()) {
      const char c = line[i];
      switch (state) {
        case State::kCode: {
          if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
            comment.append(line.substr(i + 2));
            i = line.size();
            continue;
          }
          if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
            state = State::kBlockComment;
            i += 2;
            continue;
          }
          if (c == 'R' && i + 1 < line.size() && line[i + 1] == '"' &&
              (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                              line[i - 1])) &&
                          line[i - 1] != '_'))) {
            const std::size_t open = line.find('(', i + 2);
            if (open != std::string::npos) {
              // Built with append() rather than operator+ to dodge a GCC 12
              // -Wrestrict false positive on substr concatenation.
              raw_delim.assign(1, ')');
              raw_delim.append(line, i + 2, open - i - 2);
              raw_delim.push_back('"');
              code[i] = 'R';
              code[i + 1] = '"';
              state = State::kRawString;
              i = open + 1;
              continue;
            }
          }
          if (c == '"') {
            code[i] = '"';
            state = State::kString;
            ++i;
            continue;
          }
          if (c == '\'') {
            code[i] = '\'';
            state = State::kChar;
            ++i;
            continue;
          }
          code[i] = c;
          ++i;
          break;
        }
        case State::kBlockComment: {
          if (c == '*' && i + 1 < line.size() && line[i + 1] == '/') {
            state = State::kCode;
            i += 2;
          } else {
            comment.push_back(c);
            ++i;
          }
          break;
        }
        case State::kString:
        case State::kChar: {
          if (c == '\\') {
            i += 2;  // skip the escaped character
          } else if ((state == State::kString && c == '"') ||
                     (state == State::kChar && c == '\'')) {
            code[i] = c;
            state = State::kCode;
            ++i;
          } else {
            ++i;
          }
          break;
        }
        case State::kRawString: {
          const std::size_t close = line.find(raw_delim, i);
          if (close == std::string::npos) {
            i = line.size();
          } else {
            code[close + raw_delim.size() - 1] = '"';
            state = State::kCode;
            i = close + raw_delim.size();
          }
          break;
        }
      }
    }
    // A // comment or an unterminated string ends with the line.
    if (state == State::kString || state == State::kChar) state = State::kCode;
    model.raw.push_back(std::move(line));
    model.code.push_back(std::move(code));
    model.comment.push_back(std::move(comment));
  }
  return model;
}

}  // namespace dsml::lint::internal
