// Phase 2 of dsml-lint: the cross-translation-unit analyzer. Builds a
// ProjectModel from the phase-1 FileModels plus the project's declared
// configuration (tools/lint/layers.def, docs/registries/*.txt,
// tests/CMakeLists.txt) and runs the whole-tree rules over it.
#include <algorithm>
#include <fstream>
#include <map>
#include <regex>
#include <sstream>
#include <tuple>

#include "common/error.hpp"
#include "lint/internal.hpp"

namespace dsml::lint {

namespace internal {

namespace {

namespace fs = std::filesystem;

std::string generic(const fs::path& p) { return p.generic_string(); }

std::string read_text_file(const fs::path& file) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    throw IoError("dsml-lint: cannot read '" + file.string() + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    throw IoError("dsml-lint: read failed for '" + file.string() + "'");
  }
  return buffer.str();
}

bool starts_with_dir(const std::string& rel, const std::string& dir) {
  return rel.rfind(dir + "/", 0) == 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// layers.def
// ---------------------------------------------------------------------------

const LayerConfig::Layer* LayerConfig::layer_of(
    const std::string& rel_path) const {
  const Layer* best = nullptr;
  std::size_t best_len = 0;
  for (const Layer& layer : layers) {
    for (const std::string& dir : layer.dirs) {
      if (starts_with_dir(rel_path, dir) && dir.size() >= best_len) {
        best = &layer;
        best_len = dir.size();
      }
    }
  }
  return best;
}

const LayerConfig::Layer* LayerConfig::find(const std::string& name) const {
  for (const Layer& layer : layers) {
    if (layer.name == name) return &layer;
  }
  return nullptr;
}

/// Grammar, one declaration per line (# starts a comment):
///
///   layer <name> <dir> [<dir>...] [: <dep> [<dep>...]]
///
/// A layer may only depend on layers declared on EARLIER lines, which makes
/// the configuration acyclic by construction; the stored dependency set is
/// the transitive closure, so an edge into any (possibly indirect)
/// dependency is legal and everything else is a back-edge.
LayerConfig parse_layer_config(const fs::path& file) {
  LayerConfig config;
  std::istringstream in(read_text_file(file));
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string word;
    if (!(tokens >> word)) continue;  // blank
    const auto fail = [&](const std::string& what) -> IoError {
      return IoError("dsml-lint: " + file.string() + ":" +
                     std::to_string(line_no) + ": " + what);
    };
    if (word != "layer") throw fail("expected 'layer', got '" + word + "'");
    LayerConfig::Layer layer;
    if (!(tokens >> layer.name)) throw fail("layer without a name");
    if (config.find(layer.name) != nullptr) {
      throw fail("duplicate layer '" + layer.name + "'");
    }
    bool in_deps = false;
    std::set<std::string> closure;
    while (tokens >> word) {
      if (word == ":") {
        in_deps = true;
        continue;
      }
      if (!in_deps) {
        layer.dirs.push_back(word);
        continue;
      }
      const LayerConfig::Layer* dep = config.find(word);
      if (dep == nullptr) {
        throw fail("layer '" + layer.name + "' depends on '" + word +
                   "', which is not declared above it (dependencies must be "
                   "declared first, so the DAG stays acyclic)");
      }
      closure.insert(dep->name);
      closure.insert(dep->deps.begin(), dep->deps.end());
    }
    if (layer.dirs.empty()) {
      throw fail("layer '" + layer.name + "' maps no directories");
    }
    layer.deps.assign(closure.begin(), closure.end());
    config.layers.push_back(std::move(layer));
  }
  if (config.layers.empty()) {
    throw IoError("dsml-lint: " + file.string() + " declares no layers");
  }
  config.loaded = true;
  return config;
}

// ---------------------------------------------------------------------------
// Registries and test labels
// ---------------------------------------------------------------------------

Registry load_registry(const fs::path& file) {
  Registry registry;
  std::error_code ec;
  if (!fs::exists(file, ec) || ec) return registry;
  std::istringstream in(read_text_file(file));
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto begin = line.find_first_not_of(" \t");
    if (begin == std::string::npos || line[begin] == '#') continue;
    const auto end = line.find_last_not_of(" \t");
    registry.names.insert(line.substr(begin, end - begin + 1));
  }
  registry.present = true;
  return registry;
}

TestLabels parse_test_labels(const fs::path& cmake_lists) {
  TestLabels labels;
  std::error_code ec;
  if (!fs::exists(cmake_lists, ec) || ec) return labels;
  std::string text = read_text_file(cmake_lists);
  // Strip CMake comments so a commented-out dsml_test() does not register.
  static const std::regex kComment(R"(#[^\n]*)");
  text = std::regex_replace(text, kComment, "");
  static const std::regex kTest(R"(dsml_test\s*\(\s*([A-Za-z0-9_]+)([^)]*)\))");
  static const std::regex kTsan(R"(\bLABELS\b[\s\S]*\btsan\b)");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), kTest);
       it != std::sregex_iterator(); ++it) {
    const std::string name = (*it)[1].str();
    const std::string args = (*it)[2].str();
    labels.tsan_labelled["tests/" + name + ".cpp"] =
        std::regex_search(args, kTsan);
  }
  labels.present = true;
  return labels;
}

// ---------------------------------------------------------------------------
// Include resolution and the project model
// ---------------------------------------------------------------------------

std::string resolve_include(const fs::path& root,
                            const std::string& includer_rel,
                            const std::string& target) {
  std::vector<fs::path> candidates;
  const fs::path includer_dir = fs::path(includer_rel).parent_path();
  candidates.push_back((includer_dir / target).lexically_normal());
  candidates.push_back((fs::path("src") / target).lexically_normal());
  candidates.push_back((fs::path("tools") / target).lexically_normal());
  candidates.push_back(fs::path(target).lexically_normal());
  for (const fs::path& rel : candidates) {
    const std::string rel_str = generic(rel);
    if (rel_str.empty() || rel_str[0] == '/' ||
        rel_str.rfind("..", 0) == 0) {
      continue;  // escaped the project root
    }
    std::error_code ec;
    if (fs::is_regular_file(root / rel, ec) && !ec) return rel_str;
  }
  return {};
}

ProjectModel build_project_model(const fs::path& root,
                                 std::vector<FileModel> files) {
  ProjectModel project;
  project.root = root;
  if (!root.empty()) {
    const fs::path layers = root / "tools" / "lint" / "layers.def";
    std::error_code ec;
    if (fs::exists(layers, ec) && !ec) {
      project.layers = parse_layer_config(layers);
    }
    project.failpoints =
        load_registry(root / "docs" / "registries" / "failpoints.txt");
    project.metrics =
        load_registry(root / "docs" / "registries" / "metrics.txt");
    project.spans = load_registry(root / "docs" / "registries" / "spans.txt");
    project.test_labels =
        parse_test_labels(root / "tests" / "CMakeLists.txt");
  }

  // Root-relative lexical paths; files outside the root keep their own
  // (normalized) spelling and simply match no layer/registry scope.
  const fs::path root_abs =
      root.empty() ? fs::path() : fs::absolute(root).lexically_normal();
  std::vector<std::pair<std::string, FileModel>> keyed;
  keyed.reserve(files.size());
  for (FileModel& file : files) {
    const fs::path abs = fs::absolute(file.path).lexically_normal();
    std::string rel = generic(abs);
    if (!root.empty()) {
      const std::string prefix = generic(root_abs) + "/";
      if (rel.rfind(prefix, 0) == 0) {
        rel = rel.substr(prefix.size());
      } else {
        rel = generic(fs::path(file.path).lexically_normal());
      }
    }
    keyed.emplace_back(std::move(rel), std::move(file));
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [rel, file] : keyed) {
    project.rel.push_back(std::move(rel));
    project.files.push_back(std::move(file));
  }

  if (!root.empty()) {
    for (std::size_t i = 0; i < project.files.size(); ++i) {
      for (const IncludeRef& inc : project.files[i].includes) {
        std::string target =
            resolve_include(root, project.rel[i], inc.target);
        if (target.empty()) continue;
        project.edges.push_back({i, inc.line, std::move(target)});
      }
    }
  }
  return project;
}

// ---------------------------------------------------------------------------
// Cross-TU rules
// ---------------------------------------------------------------------------

namespace {

/// Back-edges against the declared layer DAG, plus include cycles among the
/// scanned files (a cycle inside one layer is still a layering bug: the
/// participating headers cannot be ordered).
void rule_layer_violation(const ProjectModel& project,
                          std::vector<Diagnostic>* out) {
  if (!project.layers.loaded) return;
  for (const ProjectModel::Edge& edge : project.edges) {
    const auto* from = project.layers.layer_of(project.rel[edge.file_index]);
    const auto* to = project.layers.layer_of(edge.target_rel);
    if (from == nullptr || to == nullptr || from == to) continue;
    if (std::binary_search(from->deps.begin(), from->deps.end(), to->name)) {
      continue;
    }
    out->push_back(
        {project.files[edge.file_index].path, edge.line, "layer-violation",
         "layer '" + from->name + "' must not include '" + edge.target_rel +
             "' (layer '" + to->name +
             "'): back-edge in the layer DAG (tools/lint/layers.def)"});
  }

  // Cycle detection over the scanned subset: iterative three-colour DFS.
  std::map<std::string, std::size_t> index_of;
  for (std::size_t i = 0; i < project.rel.size(); ++i) {
    index_of[project.rel[i]] = i;
  }
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> adjacent(
      project.files.size());  // (neighbour index, include line)
  for (const ProjectModel::Edge& edge : project.edges) {
    const auto it = index_of.find(edge.target_rel);
    if (it == index_of.end() || it->second == edge.file_index) continue;
    adjacent[edge.file_index].emplace_back(it->second, edge.line);
  }
  enum : unsigned char { kWhite, kGray, kBlack };
  std::vector<unsigned char> colour(project.files.size(), kWhite);
  std::set<std::vector<std::size_t>> seen_cycles;
  for (std::size_t start = 0; start < project.files.size(); ++start) {
    if (colour[start] != kWhite) continue;
    // Stack of (node, next-neighbour cursor); `path` mirrors the gray chain.
    std::vector<std::pair<std::size_t, std::size_t>> stack{{start, 0}};
    std::vector<std::size_t> path{start};
    colour[start] = kGray;
    while (!stack.empty()) {
      auto& [node, cursor] = stack.back();
      if (cursor < adjacent[node].size()) {
        const auto [next, line] = adjacent[node][cursor++];
        if (colour[next] == kGray) {
          const auto begin =
              std::find(path.begin(), path.end(), next) - path.begin();
          std::vector<std::size_t> cycle(path.begin() + begin, path.end());
          // Canonicalise: rotate the smallest member to the front so each
          // cycle reports exactly once however it was entered.
          const auto smallest =
              std::min_element(cycle.begin(), cycle.end(),
                               [&](std::size_t a, std::size_t b) {
                                 return project.rel[a] < project.rel[b];
                               });
          std::rotate(cycle.begin(), smallest, cycle.end());
          if (seen_cycles.insert(cycle).second) {
            std::string chain = project.rel[cycle.front()];
            for (std::size_t i = 1; i < cycle.size(); ++i) {
              chain += " -> " + project.rel[cycle[i]];
            }
            chain += " -> " + project.rel[cycle.front()];
            out->push_back({project.files[cycle.front()].path, 1,
                            "layer-violation", "include cycle: " + chain});
          }
        } else if (colour[next] == kWhite) {
          colour[next] = kGray;
          stack.emplace_back(next, 0);
          path.push_back(next);
        }
      } else {
        colour[node] = kBlack;
        stack.pop_back();
        path.pop_back();
      }
    }
  }
}

bool in_library_scope(const std::string& rel) {
  return starts_with_dir(rel, "src") || starts_with_dir(rel, "tools");
}

void rule_unregistered_failpoint(const ProjectModel& project,
                                 std::vector<Diagnostic>* out) {
  if (!project.failpoints.present) return;
  for (std::size_t i = 0; i < project.files.size(); ++i) {
    if (!in_library_scope(project.rel[i])) continue;
    for (const NameUse& use : project.files[i].names) {
      if (use.kind != NameUse::Kind::kFailpoint) continue;
      if (project.failpoints.names.count(use.name) != 0) continue;
      out->push_back(
          {project.files[i].path, use.line, "unregistered-failpoint",
           "failpoint '" + use.name +
               "' is not in docs/registries/failpoints.txt — a typo'd name "
               "silently never fires; fix it or run `dsml lint "
               "--update-registries` and commit the manifest"});
    }
  }
}

void rule_unregistered_metric(const ProjectModel& project,
                              std::vector<Diagnostic>* out) {
  for (std::size_t i = 0; i < project.files.size(); ++i) {
    if (!in_library_scope(project.rel[i])) continue;
    for (const NameUse& use : project.files[i].names) {
      if (use.kind == NameUse::Kind::kMetric && project.metrics.present &&
          project.metrics.names.count(use.name) == 0) {
        out->push_back(
            {project.files[i].path, use.line, "unregistered-metric",
             "metric '" + use.name +
                 "' is not in docs/registries/metrics.txt — an undocumented "
                 "counter is invisible to dashboards; fix the name or run "
                 "`dsml lint --update-registries` and commit the manifest"});
      } else if (use.kind == NameUse::Kind::kSpan && project.spans.present &&
                 project.spans.names.count(use.name) == 0) {
        out->push_back(
            {project.files[i].path, use.line, "unregistered-metric",
             "trace span '" + use.name +
                 "' is not in docs/registries/spans.txt — fix the name or "
                 "run `dsml lint --update-registries` and commit the "
                 "manifest"});
      }
    }
  }
}

/// Tests that exercise the thread pool or the micro-batching session run
/// real cross-thread interleavings; without the `tsan` ctest label they
/// never run under ThreadSanitizer, so a data race ships silently.
void rule_missing_tsan_label(const ProjectModel& project,
                             std::vector<Diagnostic>* out) {
  if (!project.test_labels.present) return;
  static const std::vector<std::string> kConcurrencyHeaders = {
      "common/thread_pool.hpp", "engine/session.hpp"};
  for (std::size_t i = 0; i < project.files.size(); ++i) {
    const auto it = project.test_labels.tsan_labelled.find(project.rel[i]);
    if (it == project.test_labels.tsan_labelled.end() || it->second) {
      continue;
    }
    for (const IncludeRef& inc : project.files[i].includes) {
      if (std::find(kConcurrencyHeaders.begin(), kConcurrencyHeaders.end(),
                    inc.target) == kConcurrencyHeaders.end()) {
        continue;
      }
      out->push_back(
          {project.files[i].path, inc.line, "missing-tsan-label",
           "test includes " + inc.target + " but its dsml_test() entry in "
           "tests/CMakeLists.txt lacks the tsan ctest label, so it never "
           "runs under ThreadSanitizer"});
    }
  }
}

}  // namespace

const std::vector<ProjectRule>& project_rules() {
  static const std::vector<ProjectRule> kRules = {
      {"layer-violation",
       "#include back-edge or cycle against the layer DAG "
       "(tools/lint/layers.def)",
       rule_layer_violation},
      {"unregistered-failpoint",
       "string-literal failpoint name missing from "
       "docs/registries/failpoints.txt",
       rule_unregistered_failpoint},
      {"unregistered-metric",
       "metric or trace-span name missing from docs/registries/"
       "{metrics,spans}.txt",
       rule_unregistered_metric},
      {"missing-tsan-label",
       "test includes thread_pool.hpp or engine/session.hpp without the "
       "tsan ctest label",
       rule_missing_tsan_label},
  };
  return kRules;
}

std::vector<Diagnostic> run_project_rules(const ProjectModel& project) {
  std::vector<Diagnostic> found;
  for (const ProjectRule& rule : project_rules()) {
    rule.check(project, &found);
  }
  // Honour the same inline allow() directives the per-file phase uses.
  std::map<std::string, const FileModel*> by_path;
  for (const FileModel& file : project.files) by_path[file.path] = &file;
  std::vector<Diagnostic> kept;
  for (Diagnostic& d : found) {
    const auto it = by_path.find(d.file);
    if (it != by_path.end()) {
      const auto& allows = it->second->allows;
      const bool suppressed = std::any_of(
          allows.begin(), allows.end(), [&](const auto& a) {
            return a.first == d.line && a.second == d.rule;
          });
      if (suppressed) continue;
    }
    kept.push_back(std::move(d));
  }
  return kept;
}

}  // namespace internal

std::filesystem::path find_project_root(const std::filesystem::path& start) {
  std::error_code ec;
  std::filesystem::path dir =
      std::filesystem::absolute(start, ec).lexically_normal();
  if (ec) return {};
  for (int depth = 0; depth < 32 && !dir.empty(); ++depth) {
    if (std::filesystem::exists(dir / "tools" / "lint" / "layers.def", ec) &&
        !ec) {
      return dir;
    }
    const std::filesystem::path parent = dir.parent_path();
    if (parent == dir) break;
    dir = parent;
  }
  return {};
}

}  // namespace dsml::lint
