// Phase-1 incremental cache: FileModels keyed by absolute path and content
// hash, persisted as a line-oriented text file under .dsml_cache/. The
// header carries a fingerprint of the rule catalogue, so changing any rule
// id or summary (i.e. shipping a new linter) drops every stale entry at
// once. The cache is a pure optimization: any read/parse problem silently
// falls back to a full scan, and a failed store never fails the lint.
#include <fstream>
#include <sstream>

#include "lint/internal.hpp"

namespace dsml::lint::internal {

namespace {

namespace fs = std::filesystem;

constexpr const char* kMagic = "dsml-lint-cache";
constexpr const char* kVersion = "v1";

std::string catalogue_fingerprint() {
  std::string text = kVersion;
  for (const RuleInfo& rule : rule_catalogue()) {
    text += '\x1f';
    text += rule.id;
    text += '\x1f';
    text += rule.summary;
  }
  std::ostringstream hex;
  hex << std::hex << fnv1a(text);
  return hex.str();
}

fs::path cache_file(const fs::path& cache_dir) {
  return cache_dir / "lint.cache";
}

/// Rest-of-line after the current stream position, without the leading
/// separator space.
std::string rest_of(std::istringstream& in) {
  std::string rest;
  std::getline(in, rest);
  if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
  return rest;
}

}  // namespace

ModelCache load_model_cache(const fs::path& cache_dir) {
  ModelCache cache;
  std::ifstream in(cache_file(cache_dir), std::ios::binary);
  if (!in) return cache;
  std::string line;
  if (!std::getline(in, line)) return cache;
  {
    std::istringstream header(line);
    std::string magic, version, fingerprint;
    header >> magic >> version >> fingerprint;
    if (magic != kMagic || version != kVersion ||
        fingerprint != catalogue_fingerprint()) {
      return cache;  // a different linter wrote this; rebuild everything
    }
  }
  FileModel* current = nullptr;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::istringstream fields(line);
    std::string tag;
    if (!(fields >> tag)) continue;
    if (tag == "F") {
      std::uint64_t hash = 0;
      fields >> hash;
      const std::string key = rest_of(fields);
      if (key.empty()) {
        current = nullptr;
        continue;
      }
      current = &cache.entries[key];
      current->content_hash = hash;
      current->path = key;  // rewritten to the caller's spelling on reuse
      continue;
    }
    if (current == nullptr) continue;
    std::size_t line_no = 0;
    if (tag == "I") {
      fields >> line_no;
      current->includes.push_back({line_no, rest_of(fields)});
    } else if (tag == "N") {
      int kind = 0;
      fields >> line_no >> kind;
      if (kind < 0 || kind > static_cast<int>(NameUse::Kind::kSpan)) continue;
      current->names.push_back(
          {line_no, static_cast<NameUse::Kind>(kind), rest_of(fields)});
    } else if (tag == "S") {
      std::string rule;
      fields >> line_no >> rule;
      current->allows.emplace_back(line_no, rule);
    } else if (tag == "D") {
      std::string rule;
      fields >> line_no >> rule;
      current->diagnostics.push_back(
          {current->path, line_no, rule, rest_of(fields)});
    }
    // Unknown tags are ignored so future formats degrade to partial reuse.
  }
  return cache;
}

void store_model_cache(const fs::path& cache_dir, const ModelCache& cache) {
  std::error_code ec;
  fs::create_directories(cache_dir, ec);
  if (ec) return;
  const fs::path target = cache_file(cache_dir);
  const fs::path temp = target.string() + ".tmp";
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return;
    out << kMagic << " " << kVersion << " " << catalogue_fingerprint()
        << "\n";
    for (const auto& [key, model] : cache.entries) {
      out << "F " << model.content_hash << " " << key << "\n";
      for (const IncludeRef& inc : model.includes) {
        out << "I " << inc.line << " " << inc.target << "\n";
      }
      for (const NameUse& use : model.names) {
        out << "N " << use.line << " " << static_cast<int>(use.kind) << " "
            << use.name << "\n";
      }
      for (const auto& [line, rule] : model.allows) {
        out << "S " << line << " " << rule << "\n";
      }
      for (const Diagnostic& d : model.diagnostics) {
        // Diagnostics never span lines, so the line-oriented format holds.
        out << "D " << d.line << " " << d.rule << " " << d.message << "\n";
      }
    }
    if (!out) return;
  }
  fs::rename(temp, target, ec);
  if (ec) fs::remove(temp, ec);
}

}  // namespace dsml::lint::internal
