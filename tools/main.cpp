// Entry point for the `dsml` command-line driver (see cli.hpp).
#include <iostream>
#include <string>
#include <vector>

#include "cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return dsml::cli::run(args, std::cout, std::cerr);
}
