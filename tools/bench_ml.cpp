#include "bench_ml.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <functional>
#include <limits>
#include <ostream>
#include <thread>
#include <vector>

#include "common/atomic_io.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/thread_pool.hpp"
#include "data/encoder.hpp"
#include "data/split.hpp"
#include "dse/campaign.hpp"
#include "dse/chronological.hpp"
#include "dse/sampler.hpp"
#include "engine/registry.hpp"
#include "engine/schema.hpp"
#include "engine/session.hpp"
#include "linalg/backend.hpp"
#include "linalg/kernels.hpp"
#include "ml/linreg.hpp"
#include "ml/metrics.hpp"
#include "ml/mlp.hpp"
#include "ml/model_zoo.hpp"
#include "ml/validation.hpp"
#include "sim/config.hpp"

namespace dsml::bench_ml {

namespace {

using Clock = std::chrono::steady_clock;

/// Wall time of one call of fn, repeated until at least `min_seconds` has
/// elapsed (minimum one call); returns seconds per call.
double time_per_call(const std::function<void()>& fn,
                     double min_seconds = 0.2) {
  std::size_t reps = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++reps;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds);
  return elapsed / static_cast<double>(reps);
}

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

double max_abs_diff(const std::vector<double>& a,
                    const std::vector<double>& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

struct Section {
  std::string name;
  double reference_ms = 0.0;
  double optimized_ms = 0.0;
  bool equivalent = true;
  double max_diff = 0.0;

  double speedup() const {
    return optimized_ms > 0.0 ? reference_ms / optimized_ms : 0.0;
  }
};

// ------------------------------------------------------------------ gemm ---

Section bench_gemm(json::Writer& w, bool fast) {
  // Full size puts B at 768*768*8 = 4.5 MiB — past kCacheResidentBytes and a
  // typical L2 — so the depth-split tiling actually engages; in-cache shapes
  // take the single-pass route and would only measure loop overhead.
  const std::size_t m = fast ? 192 : 512;
  const std::size_t k = fast ? 128 : 768;
  const std::size_t n = fast ? 96 : 768;
  Rng rng(42);
  linalg::Matrix a(m, k);
  linalg::Matrix b(k, n);
  for (double& v : a.data()) v = rng.uniform(-1.0, 1.0);
  for (double& v : b.data()) v = rng.uniform(-1.0, 1.0);
  linalg::Matrix c_blocked(m, n);
  linalg::Matrix c_ref(m, n);

  const double blocked_s = time_per_call([&] {
    std::fill(c_blocked.data().begin(), c_blocked.data().end(), 0.0);
    linalg::kernels::gemm_accumulate(a.data().data(), k, b.data().data(), n,
                                     c_blocked.data().data(), n, m, k, n);
  });
  const double ref_s = time_per_call([&] {
    std::fill(c_ref.data().begin(), c_ref.data().end(), 0.0);
    linalg::kernels::gemm_accumulate_reference(a.data().data(), k,
                                               b.data().data(), n,
                                               c_ref.data().data(), n, m, k, n);
  });

  Section s;
  s.name = "gemm";
  s.reference_ms = ref_s * 1e3;
  s.optimized_ms = blocked_s * 1e3;
  s.max_diff = linalg::Matrix::max_abs_diff(c_blocked, c_ref);
  s.equivalent = s.max_diff == 0.0;

  const double flops = 2.0 * static_cast<double>(m * k * n);
  w.key("gemm").begin_object();
  w.field("m", m).field("k", k).field("n", n);
  w.field("blocked_ms", s.optimized_ms);
  w.field("reference_ms", s.reference_ms);
  w.field("blocked_gflops", flops / blocked_s * 1e-9);
  w.field("speedup", s.speedup());
  w.field("bit_identical", s.equivalent);
  w.end_object();
  return s;
}

// ----------------------------------------------------------- simd kernels --

/// The runtime-dispatch matrix: the same GEMM and GEMV workloads timed under
/// every backend the dispatch layer knows (naive, blocked, simd). The gate
/// is the dispatch contract itself — every double-precision backend must
/// produce bit-identical results, because the simd kernels vectorise across
/// *independent outputs* and keep each accumulator's serial order (see
/// docs/PERFORMANCE.md). The headline speedup compares simd against blocked;
/// on machines where no vector unit is available simd falls back to blocked
/// and the ratio is simply ~1.
Section bench_simd_kernels(json::Writer& w, bool fast) {
  const std::size_t m = fast ? 192 : 512;
  const std::size_t k = fast ? 128 : 768;
  const std::size_t n = fast ? 96 : 768;
  Rng rng(42);
  linalg::Matrix a(m, k);
  linalg::Matrix b(k, n);
  for (double& v : a.data()) v = rng.uniform(-1.0, 1.0);
  for (double& v : b.data()) v = rng.uniform(-1.0, 1.0);
  std::vector<double> xv(k);
  for (double& v : xv) v = rng.uniform(-1.0, 1.0);
  std::vector<std::size_t> cols;
  for (std::size_t j = 0; j < k; j += 3) cols.push_back(j);
  std::vector<double> beta(cols.size());
  for (double& v : beta) v = rng.uniform(-1.0, 1.0);

  struct PerBackend {
    linalg::Backend backend;
    double gemm_ms = 0.0;
    double gemv_ms = 0.0;
    double gemv_columns_ms = 0.0;
    linalg::Matrix c;
    std::vector<double> y;
    std::vector<double> yc;
  };
  std::vector<PerBackend> runs;
  for (linalg::Backend backend :
       {linalg::Backend::kNaive, linalg::Backend::kBlocked,
        linalg::Backend::kSimd}) {
    const linalg::ScopedBackend pin(backend);
    PerBackend run;
    run.backend = backend;
    run.c = linalg::Matrix(m, n);
    run.y.resize(m);
    run.yc.resize(m);
    run.gemm_ms = time_per_call([&] {
      std::fill(run.c.data().begin(), run.c.data().end(), 0.0);
      linalg::kernels::gemm_accumulate(a.data().data(), k, b.data().data(),
                                       n, run.c.data().data(), n, m, k, n);
    }) * 1e3;
    run.gemv_ms = time_per_call([&] {
      linalg::kernels::gemv(a.data().data(), k, m, k, xv.data(),
                            run.y.data());
    }) * 1e3;
    run.gemv_columns_ms = time_per_call([&] {
      linalg::kernels::gemv_columns(a.data().data(), k, m, cols.data(),
                                    cols.size(), beta.data(),
                                    run.yc.data());
    }) * 1e3;
    runs.push_back(std::move(run));
  }

  bool identical = true;
  for (std::size_t i = 1; i < runs.size(); ++i) {
    identical = identical &&
                linalg::Matrix::max_abs_diff(runs[i].c, runs[0].c) == 0.0 &&
                bitwise_equal(runs[i].y, runs[0].y) &&
                bitwise_equal(runs[i].yc, runs[0].yc);
  }

  Section s;
  s.name = "simd_kernels";
  s.reference_ms = runs[1].gemm_ms;  // blocked
  s.optimized_ms = runs[2].gemm_ms;  // simd (or its blocked fallback)
  s.equivalent = identical;

  w.key("simd_kernels").begin_object();
  w.field("m", m).field("k", k).field("n", n);
  w.field("simd_available", linalg::simd_available());
  w.field("simd_variant", linalg::simd_variant());
  w.field("default_backend", linalg::to_string(linalg::active_backend()));
  for (const PerBackend& run : runs) {
    w.key(linalg::to_string(run.backend)).begin_object();
    w.field("gemm_ms", run.gemm_ms);
    w.field("gemv_ms", run.gemv_ms);
    w.field("gemv_columns_ms", run.gemv_columns_ms);
    w.end_object();
  }
  w.field("gemm_speedup_vs_blocked", s.speedup());
  w.field("gemv_speedup_vs_blocked",
          runs[2].gemv_ms > 0.0 ? runs[1].gemv_ms / runs[2].gemv_ms : 0.0);
  w.field("bit_identical", s.equivalent);
  w.end_object();
  return s;
}

// ----------------------------------------------------------- mlp predict ---

Section bench_mlp_predict(json::Writer& w, bool fast) {
  const std::size_t rows = fast ? 1024 : sim::kDesignSpaceSize;
  const std::size_t n_inputs = 16;
  const std::vector<std::size_t> hidden = {16};
  Rng rng(7);
  ml::Mlp net(n_inputs, hidden, rng);
  linalg::Matrix x(rows, n_inputs);
  for (double& v : x.data()) v = rng.uniform(-1.0, 1.0);

  std::vector<double> per_row(rows);
  const double per_row_s = time_per_call([&] {
    for (std::size_t r = 0; r < rows; ++r) per_row[r] = net.predict(x.row(r));
  });
  std::vector<double> batched;
  const double batched_s = time_per_call([&] { batched = net.predict(x); });

  Section s;
  s.name = "mlp_predict";
  s.reference_ms = per_row_s * 1e3;
  s.optimized_ms = batched_s * 1e3;
  s.max_diff = max_abs_diff(per_row, batched);
  s.equivalent = bitwise_equal(per_row, batched);

  w.key("mlp_predict").begin_object();
  w.field("rows", rows).field("inputs", n_inputs).field("hidden", hidden[0]);
  w.field("batched_ms", s.optimized_ms);
  w.field("per_row_ms", s.reference_ms);
  w.field("batched_rows_per_sec", static_cast<double>(rows) / batched_s);
  w.field("per_row_rows_per_sec", static_cast<double>(rows) / per_row_s);
  w.field("speedup", s.speedup());
  w.field("bit_identical", s.equivalent);
  w.end_object();
  return s;
}

// ------------------------------------------------- design-space datasets ---

/// The full 4608-point design space with a deterministic synthetic cycle
/// count per configuration (a smooth function of the parameters plus seeded
/// noise) — enough structure for the regression paths to be representative.
data::Dataset synthetic_design_space() {
  const std::vector<sim::ProcessorConfig> configs =
      sim::enumerate_design_space();
  std::vector<double> cycles;
  cycles.reserve(configs.size());
  Rng noise(97);
  for (const auto& c : configs) {
    double v = 4.0e6;
    v -= 1.2e4 * std::log2(static_cast<double>(c.l1d_size_kb));
    v -= 0.9e4 * std::log2(static_cast<double>(c.l2_size_kb));
    v -= 2.5e3 * static_cast<double>(c.width);
    v -= 1.1e3 * std::log2(static_cast<double>(c.ruu_size));
    v += c.has_l3() ? -3.0e3 * static_cast<double>(c.l3_size_mb) : 0.0;
    v += 2.0e3 * static_cast<double>(c.l1d_assoc);
    v *= 1.0 + 0.02 * noise.uniform(-1.0, 1.0);
    cycles.push_back(v);
  }
  return sim::make_config_dataset(configs, std::move(cycles));
}

// ------------------------------------------------------------ lr predict ---

Section bench_lr_predict(json::Writer& w, const data::Dataset& full,
                         const data::Dataset& train) {
  ml::LinearRegression::Options lropt;
  lropt.method = ml::LinRegMethod::kEnter;
  ml::LinearRegression model(lropt);
  model.fit(train);

  // The historical predict pipeline: encode, materialise the selected
  // columns, then a dense GEMV. Rebuilt here from public pieces (an Encoder
  // fitted with LinearRegression's exact options) as the reference.
  data::EncoderOptions enc_opt;
  enc_opt.mode = data::EncodingMode::kLinearRegression;
  enc_opt.scale_inputs = true;
  enc_opt.scale_target = false;
  enc_opt.drop_constant = true;
  enc_opt.add_intercept = true;
  data::Encoder encoder;
  encoder.fit(train, enc_opt);

  std::vector<double> reference;
  const double ref_s = time_per_call([&] {
    const linalg::Matrix x = encoder.encode(full);
    const linalg::Matrix xs = x.select_columns(model.ols().columns);
    reference = xs.multiply(model.ols().beta);
  });
  std::vector<double> optimized;
  const double opt_s = time_per_call([&] { optimized = model.predict(full); });

  Section s;
  s.name = "lr_predict";
  s.reference_ms = ref_s * 1e3;
  s.optimized_ms = opt_s * 1e3;
  s.max_diff = max_abs_diff(reference, optimized);
  s.equivalent = bitwise_equal(reference, optimized);

  w.key("lr_predict").begin_object();
  w.field("rows", full.n_rows());
  w.field("selected_columns", model.ols().columns.size());
  w.field("fused_ms", s.optimized_ms);
  w.field("copy_then_gemv_ms", s.reference_ms);
  w.field("fused_rows_per_sec", static_cast<double>(full.n_rows()) / opt_s);
  w.field("speedup", s.speedup());
  w.field("bit_identical", s.equivalent);
  w.end_object();
  return s;
}

// ---------------------------------------------------------------- engine ---

/// Registry + session overhead on top of the raw kernels: a design space
/// served one request per row versus one coalesced batch, plus registry
/// lookup throughput. The session must add batching without breaking the
/// determinism contract, so the gate is bit-identity of all three answers
/// (per-request, batched, direct Regressor::predict).
Section bench_engine_session(json::Writer& w, const data::Dataset& full,
                             const data::Dataset& train, bool fast) {
  engine::ModelRegistry registry;
  {
    std::unique_ptr<ml::Regressor> model = ml::make_model("LR-B").make();
    model->fit(train);
    registry.register_model(
        "bench", std::shared_ptr<const ml::Regressor>(std::move(model)),
        engine::Schema::of(train), "bench");
  }

  const std::size_t rows = fast ? 512 : full.n_rows();
  std::vector<std::size_t> idx(rows);
  for (std::size_t i = 0; i < rows; ++i) idx[i] = i;
  const data::Dataset space = full.select_rows(idx);

  engine::SessionOptions sopt;
  sopt.max_batch_rows = rows;
  sopt.max_queue_rows = 4 * rows;
  engine::InferenceSession session(registry, "bench", sopt);

  std::vector<double> per_request(rows);
  const double per_request_s = time_per_call([&] {
    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t one[] = {r};
      per_request[r] = session.predict(space.select_rows(one)).front();
    }
  });
  std::vector<double> batched;
  const double batched_s =
      time_per_call([&] { batched = session.predict(space); });
  const std::vector<double> direct =
      registry.get("bench")->model->predict(space);

  constexpr std::size_t kLookups = 4096;
  const double lookup_batch_s = time_per_call([&] {
    for (std::size_t i = 0; i < kLookups; ++i) {
      if (registry.get("bench")->version == 0) return;  // never taken
    }
  });

  Section s;
  s.name = "engine_session";
  s.reference_ms = per_request_s * 1e3;
  s.optimized_ms = batched_s * 1e3;
  s.max_diff = std::max(max_abs_diff(per_request, batched),
                        max_abs_diff(batched, direct));
  s.equivalent =
      bitwise_equal(per_request, batched) && bitwise_equal(batched, direct);

  w.key("engine_session").begin_object();
  w.field("rows", rows);
  w.field("per_request_ms", s.reference_ms);
  w.field("batched_ms", s.optimized_ms);
  w.field("per_request_rows_per_sec",
          static_cast<double>(rows) / per_request_s);
  w.field("batched_rows_per_sec", static_cast<double>(rows) / batched_s);
  w.field("registry_lookups_per_sec",
          static_cast<double>(kLookups) / lookup_batch_s);
  w.field("speedup", s.speedup());
  w.field("bit_identical", s.equivalent);
  w.end_object();
  return s;
}

// ------------------------------------------------------------ f32 session --

/// The float32 serving path against the default double path, both through a
/// real InferenceSession (registry lookup, admission, one coalesced batch).
/// The f32 session must stay inside the documented 1e-5 relative error
/// budget — that bound is this section's `equivalent` gate, enforced by
/// `dsml bench --check` like every bit-identity gate — and earns its keep as
/// throughput: the snapshot folds encoder scaling into the weights at
/// registration, so serving touches only the selected columns in float32.
Section bench_f32_session(json::Writer& w, const data::Dataset& full,
                          const data::Dataset& train, bool fast) {
  engine::ModelRegistry registry;
  {
    std::unique_ptr<ml::Regressor> model = ml::make_model("LR-B").make();
    model->fit(train);
    registry.register_model(
        "bench", std::shared_ptr<const ml::Regressor>(std::move(model)),
        engine::Schema::of(train), "bench");
  }
  const std::shared_ptr<const engine::ModelEntry> entry =
      registry.get("bench");

  const std::size_t rows = fast ? 512 : full.n_rows();
  std::vector<std::size_t> idx(rows);
  for (std::size_t i = 0; i < rows; ++i) idx[i] = i;
  const data::Dataset space = full.select_rows(idx);

  engine::SessionOptions sopt;
  sopt.max_batch_rows = rows;
  sopt.max_queue_rows = 4 * rows;
  engine::InferenceSession double_session(registry, "bench", sopt);
  sopt.use_f32 = true;
  engine::InferenceSession f32_session(registry, "bench", sopt);

  std::vector<double> via_double;
  const double double_s =
      time_per_call([&] { via_double = double_session.predict(space); });
  std::vector<double> via_f32;
  const double f32_s =
      time_per_call([&] { via_f32 = f32_session.predict(space); });

  // The session adds batching, never arithmetic: its f32 answers must be
  // bit-identical to the snapshot's direct predict.
  const bool routed = entry->f32 != nullptr &&
                      bitwise_equal(via_f32, entry->f32->predict(space));

  double max_rel = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    const double denom = std::max(std::abs(via_double[r]), 1e-12);
    max_rel = std::max(max_rel, std::abs(via_f32[r] - via_double[r]) / denom);
  }
  constexpr double kErrorBudget = 1e-5;

  Section s;
  s.name = "f32_session";
  s.reference_ms = double_s * 1e3;
  s.optimized_ms = f32_s * 1e3;
  s.max_diff = max_rel;
  s.equivalent = routed && max_rel <= kErrorBudget;

  w.key("f32_session").begin_object();
  w.field("rows", rows);
  w.field("double_ms", s.reference_ms);
  w.field("f32_ms", s.optimized_ms);
  w.field("double_rows_per_sec", static_cast<double>(rows) / double_s);
  w.field("f32_rows_per_sec", static_cast<double>(rows) / f32_s);
  w.field("speedup", s.speedup());
  w.field("max_rel_error", max_rel);
  w.field("error_budget", kErrorBudget);
  w.field("within_budget", s.equivalent);
  w.end_object();
  return s;
}

// -------------------------------------------------------- estimate_error ---

/// The pre-parallel estimate_error loop, reproduced verbatim as the
/// reference: folds drawn and evaluated serially from one Rng stream.
ml::ErrorEstimate serial_estimate_error(const ml::ModelFactory& factory,
                                        const data::Dataset& train,
                                        const ml::ValidationOptions& options) {
  Rng rng(options.seed);
  ml::ErrorEstimate est;
  for (std::size_t rep = 0; rep < options.repeats; ++rep) {
    auto [fit_idx, holdout_idx] = data::split_half(train.n_rows(), rng);
    const data::Dataset fit_part = train.select_rows(fit_idx);
    const data::Dataset holdout_part = train.select_rows(holdout_idx);
    auto model = factory();
    model->fit(fit_part);
    est.folds.push_back(
        ml::mape(model->predict(holdout_part), holdout_part.target()));
  }
  return est;
}

Section bench_estimate_error(json::Writer& w, const data::Dataset& train,
                             bool fast) {
  ml::ZooOptions zoo;
  zoo.nn_epoch_scale = fast ? 0.1 : 0.5;
  const ml::NamedModel nm = ml::make_model("NN-Q", zoo);
  ml::ValidationOptions vopt;
  vopt.seed = 1234;

  ml::ErrorEstimate serial;
  const double serial_s = time_per_call(
      [&] { serial = serial_estimate_error(nm.make, train, vopt); }, 0.0);
  ml::ErrorEstimate parallel;
  const double parallel_s = time_per_call(
      [&] { parallel = ml::estimate_error(nm.make, train, vopt); }, 0.0);

  Section s;
  s.name = "estimate_error";
  s.reference_ms = serial_s * 1e3;
  s.optimized_ms = parallel_s * 1e3;
  s.max_diff = max_abs_diff(serial.folds, parallel.folds);
  s.equivalent = bitwise_equal(serial.folds, parallel.folds);

  // Satellite measurement: how much of one fold is the select_rows copy?
  Rng rng(vopt.seed);
  const auto [fit_idx, holdout_idx] = data::split_half(train.n_rows(), rng);
  const double copy_s = time_per_call([&] {
    const data::Dataset fit_part = train.select_rows(fit_idx);
    const data::Dataset holdout_part = train.select_rows(holdout_idx);
  });

  w.key("estimate_error").begin_object();
  w.field("model", nm.name);
  w.field("train_rows", train.n_rows());
  w.field("folds", vopt.repeats);
  w.field("serial_ms", s.reference_ms);
  w.field("parallel_ms", s.optimized_ms);
  w.field("speedup", s.speedup());
  w.field("bit_identical", s.equivalent);
  w.key("select_rows_copy").begin_object();
  w.field("per_fold_us", copy_s * 1e6);
  w.field("share_of_serial_fold",
          copy_s / (serial_s / static_cast<double>(vopt.repeats)));
  w.end_object();
  w.end_object();
  return s;
}

// ------------------------------------------------------------ select fit ---

Section bench_select_fit(json::Writer& w, const data::Dataset& train,
                         bool fast) {
  ml::ZooOptions zoo;
  zoo.nn_epoch_scale = fast ? 0.05 : 0.25;
  ml::ValidationOptions vopt;
  vopt.seed = 4321;

  // Serial reference: the pre-thread-pool SelectModel::fit — candidates
  // scored one after another with the same per-candidate seeds.
  std::vector<ml::NamedModel> menu = ml::sampled_dse_menu(zoo);
  std::string serial_choice;
  const double serial_s = time_per_call(
      [&] {
        double best = std::numeric_limits<double>::infinity();
        std::size_t best_idx = 0;
        for (std::size_t i = 0; i < menu.size(); ++i) {
          ml::ValidationOptions opts = vopt;
          opts.seed = vopt.seed + i;
          const ml::ErrorEstimate est =
              serial_estimate_error(menu[i].make, train, opts);
          const double maximum =
              *std::max_element(est.folds.begin(), est.folds.end());
          if (maximum < best) {
            best = maximum;
            best_idx = i;
          }
        }
        auto winner = menu[best_idx].make();
        winner->fit(train);
        serial_choice = menu[best_idx].name;
      },
      0.0);

  std::string parallel_choice;
  const double parallel_s = time_per_call(
      [&] {
        ml::SelectModel select(ml::sampled_dse_menu(zoo), vopt);
        select.fit(train);
        parallel_choice = select.chosen_name();
      },
      0.0);

  Section s;
  s.name = "select_fit";
  s.reference_ms = serial_s * 1e3;
  s.optimized_ms = parallel_s * 1e3;
  s.equivalent = serial_choice == parallel_choice;

  w.key("select_fit").begin_object();
  w.field("candidates", menu.size());
  w.field("train_rows", train.n_rows());
  w.field("serial_ms", s.reference_ms);
  w.field("parallel_ms", s.optimized_ms);
  w.field("speedup", s.speedup());
  w.field("chosen", parallel_choice);
  w.field("same_choice", s.equivalent);
  w.end_object();
  return s;
}

// ------------------------------------------------------------ dse sampler ---

dse::CampaignResult run_bench_campaign(const data::Dataset& space,
                                       const std::string& sampler_name,
                                       std::size_t budget, std::size_t rounds,
                                       bool fast) {
  auto sampler = dse::make_sampler(sampler_name, 7, "bench");
  dse::DatasetEvaluator evaluator(space);
  dse::CampaignConfig config;
  config.app = "bench";
  config.space = &space;
  config.sampler = sampler.get();
  config.evaluator = &evaluator;
  config.rounds = dse::budget_rounds(budget, rounds);
  config.model_names = {"LR-B", "NN-S"};
  config.zoo.nn_epoch_scale = fast ? 0.25 : 1.0;
  dse::Campaign campaign(config);
  return campaign.run();
}

Section bench_dse_sampler(json::Writer& w, const data::Dataset& full,
                          bool fast) {
  const std::size_t budget = fast ? 24 : 46;
  const std::size_t rounds = fast ? 2 : 4;

  // Determinism gate: two adaptive campaigns from the same seed must agree
  // bit for bit — sampled indices, every cell's predictions, the Select row.
  dse::CampaignResult adaptive;
  const double adaptive_s = time_per_call(
      [&] { adaptive = run_bench_campaign(full, "adaptive", budget, rounds,
                                          fast); },
      0.0);
  const dse::CampaignResult repeat =
      run_bench_campaign(full, "adaptive", budget, rounds, fast);

  dse::CampaignResult random;
  const double random_s = time_per_call(
      [&] { random = run_bench_campaign(full, "random", budget, 1, fast); },
      0.0);

  Section s;
  s.name = "dse_sampler";
  s.reference_ms = random_s * 1e3;
  s.optimized_ms = adaptive_s * 1e3;
  s.equivalent = adaptive.evaluated == repeat.evaluated &&
                 adaptive.rounds.size() == repeat.rounds.size();
  if (s.equivalent) {
    for (std::size_t r = 0; r < adaptive.rounds.size(); ++r) {
      const dse::CampaignRound& lhs = adaptive.rounds[r];
      const dse::CampaignRound& rhs = repeat.rounds[r];
      if (lhs.cells.size() != rhs.cells.size() ||
          lhs.select.chosen_model != rhs.select.chosen_model) {
        s.equivalent = false;
        break;
      }
      for (std::size_t c = 0; c < lhs.cells.size(); ++c) {
        s.max_diff = std::max(s.max_diff, max_abs_diff(
            lhs.cells[c].predictions, rhs.cells[c].predictions));
        s.equivalent = s.equivalent && bitwise_equal(
            lhs.cells[c].predictions, rhs.cells[c].predictions);
      }
    }
  }

  const dse::CampaignRound* afinal = adaptive.final_round();
  const dse::CampaignRound* rfinal = random.final_round();
  const double adaptive_err = afinal ? afinal->select.true_error : -1.0;
  const double random_err = rfinal ? rfinal->select.true_error : -1.0;

  w.key("dse_sampler").begin_object();
  w.field("budget", budget);
  w.field("rounds", rounds);
  w.field("random_ms", s.reference_ms);
  w.field("adaptive_ms", s.optimized_ms);
  w.field("random_true_err_pct", random_err);
  w.field("adaptive_true_err_pct", adaptive_err);
  w.field("deterministic", s.equivalent);
  w.end_object();
  return s;
}

// ---------------------------------------------------------- model errors ---

std::vector<std::pair<std::string, double>> bench_model_errors(
    json::Writer& w, bool fast) {
  dse::ChronologicalOptions options;
  options.model_names = {"LR-E", "LR-S", "LR-F", "LR-B", "NN-Q"};
  options.zoo.nn_epoch_scale = fast ? 0.25 : 1.0;
  const dse::ChronologicalResult result =
      dse::run_chronological(specdata::Family::kXeon, options);

  std::vector<std::pair<std::string, double>> errors;
  w.key("model_errors").begin_object();
  for (const auto& m : result.models) {
    errors.emplace_back(m.model, m.error.mean);
    w.field(m.model, m.error.mean);
  }
  w.end_object();
  return errors;
}

// ------------------------------------------------------------ drift gate ---

bool check_drift(const std::string& path,
                 const std::vector<std::pair<std::string, double>>& current,
                 std::ostream& out, std::ostream& err) {
  const json::Value baseline = json::Value::parse_file(path);
  if (!baseline.contains("model_errors")) {
    err << "bench --check: '" << path << "' has no model_errors section\n";
    return false;
  }
  const json::Value& committed = baseline.at("model_errors");
  bool ok = true;
  for (const auto& [model, error] : current) {
    if (!committed.contains(model)) continue;
    // Non-finite entries must fail loudly: a NaN drifts past any relative
    // threshold (every comparison is false), so without these checks a
    // diverged model would sail through the gate.
    if (!std::isfinite(error)) {
      err << "bench --check: " << model << " current error is non-finite ("
          << json::format_number(error) << ")\n";
      ok = false;
      continue;
    }
    double old_error = 0.0;
    try {
      old_error = committed.at(model).as_number();
    } catch (const IoError&) {
      err << "bench --check: " << model
          << " baseline entry is not numeric in '" << path << "'\n";
      ok = false;
      continue;
    }
    if (!std::isfinite(old_error)) {
      err << "bench --check: " << model << " baseline error is non-finite ("
          << json::format_number(old_error) << ") in '" << path << "'\n";
      ok = false;
      continue;
    }
    const double drift =
        std::abs(error - old_error) / std::max(std::abs(old_error), 1e-12);
    if (drift > 0.05) {
      err << "bench --check: " << model << " error drifted "
          << strings::format_double(drift * 100.0, 1) << "% ("
          << strings::format_double(old_error, 4) << " -> "
          << strings::format_double(error, 4) << ")\n";
      ok = false;
    } else {
      out << "  drift " << model << ": "
          << strings::format_double(drift * 100.0, 2) << "% (ok)\n";
    }
  }
  return ok;
}

}  // namespace

int run(const BenchOptions& options, std::ostream& out, std::ostream& err) {
  json::Writer w;
  w.begin_object();
  w.field("schema", "dsml-bench-ml/v1");
  w.field("threads", ThreadPool::global().size());
  w.field("hardware_concurrency",
          static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  w.field("fast", options.fast);
  w.key("sections").begin_object();

  out << "dsml bench (threads=" << ThreadPool::global().size()
      << (options.fast ? ", fast" : "") << ")\n";

  std::vector<Section> sections;
  sections.push_back(bench_gemm(w, options.fast));
  sections.push_back(bench_simd_kernels(w, options.fast));
  sections.push_back(bench_mlp_predict(w, options.fast));

  const data::Dataset full = synthetic_design_space();
  Rng sample_rng(13);
  const std::vector<std::size_t> sample_idx =
      data::sample_fraction(full.n_rows(), 0.1, sample_rng, 10);
  const data::Dataset train = full.select_rows(sample_idx);

  sections.push_back(bench_lr_predict(w, full, train));
  sections.push_back(bench_engine_session(w, full, train, options.fast));
  sections.push_back(bench_f32_session(w, full, train, options.fast));
  sections.push_back(bench_estimate_error(w, train, options.fast));
  sections.push_back(bench_select_fit(w, train, options.fast));
  sections.push_back(bench_dse_sampler(w, full, options.fast));
  w.end_object();  // sections

  const auto model_errors = bench_model_errors(w, options.fast);
  w.end_object();  // document

  TablePrinter table({"section", "reference ms", "optimized ms", "speedup",
                      "equivalent"});
  bool all_equivalent = true;
  for (const Section& s : sections) {
    all_equivalent = all_equivalent && s.equivalent;
    table.add_row({s.name, strings::format_double(s.reference_ms, 2),
                   strings::format_double(s.optimized_ms, 2),
                   strings::format_double(s.speedup(), 2),
                   s.equivalent ? "yes" : "NO"});
  }
  table.print(out);
  for (const auto& [model, error] : model_errors) {
    out << "  " << model << " mean err " << strings::format_double(error, 2)
        << "%\n";
  }

  if (!options.json_path.empty()) {
    // Atomic write: BENCH_ML.json is the committed drift baseline, and a
    // run killed mid-write must not replace it with a truncated file.
    try {
      io::write_file_atomic(options.json_path, w.str());
    } catch (const IoError& e) {
      err << "bench: " << e.what() << "\n";
      return 1;
    }
    out << "wrote " << options.json_path << "\n";
  }

  if (!all_equivalent) {
    err << "bench: optimized paths diverged from the reference\n";
    return 1;
  }
  if (!options.check_path.empty() &&
      !check_drift(options.check_path, model_errors, out, err)) {
    return 1;
  }
  return 0;
}

}  // namespace dsml::bench_ml
