#include "loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <ostream>
#include <thread>
#include <vector>

#include "common/atomic_io.hpp"
#include "common/error.hpp"
#include "common/json.hpp"
#include "common/strings.hpp"
#include "common/trace.hpp"
#include "engine/design_space.hpp"
#include "net/client.hpp"

namespace dsml::loadgen {

namespace {

/// One serve-protocol request line: `rows` consecutive design-space
/// configurations starting at `start_row` (wrapping), keyed by schema
/// column name. Deterministic by construction, so two loadgen runs with
/// the same config send byte-identical request streams.
std::string build_request(const engine::Schema& schema,
                          const data::Dataset& space, std::size_t start_row,
                          std::size_t rows, const std::string& model) {
  json::Writer w(/*compact=*/true);
  w.begin_object();
  if (!model.empty()) w.field("model", model);
  w.key("rows").begin_array();
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t row = (start_row + r) % space.n_rows();
    w.begin_object();
    for (const engine::SchemaColumn& c : schema.columns()) {
      const data::Column& col = space.feature(c.name);
      switch (c.kind) {
        case data::ColumnKind::kNumeric:
          w.field(c.name, col.numeric_at(row));
          break;
        case data::ColumnKind::kFlag:
          w.field(c.name, col.code_at(row) != 0);
          break;
        case data::ColumnKind::kCategorical:
          w.field(c.name, std::string_view(col.label_at(row)));
          break;
      }
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  // Writer::str() newline-terminates; LineClient frames lines itself.
  std::string line = w.str();
  line.pop_back();
  return line;
}

struct WorkerResult {
  std::vector<double> latencies_us;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::string first_error;  // first bad response / transport failure
};

/// Connects with retries: in CI the server is started in the background
/// and may not be accepting yet when loadgen launches.
net::LineClient connect_with_retry(const std::string& host,
                                   std::uint16_t port,
                                   std::uint32_t timeout_ms) {
  const net::ClientOptions client_options{timeout_ms, timeout_ms};
  for (int attempt = 0;; ++attempt) {
    try {
      return net::LineClient(host, port, client_options);
    } catch (const IoError&) {
      if (attempt >= 50) throw;
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
}

void drive_connection(const Options& options, const engine::Schema& schema,
                      const data::Dataset& space, std::size_t index,
                      WorkerResult& result) {
  try {
    net::LineClient client =
        connect_with_retry(options.host, options.port, options.timeout_ms);
    for (std::size_t r = 0; r < options.requests; ++r) {
      const std::size_t start_row =
          (index * options.requests + r) * options.rows;
      const std::string request = build_request(schema, space, start_row,
                                                options.rows, options.model);
      trace::Stopwatch timer;
      const std::string response = client.request(request);
      result.latencies_us.push_back(timer.seconds() * 1e6);
      try {
        const json::Value parsed = json::Value::parse(response);
        const bool ok = parsed.contains("ok") && parsed.at("ok").as_bool() &&
                        parsed.contains("predictions") &&
                        parsed.at("predictions").items().size() ==
                            options.rows;
        if (ok) {
          result.ok += 1;
        } else {
          result.errors += 1;
          if (result.first_error.empty()) result.first_error = response;
        }
      } catch (const std::exception& e) {
        result.errors += 1;
        if (result.first_error.empty()) result.first_error = e.what();
      }
    }
  } catch (const std::exception& e) {
    // A transport failure voids the connection's remaining requests.
    const std::uint64_t answered = result.ok + result.errors;
    result.errors += options.requests - answered;
    if (result.first_error.empty()) result.first_error = e.what();
  }
}

/// Nearest-rank percentile over a sorted sample.
double percentile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = std::min(
      sorted.size() - 1, static_cast<std::size_t>(q * sorted.size()));
  return sorted[idx];
}

struct Report {
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  std::uint64_t rows = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0, max_us = 0;
  double requests_per_sec = 0, rows_per_sec = 0;
};

std::string report_json(const Options& options, const Report& r) {
  json::Writer w;
  w.begin_object().field("schema", "dsml-bench-serve/v1");
  w.key("config")
      .begin_object()
      .field("connections", static_cast<std::uint64_t>(options.connections))
      .field("requests_per_connection",
             static_cast<std::uint64_t>(options.requests))
      .field("rows_per_request", static_cast<std::uint64_t>(options.rows))
      .end_object();
  w.key("totals")
      .begin_object()
      .field("requests", r.requests)
      .field("ok", r.ok)
      .field("errors", r.errors)
      .field("rows", r.rows)
      .end_object();
  w.key("latency_us")
      .begin_object()
      .field("p50", r.p50_us)
      .field("p95", r.p95_us)
      .field("p99", r.p99_us)
      .field("max", r.max_us)
      .end_object();
  w.key("throughput")
      .begin_object()
      .field("requests_per_sec", r.requests_per_sec)
      .field("rows_per_sec", r.rows_per_sec)
      .end_object();
  w.end_object();
  return w.str();
}

std::uint64_t baseline_u64(const json::Value& doc, const std::string& section,
                           const std::string& field) {
  return static_cast<std::uint64_t>(doc.at(section).at(field).as_number());
}

/// Gates the deterministic fields against the committed baseline. Latency
/// and throughput are deliberately not gated: they measure the CI machine,
/// not the code.
bool check_baseline(const std::string& path, const Options& options,
                    const Report& r, std::ostream& out, std::ostream& err) {
  const json::Value baseline = json::Value::parse_file(path);
  bool ok = true;
  const auto expect = [&](const std::string& what, std::uint64_t want,
                          std::uint64_t got) {
    if (want != got) {
      err << "loadgen --check: " << what << " mismatch (baseline " << want
          << ", run " << got << ")\n";
      ok = false;
    }
  };
  if (!baseline.contains("schema") ||
      baseline.at("schema").as_string() != "dsml-bench-serve/v1") {
    err << "loadgen --check: '" << path << "' is not a dsml-bench-serve/v1 "
        << "report\n";
    return false;
  }
  expect("config.connections",
         baseline_u64(baseline, "config", "connections"),
         options.connections);
  expect("config.requests_per_connection",
         baseline_u64(baseline, "config", "requests_per_connection"),
         options.requests);
  expect("config.rows_per_request",
         baseline_u64(baseline, "config", "rows_per_request"), options.rows);
  expect("totals.requests", baseline_u64(baseline, "totals", "requests"),
         r.requests);
  expect("totals.ok", baseline_u64(baseline, "totals", "ok"), r.ok);
  expect("totals.errors", baseline_u64(baseline, "totals", "errors"),
         r.errors);
  expect("totals.rows", baseline_u64(baseline, "totals", "rows"), r.rows);
  if (ok) out << "  baseline " << path << ": deterministic fields match\n";
  return ok;
}

}  // namespace

int run(const Options& options, std::ostream& out, std::ostream& err) {
  if (options.port == 0) {
    throw InvalidArgument("loadgen requires --connect host:port");
  }
  if (options.connections == 0 || options.requests == 0 ||
      options.rows == 0) {
    throw InvalidArgument(
        "loadgen needs --connections, --requests, and --rows >= 1");
  }
  const engine::Schema& schema = engine::design_space_schema();
  const data::Dataset& space = engine::design_space_dataset();

  std::vector<WorkerResult> results(options.connections);
  trace::Stopwatch wall;
  {
    std::vector<std::thread> threads;
    threads.reserve(options.connections);
    for (std::size_t i = 0; i < options.connections; ++i) {
      threads.emplace_back([&, i] {
        drive_connection(options, schema, space, i, results[i]);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  const double wall_seconds = wall.seconds();

  Report report;
  std::vector<double> latencies;
  std::string first_error;
  for (const WorkerResult& r : results) {
    report.ok += r.ok;
    report.errors += r.errors;
    latencies.insert(latencies.end(), r.latencies_us.begin(),
                     r.latencies_us.end());
    if (first_error.empty()) first_error = r.first_error;
  }
  report.requests = report.ok + report.errors;
  report.rows = report.ok * options.rows;
  std::sort(latencies.begin(), latencies.end());
  report.p50_us = percentile(latencies, 0.50);
  report.p95_us = percentile(latencies, 0.95);
  report.p99_us = percentile(latencies, 0.99);
  report.max_us = latencies.empty() ? 0.0 : latencies.back();
  if (wall_seconds > 0) {
    report.requests_per_sec = static_cast<double>(report.ok) / wall_seconds;
    report.rows_per_sec = static_cast<double>(report.rows) / wall_seconds;
  }

  out << "loadgen " << options.host << ":" << options.port << ": "
      << options.connections << " connection(s) x " << options.requests
      << " request(s) x " << options.rows << " row(s)\n";
  out << "  " << report.ok << " ok, " << report.errors << " error(s), "
      << report.rows << " row(s) predicted in "
      << strings::format_double(wall_seconds * 1e3, 1) << " ms ("
      << strings::format_double(report.rows_per_sec, 0) << " rows/s)\n";
  out << "  latency p50 " << strings::format_double(report.p50_us, 0)
      << " us, p95 " << strings::format_double(report.p95_us, 0)
      << " us, p99 " << strings::format_double(report.p99_us, 0) << " us\n";
  if (report.errors > 0) {
    err << "loadgen: " << report.errors << " request(s) failed; first: "
        << first_error << "\n";
  }

  if (!options.json_path.empty()) {
    io::write_file_atomic(options.json_path,
                          report_json(options, report) + "\n");
    out << "  wrote " << options.json_path << "\n";
  }
  bool gate_ok = true;
  if (!options.check_path.empty()) {
    gate_ok = check_baseline(options.check_path, options, report, out, err);
  }
  return (report.errors == 0 && gate_ok) ? 0 : 1;
}

}  // namespace dsml::loadgen
