#include "cli.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "bench_ml.hpp"
#include "common/atomic_io.hpp"
#include "common/csv.hpp"
#include "common/failpoint.hpp"
#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/trace.hpp"
#include "data/split.hpp"
#include "dse/chronological.hpp"
#include "dse/sampled.hpp"
#include "dse/sweep.hpp"
#include "lint/lint.hpp"
#include "ml/metrics.hpp"
#include "ml/model_zoo.hpp"
#include "ml/serialize.hpp"
#include "workload/generator.hpp"
#include "workload/profiles.hpp"

namespace dsml::cli {

namespace {

/// Parsed "--key value" options plus positional arguments.
struct Options {
  std::map<std::string, std::string> named;
  std::vector<std::string> positional;

  std::optional<std::string> get(const std::string& key) const {
    auto it = named.find(key);
    if (it == named.end()) return std::nullopt;
    return it->second;
  }
  std::string get_or(const std::string& key,
                     const std::string& fallback) const {
    return get(key).value_or(fallback);
  }
};

Options parse_options(const std::vector<std::string>& args,
                      std::size_t begin) {
  Options out;
  for (std::size_t i = begin; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a.rfind("--", 0) == 0) {
      const std::string key = a.substr(2);
      // Boolean flags may appear bare ("--fast" == "--fast 1"), so
      // `bench --fast --trace t.json` reads naturally; every other flag
      // still requires an explicit value.
      static const std::set<std::string> kBooleanFlags = {"fast"};
      if (kBooleanFlags.count(key)) {
        if (i + 1 < args.size() &&
            (args[i + 1] == "0" || args[i + 1] == "1")) {
          out.named[key] = args[++i];
        } else {
          out.named[key] = "1";
        }
      } else {
        if (i + 1 >= args.size()) {
          throw InvalidArgument("missing value for --" + key);
        }
        out.named[key] = args[++i];
      }
    } else {
      out.positional.push_back(a);
    }
  }
  return out;
}

std::vector<std::string> parse_list(const std::string& csv) {
  std::vector<std::string> out;
  for (const auto& part : strings::split(csv, ',')) {
    const auto trimmed = strings::trim(part);
    if (!trimmed.empty()) out.emplace_back(trimmed);
  }
  return out;
}

specdata::Family parse_family(const std::string& name) {
  const std::string lower = strings::to_lower(name);
  if (lower == "xeon") return specdata::Family::kXeon;
  if (lower == "p4" || lower == "pentium4") return specdata::Family::kPentium4;
  if (lower == "pd" || lower == "pentiumd") return specdata::Family::kPentiumD;
  if (lower == "opteron") return specdata::Family::kOpteron;
  if (lower == "opteron2") return specdata::Family::kOpteron2;
  if (lower == "opteron4") return specdata::Family::kOpteron4;
  if (lower == "opteron8") return specdata::Family::kOpteron8;
  throw InvalidArgument("unknown family '" + name +
                        "' (xeon|p4|pd|opteron|opteron2|opteron4|opteron8)");
}

specdata::RatingTarget parse_target(const std::string& spec) {
  if (spec == "int") return specdata::RatingTarget::int_rate();
  if (spec == "fp") return specdata::RatingTarget::fp_rate();
  if (spec.rfind("app:", 0) == 0) {
    return specdata::RatingTarget::int_app(
        static_cast<std::size_t>(std::stoul(spec.substr(4))));
  }
  throw InvalidArgument("unknown target '" + spec + "' (int|fp|app:<i>)");
}

dse::SweepOptions sweep_options_from(const Options& opt) {
  dse::SweepOptions sweep;
  sweep.full_trace_instructions = static_cast<std::size_t>(
      std::stoull(opt.get_or("full", "600000")));
  sweep.interval_instructions = static_cast<std::size_t>(
      std::stoull(opt.get_or("interval", "30000")));
  sweep.max_clusters =
      static_cast<std::size_t>(std::stoull(opt.get_or("clusters", "4")));
  return sweep;
}

/// Prints the failures a degraded run tolerated (empty = silent).
void print_failures(const std::vector<FailureRecord>& failures,
                    std::ostream& out) {
  if (failures.empty()) return;
  out << failures.size() << " failure(s) tolerated:\n";
  for (const auto& f : failures) {
    out << "  " << f.name << " [" << f.error_type << "] " << f.message
        << "\n";
  }
}

int cmd_list(std::ostream& out) {
  out << "applications:";
  for (const auto& name : workload::spec_profile_names()) out << ' ' << name;
  out << "\nfamilies: xeon p4 pd opteron opteron2 opteron4 opteron8\n";
  out << "models:";
  for (const auto& name : ml::all_model_names()) out << ' ' << name;
  out << "\n";
  return 0;
}

int cmd_sweep(const Options& opt, std::ostream& out) {
  const std::string app = opt.get_or("app", "mcf");
  const dse::SweepResult sweep =
      dse::run_design_space_sweep(app, sweep_options_from(opt));
  out << "app " << app << ": " << sweep.cycles.size() << " configurations, "
      << sweep.simpoint_count << " simpoints, "
      << sweep.simulated_instructions << " instr/config"
      << (sweep.from_cache ? " [cache]" : "") << "\n";
  if (const auto path = opt.get("csv")) {
    const data::Dataset ds = dse::sweep_dataset(sweep);
    csv::write_file(*path, ds.to_csv());
    out << "wrote " << ds.n_rows() << " rows to " << *path << "\n";
  }
  return 0;
}

int cmd_sampled(const Options& opt, std::ostream& out) {
  const std::string app = opt.get_or("app", "mcf");
  const dse::SweepResult sweep =
      dse::run_design_space_sweep(app, sweep_options_from(opt));
  dse::SampledDseOptions options;
  if (const auto rates = opt.get("rates")) {
    options.sampling_rates.clear();
    for (const auto& r : parse_list(*rates)) {
      options.sampling_rates.push_back(strings::parse_double(r));
    }
  }
  if (const auto models = opt.get("models")) {
    options.model_names = parse_list(*models);
  }
  const auto result =
      dse::run_sampled_dse(dse::sweep_dataset(sweep), app, options);
  TablePrinter table({"model", "rate", "est err %", "true err %"});
  for (const auto& run : result.runs) {
    table.add_row({run.model, strings::format_double(run.rate * 100, 0) + "%",
                   strings::format_double(run.estimated_error_max, 2),
                   strings::format_double(run.true_error, 2)});
  }
  table.print(out);
  for (const auto& sel : result.select) {
    out << "select @" << strings::format_double(sel.rate * 100, 0) << "%: "
        << sel.chosen_model << " (true "
        << strings::format_double(sel.true_error, 2) << "%)\n";
  }
  print_failures(result.failures, out);
  return 0;
}

int cmd_chrono(const Options& opt, std::ostream& out) {
  const specdata::Family family = parse_family(opt.get_or("family", "xeon"));
  dse::ChronologicalOptions options;
  options.target = parse_target(opt.get_or("target", "int"));
  if (const auto models = opt.get("models")) {
    options.model_names = parse_list(*models);
  }
  const auto result = dse::run_chronological(family, options);
  out << to_string(family) << " (" << options.target.name() << "): train "
      << result.train_rows << " rows (2005), test " << result.test_rows
      << " rows (2006)\n";
  TablePrinter table({"model", "mean err %", "std %"});
  for (const auto& m : result.models) {
    table.add_row({m.model, strings::format_double(m.error.mean, 2),
                   strings::format_double(m.error.stddev, 2)});
  }
  table.print(out);
  out << "best: " << result.best().model << "\n";
  print_failures(result.failures, out);
  return 0;
}

int cmd_train(const Options& opt, std::ostream& out) {
  const std::string app = opt.get_or("app", "mcf");
  const double rate = strings::parse_double(opt.get_or("rate", "0.02"));
  const std::string model_name = opt.get_or("model", "NN-E");
  const std::string out_path = opt.get_or("out", "model.dsml");

  const dse::SweepResult sweep =
      dse::run_design_space_sweep(app, sweep_options_from(opt));
  const data::Dataset full = dse::sweep_dataset(sweep);
  Rng rng(std::stoull(opt.get_or("seed", "7")));
  const auto idx = data::sample_fraction(full.n_rows(), rate, rng, 10);
  const data::Dataset train = full.select_rows(idx);

  auto model = ml::make_model(model_name).make();
  model->fit(train);
  const double err = ml::mape(model->predict(full), full.target());
  ml::save_model(*model, out_path);
  out << "trained " << model_name << " on " << train.n_rows()
      << " simulations of '" << app << "', full-space error "
      << strings::format_double(err, 2) << "%, saved to " << out_path << "\n";
  return 0;
}

int cmd_predict(const Options& opt, std::ostream& out) {
  const auto path = opt.get("model");
  if (!path) throw InvalidArgument("predict requires --model <file>");
  const auto top =
      static_cast<std::size_t>(std::stoull(opt.get_or("top", "10")));

  const auto model = ml::load_model(*path);
  const auto space = sim::enumerate_design_space();
  const data::Dataset all = sim::make_config_dataset(space);
  const std::vector<double> predicted = model->predict(all);

  std::vector<std::size_t> order(space.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return predicted[a] < predicted[b];
  });
  out << "model " << model->name() << ", top " << top
      << " configurations by predicted cycles:\n";
  TablePrinter table({"rank", "configuration", "predicted cycles"});
  for (std::size_t i = 0; i < top && i < order.size(); ++i) {
    table.add_row({std::to_string(i + 1), space[order[i]].key(),
                   strings::format_double(predicted[order[i]], 0)});
  }
  table.print(out);
  return 0;
}

int cmd_bench(const Options& opt, std::ostream& out, std::ostream& err) {
  bench_ml::BenchOptions options;
  options.json_path = opt.get_or("json", "");
  options.check_path = opt.get_or("check", "");
  options.fast = opt.get_or("fast", "0") == "1";
  return bench_ml::run(options, out, err);
}

/// `dsml stats [--json F] [command args...]`: runs the nested command (if
/// any), then dumps the metrics registry — the aggregate work counters the
/// pipeline reported while the command ran.
int cmd_stats(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err) {
  std::vector<std::string> nested = args;
  std::string json_path;
  if (!nested.empty() && nested[0] == "--json") {
    if (nested.size() < 2 || nested[1].rfind("--", 0) == 0) {
      throw InvalidArgument("missing file for stats --json");
    }
    json_path = nested[1];
    nested.erase(nested.begin(), nested.begin() + 2);
  }
  int rc = 0;
  if (!nested.empty()) rc = run(nested, out, err);
  metrics::print(out);
  if (!json_path.empty()) {
    json::Writer w;
    metrics::write_json(w);
    io::write_file_atomic(json_path, w.str() + "\n");
  }
  return rc;
}

}  // namespace

std::string usage() {
  return
      "usage: dsml [--trace F] [--failpoints SPEC] <command> [options]\n"
      "\n"
      "commands:\n"
      "  list                              enumerate apps, families, models\n"
      "  sweep   --app A [--full N --interval N --clusters K] [--csv F]\n"
      "  sampled --app A [--rates R1,R2] [--models M1,M2]\n"
      "  chrono  --family F [--target int|fp|app:<i>] [--models M1,M2]\n"
      "  train   --app A --rate R --model M --out F [--seed S]\n"
      "  predict --model F [--top N]\n"
      "  bench   [--json F] [--check F] [--fast 1]   ML perf bench + JSON report\n"
      "  stats   [--json F] [command...]   run command, dump metrics registry\n"
      "  lint    [--list-rules] [path...]   run the dsml-lint static checker\n"
      "\n"
      "global options:\n"
      "  --trace F          collect a Chrome trace (chrome://tracing) into F\n"
      "  --failpoints SPEC  arm fault-injection points, e.g.\n"
      "                     'estimate_error.fold=nth:2,linreg.solve=prob:0.1@7'\n"
      "                     (triggers: nth:N | prob:P@SEED | err:Type;\n"
      "                     see docs/ROBUSTNESS.md)\n";
}

namespace {

int dispatch(const std::vector<std::string>& args, std::ostream& out,
             std::ostream& err) {
  const std::string& cmd = args[0];
  if (cmd == "lint") {
    // Forwarded verbatim: lint has its own option grammar (bare paths and
    // flag-style options with no values).
    return lint::run({args.begin() + 1, args.end()}, out, err);
  }
  if (cmd == "stats") {
    return cmd_stats({args.begin() + 1, args.end()}, out, err);
  }
  const Options opt = parse_options(args, 1);
  if (cmd == "list") return cmd_list(out);
  if (cmd == "sweep") return cmd_sweep(opt, out);
  if (cmd == "sampled") return cmd_sampled(opt, out);
  if (cmd == "chrono") return cmd_chrono(opt, out);
  if (cmd == "train") return cmd_train(opt, out);
  if (cmd == "predict") return cmd_predict(opt, out);
  if (cmd == "bench") return cmd_bench(opt, out, err);
  err << "unknown command '" << cmd << "'\n" << usage();
  return 1;
}

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << usage();
    return args.empty() ? 1 : 0;
  }
  try {
    // `--trace <file>` and `--failpoints <spec>` work on every subcommand
    // (any position): they are extracted here, before dispatch, so command
    // parsers (including lint's pass-through grammar) never see them.
    std::vector<std::string> rest = args;
    std::string trace_path;
    for (std::size_t i = 0; i < rest.size(); ++i) {
      if (rest[i] != "--trace") continue;
      if (i + 1 >= rest.size() || rest[i + 1].rfind("--", 0) == 0) {
        throw InvalidArgument("missing file for --trace");
      }
      trace_path = rest[i + 1];
      rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(i),
                 rest.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      break;
    }
    std::optional<std::string> failpoint_spec;
    for (std::size_t i = 0; i < rest.size(); ++i) {
      if (rest[i] != "--failpoints") continue;
      if (i + 1 >= rest.size() || rest[i + 1].rfind("--", 0) == 0) {
        throw InvalidArgument("missing spec for --failpoints");
      }
      failpoint_spec = rest[i + 1];
      rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(i),
                 rest.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      break;
    }
    if (rest.empty()) {
      out << usage();
      return 1;
    }
    // RAII so the armed set never leaks past this command (run() is also
    // invoked recursively by `dsml stats`, and repeatedly by tests).
    std::optional<failpoint::ScopedFailpoints> armed;
    if (failpoint_spec.has_value()) armed.emplace(*failpoint_spec);
    if (!trace_path.empty()) trace::start(trace_path);
    int rc;
    {
      trace::Span span([&] { return "dsml " + rest[0]; }, "cli");
      rc = dispatch(rest, out, err);
    }
    if (!trace_path.empty()) trace::stop();
    return rc;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace dsml::cli
