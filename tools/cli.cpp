#include "cli.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>
#include <thread>

#include "bench_ml.hpp"
#include "common/atomic_io.hpp"
#include "common/csv.hpp"
#include "common/failpoint.hpp"
#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "common/trace.hpp"
#include "data/split.hpp"
#include "dse/campaign.hpp"
#include "dse/chronological.hpp"
#include "dse/sampled.hpp"
#include "dse/sweep.hpp"
#include "engine/design_space.hpp"
#include "fleet/coordinator.hpp"
#include "fleet/evaluator.hpp"
#include "fleet/supervisor.hpp"
#include "fleet/worker.hpp"
#include "ml/fit_score.hpp"
#include "engine/registry.hpp"
#include "engine/serve.hpp"
#include "engine/session.hpp"
#include "linalg/backend.hpp"
#include "lint/lint.hpp"
#include "loadgen.hpp"
#include "net/server.hpp"
#include "ml/metrics.hpp"
#include "ml/model_zoo.hpp"
#include "ml/serialize.hpp"
#include "workload/generator.hpp"
#include "workload/profiles.hpp"

namespace dsml::cli {

namespace {

/// Parsed "--key value" options plus positional arguments.
struct Options {
  std::map<std::string, std::string> named;
  std::vector<std::string> positional;

  std::optional<std::string> get(const std::string& key) const {
    auto it = named.find(key);
    if (it == named.end()) return std::nullopt;
    return it->second;
  }
  std::string get_or(const std::string& key,
                     const std::string& fallback) const {
    return get(key).value_or(fallback);
  }
};

Options parse_options(const std::vector<std::string>& args,
                      std::size_t begin) {
  Options out;
  for (std::size_t i = begin; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a.rfind("--", 0) == 0) {
      const std::string key = a.substr(2);
      // Boolean flags may appear bare ("--fast" == "--fast 1"), so
      // `bench --fast --trace t.json` reads naturally; every other flag
      // still requires an explicit value.
      static const std::set<std::string> kBooleanFlags = {"fast", "f32",
                                                          "truth"};
      if (kBooleanFlags.count(key)) {
        if (i + 1 < args.size() &&
            (args[i + 1] == "0" || args[i + 1] == "1")) {
          out.named[key] = args[++i];
        } else {
          out.named[key] = "1";
        }
      } else {
        if (i + 1 >= args.size()) {
          throw InvalidArgument("missing value for --" + key);
        }
        out.named[key] = args[++i];
      }
    } else {
      out.positional.push_back(a);
    }
  }
  return out;
}

/// Checked integer flag parsing. User input must surface as a taxonomy
/// error naming the flag ("--top: expected ..."), never as the raw
/// std::invalid_argument / std::out_of_range that bare std::stoull throws.
std::size_t parse_count_flag(const Options& opt, const std::string& key,
                             const std::string& fallback) {
  const std::string value = opt.get_or(key, fallback);
  try {
    return static_cast<std::size_t>(strings::parse_u64(value));
  } catch (const IoError&) {
    throw InvalidArgument("--" + key +
                          ": expected a non-negative integer, got '" + value +
                          "'");
  }
}

std::vector<std::string> parse_list(const std::string& csv) {
  std::vector<std::string> out;
  for (const auto& part : strings::split(csv, ',')) {
    const auto trimmed = strings::trim(part);
    if (!trimmed.empty()) out.emplace_back(trimmed);
  }
  return out;
}

specdata::Family parse_family(const std::string& name) {
  const std::string lower = strings::to_lower(name);
  if (lower == "xeon") return specdata::Family::kXeon;
  if (lower == "p4" || lower == "pentium4") return specdata::Family::kPentium4;
  if (lower == "pd" || lower == "pentiumd") return specdata::Family::kPentiumD;
  if (lower == "opteron") return specdata::Family::kOpteron;
  if (lower == "opteron2") return specdata::Family::kOpteron2;
  if (lower == "opteron4") return specdata::Family::kOpteron4;
  if (lower == "opteron8") return specdata::Family::kOpteron8;
  throw InvalidArgument("unknown family '" + name +
                        "' (xeon|p4|pd|opteron|opteron2|opteron4|opteron8)");
}

specdata::RatingTarget parse_target(const std::string& spec) {
  if (spec == "int") return specdata::RatingTarget::int_rate();
  if (spec == "fp") return specdata::RatingTarget::fp_rate();
  if (spec.rfind("app:", 0) == 0) {
    std::size_t index = 0;
    try {
      index = static_cast<std::size_t>(strings::parse_u64(spec.substr(4)));
    } catch (const IoError&) {
      throw InvalidArgument("--target app:<i> needs an integer index, got '" +
                            spec + "'");
    }
    return specdata::RatingTarget::int_app(index);
  }
  throw InvalidArgument("unknown target '" + spec + "' (int|fp|app:<i>)");
}

dse::SweepOptions sweep_options_from(const Options& opt) {
  dse::SweepOptions sweep;
  sweep.full_trace_instructions = parse_count_flag(opt, "full", "600000");
  sweep.interval_instructions = parse_count_flag(opt, "interval", "30000");
  sweep.max_clusters = parse_count_flag(opt, "clusters", "4");
  return sweep;
}

/// Prints the failures a degraded run tolerated (empty = silent). One
/// formatter — dse::format_failure_summary — serves every CLI path, so the
/// sweep/sampled/chrono/fleet/campaign banners can never drift apart.
void print_failures(const std::vector<FailureRecord>& failures,
                    std::ostream& out) {
  out << dse::format_failure_summary(failures);
}

int cmd_list(std::ostream& out) {
  out << "applications:";
  for (const auto& name : workload::spec_profile_names()) out << ' ' << name;
  out << "\nfamilies: xeon p4 pd opteron opteron2 opteron4 opteron8\n";
  out << "models:";
  for (const auto& name : ml::all_model_names()) out << ' ' << name;
  out << "\n";
  return 0;
}

int cmd_sweep(const Options& opt, std::ostream& out) {
  const std::string app = opt.get_or("app", "mcf");
  const dse::SweepResult sweep =
      dse::run_design_space_sweep(app, sweep_options_from(opt));
  out << "app " << app << ": " << sweep.cycles.size() << " configurations, "
      << sweep.simpoint_count << " simpoints, "
      << sweep.simulated_instructions << " instr/config"
      << (sweep.from_cache ? " [cache]" : "") << "\n";
  if (const auto path = opt.get("csv")) {
    const data::Dataset ds = dse::sweep_dataset(sweep);
    csv::write_file(*path, ds.to_csv());
    out << "wrote " << ds.n_rows() << " rows to " << *path << "\n";
  }
  return 0;
}

int cmd_sampled(const Options& opt, std::ostream& out) {
  const std::string app = opt.get_or("app", "mcf");
  const dse::SweepResult sweep =
      dse::run_design_space_sweep(app, sweep_options_from(opt));
  dse::SampledDseOptions options;
  if (const auto rates = opt.get("rates")) {
    options.sampling_rates.clear();
    for (const auto& r : parse_list(*rates)) {
      options.sampling_rates.push_back(strings::parse_double(r));
    }
  }
  if (const auto models = opt.get("models")) {
    options.model_names = parse_list(*models);
  }
  const auto result =
      dse::run_sampled_dse(dse::sweep_dataset(sweep), app, options);
  TablePrinter table({"model", "rate", "est err %", "true err %"});
  for (const auto& run : result.runs) {
    table.add_row({run.model, strings::format_double(run.rate * 100, 0) + "%",
                   strings::format_double(run.estimated_error_max, 2),
                   strings::format_double(run.true_error, 2)});
  }
  table.print(out);
  for (const auto& sel : result.select) {
    out << "select @" << strings::format_double(sel.rate * 100, 0) << "%: "
        << sel.chosen_model << " (true "
        << strings::format_double(sel.true_error, 2) << "%)\n";
  }
  print_failures(result.failures, out);
  return 0;
}

int cmd_chrono(const Options& opt, std::ostream& out) {
  const specdata::Family family = parse_family(opt.get_or("family", "xeon"));
  dse::ChronologicalOptions options;
  options.target = parse_target(opt.get_or("target", "int"));
  if (const auto models = opt.get("models")) {
    options.model_names = parse_list(*models);
  }
  const auto result = dse::run_chronological(family, options);
  out << to_string(family) << " (" << options.target.name() << "): train "
      << result.train_rows << " rows (2005), test " << result.test_rows
      << " rows (2006)\n";
  TablePrinter table({"model", "mean err %", "std %"});
  for (const auto& m : result.models) {
    table.add_row({m.model, strings::format_double(m.error.mean, 2),
                   strings::format_double(m.error.stddev, 2)});
  }
  table.print(out);
  out << "best: " << result.best().model << "\n";
  print_failures(result.failures, out);
  return 0;
}

int cmd_train(const Options& opt, std::ostream& out) {
  const std::string app = opt.get_or("app", "mcf");
  const double rate = strings::parse_double(opt.get_or("rate", "0.02"));
  const std::string model_name = opt.get_or("model", "NN-E");
  const std::string out_path = opt.get_or("out", "model.dsml");
  // Parse every flag before the (expensive) sweep so a malformed --seed
  // fails in microseconds, not after minutes of simulation.
  Rng rng(parse_count_flag(opt, "seed", "7"));

  const dse::SweepResult sweep =
      dse::run_design_space_sweep(app, sweep_options_from(opt));
  const data::Dataset full = dse::sweep_dataset(sweep);
  const auto idx = data::sample_fraction(full.n_rows(), rate, rng, 10);
  const data::Dataset train = full.select_rows(idx);

  engine::FitScoreRequest request;
  request.model = ml::make_model(model_name);
  request.train = &train;
  request.score = &full;
  engine::FitScoreResult cell = engine::fit_and_score(request);
  if (!cell.ok()) {
    throw TrainingError(model_name, "train", cell.failure->message);
  }
  const double err = ml::mape(cell.predictions, full.target());
  ml::save_model(*cell.model, out_path);
  // Registering the fresh artifact makes it immediately queryable by this
  // process (serve loops, tests driving cli::run in-process) without a
  // reload from disk.
  engine::ModelRegistry::global().register_model(
      model_name, std::shared_ptr<const ml::Regressor>(std::move(cell.model)),
      engine::Schema::of(full), "train:" + app);
  out << "trained " << model_name << " on " << train.n_rows()
      << " simulations of '" << app << "', full-space error "
      << strings::format_double(err, 2) << "%, saved to " << out_path << "\n";
  return 0;
}

/// Scores the rows of a user-supplied CSV through an inference session,
/// reporting partial failures per row instead of aborting the command.
int predict_csv(engine::InferenceSession& session,
                const engine::Schema& schema,
                const std::string& model_label, const std::string& csv_path,
                std::ostream& out) {
  const csv::Table table = csv::read_file(csv_path);
  const data::Dataset rows = schema.dataset_from_csv(table);
  const engine::BatchOutcome outcome = session.predict_detailed(rows);
  out << "model " << model_label << ", " << rows.n_rows()
      << " configurations from " << csv_path << ":\n";
  TablePrinter printer({"row", "predicted cycles"});
  std::size_t fail_idx = 0;
  for (std::size_t r = 0; r < outcome.values.size(); ++r) {
    if (fail_idx < outcome.failed_rows.size() &&
        outcome.failed_rows[fail_idx] == r) {
      printer.add_row({std::to_string(r), "(failed)"});
      ++fail_idx;
    } else {
      printer.add_row(
          {std::to_string(r), strings::format_double(outcome.values[r], 0)});
    }
  }
  printer.print(out);
  if (!outcome.ok()) {
    out << outcome.failed_rows.size() << " row(s) failed:\n";
    for (std::size_t k = 0; k < outcome.failed_rows.size(); ++k) {
      out << "  row " << outcome.failed_rows[k] << ": "
          << outcome.row_errors[k] << "\n";
    }
    return 1;
  }
  return 0;
}

int cmd_predict(const Options& opt, std::ostream& out) {
  const auto path = opt.get("model");
  if (!path) throw InvalidArgument("predict requires --model <file>");
  const std::size_t top = parse_count_flag(opt, "top", "10");

  // The registry is the only sanctioned load path (dsml-lint forbids
  // ml::load_model here): load once, then predict through a session so the
  // batched kernels serve the whole space in one flush.
  engine::ModelRegistry& registry = engine::ModelRegistry::global();
  const std::string entry_name = "file:" + *path;
  registry.load_file(entry_name, *path, engine::design_space_schema());
  const auto entry = registry.get(entry_name);
  engine::InferenceSession session(
      registry, entry_name,
      engine::SessionOptions{/*max_batch_rows=*/sim::kDesignSpaceSize,
                             /*max_queue_rows=*/4 * sim::kDesignSpaceSize,
                             /*retry_rows_on_batch_failure=*/true});

  if (const auto csv_path = opt.get("csv")) {
    return predict_csv(session, entry->schema, entry->model->name(),
                       *csv_path, out);
  }

  const auto& space = engine::design_space_configs();
  const std::vector<double> predicted =
      session.predict(engine::design_space_dataset());

  std::vector<std::size_t> order(space.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return predicted[a] < predicted[b];
  });
  out << "model " << entry->model->name() << ", top " << top
      << " configurations by predicted cycles:\n";
  TablePrinter table({"rank", "configuration", "predicted cycles"});
  for (std::size_t i = 0; i < top && i < order.size(); ++i) {
    table.add_row({std::to_string(i + 1), space[order[i]].key(),
                   strings::format_double(predicted[order[i]], 0)});
  }
  table.print(out);
  return 0;
}

/// Parses "--models name=path[,...]", validating every spec — including
/// duplicate names — before loading any artifact (`--models a=x,a=y` used
/// to silently re-register `a`, leaving whichever file parsed last serving
/// all of a's traffic), then loads each through the registry. Returns the
/// names in spec order.
std::vector<std::string> load_model_specs(engine::ModelRegistry& registry,
                                          const std::string& models,
                                          const std::string& command) {
  std::vector<std::pair<std::string, std::string>> specs;
  std::set<std::string> seen;
  for (const std::string& spec : parse_list(models)) {
    const std::size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
      throw InvalidArgument(command + " --models entry '" + spec +
                            "' must be name=path");
    }
    std::string name = spec.substr(0, eq);
    if (!seen.insert(name).second) {
      throw InvalidArgument(command + " --models names model '" + name +
                            "' more than once");
    }
    specs.emplace_back(std::move(name), spec.substr(eq + 1));
  }
  std::vector<std::string> names;
  for (const auto& [name, path] : specs) {
    registry.load_file(name, path, engine::design_space_schema());
    names.push_back(name);
  }
  return names;
}

/// The server a SIGINT/SIGTERM should stop. A plain atomic pointer because
/// signal handlers may only touch lock-free state, and request_stop() is
/// async-signal-safe by design (atomic store + self-pipe write).
std::atomic<net::Server*> g_signal_server{nullptr};

extern "C" void serve_signal_handler(int) {
  if (net::Server* server = g_signal_server.load()) server->request_stop();
}

/// Runs the TCP front-end: binds, prints the resolved endpoint, and
/// answers framed requests through `handler` until SIGINT/SIGTERM.
engine::ServeSummary serve_listen(const Options& opt,
                                  engine::ServeHandler& handler,
                                  std::ostream& err) {
  net::ServerOptions options;
  options.bind_address = opt.get_or("bind", "127.0.0.1");
  const std::size_t port = parse_count_flag(opt, "listen", "0");
  if (port > 65535) {
    throw InvalidArgument("--listen: port must be 0..65535, got " +
                          std::to_string(port));
  }
  options.port = static_cast<std::uint16_t>(port);
  options.max_connections = parse_count_flag(opt, "max-conns", "64");
  if (options.max_connections == 0) {
    throw InvalidArgument("--max-conns must be >= 1");
  }
  options.idle_timeout_ms = static_cast<std::uint32_t>(
      parse_count_flag(opt, "idle-timeout-ms", "0"));
  net::Server server(options,
                     [&](std::string_view line) { return handler.handle(line); });
  err << "listening on " << options.bind_address << ":" << server.port()
      << " (max " << options.max_connections << " connection(s))\n";
  err.flush();

  g_signal_server.store(&server);
  const auto prev_int = std::signal(SIGINT, serve_signal_handler);
  const auto prev_term = std::signal(SIGTERM, serve_signal_handler);
  server.run();
  std::signal(SIGINT, prev_int);
  std::signal(SIGTERM, prev_term);
  g_signal_server.store(nullptr);

  const net::ServerSummary net_summary = server.summary();
  err << "closed " << net_summary.closed << " connection(s), "
      << net_summary.shed << " shed\n";
  return handler.summary();
}

/// `dsml serve --models name=path[,...]`: loads each artifact through the
/// registry and answers JSON-lines requests from `in` until EOF — or, with
/// `--listen <port>`, from TCP connections until SIGINT/SIGTERM. Protocol
/// output goes to `out` / the socket only (one response per line,
/// golden-diffable); operational banners go to `err`.
int cmd_serve(const Options& opt, std::istream& in, std::ostream& out,
              std::ostream& err) {
  const auto models = opt.get("models");
  if (!models) {
    throw InvalidArgument("serve requires --models name=path[,name=path...]");
  }
  engine::ModelRegistry& registry = engine::ModelRegistry::global();
  const std::vector<std::string> names =
      load_model_specs(registry, *models, "serve");
  engine::ServeOptions options;
  options.default_model =
      opt.get_or("default", names.size() == 1 ? names.front() : "");
  options.session.max_batch_rows = parse_count_flag(opt, "batch", "512");
  options.session.max_queue_rows = parse_count_flag(opt, "queue", "4096");
  options.session.use_f32 = opt.get_or("f32", "0") == "1";
  err << "serving " << names.size() << " model(s): "
      << strings::join(names, ", ")
      << (options.session.use_f32 ? " [f32]" : "") << "\n";
  engine::ServeSummary summary;
  if (opt.get("listen")) {
    engine::ServeHandler handler(registry, options);
    summary = serve_listen(opt, handler, err);
  } else {
    summary = engine::serve(registry, in, out, options);
  }
  err << "served " << summary.requests << " request(s), " << summary.rows
      << " row(s), " << summary.errors << " error(s), " << summary.partial
      << " partial\n";
  return 0;
}

/// The worker a SIGINT/SIGTERM should stop (same discipline as
/// g_signal_server; Worker::request_stop is async-signal-safe).
std::atomic<fleet::Worker*> g_signal_worker{nullptr};

extern "C" void worker_signal_handler(int) {
  if (fleet::Worker* worker = g_signal_worker.load()) worker->request_stop();
}

/// `dsml worker --listen P | --listen-fd N`: one fleet worker process —
/// fleet control (ping / sweep shards / model snapshots / shutdown) and the
/// ordinary serve protocol multiplexed on one port (docs/FLEET.md).
/// --listen-fd adopts an inherited listening socket: the supervisor binds
/// it so the port survives this process crashing.
int cmd_worker(const Options& opt, std::ostream& err) {
  fleet::WorkerOptions options;
  options.server.bind_address = opt.get_or("bind", "127.0.0.1");
  const std::size_t port = parse_count_flag(opt, "listen", "0");
  if (port > 65535) {
    throw InvalidArgument("--listen: port must be 0..65535, got " +
                          std::to_string(port));
  }
  options.server.port = static_cast<std::uint16_t>(port);
  if (opt.get("listen-fd")) {
    options.server.adopted_fd =
        static_cast<int>(parse_count_flag(opt, "listen-fd", "0"));
  }
  options.server.max_connections = parse_count_flag(opt, "max-conns", "64");
  if (options.server.max_connections == 0) {
    throw InvalidArgument("--max-conns must be >= 1");
  }
  options.server.idle_timeout_ms = static_cast<std::uint32_t>(
      parse_count_flag(opt, "idle-timeout-ms", "0"));
  options.stall_ms = static_cast<std::uint32_t>(
      parse_count_flag(opt, "stall-ms", "100"));

  engine::ModelRegistry& registry = engine::ModelRegistry::global();
  std::vector<std::string> names;
  if (const auto models = opt.get("models")) {
    names = load_model_specs(registry, *models, "worker");
  }

  fleet::Worker worker(registry, options);
  err << "fleet worker pid " << ::getpid() << " listening on "
      << options.server.bind_address << ":" << worker.port();
  if (!names.empty()) err << " serving " << strings::join(names, ", ");
  err << "\n";
  err.flush();

  g_signal_worker.store(&worker);
  const auto prev_int = std::signal(SIGINT, worker_signal_handler);
  const auto prev_term = std::signal(SIGTERM, worker_signal_handler);
  worker.run();
  std::signal(SIGINT, prev_int);
  std::signal(SIGTERM, prev_term);
  g_signal_worker.store(nullptr);

  const fleet::WorkerSummary summary = worker.summary();
  err << "worker done: " << summary.pings << " ping(s), " << summary.shards
      << " shard(s), " << summary.model_loads << " model load(s), "
      << summary.errors << " error(s); " << summary.server.closed
      << " connection(s) closed, " << summary.server.idle_closed
      << " idle-closed\n";
  return 0;
}

fleet::CoordinatorOptions coordinator_options_from(const Options& opt) {
  fleet::CoordinatorOptions options;
  options.sweep = sweep_options_from(opt);
  options.connect_timeout_ms = static_cast<std::uint32_t>(
      parse_count_flag(opt, "connect-timeout-ms", "2000"));
  options.ping_timeout_ms = options.connect_timeout_ms;
  options.request_timeout_ms = static_cast<std::uint32_t>(
      parse_count_flag(opt, "timeout-ms", "120000"));
  options.max_rounds = parse_count_flag(opt, "retries", "3");
  return options;
}

/// Shared tail of `dsml dse` / `dsml fleet`: print the merged table
/// summary, optionally write the dataset CSV (byte-identical to
/// `dsml sweep --csv` of the same app/options), report evictions and
/// tolerated failures.
void report_fleet_sweep(const std::string& app,
                        const fleet::FleetSweepResult& result,
                        const Options& opt, std::ostream& out) {
  out << "app " << app << ": " << result.sweep.cycles.size()
      << " configurations from " << result.workers_used << " worker(s) in "
      << result.rounds << " round(s)\n";
  if (const auto path = opt.get("csv")) {
    const data::Dataset ds = dse::sweep_dataset(result.sweep);
    csv::write_file(*path, ds.to_csv());
    out << "wrote " << ds.n_rows() << " rows to " << *path << "\n";
  }
  if (!result.evicted.empty()) {
    out << "evicted " << result.evicted.size() << " worker(s): "
        << strings::join(result.evicted, ", ") << "\n";
  }
  print_failures(result.failures, out);
}

std::vector<fleet::Endpoint> parse_worker_endpoints(const std::string& spec) {
  std::vector<fleet::Endpoint> endpoints;
  for (const std::string& part : parse_list(spec)) {
    endpoints.push_back(fleet::parse_endpoint(part));
  }
  return endpoints;
}

/// The campaign's simulation budget: `--budget N` directly, or
/// `--sample-rate R` as a fraction of the 4608-point space (floored at 10
/// rows, the same minimum data::sample_fraction applies). Default is the
/// paper's headline 1%.
std::size_t campaign_budget(const Options& opt) {
  if (opt.get("budget") && opt.get("sample-rate")) {
    throw InvalidArgument("--budget and --sample-rate are mutually exclusive");
  }
  if (opt.get("budget")) {
    const std::size_t budget = parse_count_flag(opt, "budget", "0");
    if (budget == 0) throw InvalidArgument("--budget must be >= 1");
    if (budget > sim::kDesignSpaceSize) {
      throw InvalidArgument("--budget: the design space has " +
                            std::to_string(sim::kDesignSpaceSize) +
                            " configurations, got " + std::to_string(budget));
    }
    return budget;
  }
  const std::string value = opt.get_or("sample-rate", "0.01");
  double rate = 0.0;
  try {
    rate = strings::parse_double(value);
  } catch (const IoError&) {
    throw InvalidArgument("--sample-rate: expected a fraction in (0,1], got '" +
                          value + "'");
  }
  if (!(rate > 0.0) || rate > 1.0) {
    throw InvalidArgument("--sample-rate: expected a fraction in (0,1], got '" +
                          value + "'");
  }
  return std::max<std::size_t>(
      10, static_cast<std::size_t>(
              static_cast<double>(sim::kDesignSpaceSize) * rate));
}

/// `dsml dse --sampler random|adaptive`: campaign mode — run the
/// select/evaluate/retrain/score loop against a ground-truth Evaluator:
///   --workers H:P,...   the fleet coordinator (eviction + retry),
///   --truth 1           the full (cached) sweep, so true error is reported,
///   (neither)           local in-process shard simulation.
int cmd_dse_campaign(const Options& opt, const std::string& app,
                     const std::string& sampler_name, std::ostream& out) {
  const std::size_t budget = campaign_budget(opt);
  const std::uint64_t seed = parse_count_flag(opt, "seed", "7");
  const std::unique_ptr<dse::Sampler> sampler =
      dse::make_sampler(sampler_name, seed, app);
  // Adaptive needs rounds to react between batches; random keeps the paper's
  // one-shot protocol unless asked otherwise.
  const std::size_t rounds = parse_count_flag(
      opt, "rounds", sampler->cumulative() ? "4" : "1");
  if (rounds == 0) throw InvalidArgument("--rounds must be >= 1");
  if (rounds > budget) {
    throw InvalidArgument("--rounds: more rounds (" + std::to_string(rounds) +
                          ") than budget (" + std::to_string(budget) + ")");
  }
  const std::string objective = opt.get_or("objective", "cycles");
  if (objective != "cycles" && objective != "pareto") {
    throw InvalidArgument("unknown objective '" + objective +
                          "' (cycles|pareto)");
  }

  data::Dataset space;
  std::unique_ptr<dse::Evaluator> evaluator;
  fleet::FleetEvaluator* fleet_evaluator = nullptr;
  if (const auto workers = opt.get("workers")) {
    space = sim::make_config_dataset(sim::enumerate_design_space());
    auto fe = std::make_unique<fleet::FleetEvaluator>(
        app, parse_worker_endpoints(*workers), coordinator_options_from(opt));
    fleet_evaluator = fe.get();
    evaluator = std::move(fe);
  } else if (opt.get_or("truth", "0") == "1") {
    space = dse::sweep_dataset(
        dse::run_design_space_sweep(app, sweep_options_from(opt)));
    evaluator = std::make_unique<dse::DatasetEvaluator>(space);
  } else {
    space = sim::make_config_dataset(sim::enumerate_design_space());
    evaluator = std::make_unique<dse::LocalSweepEvaluator>(
        app, sweep_options_from(opt));
  }
  const bool has_truth = space.has_target();

  dse::CampaignConfig config;
  config.app = app;
  config.space = &space;
  config.sampler = sampler.get();
  config.evaluator = evaluator.get();
  const dse::CyclesScorer cycles_scorer;
  std::optional<dse::ParetoScorer> pareto_scorer;
  if (objective == "pareto") {
    pareto_scorer.emplace();
    config.scorer = &*pareto_scorer;
  } else {
    config.scorer = &cycles_scorer;
  }
  config.rounds = dse::budget_rounds(budget, rounds);
  if (const auto models = opt.get("models")) {
    config.model_names = parse_list(*models);
  }
  config.sample_seed = seed;

  const dse::CampaignResult result = dse::Campaign(config).run();

  out << "campaign " << app << ": sampler " << result.sampler
      << ", evaluator " << result.evaluator << ", objective "
      << result.objective << ", budget " << budget << " over " << rounds
      << " round(s)\n";
  TablePrinter table({"round", "train", "model", "est err %", "true err %"});
  for (const auto& round : result.rounds) {
    for (const auto& cell : round.cells) {
      table.add_row({round.label, std::to_string(round.train_rows), cell.model,
                     strings::format_double(cell.estimated_error_max, 2),
                     has_truth ? strings::format_double(cell.true_error, 2)
                               : "-"});
    }
  }
  table.print(out);
  for (const auto& round : result.rounds) {
    if (!round.has_select) continue;
    out << "select @" << round.label << ": " << round.select.chosen_model
        << " (est " << strings::format_double(round.select.estimated_error, 2)
        << "%";
    if (has_truth) {
      out << ", true " << strings::format_double(round.select.true_error, 2)
          << "%";
    }
    out << ")\n";
  }
  out << "evaluated " << result.evaluated.size() << " of " << space.n_rows()
      << " configurations\n";
  if (!result.pareto.empty()) {
    out << "pareto frontier: " << result.pareto.size()
        << " configuration(s)\n";
    TablePrinter frontier({"config", "pred cycles", "energy"});
    const std::size_t shown = std::min<std::size_t>(10, result.pareto.size());
    for (std::size_t i = 0; i < shown; ++i) {
      const dse::ParetoPoint& p = result.pareto[i];
      frontier.add_row({std::to_string(p.index),
                        strings::format_double(p.cycles, 0),
                        strings::format_double(p.energy, 2)});
    }
    frontier.print(out);
    if (shown < result.pareto.size()) {
      out << "(first " << shown << " of " << result.pareto.size()
          << " by predicted cycles)\n";
    }
  }
  if (fleet_evaluator && !fleet_evaluator->evicted().empty()) {
    out << "evicted " << fleet_evaluator->evicted().size() << " worker(s): "
        << strings::join(fleet_evaluator->evicted(), ", ") << "\n";
  }
  print_failures(result.failures, out);
  return 0;
}

/// `dsml dse`: two modes sharing one command.
///   --sampler random|adaptive   campaign mode (cmd_dse_campaign above);
///   --workers H:P,... (alone)   legacy coordinator mode — shard the *full*
///                               design space across an already-running
///                               worker fleet, gather, merge. Exits non-zero
///                               (StateError) if coverage cannot be
///                               completed, never with a silently partial
///                               table.
int cmd_dse(const Options& opt, std::ostream& out) {
  const std::string app = opt.get_or("app", "mcf");
  if (const auto sampler = opt.get("sampler")) {
    return cmd_dse_campaign(opt, app, *sampler, out);
  }
  const auto workers = opt.get("workers");
  if (!workers) {
    throw InvalidArgument(
        "dse requires --sampler random|adaptive or --workers "
        "host:port[,host:port...]");
  }
  const fleet::FleetSweepResult result = fleet::coordinator_sweep(
      app, parse_worker_endpoints(*workers), coordinator_options_from(opt));
  report_fleet_sweep(app, result, opt, out);
  return 0;
}

/// `dsml fleet --app A --workers N`: supervisor mode — fork/exec N `dsml
/// worker --listen-fd` children (respawning crashed ones with capped
/// exponential backoff), run the sharded sweep against them, then stop the
/// fleet. One command, end to end, for the distributed-DSE smoke test.
int cmd_fleet(const Options& opt, std::ostream& out, std::ostream& err) {
  const std::string app = opt.get_or("app", "mcf");
  fleet::SupervisorOptions sup;
  sup.workers = parse_count_flag(opt, "workers", "3");
  sup.bind_address = opt.get_or("bind", "127.0.0.1");
  const std::size_t port_base = parse_count_flag(opt, "port-base", "0");
  if (port_base > 65535) {
    throw InvalidArgument("--port-base: port must be 0..65535");
  }
  sup.port_base = static_cast<std::uint16_t>(port_base);
  sup.max_respawns = parse_count_flag(opt, "max-respawns", "5");
  // Re-exec this very binary as the workers. /proc/self/exe rather than
  // argv[0]: the smoke test runs from CMake build trees where argv[0] may
  // be a relative path the children could not resolve.
  sup.exe = std::filesystem::read_symlink("/proc/self/exe").string();
  sup.worker_args = {"worker"};
  if (const auto models = opt.get("models")) {
    sup.worker_args.push_back("--models");
    sup.worker_args.push_back(*models);
  }

  fleet::Supervisor supervisor(sup);
  supervisor.start();
  for (const std::string& event : supervisor.drain_events()) {
    err << "fleet: " << event << "\n";
  }
  err.flush();

  // The monitor thread drives eviction/respawn while the main thread runs
  // the coordinator: a worker killed mid-sweep is respawned concurrently,
  // so the coordinator's next round finds a live endpoint again.
  std::atomic<bool> monitor_stop{false};
  std::thread monitor([&] {
    while (!monitor_stop.load()) {
      supervisor.tick();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  int rc = 0;
  try {
    const fleet::FleetSweepResult result = fleet::coordinator_sweep(
        app, supervisor.endpoints(), coordinator_options_from(opt));
    report_fleet_sweep(app, result, opt, out);
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    rc = 1;
  }
  monitor_stop.store(true);
  monitor.join();
  for (const std::string& event : supervisor.drain_events()) {
    err << "fleet: " << event << "\n";
  }
  supervisor.stop();
  const fleet::SupervisorSummary summary = supervisor.summary();
  err << "fleet: " << summary.spawns << " spawn(s), " << summary.respawns
      << " respawn(s), " << summary.evictions << " eviction(s)\n";
  return rc;
}

/// `dsml loadgen --connect host:port`: drives a running `dsml serve
/// --listen` front-end with concurrent connections and reports latency
/// percentiles, throughput, and the BENCH_SERVE.json perf baseline.
int cmd_loadgen(const Options& opt, std::ostream& out, std::ostream& err) {
  const auto endpoint = opt.get("connect");
  if (!endpoint) {
    throw InvalidArgument("loadgen requires --connect host:port");
  }
  loadgen::Options options;
  const std::size_t colon = endpoint->rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= endpoint->size()) {
    throw InvalidArgument("loadgen --connect endpoint '" + *endpoint +
                          "' must be host:port");
  }
  options.host = endpoint->substr(0, colon);
  std::size_t port = 0;
  try {
    port = static_cast<std::size_t>(
        strings::parse_u64(endpoint->substr(colon + 1)));
  } catch (const IoError&) {
    throw InvalidArgument("loadgen --connect endpoint '" + *endpoint +
                          "' must be host:port");
  }
  if (port == 0 || port > 65535) {
    throw InvalidArgument("loadgen --connect: port must be 1..65535");
  }
  options.port = static_cast<std::uint16_t>(port);
  options.connections = parse_count_flag(opt, "connections", "8");
  options.requests = parse_count_flag(opt, "requests", "32");
  options.rows = parse_count_flag(opt, "rows", "4");
  options.timeout_ms = static_cast<std::uint32_t>(
      parse_count_flag(opt, "timeout-ms", "0"));
  options.model = opt.get_or("model", "");
  options.json_path = opt.get_or("json", "");
  options.check_path = opt.get_or("check", "");
  return loadgen::run(options, out, err);
}

int cmd_bench(const Options& opt, std::ostream& out, std::ostream& err) {
  bench_ml::BenchOptions options;
  options.json_path = opt.get_or("json", "");
  options.check_path = opt.get_or("check", "");
  options.fast = opt.get_or("fast", "0") == "1";
  return bench_ml::run(options, out, err);
}

/// `dsml stats [--json F] [command args...]`: runs the nested command (if
/// any), then dumps the metrics registry — the aggregate work counters the
/// pipeline reported while the command ran.
int cmd_stats(const std::vector<std::string>& args, std::istream& in,
              std::ostream& out, std::ostream& err) {
  std::vector<std::string> nested = args;
  std::string json_path;
  if (!nested.empty() && nested[0] == "--json") {
    if (nested.size() < 2 || nested[1].rfind("--", 0) == 0) {
      throw InvalidArgument("missing file for stats --json");
    }
    json_path = nested[1];
    nested.erase(nested.begin(), nested.begin() + 2);
  }
  int rc = 0;
  if (!nested.empty()) rc = run(nested, in, out, err);
  metrics::print(out);
  if (!json_path.empty()) {
    json::Writer w;
    metrics::write_json(w);
    io::write_file_atomic(json_path, w.str() + "\n");
  }
  return rc;
}

}  // namespace

std::string usage() {
  return
      "usage: dsml [--trace F] [--failpoints SPEC] [--backend B] <command> "
      "[options]\n"
      "\n"
      "commands:\n"
      "  list                              enumerate apps, families, models\n"
      "  sweep   --app A [--full N --interval N --clusters K] [--csv F]\n"
      "  sampled --app A [--rates R1,R2] [--models M1,M2]\n"
      "  chrono  --family F [--target int|fp|app:<i>] [--models M1,M2]\n"
      "  train   --app A --rate R --model M --out F [--seed S]\n"
      "  predict --model F [--top N] [--csv F]   rank the design space, or\n"
      "                                    score CSV rows, via the engine\n"
      "  serve   --models N=F[,N=F...] [--default N] [--batch N] [--queue N]\n"
      "          [--f32]                serve via float32 weight snapshots\n"
      "                                 (<= 1e-5 rel. error; double default)\n"
      "          [--listen P [--bind A] [--max-conns N]]\n"
      "                                    JSON-lines requests on stdin ->\n"
      "                                    predictions on stdout, or over TCP\n"
      "                                    with --listen (see docs/SERVING.md)\n"
      "  worker  --listen P | --listen-fd N  [--bind A] [--models N=F,...]\n"
      "          [--max-conns N] [--idle-timeout-ms N] [--stall-ms N]\n"
      "                                    fleet worker: serve protocol +\n"
      "                                    fleet control (ping, sweep shards,\n"
      "                                    model snapshots) on one port\n"
      "                                    (see docs/FLEET.md)\n"
      "  dse     --app A --sampler random|adaptive [--budget N | \n"
      "          --sample-rate R] [--rounds K] [--objective cycles|pareto]\n"
      "          [--models M1,M2] [--seed S] [--truth] [--workers H:P,...]\n"
      "                                    campaign mode: select/evaluate/\n"
      "                                    retrain/score rounds against a\n"
      "                                    local, cached-truth (--truth), or\n"
      "                                    fleet (--workers) evaluator\n"
      "                                    (see docs/DSE.md)\n"
      "  dse     --app A --workers H:P[,H:P...] [--full N --interval N\n"
      "          --clusters K] [--csv F] [--timeout-ms N] [--retries N]\n"
      "          [--connect-timeout-ms N]\n"
      "                                    shard the full design-space sweep\n"
      "                                    across a worker fleet; fault-\n"
      "                                    tolerant merge (complete table or\n"
      "                                    loud error)\n"
      "  fleet   --app A [--workers N] [--port-base P] [--models N=F,...]\n"
      "          [--max-respawns N] [--csv F]\n"
      "                                    supervise a local worker fleet\n"
      "                                    (crash -> respawn with backoff) and\n"
      "                                    run the sharded sweep against it\n"
      "  loadgen --connect H:P [--connections N] [--requests M] [--rows R]\n"
      "          [--model N] [--json F] [--check F] [--timeout-ms N]\n"
      "                                    drive a --listen server, report\n"
      "                                    latency percentiles + rows/sec\n"
      "  bench   [--json F] [--check F] [--fast 1]   ML perf bench + JSON report\n"
      "  stats   [--json F] [command...]   run command, dump metrics registry\n"
      "  lint    [--list-rules] [--graph dot|json] [--sarif F]\n"
      "          [--update-registries] [--no-cache] [--root D] [path...]\n"
      "                                    run the dsml-lint project analyzer\n"
      "                                    (see docs/STATIC_ANALYSIS.md)\n"
      "\n"
      "global options:\n"
      "  --backend B        pin the linalg kernel backend: naive | blocked |\n"
      "                     simd (default: DSML_BACKEND env, else cpuid;\n"
      "                     all backends are bit-identical for double)\n"
      "  --trace F          collect a Chrome trace (chrome://tracing) into F\n"
      "  --failpoints SPEC  arm fault-injection points, e.g.\n"
      "                     'estimate_error.fold=nth:2,linreg.solve=prob:0.1@7'\n"
      "                     (triggers: nth:N | prob:P@SEED | err:Type;\n"
      "                     see docs/ROBUSTNESS.md)\n";
}

namespace {

int dispatch(const std::vector<std::string>& args, std::istream& in,
             std::ostream& out, std::ostream& err) {
  const std::string& cmd = args[0];
  if (cmd == "lint") {
    // Forwarded verbatim: lint has its own option grammar (bare paths and
    // flag-style options with no values).
    return lint::run({args.begin() + 1, args.end()}, out, err);
  }
  if (cmd == "stats") {
    return cmd_stats({args.begin() + 1, args.end()}, in, out, err);
  }
  const Options opt = parse_options(args, 1);
  if (cmd == "list") return cmd_list(out);
  if (cmd == "sweep") return cmd_sweep(opt, out);
  if (cmd == "sampled") return cmd_sampled(opt, out);
  if (cmd == "chrono") return cmd_chrono(opt, out);
  if (cmd == "train") return cmd_train(opt, out);
  if (cmd == "predict") return cmd_predict(opt, out);
  if (cmd == "serve") return cmd_serve(opt, in, out, err);
  if (cmd == "worker") return cmd_worker(opt, err);
  if (cmd == "dse") return cmd_dse(opt, out);
  if (cmd == "fleet") return cmd_fleet(opt, out, err);
  if (cmd == "loadgen") return cmd_loadgen(opt, out, err);
  if (cmd == "bench") return cmd_bench(opt, out, err);
  err << "unknown command '" << cmd << "'\n" << usage();
  return 1;
}

}  // namespace

int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err) {
  return run(args, std::cin, out, err);
}

int run(const std::vector<std::string>& args, std::istream& in,
        std::ostream& out, std::ostream& err) {
  if (args.empty() || args[0] == "help" || args[0] == "--help") {
    out << usage();
    return args.empty() ? 1 : 0;
  }
  try {
    // `--trace <file>` and `--failpoints <spec>` work on every subcommand
    // (any position): they are extracted here, before dispatch, so command
    // parsers (including lint's pass-through grammar) never see them.
    std::vector<std::string> rest = args;
    std::string trace_path;
    for (std::size_t i = 0; i < rest.size(); ++i) {
      if (rest[i] != "--trace") continue;
      if (i + 1 >= rest.size() || rest[i + 1].rfind("--", 0) == 0) {
        throw InvalidArgument("missing file for --trace");
      }
      trace_path = rest[i + 1];
      rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(i),
                 rest.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      break;
    }
    std::optional<std::string> failpoint_spec;
    for (std::size_t i = 0; i < rest.size(); ++i) {
      if (rest[i] != "--failpoints") continue;
      if (i + 1 >= rest.size() || rest[i + 1].rfind("--", 0) == 0) {
        throw InvalidArgument("missing spec for --failpoints");
      }
      failpoint_spec = rest[i + 1];
      rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(i),
                 rest.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      break;
    }
    std::optional<linalg::Backend> backend_choice;
    for (std::size_t i = 0; i < rest.size(); ++i) {
      if (rest[i] != "--backend") continue;
      if (i + 1 >= rest.size() || rest[i + 1].rfind("--", 0) == 0) {
        throw InvalidArgument("missing name for --backend");
      }
      backend_choice = linalg::parse_backend(rest[i + 1]);
      rest.erase(rest.begin() + static_cast<std::ptrdiff_t>(i),
                 rest.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      break;
    }
    if (rest.empty()) {
      out << usage();
      return 1;
    }
    // RAII so the armed set never leaks past this command (run() is also
    // invoked recursively by `dsml stats`, and repeatedly by tests). The
    // backend override follows the same discipline: scoped to this command,
    // restored on exit.
    std::optional<failpoint::ScopedFailpoints> armed;
    if (failpoint_spec.has_value()) armed.emplace(*failpoint_spec);
    std::optional<linalg::ScopedBackend> backend_override;
    if (backend_choice.has_value()) backend_override.emplace(*backend_choice);
    if (!trace_path.empty()) trace::start(trace_path);
    int rc;
    {
      trace::Span span([&] { return "dsml " + rest[0]; }, "cli");
      rc = dispatch(rest, in, out, err);
    }
    if (!trace_path.empty()) trace::stop();
    return rc;
  } catch (const std::exception& e) {
    err << "error: " << e.what() << "\n";
    return 1;
  }
}

}  // namespace dsml::cli
