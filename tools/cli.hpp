// The `dsml` command-line driver, as a library so it is directly testable.
//
// Subcommands:
//   dsml list                               — apps, families, models
//   dsml sweep   --app mcf [--full N --interval N --clusters K]
//                [--csv out.csv]            — full design-space sweep
//   dsml sampled --app mcf [--rates 0.01,0.03] [--models LR-B,NN-E,NN-S]
//                                           — §4.2 experiment
//   dsml chrono  --family xeon [--target int|fp|app:<i>] [--models ...]
//                                           — §4.3 experiment
//   dsml train   --app mcf --rate 0.02 --model NN-E --out model.dsml
//                                           — fit a surrogate, save it
//   dsml predict --model model.dsml [--top N]
//                                           — rank the design space with a
//                                             saved surrogate
//
// Every command honours the library's environment knobs (DSML_CACHE_DIR).
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace dsml::cli {

/// Runs the CLI. `args` excludes the program name. Output goes to `out`,
/// diagnostics to `err`. Returns a process exit code.
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

/// Usage text.
std::string usage();

}  // namespace dsml::cli
