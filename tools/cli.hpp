// The `dsml` command-line driver, as a library so it is directly testable.
//
// Subcommands:
//   dsml list                               — apps, families, models
//   dsml sweep   --app mcf [--full N --interval N --clusters K]
//                [--csv out.csv]            — full design-space sweep
//   dsml sampled --app mcf [--rates 0.01,0.03] [--models LR-B,NN-E,NN-S]
//                                           — §4.2 experiment
//   dsml chrono  --family xeon [--target int|fp|app:<i>] [--models ...]
//                                           — §4.3 experiment
//   dsml train   --app mcf --rate 0.02 --model NN-E --out model.dsml
//                                           — fit a surrogate, save it
//   dsml predict --model model.dsml [--top N] [--csv configs.csv]
//                                           — rank the design space (or
//                                             score CSV rows) with a saved
//                                             surrogate, via the engine
//   dsml serve   --models name=path[,...]   — JSON-lines request loop on
//                                             stdin/stdout (docs/SERVING.md)
//
// Every command honours the library's environment knobs (DSML_CACHE_DIR).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace dsml::cli {

/// Runs the CLI. `args` excludes the program name. Output goes to `out`,
/// diagnostics to `err`; request input (`dsml serve`) is read from
/// std::cin. Returns a process exit code.
int run(const std::vector<std::string>& args, std::ostream& out,
        std::ostream& err);

/// As above with an explicit input stream, so tests can feed `dsml serve`
/// request lines without touching the process's stdin.
int run(const std::vector<std::string>& args, std::istream& in,
        std::ostream& out, std::ostream& err);

/// Usage text.
std::string usage();

}  // namespace dsml::cli
