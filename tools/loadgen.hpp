// The `dsml loadgen` serving-load driver: opens N concurrent TCP
// connections against a `dsml serve --listen` front-end, sends M
// JSON-lines prediction requests per connection (rows drawn
// deterministically from the enumerated design space), verifies every
// response, and reports latency percentiles and throughput. With --json it
// emits a machine-readable BENCH_SERVE.json; with --check it gates the
// deterministic fields (config and ok/error counts) against a committed
// baseline — timing fields are informational only, because CI wall-clock
// noise would make a latency gate flap.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace dsml::loadgen {

struct Options {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  /// Concurrent connections, each driven by its own thread.
  std::size_t connections = 8;
  /// Requests sent per connection (sequential call-and-response).
  std::size_t requests = 32;
  /// Design-space rows per request.
  std::size_t rows = 4;

  /// "model" field for every request; "" relies on the server default.
  std::string model;

  /// Connect/read/write deadline per socket operation in milliseconds;
  /// 0 blocks forever (historical behaviour). With a deadline, a wedged or
  /// mid-response-dead server surfaces as a counted request error instead
  /// of hanging the run.
  std::uint32_t timeout_ms = 0;

  /// Write the JSON report here ("" = text summary only).
  std::string json_path;
  /// Compare deterministic fields against this committed baseline.
  std::string check_path;
};

/// Runs the load, prints a summary to `out`. Returns 0 when every response
/// was ok and the --check gate (if any) passed; 1 otherwise.
int run(const Options& options, std::ostream& out, std::ostream& err);

}  // namespace dsml::loadgen
