// Net-layer tests: the poll(2) server event loop (framing, CRLF tolerance,
// concurrent connections, admission control with and without shedding,
// overlong-line rejection, async stop) and the net.* failpoints — a dropped
// accept/read/write must kill only its own connection while the loop keeps
// serving. Runs under the tsan label (server thread + many client threads)
// and the fault label (failpoint arming).
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"

namespace dsml::net {
namespace {

/// A deterministic toy protocol: "<line>!" per request. Returning "" for
/// blank lines mirrors the engine handler's skip contract.
std::string echo_handler(std::string_view line) {
  if (line.empty()) return "";
  return std::string(line) + "!\n";
}

/// Runs `server` on a background thread for the duration of a test.
class ServerRunner {
 public:
  explicit ServerRunner(Server& server)
      : server_(server), thread_([this] { server_.run(); }) {}
  ~ServerRunner() {
    server_.request_stop();
    thread_.join();
  }

 private:
  Server& server_;
  std::thread thread_;
};

ServerOptions loopback(std::size_t max_connections = 64) {
  ServerOptions options;
  options.bind_address = "127.0.0.1";
  options.port = 0;  // ephemeral
  options.max_connections = max_connections;
  return options;
}

TEST(NetServer, BindsEphemeralPortAndStops) {
  Server server(loopback(), echo_handler);
  EXPECT_GT(server.port(), 0);
  ServerRunner runner(server);
  // Destructor stops a server that never saw a connection.
}

TEST(NetServer, RoundTripsRequestsOnOneConnection) {
  Server server(loopback(), echo_handler);
  ServerRunner runner(server);
  LineClient client("127.0.0.1", server.port());
  EXPECT_EQ(client.request("hello"), "hello!");
  EXPECT_EQ(client.request("again"), "again!");
  client.shutdown_write();
  server.request_stop();
  const ServerSummary summary = server.summary();
  EXPECT_EQ(summary.accepted, 1u);
  EXPECT_EQ(summary.requests, 2u);
  EXPECT_EQ(summary.shed, 0u);
}

TEST(NetServer, StripsCrlfAndSkipsBlankLines) {
  Server server(loopback(), echo_handler);
  ServerRunner runner(server);
  LineClient client("127.0.0.1", server.port());
  // A CRLF-terminated request and an interleaved blank line: the blank
  // line produces no response, the \r never reaches the handler.
  client.send_line("crlf\r");
  client.send_line("");
  client.send_line("after");
  EXPECT_EQ(client.recv_line(), "crlf!");
  EXPECT_EQ(client.recv_line(), "after!");
}

TEST(NetServer, PipelinedRequestsAnswerInOrder) {
  Server server(loopback(), echo_handler);
  ServerRunner runner(server);
  LineClient client("127.0.0.1", server.port());
  for (int i = 0; i < 8; ++i) client.send_line("r" + std::to_string(i));
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(client.recv_line(), "r" + std::to_string(i) + "!");
  }
}

TEST(NetServer, ServesManyConcurrentConnections) {
  Server server(loopback(/*max_connections=*/64), echo_handler);
  ServerRunner runner(server);
  constexpr int kClients = 32;
  constexpr int kRequests = 16;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      try {
        LineClient client("127.0.0.1", server.port());
        for (int r = 0; r < kRequests; ++r) {
          std::string msg = "c";
          msg += std::to_string(c);
          msg += '-';
          msg += std::to_string(r);
          if (client.request(msg) != msg + "!") failures.fetch_add(1);
        }
      } catch (const std::exception&) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  server.request_stop();
  const ServerSummary summary = server.summary();
  EXPECT_EQ(summary.accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(summary.requests,
            static_cast<std::uint64_t>(kClients) * kRequests);
}

TEST(NetServer, ShedsConnectionsAtCapacityWithErrorLine) {
  ServerOptions options = loopback(/*max_connections=*/1);
  options.shed_when_full = true;
  Server server(options, echo_handler);
  ServerRunner runner(server);
  LineClient first("127.0.0.1", server.port());
  EXPECT_EQ(first.request("keep"), "keep!");  // definitely admitted
  LineClient second("127.0.0.1", server.port());
  const std::string refusal = second.recv_line();
  EXPECT_NE(refusal.find("\"ok\":false"), std::string::npos) << refusal;
  EXPECT_NE(refusal.find("connection capacity"), std::string::npos)
      << refusal;
  EXPECT_NE(refusal.find("StateError"), std::string::npos) << refusal;
  // The admitted connection is unaffected by the shed.
  EXPECT_EQ(first.request("still"), "still!");
  server.request_stop();
  EXPECT_EQ(server.summary().shed, 1u);
}

TEST(NetServer, QueuesConnectionsAtCapacityWithoutShedding) {
  ServerOptions options = loopback(/*max_connections=*/1);
  options.shed_when_full = false;
  Server server(options, echo_handler);
  ServerRunner runner(server);
  auto first = std::make_unique<LineClient>("127.0.0.1", server.port());
  EXPECT_EQ(first->request("one"), "one!");
  // The second client sits in the kernel backlog until the slot frees: its
  // request is buffered, not answered, and never refused.
  LineClient second("127.0.0.1", server.port());
  second.send_line("two");
  first.reset();  // EOF on the admitted connection frees the slot
  EXPECT_EQ(second.recv_line(), "two!");
  server.request_stop();
  EXPECT_EQ(server.summary().shed, 0u);
  EXPECT_EQ(server.summary().accepted, 2u);
}

TEST(NetServer, RejectsOverlongRequestLinesAndCloses) {
  ServerOptions options = loopback();
  options.max_request_bytes = 64;
  Server server(options, echo_handler);
  ServerRunner runner(server);
  LineClient client("127.0.0.1", server.port());
  client.send_line(std::string(200, 'x'));
  const std::string response = client.recv_line();
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << response;
  EXPECT_NE(response.find("exceeds"), std::string::npos) << response;
  EXPECT_NE(response.find("InvalidArgument"), std::string::npos) << response;
  // The connection is closed after the error line: framing after an
  // oversized line is untrustworthy.
  EXPECT_THROW(client.recv_line(), IoError);
  server.request_stop();
  EXPECT_EQ(server.summary().overlong, 1u);
}

TEST(NetServer, HandlerExceptionBecomesErrorLineAndLoopSurvives) {
  Server server(loopback(), [](std::string_view line) -> std::string {
    if (line == "boom") throw StateError("handler exploded");
    return echo_handler(line);
  });
  ServerRunner runner(server);
  LineClient client("127.0.0.1", server.port());
  const std::string response = client.request("boom");
  EXPECT_NE(response.find("\"ok\":false"), std::string::npos) << response;
  EXPECT_NE(response.find("handler exploded"), std::string::npos) << response;
  EXPECT_EQ(client.request("fine"), "fine!");
}

TEST(NetServer, StopUnblocksARunningServerFromAnotherThread) {
  Server server(loopback(), echo_handler);
  std::thread runner([&] { server.run(); });
  LineClient client("127.0.0.1", server.port());
  EXPECT_EQ(client.request("live"), "live!");
  server.request_stop();
  runner.join();  // run() must return promptly even with a live connection
  EXPECT_GE(server.summary().closed, 1u);
}

TEST(NetServer, IdleTimeoutClosesOnlyIdleConnections) {
  ServerOptions options = loopback();
  options.idle_timeout_ms = 150;
  Server server(options, echo_handler);
  ServerRunner runner(server);
  LineClient idle("127.0.0.1", server.port());
  EXPECT_EQ(idle.request("warm"), "warm!");  // definitely admitted
  // Keep a second connection active across the idle deadline: activity
  // resets its clock, so only the silent one is reaped.
  LineClient active("127.0.0.1", server.port());
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(active.request("tick"), "tick!");
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
  }
  EXPECT_THROW(idle.recv_line(), IoError);  // idle peer was closed
  EXPECT_EQ(active.request("still"), "still!");
  server.request_stop();
  EXPECT_EQ(server.summary().idle_closed, 1u);
}

TEST(NetClient, ReadDeadlineSurfacesAsIoErrorNotAHang) {
  // A server that never answers: the blank-line contract returns no bytes.
  Server server(loopback(), [](std::string_view) { return std::string(); });
  ServerRunner runner(server);
  LineClient client("127.0.0.1", server.port(), ClientOptions{0, 200});
  client.send_line("anyone home?");
  try {
    client.recv_line();
    FAIL() << "expected a deadline IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos)
        << e.what();
  }
}

TEST(NetClient, ConnectDeadlineStillConnectsToALiveServer) {
  Server server(loopback(), echo_handler);
  ServerRunner runner(server);
  LineClient client("127.0.0.1", server.port(), ClientOptions{1000, 1000});
  EXPECT_EQ(client.request("deadline"), "deadline!");
}

TEST(NetClient, ConnectFailsLoudlyWhenNobodyAccepts) {
  // A listener that never accepts, with a minimal backlog: once the kernel
  // queue is full, further connects either time out (SYNs dropped) or are
  // refused — both must surface as IoError, never an indefinite hang.
  Fd listener = listen_tcp("127.0.0.1", 0, /*backlog=*/1);
  const std::uint16_t port = local_port(listener);
  std::vector<std::unique_ptr<LineClient>> fillers;
  bool threw = false;
  for (int i = 0; i < 8 && !threw; ++i) {
    try {
      fillers.push_back(std::make_unique<LineClient>(
          "127.0.0.1", port, ClientOptions{250, 250}));
    } catch (const IoError&) {
      threw = true;
    }
  }
  EXPECT_TRUE(threw);
}

TEST(NetClient, ServerDeathMidResponseIsAFramingError) {
  // A raw peer that answers half a line and drops dead: the client must
  // report the truncated frame, not return partial bytes.
  Fd listener = listen_tcp("127.0.0.1", 0, /*backlog=*/4);
  const std::uint16_t port = local_port(listener);
  std::thread peer([&] {
    Fd conn(::accept(listener.get(), nullptr, nullptr));
    ASSERT_GE(conn.get(), 0);
    char buf[256];
    (void)::recv(conn.get(), buf, sizeof(buf), 0);
    const char partial[] = "{\"ok\":tru";  // no terminating newline
    (void)::send(conn.get(), partial, sizeof(partial) - 1, 0);
    // conn closes here: mid-response death.
  });
  LineClient client("127.0.0.1", port);
  client.send_line("hello?");
  try {
    client.recv_line();
    FAIL() << "expected a truncated-frame IoError";
  } catch (const IoError& e) {
    EXPECT_NE(std::string(e.what()).find("before a full response"),
              std::string::npos)
        << e.what();
  }
  peer.join();
}

// ------------------------------------------------------------ failpoints --

TEST(NetFailpoints, InjectedAcceptFailureDropsOnlyThatConnection) {
  failpoint::ScopedFailpoints armed("net.accept=nth:1");
  Server server(loopback(), echo_handler);
  ServerRunner runner(server);
  LineClient dropped("127.0.0.1", server.port());
  dropped.send_line("never answered");
  EXPECT_THROW(dropped.recv_line(), IoError);  // dropped before admission
  LineClient served("127.0.0.1", server.port());
  EXPECT_EQ(served.request("ok"), "ok!");
  server.request_stop();
  const ServerSummary summary = server.summary();
  EXPECT_EQ(summary.accept_errors, 1u);
  EXPECT_EQ(summary.accepted, 1u);
}

TEST(NetFailpoints, InjectedReadFailureClosesConnectionLoopSurvives) {
  failpoint::ScopedFailpoints armed("net.read=nth:1");
  Server server(loopback(), echo_handler);
  ServerRunner runner(server);
  LineClient doomed("127.0.0.1", server.port());
  doomed.send_line("lost");
  EXPECT_THROW(doomed.recv_line(), IoError);
  LineClient served("127.0.0.1", server.port());
  EXPECT_EQ(served.request("ok"), "ok!");
  server.request_stop();
  EXPECT_EQ(server.summary().read_errors, 1u);
}

TEST(NetFailpoints, InjectedWriteFailureClosesConnectionLoopSurvives) {
  failpoint::ScopedFailpoints armed("net.write=nth:1");
  Server server(loopback(), echo_handler);
  ServerRunner runner(server);
  LineClient doomed("127.0.0.1", server.port());
  doomed.send_line("lost");
  EXPECT_THROW(doomed.recv_line(), IoError);
  LineClient served("127.0.0.1", server.port());
  EXPECT_EQ(served.request("ok"), "ok!");
  server.request_stop();
  EXPECT_EQ(server.summary().write_errors, 1u);
}

}  // namespace
}  // namespace dsml::net
