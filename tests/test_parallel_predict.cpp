// Thread-safety regression tests for Mlp prediction (run under the tsan
// label / ThreadSanitizer preset).
//
// Mlp::predict used to lean on a shared mutable scratch_activations_ member,
// so two threads predicting through the same trained network raced on the
// activation buffers and silently corrupted each other's outputs. Prediction
// scratch now lives in per-thread workspaces (linalg::tls_workspace), and
// these tests pin that down: concurrent batched and per-row predictions on
// one shared model must be race-free AND return exactly the serial answers.
#include <gtest/gtest.h>

#include <cstddef>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"
#include "ml/mlp.hpp"

namespace dsml::ml {
namespace {

linalg::Matrix random_inputs(std::size_t rows, std::size_t cols,
                             std::uint64_t seed) {
  Rng rng(seed);
  linalg::Matrix x(rows, cols);
  for (double& v : x.data()) v = rng.uniform(-1.0, 1.0);
  return x;
}

Mlp trained_network(std::size_t n_inputs, Rng& rng) {
  Mlp net(n_inputs, {8, 4}, rng);
  const linalg::Matrix x = random_inputs(64, n_inputs, 99);
  std::vector<double> y(x.rows());
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = 0.1 * static_cast<double>(i % 7);
  }
  for (int epoch = 0; epoch < 5; ++epoch) {
    net.train_epoch(x, y, 0.05, 0.5, rng);
  }
  return net;
}

TEST(ParallelPredict, BatchedMatchesPerRowBitForBit) {
  Rng rng(7);
  const Mlp net = trained_network(12, rng);
  const linalg::Matrix x = random_inputs(777, 12, 123);
  const std::vector<double> batched = net.predict(x);
  ASSERT_EQ(batched.size(), x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    ASSERT_EQ(batched[r], net.predict(x.row(r))) << "row " << r;
  }
}

TEST(ParallelPredict, BatchedMatchesPerRowWithDisabledInputs) {
  Rng rng(8);
  Mlp net = trained_network(12, rng);
  net.disable_input(3);
  net.disable_input(10);
  const linalg::Matrix x = random_inputs(300, 12, 124);
  const std::vector<double> batched = net.predict(x);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    ASSERT_EQ(batched[r], net.predict(x.row(r))) << "row " << r;
  }
}

TEST(ParallelPredict, ConcurrentPredictionsOnSharedModelAreDeterministic) {
  Rng rng(9);
  const Mlp net = trained_network(10, rng);
  const linalg::Matrix x = random_inputs(512, 10, 125);

  // Serial ground truth, computed before any concurrency starts.
  const std::vector<double> expected = net.predict(x);

  constexpr std::size_t kThreads = 4;
  constexpr int kRounds = 8;
  std::vector<std::vector<double>> results(kThreads);
  // Not vector<bool>: its bit-packing would make concurrent per-thread
  // element writes a data race in the test harness itself.
  std::vector<char> rows_ok(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Batched predictions (which themselves fan out over the pool) and
      // per-row predictions interleave across threads on the same model.
      for (int round = 0; round + 1 < kRounds; ++round) {
        results[t] = net.predict(x);
      }
      results[t] = net.predict(x);
      bool ok = true;
      for (std::size_t r = t; r < x.rows(); r += kThreads) {
        ok = ok && (net.predict(x.row(r)) == expected[r]);
      }
      rows_ok[t] = ok;
    });
  }
  for (auto& th : threads) th.join();

  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(rows_ok[t]) << "thread " << t;
    ASSERT_EQ(results[t].size(), expected.size());
    for (std::size_t r = 0; r < expected.size(); ++r) {
      ASSERT_EQ(results[t][r], expected[r])
          << "thread " << t << " row " << r;
    }
  }
}

TEST(ParallelPredict, ConcurrentMseMatchesSerial) {
  Rng rng(10);
  const Mlp net = trained_network(6, rng);
  const linalg::Matrix x = random_inputs(256, 6, 126);
  std::vector<double> y(x.rows());
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = 0.01 * static_cast<double>(i);
  }
  const double expected = net.mse(x, y);

  constexpr std::size_t kThreads = 3;
  std::vector<double> got(kThreads, 0.0);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] { got[t] = net.mse(x, y); });
  }
  for (auto& th : threads) th.join();
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(got[t], expected) << "thread " << t;
  }
}

}  // namespace
}  // namespace dsml::ml
