#include "workload/generator.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/error.hpp"
#include "workload/profiles.hpp"

namespace dsml::workload {
namespace {

TEST(Profiles, FiveApplications) {
  const auto profiles = spec_profiles();
  ASSERT_EQ(profiles.size(), 5u);
  const auto names = spec_profile_names();
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(profiles[i].name, names[i]);
  }
}

TEST(Profiles, LookupByName) {
  EXPECT_EQ(spec_profile("mcf").name, "mcf");
  EXPECT_THROW(spec_profile("doom"), InvalidArgument);
}

TEST(Profiles, MixesSumToOne) {
  for (const auto& profile : spec_profiles()) {
    for (const auto& phase : profile.phases) {
      EXPECT_NEAR(phase.mix.sum(), 1.0, 1e-9) << profile.name;
    }
  }
}

TEST(Profiles, LevelFractionsRoughlyNormalized) {
  for (const auto& profile : spec_profiles()) {
    for (const auto& phase : profile.phases) {
      double total = 0.0;
      for (const auto& level : phase.mem.levels) total += level.fraction;
      EXPECT_NEAR(total, 1.0, 0.05) << profile.name;
    }
  }
}

TEST(Generator, ProducesRequestedLength) {
  const auto trace = generate_trace(spec_profile("applu"), 12345);
  EXPECT_EQ(trace.size(), 12345u);
}

TEST(Generator, DeterministicBySeed) {
  const auto profile = spec_profile("gcc");
  const auto a = generate_trace(profile, 5000, 7);
  const auto b = generate_trace(profile, 5000, 7);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.instrs[i].pc, b.instrs[i].pc);
    EXPECT_EQ(a.instrs[i].op, b.instrs[i].op);
    EXPECT_EQ(a.instrs[i].mem_addr, b.instrs[i].mem_addr);
  }
}

TEST(Generator, SeedChangesTrace) {
  const auto profile = spec_profile("gcc");
  const auto a = generate_trace(profile, 5000, 7);
  const auto b = generate_trace(profile, 5000, 8);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    differs |= a.instrs[i].pc != b.instrs[i].pc;
  }
  EXPECT_TRUE(differs);
}

TEST(Generator, InstructionMixTracksProfile) {
  const auto profile = spec_profile("applu");
  const auto trace = generate_trace(profile, 60000);
  std::map<sim::OpClass, double> counts;
  for (const auto& ins : trace.instrs) counts[ins.op] += 1.0;
  const double n = static_cast<double>(trace.size());
  // applu is FP-heavy; integer multiplies rare; loads ~20%.
  EXPECT_GT((counts[sim::OpClass::kFpAlu] + counts[sim::OpClass::kFpMult]) / n,
            0.30);
  EXPECT_LT(counts[sim::OpClass::kIntMult] / n, 0.05);
  EXPECT_NEAR(counts[sim::OpClass::kLoad] / n, 0.20, 0.07);
  EXPECT_GT(counts[sim::OpClass::kBranch] / n, 0.02);
}

TEST(Generator, IntegerAppHasNoFp) {
  const auto trace = generate_trace(spec_profile("mcf"), 30000);
  for (const auto& ins : trace.instrs) {
    EXPECT_NE(ins.op, sim::OpClass::kFpAlu);
    EXPECT_NE(ins.op, sim::OpClass::kFpMult);
  }
}

TEST(Generator, BranchesCarryOutcomeAndTarget) {
  const auto trace = generate_trace(spec_profile("gcc"), 20000);
  std::size_t branches = 0;
  std::size_t taken = 0;
  for (const auto& ins : trace.instrs) {
    if (ins.op != sim::OpClass::kBranch) continue;
    ++branches;
    if (ins.taken) ++taken;
    EXPECT_NE(ins.target, 0u);
  }
  EXPECT_GT(branches, 1000u);
  // Loop back-edges make taken branches the majority.
  EXPECT_GT(static_cast<double>(taken) / static_cast<double>(branches), 0.4);
}

TEST(Generator, MemoryOpsHaveAddressesOthersDoNot) {
  const auto trace = generate_trace(spec_profile("mesa"), 20000);
  for (const auto& ins : trace.instrs) {
    const bool is_mem =
        ins.op == sim::OpClass::kLoad || ins.op == sim::OpClass::kStore;
    if (is_mem) {
      EXPECT_GE(ins.mem_addr, 0x10000000ULL);
    } else {
      EXPECT_EQ(ins.mem_addr, 0u);
    }
  }
}

TEST(Generator, PcsWithinCodeRegion) {
  const auto profile = spec_profile("gcc");
  const auto trace = generate_trace(profile, 20000);
  for (const auto& ins : trace.instrs) {
    EXPECT_GE(ins.pc, 0x00400000ULL);
    EXPECT_LT(ins.pc, 0x00400000ULL + 2 * profile.code_bytes);
  }
}

TEST(Generator, DependencyDistancesBounded) {
  const auto trace = generate_trace(spec_profile("mcf"), 20000);
  for (const auto& ins : trace.instrs) {
    EXPECT_LE(ins.dep1, 255u);
    EXPECT_LE(ins.dep2, 255u);
  }
}

TEST(Generator, PointerChaserHasChainedLoads) {
  const auto trace = generate_trace(spec_profile("mcf"), 40000);
  // Count loads whose dep1 points exactly at an earlier load (the chain).
  std::size_t chained = 0;
  std::size_t loads = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& ins = trace.instrs[i];
    if (ins.op != sim::OpClass::kLoad) continue;
    ++loads;
    if (ins.dep1 > 0 && ins.dep1 <= i &&
        trace.instrs[i - ins.dep1].op == sim::OpClass::kLoad) {
      ++chained;
    }
  }
  EXPECT_GT(static_cast<double>(chained) / static_cast<double>(loads), 0.2);
}

TEST(Generator, CodeFootprintOrdering) {
  // gcc touches far more distinct code lines than applu (the I$ pressure
  // that distinguishes them in the paper).
  auto distinct_lines = [](const sim::Trace& trace) {
    std::set<std::uint64_t> lines;
    for (const auto& ins : trace.instrs) lines.insert(ins.pc / 32);
    return lines.size();
  };
  const auto gcc = generate_trace(spec_profile("gcc"), 50000);
  const auto applu = generate_trace(spec_profile("applu"), 50000);
  EXPECT_GT(distinct_lines(gcc), distinct_lines(applu) * 5);
}

TEST(Generator, MemoryFootprintOrdering) {
  auto distinct_data_lines = [](const sim::Trace& trace) {
    std::set<std::uint64_t> lines;
    for (const auto& ins : trace.instrs) {
      if (ins.mem_addr != 0) lines.insert(ins.mem_addr / 64);
    }
    return lines.size();
  };
  const auto mcf = generate_trace(spec_profile("mcf"), 50000);
  const auto applu = generate_trace(spec_profile("applu"), 50000);
  EXPECT_GT(distinct_data_lines(mcf), distinct_data_lines(applu));
}

TEST(Generator, ZeroLengthThrows) {
  EXPECT_THROW(generate_trace(spec_profile("applu"), 0), InvalidArgument);
}

TEST(TraceOpNames, ToString) {
  EXPECT_STREQ(sim::to_string(sim::OpClass::kLoad), "load");
  EXPECT_STREQ(sim::to_string(sim::OpClass::kBranch), "branch");
}

}  // namespace
}  // namespace dsml::workload
