#include "ml/model_zoo.hpp"

#include <gtest/gtest.h>

namespace dsml::ml {
namespace {

TEST(ModelZoo, AllNamesConstruct) {
  for (const std::string& name : all_model_names()) {
    const NamedModel nm = make_model(name);
    EXPECT_EQ(nm.name, name);
    auto model = nm.make();
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->name(), name);
    EXPECT_FALSE(model->fitted());
  }
}

TEST(ModelZoo, UnknownNameThrows) {
  EXPECT_THROW(make_model("LR-X"), InvalidArgument);
  EXPECT_THROW(make_model(""), InvalidArgument);
}

TEST(ModelZoo, FactoriesProduceFreshInstances) {
  const NamedModel nm = make_model("LR-B");
  auto a = nm.make();
  auto b = nm.make();
  EXPECT_NE(a.get(), b.get());
}

TEST(ModelZoo, ChronologicalMenuMatchesFigureOrder) {
  const auto menu = chronological_menu();
  ASSERT_EQ(menu.size(), 9u);
  const std::vector<std::string> expected = {
      "LR-E", "LR-S", "LR-B", "LR-F", "NN-Q", "NN-D", "NN-M", "NN-P", "NN-E"};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(menu[i].name, expected[i]);
  }
}

TEST(ModelZoo, SampledMenuMatchesFigures) {
  const auto menu = sampled_dse_menu();
  ASSERT_EQ(menu.size(), 3u);
  EXPECT_EQ(menu[0].name, "LR-B");
  EXPECT_EQ(menu[1].name, "NN-E");
  EXPECT_EQ(menu[2].name, "NN-S");
}

TEST(ModelZoo, ZooOptionsPropagateToNn) {
  ZooOptions zoo;
  zoo.nn_seed = 123;
  zoo.nn_epoch_scale = 0.5;
  const NamedModel nm = make_model("NN-S", zoo);
  auto model = nm.make();
  const auto& nn = dynamic_cast<const NeuralRegressor&>(*model);
  EXPECT_EQ(nn.options().seed, 123u);
  EXPECT_DOUBLE_EQ(nn.options().epoch_scale, 0.5);
}

TEST(ModelZoo, TenModelsTotal) {
  EXPECT_EQ(all_model_names().size(), 10u);
}

}  // namespace
}  // namespace dsml::ml
