#include "common/trace.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/metrics.hpp"
#include "common/rng.hpp"
#include "data/dataset.hpp"
#include "ml/linreg.hpp"
#include "ml/validation.hpp"

namespace dsml {
namespace {

/// Events with the given name from a parsed Chrome trace document.
std::vector<const json::Value*> events_named(const json::Value& doc,
                                             const std::string& name) {
  std::vector<const json::Value*> out;
  for (const json::Value& e : doc.at("traceEvents").items()) {
    if (e.at("name").as_string() == name) out.push_back(&e);
  }
  return out;
}

data::Dataset make_linear_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x1(n);
  std::vector<double> x2(n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x1[i] = rng.uniform(0.0, 10.0);
    x2[i] = rng.uniform(0.0, 10.0);
    y[i] = 50.0 + 3.0 * x1[i] + 1.0 * x2[i] + rng.gaussian(0.0, 0.5);
  }
  data::Dataset ds;
  ds.add_feature(data::Column::numeric("x1", std::move(x1)));
  ds.add_feature(data::Column::numeric("x2", std::move(x2)));
  ds.set_target("y", std::move(y));
  return ds;
}

ml::ModelFactory lr_factory() {
  return []() -> std::unique_ptr<ml::Regressor> {
    return std::make_unique<ml::LinearRegression>();
  };
}

// --- Disabled path ----------------------------------------------------------

TEST(TraceDisabled, SpansAndCountersAreNoOps) {
  ASSERT_FALSE(trace::enabled());
  {
    trace::Span span("never recorded");
    trace::Span lazy([]() -> std::string {
      ADD_FAILURE() << "lazy name built while tracing disabled";
      return "";
    });
    trace::counter("never", 1.0);
  }
  EXPECT_EQ(trace::stop(), "");  // nothing was started
  EXPECT_EQ(trace::internal::current_depth(), 0u);
}

// --- Span collection --------------------------------------------------------

TEST(TraceSpans, RecordsNestingDepthAndChromeFields) {
  trace::start("");
  {
    trace::Span outer("outer", "test");
    {
      trace::Span inner("inner", "test");
      trace::Span lazy([] { return std::string("lazy-name"); }, "test");
    }
  }
  const std::string text = trace::stop();
  EXPECT_FALSE(trace::enabled());

  // The document is valid JSON by our own parser and uses the Chrome
  // trace-event object format.
  const json::Value doc = json::Value::parse(text);
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");

  const auto outer = events_named(doc, "outer");
  const auto inner = events_named(doc, "inner");
  const auto lazy = events_named(doc, "lazy-name");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  ASSERT_EQ(lazy.size(), 1u);
  EXPECT_EQ(outer[0]->at("ph").as_string(), "X");
  EXPECT_EQ(outer[0]->at("cat").as_string(), "test");
  EXPECT_EQ(outer[0]->at("pid").as_number(), 1.0);
  EXPECT_EQ(outer[0]->at("args").at("depth").as_number(), 0.0);
  EXPECT_EQ(inner[0]->at("args").at("depth").as_number(), 1.0);
  EXPECT_EQ(lazy[0]->at("args").at("depth").as_number(), 2.0);
  EXPECT_GE(outer[0]->at("dur").as_number(),
            inner[0]->at("dur").as_number());
}

TEST(TraceSpans, CounterEventsCarryValues) {
  trace::start("");
  trace::counter("test.loss", 0.25);
  trace::counter("test.loss", 0.125);
  const json::Value doc = json::Value::parse(trace::stop());
  const auto samples = events_named(doc, "test.loss");
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0]->at("ph").as_string(), "C");
  EXPECT_EQ(samples[0]->at("args").at("value").as_number(), 0.25);
  EXPECT_EQ(samples[1]->at("args").at("value").as_number(), 0.125);
}

TEST(TraceSpans, StartDiscardsPreviousEvents) {
  trace::start("");
  { trace::Span span("stale"); }
  trace::start("");
  { trace::Span span("fresh"); }
  const json::Value doc = json::Value::parse(trace::stop());
  EXPECT_TRUE(events_named(doc, "stale").empty());
  EXPECT_EQ(events_named(doc, "fresh").size(), 1u);
}

TEST(TraceFile, StopWritesTheConfiguredPath) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "dsml_trace_test";
  std::filesystem::remove_all(dir);
  const std::string path = (dir / "nested" / "trace.json").string();
  trace::start(path);
  { trace::Span span("file-span"); }
  const std::string text = trace::stop();
  ASSERT_TRUE(std::filesystem::exists(path));
  const json::Value doc = json::Value::parse_file(path);
  EXPECT_EQ(events_named(doc, "file-span").size(), 1u);
  EXPECT_EQ(json::Value::parse(text).at("traceEvents").items().size(),
            doc.at("traceEvents").items().size());
  std::filesystem::remove_all(dir);
}

// --- Metrics registry -------------------------------------------------------

TEST(Metrics, CounterGaugeHistogramBasics) {
  metrics::Counter& c = metrics::counter("test.counter");
  c.reset();
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  // Same name → same instrument.
  EXPECT_EQ(&metrics::counter("test.counter"), &c);

  metrics::Gauge& g = metrics::gauge("test.gauge");
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  g.set_max(1.0);  // lower: ignored
  EXPECT_EQ(g.value(), 2.5);
  g.set_max(7.0);  // higher: taken
  EXPECT_EQ(g.value(), 7.0);

  metrics::Histogram& h = metrics::histogram("test.hist");
  h.reset();
  h.observe(3.0);
  h.observe(5.0);
  h.observe(1000.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 336.0);
  EXPECT_GE(h.quantile_upper_bound(0.5), 4.0);
  EXPECT_GE(h.quantile_upper_bound(1.0), 1000.0);
}

TEST(Metrics, SnapshotAndJsonDumpParse) {
  metrics::counter("test.snap_counter").add(3);
  metrics::gauge("test.snap_gauge").set(1.5);
  metrics::histogram("test.snap_hist").observe(8.0);

  const metrics::Snapshot snap = metrics::snapshot();
  EXPECT_FALSE(snap.empty());

  json::Writer w;
  metrics::write_json(w);
  const json::Value doc = json::Value::parse(w.str());
  EXPECT_GE(doc.at("counters").at("test.snap_counter").as_number(), 3.0);
  EXPECT_EQ(doc.at("gauges").at("test.snap_gauge").as_number(), 1.5);
  EXPECT_GE(doc.at("histograms").at("test.snap_hist").at("count").as_number(),
            1.0);
}

// --- Concurrency and bit-identity (TSan suite) ------------------------------

// Traces cross-validation folds running on the thread pool: fold spans open
// and close on arbitrary worker threads while the collector is live.
TEST(TraceConcurrent, ParallelFoldsAllRecorded) {
  const data::Dataset ds = make_linear_data(64, 11);
  ml::ValidationOptions opt;
  opt.repeats = 8;
  trace::start("");
  const ml::ErrorEstimate est = ml::estimate_error(lr_factory(), ds, opt);
  const json::Value doc = json::Value::parse(trace::stop());
  ASSERT_EQ(est.folds.size(), 8u);
  for (std::size_t rep = 0; rep < 8; ++rep) {
    EXPECT_EQ(events_named(doc, "fold " + std::to_string(rep)).size(), 1u)
        << "missing span for fold " << rep;
  }
  EXPECT_EQ(events_named(doc, "ml::estimate_error").size(), 1u);
}

// The observability layer only observes: fold errors are bit-identical with
// tracing on and off.
TEST(TraceConcurrent, TracingDoesNotPerturbResults) {
  const data::Dataset ds = make_linear_data(64, 12);
  ml::ValidationOptions opt;
  opt.repeats = 6;
  opt.seed = 99;
  const ml::ErrorEstimate off = ml::estimate_error(lr_factory(), ds, opt);
  trace::start("");
  const ml::ErrorEstimate on = ml::estimate_error(lr_factory(), ds, opt);
  trace::stop();
  EXPECT_EQ(off.folds, on.folds);
  EXPECT_EQ(off.average, on.average);
  EXPECT_EQ(off.maximum, on.maximum);
}

}  // namespace
}  // namespace dsml
