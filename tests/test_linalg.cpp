#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/decompose.hpp"
#include "linalg/matrix.hpp"

namespace dsml::linalg {
namespace {

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
  m(0, 1) = -2.0;
  EXPECT_DOUBLE_EQ(m(0, 1), -2.0);
}

TEST(Matrix, InitializerList) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), InvalidArgument);
}

TEST(Matrix, CheckedAccessThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), InvalidArgument);
  EXPECT_THROW(m.at(0, 2), InvalidArgument);
}

TEST(Matrix, Identity) {
  const Matrix id = Matrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, Transpose) {
  Matrix m = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Matrix, MultiplyKnownProduct) {
  Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  Matrix b = {{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a.multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyDimensionMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW(a.multiply(b), InvalidArgument);
}

TEST(Matrix, MultiplyIdentityIsNoop) {
  Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const Matrix c = a.multiply(Matrix::identity(2));
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(a, c), 0.0);
}

TEST(Matrix, MatrixVectorProduct) {
  Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const Vector v = {1.0, -1.0};
  const Vector out = a.multiply(v);
  EXPECT_DOUBLE_EQ(out[0], -1.0);
  EXPECT_DOUBLE_EQ(out[1], -1.0);
}

TEST(Matrix, TransposedVectorProduct) {
  Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  const Vector v = {1.0, 1.0};
  const Vector out = a.multiply_transposed(v);
  EXPECT_DOUBLE_EQ(out[0], 4.0);
  EXPECT_DOUBLE_EQ(out[1], 6.0);
}

TEST(Matrix, GramMatchesExplicit) {
  Rng rng(1);
  Matrix a(7, 4);
  for (std::size_t i = 0; i < 7; ++i) {
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = rng.gaussian();
  }
  const Matrix g = a.gram();
  const Matrix expected = a.transposed().multiply(a);
  EXPECT_LT(Matrix::max_abs_diff(g, expected), 1e-12);
}

TEST(Matrix, SelectColumnsAndRows) {
  Matrix m = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}, {7.0, 8.0, 9.0}};
  const std::vector<std::size_t> cols = {2, 0};
  const Matrix sc = m.select_columns(cols);
  EXPECT_DOUBLE_EQ(sc(1, 0), 6.0);
  EXPECT_DOUBLE_EQ(sc(1, 1), 4.0);
  const std::vector<std::size_t> rows = {1};
  const Matrix sr = m.select_rows(rows);
  EXPECT_EQ(sr.rows(), 1u);
  EXPECT_DOUBLE_EQ(sr(0, 2), 6.0);
}

TEST(Matrix, ArithmeticOperators) {
  Matrix a = {{1.0, 2.0}};
  Matrix b = {{3.0, 4.0}};
  a += b;
  EXPECT_DOUBLE_EQ(a(0, 1), 6.0);
  a -= b;
  EXPECT_DOUBLE_EQ(a(0, 1), 2.0);
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
}

TEST(VectorOps, DotNormAxpy) {
  const Vector a = {1.0, 2.0, 2.0};
  const Vector b = {3.0, 0.0, 4.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 11.0);
  EXPECT_DOUBLE_EQ(norm2(a), 3.0);
  Vector y = {1.0, 1.0, 1.0};
  axpy(2.0, a, y);
  EXPECT_DOUBLE_EQ(y[2], 5.0);
}

TEST(VectorOps, AddSubtractScale) {
  const Vector a = {1.0, 2.0};
  const Vector b = {0.5, 0.5};
  EXPECT_DOUBLE_EQ(add(a, b)[1], 2.5);
  EXPECT_DOUBLE_EQ(subtract(a, b)[0], 0.5);
  EXPECT_DOUBLE_EQ(scale(a, 3.0)[1], 6.0);
}

// ---------------------------------------------------------------------------

TEST(QRDecomposition, SolvesSquareSystem) {
  const Matrix a = {{2.0, 1.0}, {1.0, 3.0}};
  const Vector b = {3.0, 5.0};
  const Vector x = QR(a).solve(b);
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(QRDecomposition, LeastSquaresOverdetermined) {
  // Fit y = 2x + 1 exactly through noiseless points.
  Matrix a(5, 2);
  Vector b(5);
  for (std::size_t i = 0; i < 5; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = static_cast<double>(i);
    b[i] = 1.0 + 2.0 * static_cast<double>(i);
  }
  const Vector x = solve_least_squares(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-10);
  EXPECT_NEAR(x[1], 2.0, 1e-10);
}

TEST(QRDecomposition, ResidualOrthogonalToColumns) {
  Rng rng(2);
  Matrix a(20, 3);
  Vector b(20);
  for (std::size_t i = 0; i < 20; ++i) {
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = rng.gaussian();
    b[i] = rng.gaussian();
  }
  const Vector x = QR(a).solve(b);
  const Vector residual = subtract(b, a.multiply(x));
  const Vector atr = a.multiply_transposed(residual);
  for (double v : atr) EXPECT_NEAR(v, 0.0, 1e-9);
}

TEST(QRDecomposition, DetectsRankDeficiency) {
  Matrix a(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i);
    a(i, 1) = 2.0 * static_cast<double>(i);  // exact multiple
  }
  const QR qr(a);
  EXPECT_TRUE(qr.rank_deficient());
}

TEST(QRDecomposition, FullRankNotFlagged) {
  Rng rng(3);
  Matrix a(10, 4);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = 0; j < 4; ++j) a(i, j) = rng.gaussian();
  }
  EXPECT_FALSE(QR(a).rank_deficient());
}

TEST(QRDecomposition, RejectsUnderdetermined) {
  Matrix a(2, 3);
  EXPECT_THROW(QR{a}, InvalidArgument);
}

TEST(QRDecomposition, RFactorReconstructsNormEquations) {
  Rng rng(4);
  Matrix a(12, 3);
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = rng.gaussian();
  }
  const QR qr(a);
  const Matrix r = qr.r();
  // R^T R should equal A^T A.
  const Matrix rtr = r.transposed().multiply(r);
  const Matrix ata = a.gram();
  EXPECT_LT(Matrix::max_abs_diff(rtr, ata), 1e-9);
}

TEST(Cholesky, SolvesSpdSystem) {
  const Matrix a = {{4.0, 2.0}, {2.0, 3.0}};
  const Vector b = {8.0, 7.0};
  const Vector x = Cholesky(a).solve(b);
  // Verify by substitution.
  EXPECT_NEAR(4.0 * x[0] + 2.0 * x[1], 8.0, 1e-12);
  EXPECT_NEAR(2.0 * x[0] + 3.0 * x[1], 7.0, 1e-12);
}

TEST(Cholesky, FactorReconstructs) {
  const Matrix a = {{9.0, 3.0, 0.0}, {3.0, 5.0, 1.0}, {0.0, 1.0, 2.0}};
  const Cholesky chol(a);
  const Matrix l = chol.l();
  const Matrix llt = l.multiply(l.transposed());
  EXPECT_LT(Matrix::max_abs_diff(llt, a), 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
  const Matrix a = {{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_THROW(Cholesky{a}, NumericalError);
}

TEST(Cholesky, InverseTimesOriginalIsIdentity) {
  const Matrix a = {{4.0, 1.0}, {1.0, 3.0}};
  const Matrix inv = Cholesky(a).inverse();
  const Matrix prod = a.multiply(inv);
  EXPECT_LT(Matrix::max_abs_diff(prod, Matrix::identity(2)), 1e-12);
}

TEST(UpperTriangularSolve, Known) {
  const Matrix r = {{2.0, 1.0}, {0.0, 4.0}};
  const Vector b = {4.0, 8.0};
  const Vector x = solve_upper_triangular(r, b);
  EXPECT_DOUBLE_EQ(x[1], 2.0);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
}

TEST(XtxInverse, MatchesCholeskyInverse) {
  Rng rng(5);
  Matrix a(15, 3);
  for (std::size_t i = 0; i < 15; ++i) {
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = rng.gaussian();
  }
  const Matrix from_qr = xtx_inverse_from_qr(QR(a));
  const Matrix from_chol = Cholesky(a.gram()).inverse();
  EXPECT_LT(Matrix::max_abs_diff(from_qr, from_chol), 1e-8);
}

}  // namespace
}  // namespace dsml::linalg
