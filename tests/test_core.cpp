#include "sim/core.hpp"

#include <gtest/gtest.h>

#include "workload/generator.hpp"
#include "workload/profiles.hpp"

namespace dsml::sim {
namespace {

Trace memory_heavy_trace() {
  static const Trace trace =
      workload::generate_trace(workload::spec_profile("mcf"), 30000);
  return trace;
}

Trace compute_trace() {
  static const Trace trace =
      workload::generate_trace(workload::spec_profile("applu"), 30000);
  return trace;
}

Trace code_heavy_trace() {
  static const Trace trace =
      workload::generate_trace(workload::spec_profile("gcc"), 30000);
  return trace;
}

ProcessorConfig base_config() {
  ProcessorConfig c;
  c.l1d_size_kb = 32;
  c.l1d_line_b = 32;
  c.l1i_size_kb = 32;
  c.l1i_line_b = 32;
  c.l2_size_kb = 256;
  c.l2_assoc = 4;
  c.branch_predictor = BranchPredictorKind::kBimodal;
  c.width = 4;
  c.ruu_size = 128;
  c.lsq_size = 64;
  c.itlb_size_kb = 256;
  c.dtlb_size_kb = 512;
  c.fu = {4, 2, 2, 4, 2};
  return c;
}

TEST(Core, Deterministic) {
  const Trace trace = memory_heavy_trace();
  const auto a = simulate(base_config(), trace);
  const auto b = simulate(base_config(), trace);
  EXPECT_EQ(a.cycles, b.cycles);
}

TEST(Core, EmptyTraceThrows) {
  Trace empty;
  EXPECT_THROW(simulate(base_config(), empty), InvalidArgument);
}

TEST(Core, IpcBoundedByWidth) {
  const auto result = simulate(base_config(), compute_trace());
  EXPECT_GT(result.stats.ipc, 0.0);
  EXPECT_LE(result.stats.ipc, 4.0);
  EXPECT_EQ(result.stats.instructions, 30000u);
  EXPECT_EQ(result.stats.cycles, result.cycles);
}

TEST(Core, CyclesAtLeastInstructionsOverWidth) {
  const auto result = simulate(base_config(), compute_trace());
  EXPECT_GE(result.cycles, 30000u / 4);
}

TEST(Core, LargerL2Helps) {
  ProcessorConfig small = base_config();
  ProcessorConfig large = base_config();
  large.l2_size_kb = 1024;
  const Trace trace = memory_heavy_trace();
  EXPECT_LT(simulate(large, trace).cycles, simulate(small, trace).cycles);
}

TEST(Core, L3PresenceHelpsMemoryBoundApp) {
  ProcessorConfig no_l3 = base_config();
  ProcessorConfig with_l3 = base_config();
  with_l3.l3_size_mb = 8;
  with_l3.l3_line_b = 256;
  with_l3.l3_assoc = 8;
  // L3 benefit needs the multi-MB working-set tiers to see reuse, which
  // takes a longer trace than the other tests use.
  const Trace trace =
      workload::generate_trace(workload::spec_profile("mcf"), 200000);
  const auto without = simulate(no_l3, trace);
  const auto with = simulate(with_l3, trace);
  EXPECT_LT(with.cycles, without.cycles);
  // At least a few percent for the canonical pointer chaser.
  EXPECT_LT(static_cast<double>(with.cycles),
            0.97 * static_cast<double>(without.cycles));
}

TEST(Core, PerfectBranchPredictionHelpsBranchyApp) {
  ProcessorConfig bimodal = base_config();
  ProcessorConfig perfect = base_config();
  perfect.branch_predictor = BranchPredictorKind::kPerfect;
  const Trace trace = code_heavy_trace();
  const auto r_bimodal = simulate(bimodal, trace);
  const auto r_perfect = simulate(perfect, trace);
  EXPECT_LT(r_perfect.cycles, r_bimodal.cycles);
  EXPECT_DOUBLE_EQ(r_perfect.stats.branch_mispredict_rate, 0.0);
  EXPECT_GT(r_bimodal.stats.branch_mispredict_rate, 0.0);
}

TEST(Core, WiderMachineFasterOnComputeCode) {
  ProcessorConfig narrow = base_config();
  ProcessorConfig wide = base_config();
  wide.width = 8;
  wide.fu = {8, 4, 4, 8, 4};
  const Trace trace = compute_trace();
  EXPECT_LT(simulate(wide, trace).cycles, simulate(narrow, trace).cycles);
}

TEST(Core, BiggerWindowNeverSlower) {
  ProcessorConfig small = base_config();
  ProcessorConfig big = base_config();
  big.ruu_size = 256;
  big.lsq_size = 128;
  big.itlb_size_kb = 1024;
  big.dtlb_size_kb = 2048;
  const Trace trace = memory_heavy_trace();
  EXPECT_LE(simulate(big, trace).cycles, simulate(small, trace).cycles);
}

TEST(Core, LargerL1IHelpsLargeCodeApp) {
  ProcessorConfig small = base_config();
  small.l1i_size_kb = 16;
  ProcessorConfig large = base_config();
  large.l1i_size_kb = 64;
  const Trace trace = code_heavy_trace();
  const auto r_small = simulate(small, trace);
  const auto r_large = simulate(large, trace);
  EXPECT_LT(r_large.cycles, r_small.cycles);
  EXPECT_LT(r_large.stats.l1i_miss_rate, r_small.stats.l1i_miss_rate);
}

TEST(Core, StatsRatesAreRates) {
  const auto result = simulate(base_config(), memory_heavy_trace());
  const SimStats& s = result.stats;
  for (double rate : {s.l1d_miss_rate, s.l1i_miss_rate, s.l2_miss_rate,
                      s.branch_mispredict_rate, s.itlb_miss_rate,
                      s.dtlb_miss_rate}) {
    EXPECT_GE(rate, 0.0);
    EXPECT_LE(rate, 1.0);
  }
  EXPECT_EQ(s.l3_miss_rate, 0.0);  // no L3 configured
  EXPECT_GT(s.branch_count, 0u);
  EXPECT_GE(s.branch_count, s.mispredicts);
}

TEST(Core, MemoryBoundAppSlowerThanComputeApp) {
  const auto mcf = simulate(base_config(), memory_heavy_trace());
  const auto applu = simulate(base_config(), compute_trace());
  EXPECT_LT(mcf.stats.ipc, applu.stats.ipc);
}

TEST(Core, CoreInstanceRunsOnce) {
  // A core carries cache/predictor state; the facade builds a fresh core per
  // simulation so results are cold-start reproducible.
  OutOfOrderCore core(base_config());
  const Trace trace = compute_trace();
  const auto first = core.run(trace.span());
  const auto second = core.run(trace.span());  // warm caches now
  EXPECT_LE(second.cycles, first.cycles);
}

TEST(Core, IssueWrongChangesTiming) {
  ProcessorConfig off = base_config();
  ProcessorConfig on = base_config();
  on.issue_wrong = true;
  const Trace trace = code_heavy_trace();
  const auto r_off = simulate(off, trace);
  const auto r_on = simulate(on, trace);
  EXPECT_NE(r_off.cycles, r_on.cycles);
  // Wrong-path issue resumes fetch earlier after mispredicts: on a branchy
  // trace it should not hurt.
  EXPECT_LE(r_on.cycles, r_off.cycles);
}

TEST(Core, LatencyModelScalesCycles) {
  LatencyModel slow;
  slow.memory = 400;
  const Trace trace = memory_heavy_trace();
  OutOfOrderCore fast_core(base_config());
  OutOfOrderCore slow_core(base_config(), slow);
  EXPECT_LT(fast_core.run(trace.span()).cycles,
            slow_core.run(trace.span()).cycles);
}

}  // namespace
}  // namespace dsml::sim
