#include "common/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hpp"

namespace dsml {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "v"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.str();
  // All lines share the same width.
  std::istringstream in(s);
  std::string line;
  std::size_t width = 0;
  while (std::getline(in, line)) {
    if (width == 0) width = line.size();
    EXPECT_EQ(line.size(), width);
  }
}

TEST(TablePrinter, ContainsValues) {
  TablePrinter t({"a", "b"});
  t.add_row({"hello", "world"});
  const std::string s = t.str();
  EXPECT_NE(s.find("hello"), std::string::npos);
  EXPECT_NE(s.find("world"), std::string::npos);
  EXPECT_NE(s.find("a"), std::string::npos);
}

TEST(TablePrinter, NumericRowFormatting) {
  TablePrinter t({"label", "x", "y"});
  t.add_row_numeric("row", {1.234, 5.678}, 1);
  const std::string s = t.str();
  EXPECT_NE(s.find("1.2"), std::string::npos);
  EXPECT_NE(s.find("5.7"), std::string::npos);
}

TEST(TablePrinter, RowWidthMismatchThrows) {
  TablePrinter t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(TablePrinter, EmptyHeaderThrows) {
  EXPECT_THROW(TablePrinter({}), InvalidArgument);
}

TEST(TablePrinter, PrintMatchesStr) {
  TablePrinter t({"h"});
  t.add_row({"v"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str(), t.str());
}

}  // namespace
}  // namespace dsml
