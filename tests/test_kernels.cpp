// Golden tests for the cache-blocked kernels (linalg/kernels.hpp): every
// optimized kernel must be BIT-IDENTICAL to the naive loop it replaced, not
// merely close — the training/validation paths make tolerance-based control
// decisions (e.g. Mlp::mse snapshots), so any reassociation would change
// model selection downstream. Comparisons therefore use EXPECT_EQ on
// doubles, never EXPECT_NEAR.
#include "linalg/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/rng.hpp"
#include "linalg/matrix.hpp"

namespace dsml::linalg {
namespace {

std::vector<double> random_block(std::size_t n, Rng& rng) {
  std::vector<double> out(n);
  for (double& v : out) v = rng.uniform(-2.0, 2.0);
  return out;
}

void expect_bit_identical(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i], b[i]) << "element " << i;
  }
}

// --- GEMM -------------------------------------------------------------------

void check_gemm_matches_reference(std::size_t m, std::size_t k,
                                  std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  const std::vector<double> a = random_block(m * k, rng);
  const std::vector<double> b = random_block(k * n, rng);
  std::vector<double> c_blocked(m * n, 0.0);
  std::vector<double> c_reference(m * n, 0.0);
  kernels::gemm_accumulate(a.data(), k, b.data(), n, c_blocked.data(), n, m,
                           k, n);
  kernels::gemm_accumulate_reference(a.data(), k, b.data(), n,
                                     c_reference.data(), n, m, k, n);
  expect_bit_identical(c_blocked, c_reference);
}

TEST(Gemm, BlockedMatchesReferenceBitForBit) {
  // Sizes straddle the kRowBlock=64 / kDepthBlock=256 tile boundaries:
  // smaller, exact multiples, one-past, and ragged remainders.
  check_gemm_matches_reference(1, 1, 1, 11);
  check_gemm_matches_reference(7, 5, 3, 12);
  check_gemm_matches_reference(64, 256, 8, 13);
  check_gemm_matches_reference(65, 257, 9, 14);
  check_gemm_matches_reference(130, 300, 17, 15);
  check_gemm_matches_reference(63, 255, 33, 16);
  // B exceeds kCacheResidentBytes (600*300*8 = 1.44 MiB), forcing the
  // depth-split path the smaller shapes above never enter.
  check_gemm_matches_reference(70, 600, 300, 17);
}

TEST(Gemm, AccumulatesIntoExistingOutput) {
  Rng rng(21);
  const std::size_t m = 17, k = 23, n = 13;
  const std::vector<double> a = random_block(m * k, rng);
  const std::vector<double> b = random_block(k * n, rng);
  std::vector<double> c_blocked = random_block(m * n, rng);
  std::vector<double> c_reference = c_blocked;  // same starting contents
  kernels::gemm_accumulate(a.data(), k, b.data(), n, c_blocked.data(), n, m,
                           k, n);
  kernels::gemm_accumulate_reference(a.data(), k, b.data(), n,
                                     c_reference.data(), n, m, k, n);
  expect_bit_identical(c_blocked, c_reference);
}

TEST(Gemm, HonorsLeadingDimensionsOnSubmatrices) {
  Rng rng(31);
  const std::size_t m = 70, k = 40, n = 20;
  const std::size_t lda = k + 5, ldb = n + 3, ldc = n + 7;
  const std::vector<double> a = random_block(m * lda, rng);
  const std::vector<double> b = random_block(k * ldb, rng);
  std::vector<double> c_blocked(m * ldc, 0.0);
  std::vector<double> c_reference(m * ldc, 0.0);
  kernels::gemm_accumulate(a.data(), lda, b.data(), ldb, c_blocked.data(),
                           ldc, m, k, n);
  kernels::gemm_accumulate_reference(a.data(), lda, b.data(), ldb,
                                     c_reference.data(), ldc, m, k, n);
  expect_bit_identical(c_blocked, c_reference);
  // Padding columns beyond n stay untouched.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = n; j < ldc; ++j) {
      EXPECT_EQ(c_blocked[i * ldc + j], 0.0);
    }
  }
}

TEST(Gemm, ZeroEntriesInAPreserveNonFinitePropagation) {
  // The aik == 0.0 skip means 0 * Inf contributes nothing, exactly like the
  // historical Matrix::multiply (weight masks zero whole entries).
  const std::size_t m = 2, k = 2, n = 2;
  const std::vector<double> a = {0.0, 1.0, 2.0, 0.0};
  const std::vector<double> b = {INFINITY, NAN, 3.0, 4.0};
  std::vector<double> c_blocked(m * n, 0.0);
  std::vector<double> c_reference(m * n, 0.0);
  kernels::gemm_accumulate(a.data(), k, b.data(), n, c_blocked.data(), n, m,
                           k, n);
  kernels::gemm_accumulate_reference(a.data(), k, b.data(), n,
                                     c_reference.data(), n, m, k, n);
  EXPECT_EQ(c_blocked[0], 3.0);
  EXPECT_EQ(c_blocked[1], 4.0);
  EXPECT_EQ(c_blocked[2], 2.0 * INFINITY);
  for (std::size_t i = 0; i < c_blocked.size(); ++i) {
    if (std::isnan(c_reference[i])) {
      EXPECT_TRUE(std::isnan(c_blocked[i]));
    } else {
      EXPECT_EQ(c_blocked[i], c_reference[i]);
    }
  }
}

TEST(Gemm, MatrixMultiplyDelegatesToBlockedKernel) {
  Rng rng(41);
  Matrix a(33, 47);
  Matrix b(47, 21);
  for (double& v : a.data()) v = rng.uniform(-1.0, 1.0);
  for (double& v : b.data()) v = rng.uniform(-1.0, 1.0);
  const Matrix prod = a.multiply(b);
  std::vector<double> want(a.rows() * b.cols(), 0.0);
  kernels::gemm_accumulate_reference(a.data().data(), a.cols(),
                                     b.data().data(), b.cols(), want.data(),
                                     b.cols(), a.rows(), a.cols(), b.cols());
  ASSERT_EQ(prod.rows(), a.rows());
  ASSERT_EQ(prod.cols(), b.cols());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(prod.data()[i], want[i]);
  }
}

// --- Transpose --------------------------------------------------------------

TEST(Transpose, MatchesElementwiseDefinition) {
  Rng rng(51);
  for (const auto [rows, cols] :
       {std::pair<std::size_t, std::size_t>{1, 1},
        {3, 7},
        {32, 32},
        {33, 65},
        {100, 40}}) {
    const std::vector<double> a = random_block(rows * cols, rng);
    std::vector<double> t(cols * rows, 0.0);
    kernels::transpose(a.data(), cols, rows, cols, t.data(), rows);
    for (std::size_t i = 0; i < rows; ++i) {
      for (std::size_t j = 0; j < cols; ++j) {
        ASSERT_EQ(t[j * rows + i], a[i * cols + j]) << rows << "x" << cols;
      }
    }
  }
}

TEST(Transpose, MatrixTransposedRoundTrips) {
  Rng rng(52);
  Matrix a(37, 53);
  for (double& v : a.data()) v = rng.uniform(-1.0, 1.0);
  const Matrix t = a.transposed();
  ASSERT_EQ(t.rows(), a.cols());
  ASSERT_EQ(t.cols(), a.rows());
  const Matrix back = t.transposed();
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    EXPECT_EQ(back.data()[i], a.data()[i]);
  }
}

// --- GEMV -------------------------------------------------------------------

TEST(Gemv, MatchesAscendingScalarDot) {
  Rng rng(61);
  const std::size_t m = 41, n = 29;
  const std::vector<double> a = random_block(m * n, rng);
  const std::vector<double> x = random_block(n, rng);
  std::vector<double> y(m, 0.0);
  kernels::gemv(a.data(), n, m, n, x.data(), y.data());
  for (std::size_t i = 0; i < m; ++i) {
    double z = 0.0;
    for (std::size_t j = 0; j < n; ++j) z += a[i * n + j] * x[j];
    ASSERT_EQ(y[i], z) << "row " << i;
  }
}

TEST(Gemv, SelectedColumnsMatchMaterializedSubset) {
  Rng rng(62);
  const std::size_t m = 37, n = 19;
  Matrix a(m, n);
  for (double& v : a.data()) v = rng.uniform(-1.0, 1.0);
  const std::vector<std::size_t> cols = {0, 3, 4, 11, 18};
  const std::vector<double> beta = random_block(cols.size(), rng);
  std::vector<double> fused(m, 0.0);
  kernels::gemv_columns(a.data().data(), a.cols(), m, cols.data(),
                        cols.size(), beta.data(), fused.data());
  const std::vector<double> want = a.select_columns(cols).multiply(beta);
  expect_bit_identical(fused, want);
}

// --- affine_forward ---------------------------------------------------------

void check_affine_forward(bool sigmoid_activation) {
  Rng rng(sigmoid_activation ? 71 : 72);
  const std::size_t rows = 67, fan_in = 16, fan_out = 9;
  const std::size_t ldx = fan_in + 2, ldo = fan_out + 3;
  const std::vector<double> x = random_block(rows * ldx, rng);
  const std::vector<double> w = random_block(fan_out * fan_in, rng);
  const std::vector<double> bias = random_block(fan_out, rng);
  std::vector<double> out(rows * ldo, -1.0);
  Workspace ws;
  kernels::affine_forward(x.data(), ldx, rows, fan_in, w.data(), bias.data(),
                          fan_out, sigmoid_activation, out.data(), ldo, ws);
  // Scalar reference: z starts from the bias, fan-in terms added ascending —
  // the exact order Mlp::forward_pass uses.
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t i = 0; i < fan_out; ++i) {
      double z = bias[i];
      for (std::size_t j = 0; j < fan_in; ++j) {
        z += w[i * fan_in + j] * x[r * ldx + j];
      }
      if (sigmoid_activation) z = 1.0 / (1.0 + std::exp(-z));
      ASSERT_EQ(out[r * ldo + i], z) << "row " << r << " unit " << i;
    }
    for (std::size_t i = fan_out; i < ldo; ++i) {
      ASSERT_EQ(out[r * ldo + i], -1.0);  // padding untouched
    }
  }
}

TEST(AffineForward, LinearLayerMatchesScalarReference) {
  check_affine_forward(false);
}

TEST(AffineForward, SigmoidLayerMatchesScalarReference) {
  check_affine_forward(true);
}

// --- Workspace --------------------------------------------------------------

TEST(Workspace, EarlierSpansSurviveLaterTakes) {
  Workspace ws;
  Workspace::Scope scope(ws);
  std::span<double> first = ws.take(64);
  for (std::size_t i = 0; i < first.size(); ++i) {
    first[i] = static_cast<double>(i);
  }
  std::span<double> second = ws.take(1 << 14);
  for (double& v : second) v = -1.0;
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], static_cast<double>(i));
  }
  EXPECT_EQ(ws.buffers_in_use(), 2u);
}

TEST(Workspace, ScopeRestoresAndSlabsAreRecycled) {
  Workspace ws;
  double* slab0 = nullptr;
  {
    Workspace::Scope scope(ws);
    std::span<double> buf = ws.take(128);
    slab0 = buf.data();
    EXPECT_EQ(ws.buffers_in_use(), 1u);
    {
      Workspace::Scope inner(ws);
      ws.take(32);
      EXPECT_EQ(ws.buffers_in_use(), 2u);
    }
    EXPECT_EQ(ws.buffers_in_use(), 1u);
  }
  EXPECT_EQ(ws.buffers_in_use(), 0u);
  // Steady state: the same slab backs the next equal-or-smaller request.
  Workspace::Scope scope(ws);
  std::span<double> again = ws.take(64);
  EXPECT_EQ(again.data(), slab0);
}

TEST(Workspace, TlsWorkspaceIsStablePerThread) {
  Workspace& a = tls_workspace();
  Workspace& b = tls_workspace();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace dsml::linalg
