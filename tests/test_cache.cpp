#include "sim/cache.hpp"

#include <gtest/gtest.h>

namespace dsml::sim {
namespace {

TEST(Cache, GeometryDerivation) {
  const Cache c(32 * 1024, 64, 4);
  EXPECT_EQ(c.line_bytes(), 64u);
  EXPECT_EQ(c.assoc(), 4u);
  EXPECT_EQ(c.sets(), 128u);
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(Cache(0, 64, 4), InvalidArgument);
  EXPECT_THROW(Cache(1000, 64, 4), InvalidArgument);   // non power of two
  EXPECT_THROW(Cache(1024, 48, 2), InvalidArgument);   // line not pow2
  EXPECT_THROW(Cache(128, 64, 4), InvalidArgument);    // fewer lines than ways
}

TEST(Cache, ColdMissThenHit) {
  Cache c(1024, 64, 2);
  EXPECT_FALSE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1000));
  EXPECT_TRUE(c.access(0x1001));  // same line
  EXPECT_EQ(c.hits(), 2u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(Cache, LineGranularity) {
  Cache c(1024, 64, 2);
  c.access(0x0);
  EXPECT_TRUE(c.access(63));    // same 64B line
  EXPECT_FALSE(c.access(64));   // next line
}

TEST(Cache, LruEvictionOrder) {
  // Direct test of LRU in a single set: 2-way, line 64, 2 sets (256 B).
  Cache c(256, 64, 2);
  // Set 0 holds lines with (line_number % 2 == 0): addresses 0, 128, 256...
  c.access(0);     // miss, set0 way A
  c.access(128);   // miss, set0 way B
  c.access(0);     // hit — A is now most recent
  c.access(256);   // miss — evicts B (128)
  EXPECT_TRUE(c.access(0));     // still resident
  EXPECT_FALSE(c.access(128));  // was evicted
}

TEST(Cache, AssociativityPreventsConflicts) {
  // 4 lines mapping to the same set survive together in a 4-way cache but
  // thrash a direct-mapped one of the same size.
  Cache four_way(4096, 64, 4);
  Cache direct(4096, 64, 1);
  const std::uint64_t stride = 4096;  // same set in both caches
  for (int round = 0; round < 3; ++round) {
    for (std::uint64_t i = 0; i < 4; ++i) {
      four_way.access(i * stride);
      direct.access(i * stride);
    }
  }
  EXPECT_EQ(four_way.misses(), 4u);   // compulsory only
  EXPECT_GT(direct.misses(), 4u);     // conflict misses
}

TEST(Cache, CapacityDifferentiation) {
  // A working set of 64 lines fits a 4KB cache but not a 1KB cache.
  Cache small(1024, 64, 4);
  Cache large(4096, 64, 4);
  for (int round = 0; round < 4; ++round) {
    for (std::uint64_t line = 0; line < 64; ++line) {
      small.access(line * 64);
      large.access(line * 64);
    }
  }
  EXPECT_EQ(large.misses(), 64u);
  EXPECT_GT(small.misses(), 64u * 3);
}

TEST(Cache, LineSizeSpatialLocality) {
  // Sequential byte-stride sweep: bigger lines halve the misses.
  Cache line32(4096, 32, 4);
  Cache line64(4096, 64, 4);
  for (std::uint64_t addr = 0; addr < 1u << 16; addr += 8) {
    line32.access(addr);
    line64.access(addr);
  }
  EXPECT_NEAR(static_cast<double>(line32.misses()) /
                  static_cast<double>(line64.misses()),
              2.0, 0.01);
}

TEST(Cache, ProbeDoesNotAllocate) {
  Cache c(1024, 64, 2);
  EXPECT_FALSE(c.probe(0x2000));
  EXPECT_FALSE(c.access(0x2000));  // still a miss: probe didn't insert
  EXPECT_TRUE(c.probe(0x2000));
  const auto hits = c.hits();
  c.probe(0x2000);
  EXPECT_EQ(c.hits(), hits);  // probe doesn't count stats
}

TEST(Cache, FlushEmptiesCache) {
  Cache c(1024, 64, 2);
  c.access(0x100);
  c.flush();
  EXPECT_FALSE(c.probe(0x100));
}

TEST(Cache, MissRate) {
  Cache c(1024, 64, 2);
  EXPECT_DOUBLE_EQ(c.miss_rate(), 0.0);  // no accesses yet
  c.access(0);
  c.access(0);
  EXPECT_DOUBLE_EQ(c.miss_rate(), 0.5);
}

class CacheGeometryTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint32_t,
                                                 std::uint32_t>> {};

TEST_P(CacheGeometryTest, HitsAfterWarmupWithinCapacity) {
  const auto [size, line, assoc] = GetParam();
  Cache c(size, line, assoc);
  const std::uint64_t lines = size / line;
  // Touch exactly the capacity's worth of lines, then re-touch: all hits.
  for (std::uint64_t i = 0; i < lines; ++i) c.access(i * line);
  const auto misses_after_warmup = c.misses();
  for (std::uint64_t i = 0; i < lines; ++i) c.access(i * line);
  EXPECT_EQ(c.misses(), misses_after_warmup);
}

INSTANTIATE_TEST_SUITE_P(
    Table1Menu, CacheGeometryTest,
    ::testing::Values(std::tuple{16 * 1024, 32, 4},
                      std::tuple{32 * 1024, 32, 4},
                      std::tuple{64 * 1024, 64, 4},
                      std::tuple{256 * 1024, 128, 4},
                      std::tuple{1024 * 1024, 128, 8},
                      std::tuple{8 * 1024 * 1024, 256, 8}));

TEST(Tlb, EntriesFromReach) {
  Tlb tlb(512);  // 512KB reach, 4KB pages -> 128 entries
  // Touch 128 distinct pages, then re-touch: all hits.
  for (std::uint64_t p = 0; p < 128; ++p) tlb.access(p * 4096);
  EXPECT_EQ(tlb.misses(), 128u);
  for (std::uint64_t p = 0; p < 128; ++p) tlb.access(p * 4096);
  EXPECT_EQ(tlb.misses(), 128u);
}

TEST(Tlb, CapacityMissesBeyondReach) {
  Tlb tlb(512);
  for (int round = 0; round < 2; ++round) {
    for (std::uint64_t p = 0; p < 256; ++p) tlb.access(p * 4096);
  }
  EXPECT_GT(tlb.misses(), 256u);
}

TEST(Tlb, SamePageHits) {
  Tlb tlb(256);
  tlb.access(0x1000);
  tlb.access(0x1800);  // same 4KB page
  EXPECT_EQ(tlb.misses(), 1u);
  EXPECT_EQ(tlb.accesses(), 2u);
}

}  // namespace
}  // namespace dsml::sim
