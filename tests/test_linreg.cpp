#include "ml/linreg.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "ml/metrics.hpp"

namespace dsml::ml {
namespace {

// y = 3 + 2*x1 - 1.5*x2 (+ optional noise), with distractor columns.
data::Dataset make_linear_data(std::size_t n, double noise_sd,
                               std::uint64_t seed,
                               bool with_distractors = false) {
  Rng rng(seed);
  std::vector<double> x1(n);
  std::vector<double> x2(n);
  std::vector<double> d1(n);
  std::vector<double> d2(n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x1[i] = rng.uniform(0.0, 10.0);
    x2[i] = rng.uniform(0.0, 10.0);
    d1[i] = rng.uniform(0.0, 10.0);
    d2[i] = rng.uniform(0.0, 10.0);
    y[i] = 100.0 + 2.0 * x1[i] - 1.5 * x2[i] + rng.gaussian(0.0, noise_sd);
  }
  data::Dataset ds;
  ds.add_feature(data::Column::numeric("x1", std::move(x1)));
  ds.add_feature(data::Column::numeric("x2", std::move(x2)));
  if (with_distractors) {
    ds.add_feature(data::Column::numeric("d1", std::move(d1)));
    ds.add_feature(data::Column::numeric("d2", std::move(d2)));
  }
  ds.set_target("y", std::move(y));
  return ds;
}

TEST(FitOls, RecoversCoefficientsOnScaledData) {
  const data::Dataset ds = make_linear_data(100, 0.0, 1);
  LinearRegression::Options opt;
  opt.method = LinRegMethod::kEnter;
  LinearRegression model(opt);
  model.fit(ds);
  const auto predicted = model.predict(ds);
  EXPECT_LT(mape(predicted, ds.target()), 1e-8);
  EXPECT_NEAR(model.ols().r2, 1.0, 1e-12);
}

TEST(FitOls, InferenceStatisticsSensible) {
  const data::Dataset ds = make_linear_data(200, 1.0, 2);
  LinearRegression::Options opt;
  opt.method = LinRegMethod::kEnter;
  LinearRegression model(opt);
  model.fit(ds);
  const OlsFit& fit = model.ols();
  ASSERT_EQ(fit.columns.size(), 3u);  // intercept + 2 predictors
  // True predictors must be highly significant.
  EXPECT_LT(fit.p_values[1], 1e-6);
  EXPECT_LT(fit.p_values[2], 1e-6);
  EXPECT_GT(fit.r2, 0.9);
  EXPECT_LE(fit.adjusted_r2, fit.r2 + 1e-12);
  EXPECT_EQ(fit.n, 200u);
  EXPECT_EQ(fit.dof, 197u);
}

TEST(FitOls, RequiresOverdeterminedSystem) {
  linalg::Matrix x(2, 3, 1.0);
  const std::vector<double> y = {1.0, 2.0};
  const std::vector<std::size_t> cols = {0, 1, 2};
  EXPECT_THROW(fit_ols(x, y, cols), InvalidArgument);
}

TEST(BackwardSelection, DropsDistractors) {
  const data::Dataset ds = make_linear_data(300, 0.5, 3, true);
  LinearRegression::Options opt;
  opt.method = LinRegMethod::kBackward;
  LinearRegression model(opt);
  model.fit(ds);
  const auto selected = model.selected_predictors();
  EXPECT_NE(std::find(selected.begin(), selected.end(), "x1"), selected.end());
  EXPECT_NE(std::find(selected.begin(), selected.end(), "x2"), selected.end());
  EXPECT_EQ(std::find(selected.begin(), selected.end(), "d1"), selected.end());
  EXPECT_EQ(std::find(selected.begin(), selected.end(), "d2"), selected.end());
}

TEST(ForwardSelection, FindsTruePredictors) {
  const data::Dataset ds = make_linear_data(300, 0.5, 4, true);
  LinearRegression::Options opt;
  opt.method = LinRegMethod::kForward;
  LinearRegression model(opt);
  model.fit(ds);
  const auto selected = model.selected_predictors();
  EXPECT_NE(std::find(selected.begin(), selected.end(), "x1"), selected.end());
  EXPECT_NE(std::find(selected.begin(), selected.end(), "x2"), selected.end());
}

TEST(StepwiseSelection, MatchesForwardOnCleanData) {
  const data::Dataset ds = make_linear_data(300, 0.5, 5, true);
  LinearRegression::Options fopt;
  fopt.method = LinRegMethod::kForward;
  LinearRegression forward(fopt);
  forward.fit(ds);
  LinearRegression::Options sopt;
  sopt.method = LinRegMethod::kStepwise;
  LinearRegression stepwise(sopt);
  stepwise.fit(ds);
  EXPECT_EQ(forward.selected_predictors(), stepwise.selected_predictors());
}

TEST(LinearRegression, PredictsHeldOutData) {
  const data::Dataset train = make_linear_data(150, 0.5, 6);
  const data::Dataset test = make_linear_data(50, 0.5, 7);
  LinearRegression model;
  model.fit(train);
  const auto predicted = model.predict(test);
  EXPECT_LT(mape(predicted, test.target()), 2.0);
}

TEST(LinearRegression, HandlesExactlyCollinearColumns) {
  // Duplicate predictor columns must not blow up any method (the SPEC data
  // has total_cores == chips * cores_per_chip style identities).
  Rng rng(8);
  const std::size_t n = 80;
  std::vector<double> x(n);
  std::vector<double> x_dup(n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = rng.uniform(0.0, 5.0);
    x_dup[i] = 2.0 * x[i];
    y[i] = 10.0 + 3.0 * x[i] + rng.gaussian(0.0, 0.1);
  }
  data::Dataset ds;
  ds.add_feature(data::Column::numeric("x", std::move(x)));
  ds.add_feature(data::Column::numeric("x_dup", std::move(x_dup)));
  ds.set_target("y", std::move(y));
  for (LinRegMethod method :
       {LinRegMethod::kEnter, LinRegMethod::kBackward, LinRegMethod::kForward,
        LinRegMethod::kStepwise}) {
    LinearRegression::Options opt;
    opt.method = method;
    LinearRegression model(opt);
    model.fit(ds);
    const auto predicted = model.predict(ds);
    EXPECT_LT(mape(predicted, ds.target()), 2.0) << to_string(method);
  }
}

TEST(LinearRegression, StandardizedBetasOrdering) {
  // x1's contribution dwarfs x2's, so its standardized beta must lead.
  Rng rng(9);
  const std::size_t n = 200;
  std::vector<double> x1(n);
  std::vector<double> x2(n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x1[i] = rng.uniform(0.0, 10.0);
    x2[i] = rng.uniform(0.0, 10.0);
    y[i] = 100.0 + 10.0 * x1[i] + 0.5 * x2[i] + rng.gaussian(0.0, 0.5);
  }
  data::Dataset ds;
  ds.add_feature(data::Column::numeric("x1", std::move(x1)));
  ds.add_feature(data::Column::numeric("x2", std::move(x2)));
  ds.set_target("y", std::move(y));
  LinearRegression::Options opt;
  opt.method = LinRegMethod::kEnter;
  LinearRegression model(opt);
  model.fit(ds);
  const auto betas = model.standardized_betas();
  ASSERT_GE(betas.size(), 2u);
  EXPECT_EQ(betas[0].name, "x1");
  EXPECT_GT(betas[0].importance, betas[1].importance);
  // importance() is the same ranking.
  EXPECT_EQ(model.importance()[0].name, "x1");
}

TEST(LinearRegression, NamesMatchPaper) {
  EXPECT_EQ(LinearRegression({LinRegMethod::kEnter, 0.05, 0.10, 0}).name(),
            "LR-E");
  EXPECT_EQ(LinearRegression({LinRegMethod::kStepwise, 0.05, 0.10, 0}).name(),
            "LR-S");
  EXPECT_EQ(LinearRegression({LinRegMethod::kForward, 0.05, 0.10, 0}).name(),
            "LR-F");
  EXPECT_EQ(LinearRegression({LinRegMethod::kBackward, 0.05, 0.10, 0}).name(),
            "LR-B");
}

TEST(LinearRegression, UnfittedThrows) {
  LinearRegression model;
  data::Dataset ds = make_linear_data(10, 0.0, 10);
  EXPECT_FALSE(model.fitted());
  EXPECT_THROW(model.predict(ds), InvalidArgument);
  EXPECT_THROW(model.ols(), InvalidArgument);
}

TEST(LinearRegression, MissingTargetThrows) {
  data::Dataset ds;
  ds.add_feature(data::Column::numeric("x", {1.0, 2.0, 3.0}));
  LinearRegression model;
  EXPECT_THROW(model.fit(ds), InvalidArgument);
}

TEST(LinearRegression, InvalidOptionsThrow) {
  LinearRegression::Options opt;
  opt.entry_p = 0.2;
  opt.removal_p = 0.1;  // removal below entry
  EXPECT_THROW(LinearRegression{opt}, InvalidArgument);
}

TEST(LinearRegression, CategoricalOrderedUsedUnorderedDropped) {
  Rng rng(11);
  const std::size_t n = 120;
  std::vector<std::string> ordered_vals;
  std::vector<std::string> unordered_vals;
  std::vector<double> y;
  const std::vector<std::string> levels = {"small", "medium", "large"};
  for (std::size_t i = 0; i < n; ++i) {
    const auto k = static_cast<std::size_t>(rng.below(3));
    ordered_vals.push_back(levels[k]);
    unordered_vals.push_back(rng.chance(0.5) ? "amd" : "intel");
    y.push_back(10.0 + 5.0 * static_cast<double>(k) +
                rng.gaussian(0.0, 0.2));
  }
  data::Dataset ds;
  ds.add_feature(data::Column::categorical_with_levels(
      "size", levels, std::move(ordered_vals), /*ordered=*/true));
  ds.add_feature(data::Column::categorical("vendor", std::move(unordered_vals)));
  ds.set_target("y", std::move(y));
  LinearRegression model;
  model.fit(ds);
  const auto selected = model.selected_predictors();
  EXPECT_NE(std::find(selected.begin(), selected.end(), "size"),
            selected.end());
  // vendor was not even encodable for LR.
  EXPECT_EQ(std::find(selected.begin(), selected.end(), "vendor"),
            selected.end());
  EXPECT_LT(mape(model.predict(ds), ds.target()), 3.0);
}

}  // namespace
}  // namespace dsml::ml
