#include "data/encoder.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace dsml::data {
namespace {

Dataset make_mixed() {
  Dataset ds;
  ds.add_feature(Column::numeric("speed", {1000.0, 2000.0, 3000.0, 4000.0}));
  ds.add_feature(Column::flag("smt", {false, true, false, true}));
  ds.add_feature(
      Column::categorical("vendor", {"amd", "intel", "sun", "amd"}));
  ds.add_feature(Column::categorical_with_levels(
      "bp", {"perfect", "bimodal", "2lev"},
      {"perfect", "bimodal", "2lev", "bimodal"}, /*ordered=*/true));
  ds.add_feature(Column::numeric("constant", {7.0, 7.0, 7.0, 7.0}));
  ds.set_target("perf", {10.0, 20.0, 30.0, 40.0});
  return ds;
}

TEST(Encoder, LinearModeDropsUnorderedCategoricals) {
  Encoder enc;
  EncoderOptions opt;
  opt.mode = EncodingMode::kLinearRegression;
  enc.fit(make_mixed(), opt);
  const auto names = enc.feature_names();
  EXPECT_EQ(std::count(names.begin(), names.end(), "vendor"), 0);
  EXPECT_EQ(std::count(names.begin(), names.end(), "speed"), 1);
  EXPECT_EQ(std::count(names.begin(), names.end(), "bp"), 1);  // ordered kept
  EXPECT_EQ(std::count(names.begin(), names.end(), "smt"), 1);
  // Dropped list mentions vendor and the constant column.
  bool vendor_dropped = false;
  bool constant_dropped = false;
  for (const auto& d : enc.dropped()) {
    vendor_dropped |= d.find("vendor") != std::string::npos;
    constant_dropped |= d.find("constant") != std::string::npos;
  }
  EXPECT_TRUE(vendor_dropped);
  EXPECT_TRUE(constant_dropped);
}

TEST(Encoder, NeuralModeOneHotsUnorderedCategoricals) {
  Encoder enc;
  EncoderOptions opt;
  opt.mode = EncodingMode::kNeuralNetwork;
  enc.fit(make_mixed(), opt);
  const auto names = enc.feature_names();
  EXPECT_EQ(std::count(names.begin(), names.end(), "vendor=amd"), 1);
  EXPECT_EQ(std::count(names.begin(), names.end(), "vendor=intel"), 1);
  EXPECT_EQ(std::count(names.begin(), names.end(), "vendor=sun"), 1);
  // Ordered categoricals stay ordinal even in NN mode.
  EXPECT_EQ(std::count(names.begin(), names.end(), "bp"), 1);
}

TEST(Encoder, ScalesInputsToUnitInterval) {
  Encoder enc;
  EncoderOptions opt;
  opt.mode = EncodingMode::kNeuralNetwork;
  const Dataset ds = make_mixed();
  enc.fit(ds, opt);
  const linalg::Matrix x = enc.encode(ds);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      EXPECT_GE(x(r, c), 0.0);
      EXPECT_LE(x(r, c), 1.0);
    }
  }
}

TEST(Encoder, ScalingUsesTrainingRange) {
  Dataset train;
  train.add_feature(Column::numeric("x", {0.0, 10.0}));
  train.set_target("y", {0.0, 1.0});
  Encoder enc;
  EncoderOptions opt;
  enc.fit(train, opt);
  Dataset test;
  test.add_feature(Column::numeric("x", {20.0}));
  const linalg::Matrix xt = enc.encode(test);
  // Extrapolation beyond the training range is NOT clamped.
  EXPECT_DOUBLE_EQ(xt(0, 0), 2.0);
}

TEST(Encoder, InterceptColumn) {
  Encoder enc;
  EncoderOptions opt;
  opt.mode = EncodingMode::kLinearRegression;
  opt.add_intercept = true;
  const Dataset ds = make_mixed();
  enc.fit(ds, opt);
  const linalg::Matrix x = enc.encode(ds);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    EXPECT_DOUBLE_EQ(x(r, 0), 1.0);
  }
  EXPECT_EQ(enc.feature_names().front(), "(intercept)");
  EXPECT_EQ(enc.n_outputs(), x.cols());
}

TEST(Encoder, TargetScalingRoundTrip) {
  Encoder enc;
  EncoderOptions opt;
  opt.scale_target = true;
  const Dataset ds = make_mixed();
  enc.fit(ds, opt);
  const auto y = enc.encode_target(ds);
  EXPECT_DOUBLE_EQ(y.front(), 0.0);
  EXPECT_DOUBLE_EQ(y.back(), 1.0);
  EXPECT_DOUBLE_EQ(enc.decode_target(y[1]), 20.0);
  EXPECT_DOUBLE_EQ(enc.decode_target(0.0), 10.0);
  EXPECT_DOUBLE_EQ(enc.decode_target(1.0), 40.0);
}

TEST(Encoder, TargetUnscaledByDefault) {
  Encoder enc;
  EncoderOptions opt;
  const Dataset ds = make_mixed();
  enc.fit(ds, opt);
  const auto y = enc.encode_target(ds);
  EXPECT_DOUBLE_EQ(y[2], 30.0);
  EXPECT_DOUBLE_EQ(enc.decode_target(123.0), 123.0);
}

TEST(Encoder, OneHotEncodesUnseenLevelAsAllZero) {
  Dataset train;
  train.add_feature(Column::categorical_with_levels(
      "v", {"a", "b", "c"}, {"a", "b", "a", "b"}));
  train.add_feature(Column::numeric("x", {1.0, 2.0, 3.0, 4.0}));
  train.set_target("y", {1.0, 2.0, 3.0, 4.0});
  Encoder enc;
  EncoderOptions opt;
  opt.mode = EncodingMode::kNeuralNetwork;
  enc.fit(train, opt);
  Dataset test;
  test.add_feature(Column::categorical_with_levels("v", {"a", "b", "c"},
                                                   {"c"}));
  test.add_feature(Column::numeric("x", {2.0}));
  const linalg::Matrix xt = enc.encode(test);
  // The one-hot group spans levels a/b/c observed in the dictionary; only
  // the matching level column is hot, and "c" matches its own column.
  double group_sum = 0.0;
  for (std::size_t c = 0; c + 1 < xt.cols(); ++c) group_sum += xt(0, c);
  EXPECT_DOUBLE_EQ(group_sum, 1.0);
}

TEST(Encoder, UnfittedThrows) {
  const Encoder enc;
  Dataset ds;
  ds.add_feature(Column::numeric("x", {1.0}));
  EXPECT_THROW(enc.encode(ds), InvalidArgument);
  EXPECT_THROW(enc.decode_target(1.0), InvalidArgument);
}

TEST(Encoder, AllDroppedThrows) {
  Dataset ds;
  ds.add_feature(Column::numeric("c", {1.0, 1.0}));
  ds.set_target("y", {1.0, 2.0});
  Encoder enc;
  EncoderOptions opt;
  EXPECT_THROW(enc.fit(ds, opt), InvalidArgument);
}

TEST(Encoder, ConstantColumnKeptWhenDisabled) {
  Dataset ds;
  ds.add_feature(Column::numeric("c", {1.0, 1.0}));
  ds.set_target("y", {1.0, 2.0});
  Encoder enc;
  EncoderOptions opt;
  opt.drop_constant = false;
  enc.fit(ds, opt);
  const linalg::Matrix x = enc.encode(ds);
  // Degenerate range maps to 0.5.
  EXPECT_DOUBLE_EQ(x(0, 0), 0.5);
}

}  // namespace
}  // namespace dsml::data
