#include "common/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "common/error.hpp"

namespace dsml::json {
namespace {

// --- Writer -----------------------------------------------------------------

TEST(JsonWriter, EmitsNestedStructureWithDeterministicLayout) {
  Writer w;
  w.begin_object()
      .field("schema", "dsml-bench-ml/v1")
      .field("threads", 4)
      .field("fast", false)
      .key("sections")
      .begin_object()
      .key("gemm")
      .begin_object()
      .field("speedup", 1.5)
      .field("equivalent", true)
      .end_object()
      .end_object()
      .key("folds")
      .begin_array()
      .value(1.25)
      .value(2.5)
      .end_array()
      .end_object();
  const std::string text = w.str();
  const Value v = Value::parse(text);
  EXPECT_EQ(v.at("schema").as_string(), "dsml-bench-ml/v1");
  EXPECT_EQ(v.at("threads").as_number(), 4.0);
  EXPECT_FALSE(v.at("fast").as_bool());
  EXPECT_TRUE(v.at("sections").at("gemm").at("equivalent").as_bool());
  EXPECT_EQ(v.at("folds").items().size(), 2u);
  EXPECT_EQ(v.at("folds").items()[1].as_number(), 2.5);
  // Field order is insertion order, so the report diff is stable.
  EXPECT_EQ(v.fields().front().first, "schema");
}

TEST(JsonWriter, NumbersRoundTripAtFullPrecision) {
  const double values[] = {0.1, 1.0 / 3.0, 1e-300, 123456789.123456789,
                           -0.0};
  for (double x : values) {
    Writer w;
    w.begin_object().field("x", x).end_object();
    const Value v = Value::parse(w.str());
    EXPECT_EQ(v.at("x").as_number(), x);
  }
}

// Regression: non-finite doubles used to silently become null, so a NaN
// bench entry changed type on disk and the drift gate compared against it
// blindly. They now round-trip as numbers via string sentinels.
TEST(JsonWriter, NonFiniteRoundTripsViaSentinels) {
  Writer w;
  w.begin_object()
      .field("nan", std::nan(""))
      .field("inf", std::numeric_limits<double>::infinity())
      .field("ninf", -std::numeric_limits<double>::infinity())
      .end_object();
  const Value v = Value::parse(w.str());
  EXPECT_EQ(v.at("nan").type(), Value::Type::kNumber);
  EXPECT_TRUE(std::isnan(v.at("nan").as_number()));
  EXPECT_EQ(v.at("inf").as_number(),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(v.at("ninf").as_number(),
            -std::numeric_limits<double>::infinity());
}

TEST(JsonWriter, FormatNumberEmitsSentinelStrings) {
  EXPECT_EQ(format_number(std::nan("")), "\"NaN\"");
  EXPECT_EQ(format_number(std::numeric_limits<double>::infinity()),
            "\"Infinity\"");
  EXPECT_EQ(format_number(-std::numeric_limits<double>::infinity()),
            "\"-Infinity\"");
}

// The sentinel mapping applies to string *values* only: object keys named
// "NaN" stay keys, and the reserved strings parse back as numbers even when
// written via value(string_view).
TEST(JsonParser, SentinelStringsParseAsNumbers) {
  const Value v = Value::parse(R"({"NaN": ["NaN", "Infinity", "ok"]})");
  const auto& items = v.at("NaN").items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_TRUE(std::isnan(items[0].as_number()));
  EXPECT_EQ(items[1].as_number(),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(items[2].as_string(), "ok");
}

TEST(JsonWriter, EscapesStrings) {
  Writer w;
  w.begin_object().field("s", "a\"b\\c\n\t").end_object();
  const Value v = Value::parse(w.str());
  EXPECT_EQ(v.at("s").as_string(), "a\"b\\c\n\t");
}

TEST(JsonWriter, MisuseThrowsStateError) {
  {
    Writer w;
    w.begin_object();
    EXPECT_THROW(w.value(1.0), StateError);  // value without key
  }
  {
    Writer w;
    w.begin_array();
    EXPECT_THROW(w.str(), StateError);  // still open
  }
  {
    Writer w;
    EXPECT_THROW(w.end_object(), StateError);  // nothing to close
  }
}

// --- Parser -----------------------------------------------------------------

TEST(JsonParser, ParsesScalarsAndContainers) {
  const Value v = Value::parse(
      R"({"a": [1, -2.5, true, false, null, "xA"], "b": {"c": 3e2}})");
  const auto& items = v.at("a").items();
  ASSERT_EQ(items.size(), 6u);
  EXPECT_EQ(items[0].as_number(), 1.0);
  EXPECT_EQ(items[1].as_number(), -2.5);
  EXPECT_TRUE(items[2].as_bool());
  EXPECT_FALSE(items[3].as_bool());
  EXPECT_TRUE(items[4].is_null());
  EXPECT_EQ(items[5].as_string(), "xA");
  EXPECT_EQ(v.at("b").at("c").as_number(), 300.0);
  EXPECT_TRUE(v.contains("a"));
  EXPECT_FALSE(v.contains("missing"));
}

TEST(JsonParser, RejectsMalformedInput) {
  EXPECT_THROW(Value::parse(""), IoError);
  EXPECT_THROW(Value::parse("{"), IoError);
  EXPECT_THROW(Value::parse("[1,]"), IoError);
  EXPECT_THROW(Value::parse("{\"a\": 1} trailing"), IoError);
  EXPECT_THROW(Value::parse("{'a': 1}"), IoError);
  EXPECT_THROW(Value::parse("nul"), IoError);
}

TEST(JsonParser, TypeMismatchThrows) {
  const Value v = Value::parse(R"({"n": 5})");
  EXPECT_THROW(v.at("n").as_string(), IoError);
  EXPECT_THROW(v.at("n").items(), IoError);
  EXPECT_THROW(v.at("missing"), IoError);
  EXPECT_THROW(Value::parse("[1]").at("k"), IoError);
}

TEST(JsonParser, ParseFileErrorsOnMissingPath) {
  EXPECT_THROW(Value::parse_file("/no/such/dir/bench.json"), IoError);
}

TEST(JsonWriter, CompactModeEmitsOneLine) {
  Writer w(/*compact=*/true);
  w.begin_object();
  w.field("ok", true);
  w.key("predictions").begin_array().value(1.5).null().end_array();
  w.field("model", "gcc");
  w.end_object();
  const std::string doc = w.str();
  // Exactly one trailing newline — the JSON-lines framing contract.
  ASSERT_FALSE(doc.empty());
  EXPECT_EQ(doc.back(), '\n');
  EXPECT_EQ(doc.find('\n'), doc.size() - 1);
  EXPECT_EQ(doc, "{\"ok\":true,\"predictions\":[1.5,null],\"model\":\"gcc\"}\n");
  // And it round-trips through the parser.
  const Value v = Value::parse(doc);
  EXPECT_TRUE(v.at("ok").as_bool());
  EXPECT_TRUE(v.at("predictions").items()[1].is_null());
}

}  // namespace
}  // namespace dsml::json
