#include "ml/validation.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "data/split.hpp"
#include "ml/linreg.hpp"
#include "ml/metrics.hpp"
#include "ml/nn_models.hpp"

namespace dsml::ml {
namespace {

data::Dataset make_linear_data(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> x1(n);
  std::vector<double> x2(n);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    x1[i] = rng.uniform(0.0, 10.0);
    x2[i] = rng.uniform(0.0, 10.0);
    y[i] = 50.0 + 3.0 * x1[i] + 1.0 * x2[i] + rng.gaussian(0.0, 0.5);
  }
  data::Dataset ds;
  ds.add_feature(data::Column::numeric("x1", std::move(x1)));
  ds.add_feature(data::Column::numeric("x2", std::move(x2)));
  ds.set_target("y", std::move(y));
  return ds;
}

ModelFactory lr_factory() {
  return []() -> std::unique_ptr<Regressor> {
    return std::make_unique<LinearRegression>();
  };
}

/// A deliberately bad model: always predicts a constant far from the data.
class BadModel final : public Regressor {
 public:
  void fit(const data::Dataset&) override { fitted_ = true; }
  std::vector<double> predict(const data::Dataset& ds) const override {
    return std::vector<double>(ds.n_rows(), 1.0);
  }
  std::string name() const override { return "Bad"; }
  bool fitted() const noexcept override { return fitted_; }

 private:
  bool fitted_ = false;
};

TEST(EstimateError, ProducesRequestedFolds) {
  const data::Dataset ds = make_linear_data(60, 1);
  ValidationOptions opt;
  opt.repeats = 5;
  const ErrorEstimate est = estimate_error(lr_factory(), ds, opt);
  EXPECT_EQ(est.folds.size(), 5u);
  EXPECT_GE(est.maximum, est.average);
  for (double f : est.folds) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, est.maximum);
  }
}

TEST(EstimateError, LowForWellSpecifiedModel) {
  const data::Dataset ds = make_linear_data(120, 2);
  const ErrorEstimate est = estimate_error(lr_factory(), ds);
  EXPECT_LT(est.maximum, 3.0);
}

TEST(EstimateError, DeterministicGivenSeed) {
  const data::Dataset ds = make_linear_data(60, 3);
  ValidationOptions opt;
  opt.seed = 77;
  const ErrorEstimate a = estimate_error(lr_factory(), ds, opt);
  const ErrorEstimate b = estimate_error(lr_factory(), ds, opt);
  EXPECT_EQ(a.folds, b.folds);
}

TEST(EstimateError, EstimateErrorMatchesSerialReference) {
  // estimate_error runs its folds across the thread pool; this replica is
  // the historical serial loop (one Rng, splits consumed in repeat order,
  // fit/predict per fold). The parallel implementation must reproduce it
  // bit-for-bit at any thread count — splits are pre-drawn serially and each
  // fold writes only its own slot.
  const data::Dataset ds = make_linear_data(90, 8);
  ValidationOptions opt;
  opt.repeats = 7;
  opt.seed = 4242;

  Rng rng(opt.seed);
  std::vector<double> serial_folds;
  for (std::size_t rep = 0; rep < opt.repeats; ++rep) {
    const auto [fit_idx, holdout_idx] = data::split_half(ds.n_rows(), rng);
    const data::Dataset fit_part = ds.select_rows(fit_idx);
    const data::Dataset holdout_part = ds.select_rows(holdout_idx);
    auto model = lr_factory()();
    model->fit(fit_part);
    serial_folds.push_back(
        mape(model->predict(holdout_part), holdout_part.target()));
  }

  const ErrorEstimate est = estimate_error(lr_factory(), ds, opt);
  ASSERT_EQ(est.folds.size(), serial_folds.size());
  for (std::size_t rep = 0; rep < serial_folds.size(); ++rep) {
    EXPECT_EQ(est.folds[rep], serial_folds[rep]) << "fold " << rep;
  }
  EXPECT_EQ(est.average, stats::mean(serial_folds));
  EXPECT_EQ(est.maximum, stats::max(serial_folds));
}

TEST(EstimateError, TooFewRowsThrows) {
  const data::Dataset ds = make_linear_data(6, 4);
  EXPECT_THROW(estimate_error(lr_factory(), ds), InvalidArgument);
}

TEST(EstimateError, ZeroRepeatsThrows) {
  const data::Dataset ds = make_linear_data(30, 5);
  ValidationOptions opt;
  opt.repeats = 0;
  EXPECT_THROW(estimate_error(lr_factory(), ds, opt), InvalidArgument);
}

TEST(SelectModel, PicksTheBetterCandidate) {
  const data::Dataset train = make_linear_data(100, 6);
  std::vector<NamedModel> candidates;
  candidates.push_back({"LR-B", lr_factory()});
  candidates.push_back({"Bad", []() -> std::unique_ptr<Regressor> {
                          return std::make_unique<BadModel>();
                        }});
  SelectModel select(std::move(candidates));
  select.fit(train);
  EXPECT_EQ(select.chosen_name(), "LR-B");
  EXPECT_EQ(select.name(), "Select(LR-B)");
  // Its predictions behave like the chosen model's.
  const data::Dataset test = make_linear_data(40, 7);
  EXPECT_LT(mape(select.predict(test), test.target()), 3.0);
}

TEST(SelectModel, ExposesPerCandidateEstimates) {
  const data::Dataset train = make_linear_data(80, 8);
  std::vector<NamedModel> candidates;
  candidates.push_back({"LR-B", lr_factory()});
  candidates.push_back({"Bad", []() -> std::unique_ptr<Regressor> {
                          return std::make_unique<BadModel>();
                        }});
  SelectModel select(std::move(candidates));
  select.fit(train);
  ASSERT_EQ(select.estimates().size(), 2u);
  EXPECT_LT(select.estimates()[0].maximum, select.estimates()[1].maximum);
  EXPECT_DOUBLE_EQ(select.chosen_estimate().maximum,
                   select.estimates()[0].maximum);
}

TEST(SelectModel, UnfittedBehaviour) {
  std::vector<NamedModel> candidates;
  candidates.push_back({"LR-B", lr_factory()});
  SelectModel select(std::move(candidates));
  EXPECT_FALSE(select.fitted());
  EXPECT_EQ(select.name(), "Select");
  const data::Dataset ds = make_linear_data(20, 9);
  EXPECT_THROW(select.predict(ds), InvalidArgument);
  EXPECT_THROW(select.chosen_name(), InvalidArgument);
}

TEST(SelectModel, EmptyCandidatesThrows) {
  EXPECT_THROW(SelectModel({}), InvalidArgument);
}

TEST(SelectModel, ImportanceDelegatesToChosen) {
  const data::Dataset train = make_linear_data(100, 10);
  std::vector<NamedModel> candidates;
  candidates.push_back({"LR-B", lr_factory()});
  SelectModel select(std::move(candidates));
  select.fit(train);
  EXPECT_FALSE(select.importance().empty());
}

}  // namespace
}  // namespace dsml::ml
