#include "specdata/spec_metric.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace dsml::specdata {
namespace {

TEST(SpecSuite, IntSuiteHasTwelveApps) {
  EXPECT_EQ(specint2000_apps().size(), 12u);
}

TEST(SpecSuite, FpSuiteHasFourteenApps) {
  EXPECT_EQ(specfp2000_apps().size(), 14u);
}

TEST(SpecSuite, ReferenceTimesPositive) {
  for (const auto& app : specint2000_apps()) {
    EXPECT_GT(app.reference_seconds, 0.0) << app.name;
  }
  for (const auto& app : specfp2000_apps()) {
    EXPECT_GT(app.reference_seconds, 0.0) << app.name;
  }
}

TEST(SpecSuite, ContainsPaperApplications) {
  auto has = [](const std::vector<SpecApp>& apps, const char* name) {
    for (const auto& a : apps) {
      if (a.name.find(name) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(has(specint2000_apps(), "gcc"));
  EXPECT_TRUE(has(specint2000_apps(), "mcf"));
  EXPECT_TRUE(has(specfp2000_apps(), "applu"));
  EXPECT_TRUE(has(specfp2000_apps(), "equake"));
  EXPECT_TRUE(has(specfp2000_apps(), "mesa"));
}

TEST(SpecRatio, ReferenceMachineScoresHundred) {
  EXPECT_DOUBLE_EQ(spec_ratio(1400.0, 1400.0), 100.0);
}

TEST(SpecRatio, TwiceAsFastScoresTwoHundred) {
  EXPECT_DOUBLE_EQ(spec_ratio(1400.0, 700.0), 200.0);
}

TEST(SpecRatio, RejectsNonPositive) {
  EXPECT_THROW(spec_ratio(0.0, 1.0), InvalidArgument);
  EXPECT_THROW(spec_ratio(1.0, 0.0), InvalidArgument);
}

TEST(SpecRating, GeometricMeanOfRatios) {
  const auto& apps = specint2000_apps();
  // A system exactly 4x the reference on every app rates 400.
  std::vector<double> runtimes;
  for (const auto& app : apps) runtimes.push_back(app.reference_seconds / 4.0);
  EXPECT_NEAR(spec_rating(apps, runtimes), 400.0, 1e-9);
}

TEST(SpecRating, MixedSpeedups) {
  // Two apps, 1x and 4x -> geometric mean 2x -> rating 200.
  const std::vector<SpecApp> apps = {{"a", 100.0}, {"b", 100.0}};
  const std::vector<double> runtimes = {100.0, 25.0};
  EXPECT_NEAR(spec_rating(apps, runtimes), 200.0, 1e-9);
}

TEST(SpecRating, DominatedByNoSingleApp) {
  // Geometric mean: halving one of 12 runtimes raises the rating by 2^(1/12).
  const auto& apps = specint2000_apps();
  std::vector<double> runtimes;
  for (const auto& app : apps) runtimes.push_back(app.reference_seconds);
  const double base = spec_rating(apps, runtimes);
  runtimes[0] /= 2.0;
  const double improved = spec_rating(apps, runtimes);
  EXPECT_NEAR(improved / base, std::pow(2.0, 1.0 / 12.0), 1e-9);
}

TEST(SpecRating, SizeMismatchThrows) {
  const auto& apps = specint2000_apps();
  const std::vector<double> runtimes = {1.0};
  EXPECT_THROW(spec_rating(apps, runtimes), InvalidArgument);
}

TEST(SpecRateRating, ScalesWithCopies) {
  const std::vector<SpecApp> apps = {{"a", 100.0}};
  const std::vector<double> elapsed = {100.0};
  const double one = spec_rate_rating(apps, elapsed, 1);
  const double four = spec_rate_rating(apps, elapsed, 4);
  EXPECT_NEAR(four / one, 4.0, 1e-12);
}

TEST(SpecRateRating, RejectsBadInput) {
  const std::vector<SpecApp> apps = {{"a", 100.0}};
  const std::vector<double> elapsed = {100.0};
  EXPECT_THROW(spec_rate_rating(apps, elapsed, 0), InvalidArgument);
  const std::vector<double> bad = {0.0};
  EXPECT_THROW(spec_rate_rating(apps, bad, 1), InvalidArgument);
}

}  // namespace
}  // namespace dsml::specdata
